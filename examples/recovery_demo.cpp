// Online recovery demo (the paper's §5.4 extension): a replica crashes,
// the cluster keeps committing, the replica restarts and catches up from
// a donor's writeset log without transaction processing ever stopping —
// then a brand-new replica joins the running cluster the same way.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "cluster/cluster.h"

using sirep::cluster::Cluster;
using sirep::cluster::ClusterOptions;
using sirep::sql::Value;

namespace {

long long TotalAt(Cluster& cluster, size_t replica) {
  auto r = cluster.db(replica)->ExecuteAutoCommit("SELECT SUM(v) FROM kv");
  return r.ok() ? r.value().rows[0][0].AsInt() : -1;
}

}  // namespace

int main() {
  ClusterOptions options;
  options.num_replicas = 3;
  Cluster cluster(options);
  if (!cluster.Start().ok()) return 1;
  cluster.ExecuteEverywhere(
      "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))");
  for (int k = 0; k < 8; ++k) {
    cluster.ExecuteEverywhere("INSERT INTO kv VALUES (?, 0)",
                              {Value::Int(k)});
  }

  // Background traffic that never stops.
  std::atomic<bool> stop{false};
  std::atomic<int> committed{0};
  std::thread traffic([&] {
    sirep::Prng prng(7);
    while (!stop.load()) {
      sirep::client::ConnectionOptions copt;
      copt.seed = prng.Next();
      auto conn = cluster.Connect(copt);
      if (!conn.ok()) continue;
      auto& c = *conn.value();
      c.SetAutoCommit(false);
      const int64_t k = static_cast<int64_t>(prng.Uniform(8));
      if (c.Execute("UPDATE kv SET v = v + 1 WHERE k = ?", {Value::Int(k)})
              .ok() &&
          c.Commit().ok()) {
        committed.fetch_add(1);
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::printf("cluster running, %d transactions committed so far\n",
              committed.load());

  // --- Crash and online restart -----------------------------------------
  std::printf("\ncrashing replica 2...\n");
  cluster.CrashReplica(2);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::printf("traffic continued: %d committed; replica 2 is stale "
              "(sum=%lld vs %lld at replica 0)\n",
              committed.load(), TotalAt(cluster, 2), TotalAt(cluster, 0));

  std::printf("restarting replica 2 online (writeset-log catch-up)...\n");
  sirep::Status restart = cluster.RestartReplica(2);
  std::printf("restart: %s\n", restart.ToString().c_str());

  // --- A brand-new replica joins the running cluster --------------------
  std::printf("\nadding a brand-new 4th replica while traffic flows...\n");
  auto added = cluster.AddReplica([](sirep::engine::Database* db)
                                      -> sirep::Status {
    auto r = db->ExecuteAutoCommit(
        "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))");
    if (!r.ok()) return r.status();
    for (int k = 0; k < 8; ++k) {
      auto ins = db->ExecuteAutoCommit("INSERT INTO kv VALUES (?, 0)",
                                       {Value::Int(k)});
      if (!ins.ok()) return ins.status();
    }
    return sirep::Status::OK();
  });
  std::printf("add replica: %s\n",
              added.ok() ? "OK" : added.status().ToString().c_str());

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  traffic.join();
  cluster.Quiesce();

  std::printf("\nfinal audit (%d transactions committed):\n",
              committed.load());
  bool consistent = true;
  const long long expect = TotalAt(cluster, 0);
  for (size_t r = 0; r < cluster.size(); ++r) {
    const long long total = TotalAt(cluster, r);
    std::printf("  replica %zu: sum(v) = %lld\n", r, total);
    if (total != expect) consistent = false;
  }
  std::printf(consistent ? "all %zu replicas agree ✓\n"
                         : "REPLICA DIVERGENCE!\n",
              cluster.size());
  return consistent && committed.load() == expect ? 0 : 1;
}
