// A guided tour of snapshot isolation semantics on a single database
// engine (no replication): snapshot reads, first-updater-wins, read-your-
// writes, and the write-skew anomaly that distinguishes SI from
// serializability. Useful to understand what "1-copy-SI" promises before
// reading the replicated examples.

#include <cstdio>

#include "engine/database.h"

using sirep::engine::Database;
using sirep::sql::Value;

namespace {
long long Balance(Database& db, int id) {
  auto r = db.ExecuteAutoCommit("SELECT bal FROM acct WHERE id = ?",
                                {Value::Int(id)});
  return r.ok() && !r.value().rows.empty() ? r.value().rows[0][0].AsInt()
                                           : -1;
}
}  // namespace

int main() {
  Database db;
  db.ExecuteAutoCommit(
      "CREATE TABLE acct (id INT, bal INT, PRIMARY KEY (id))");
  db.ExecuteAutoCommit("INSERT INTO acct VALUES (1, 100)");
  db.ExecuteAutoCommit("INSERT INTO acct VALUES (2, 100)");

  // ---- 1. Reads come from a snapshot taken at transaction start ----
  std::printf("1. snapshot reads\n");
  auto reader = db.Begin();
  auto before = db.Execute(reader, "SELECT bal FROM acct WHERE id = 1");
  db.ExecuteAutoCommit("UPDATE acct SET bal = 500 WHERE id = 1");
  auto after = db.Execute(reader, "SELECT bal FROM acct WHERE id = 1");
  std::printf("   reader saw %lld before and %lld after a concurrent "
              "commit (same snapshot)\n",
              static_cast<long long>(before.value().rows[0][0].AsInt()),
              static_cast<long long>(after.value().rows[0][0].AsInt()));
  db.Abort(reader);

  // ---- 2. Writers conflict only on write/write ----
  std::printf("2. readers never block writers, writers never block "
              "readers\n");
  auto t1 = db.Begin();
  db.Execute(t1, "UPDATE acct SET bal = 1 WHERE id = 1");  // holds the lock
  auto t2 = db.Begin();
  auto concurrent_read = db.Execute(t2, "SELECT bal FROM acct WHERE id = 1");
  std::printf("   while a writer holds the row, a reader still reads: "
              "%lld\n",
              static_cast<long long>(
                  concurrent_read.value().rows[0][0].AsInt()));
  db.Abort(t1);
  db.Abort(t2);

  // ---- 3. First-updater-wins ----
  std::printf("3. first-updater-wins (the PostgreSQL behaviour, paper "
              "section 4)\n");
  auto w1 = db.Begin();
  auto w2 = db.Begin();
  db.Execute(w1, "UPDATE acct SET bal = 111 WHERE id = 2");
  db.Commit(w1);
  auto loser = db.Execute(w2, "UPDATE acct SET bal = 222 WHERE id = 2");
  std::printf("   the concurrent second writer gets: %s\n",
              loser.status().ToString().c_str());

  // ---- 4. Write skew: allowed by SI ----
  std::printf("4. write skew (allowed by SI, forbidden by "
              "serializability)\n");
  db.ExecuteAutoCommit("UPDATE acct SET bal = 100 WHERE id = 1");
  db.ExecuteAutoCommit("UPDATE acct SET bal = 100 WHERE id = 2");
  auto s1 = db.Begin();
  auto s2 = db.Begin();
  // Both verify the invariant bal(1)+bal(2) >= 0 on their snapshots, then
  // each withdraws 150 from a *different* account: disjoint writesets.
  db.Execute(s1, "SELECT SUM(bal) FROM acct");
  db.Execute(s2, "SELECT SUM(bal) FROM acct");
  db.Execute(s1, "UPDATE acct SET bal = bal - 150 WHERE id = 1");
  db.Execute(s2, "UPDATE acct SET bal = bal - 150 WHERE id = 2");
  const bool c1 = db.Commit(s1).ok();
  const bool c2 = db.Commit(s2).ok();
  std::printf("   both committed? %s — total is now %lld (went negative: "
              "that's write skew)\n",
              (c1 && c2) ? "yes" : "no", Balance(db, 1) + Balance(db, 2));

  // ---- 5. Writesets: what the replication layer ships around ----
  std::printf("5. writeset extraction (the replication primitive)\n");
  auto t = db.Begin();
  db.Execute(t, "UPDATE acct SET bal = 0 WHERE id = 1");
  db.Execute(t, "DELETE FROM acct WHERE id = 2");
  auto ws = db.ExtractWriteSet(t);
  std::printf("   extracted before commit: %s\n", ws->ToString().c_str());
  db.Abort(t);
  return 0;
}
