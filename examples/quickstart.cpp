// Quickstart: bring up a 3-replica SI-Rep cluster in-process, connect
// through the JDBC-like driver, and watch updates replicate.
//
//   $ ./quickstart
//
// The client code below never mentions replication: it opens a
// connection, executes SQL, and commits. The middleware does the rest —
// that transparency is the paper's headline feature.

#include <cstdio>

#include "cluster/cluster.h"

using sirep::client::Connection;
using sirep::cluster::Cluster;
using sirep::cluster::ClusterOptions;
using sirep::sql::Value;

int main() {
  // 1. A cluster of 3 (database, middleware) pairs over one group.
  ClusterOptions options;
  options.num_replicas = 3;
  Cluster cluster(options);
  if (!cluster.Start().ok()) {
    std::fprintf(stderr, "failed to start cluster\n");
    return 1;
  }

  // 2. Schema + seed data, loaded identically at every replica (like
  // restoring the same backup everywhere before going live).
  cluster.ExecuteEverywhere(
      "CREATE TABLE books (id INT, title VARCHAR(60), stock INT, "
      "PRIMARY KEY (id))");
  cluster.ExecuteEverywhere(
      "INSERT INTO books VALUES (1, 'A Critique of ANSI SQL Isolation', 7)");
  cluster.ExecuteEverywhere(
      "INSERT INTO books VALUES (2, 'The Dangers of Replication', 4)");

  // 3. Connect like any JDBC client.
  auto conn_result = cluster.Connect();
  if (!conn_result.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 conn_result.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Connection> conn = std::move(conn_result).value();
  std::printf("connected to middleware replica %u\n",
              conn->replica()->member_id());

  // 4. A read-only transaction: executes at one replica, never multicast.
  auto books = conn->Execute("SELECT id, title, stock FROM books ORDER BY id");
  std::printf("\ninventory:\n%s\n", books.value().ToString().c_str());

  // 5. An update transaction: one book sold. The writeset (the single
  // changed tuple) is validated and applied at every replica.
  conn->SetAutoCommit(false);
  conn->Execute("UPDATE books SET stock = stock - 1 WHERE id = 1");
  sirep::Status commit = conn->Commit();
  std::printf("sale committed: %s\n", commit.ToString().c_str());

  // 6. Show that every replica has the update.
  cluster.Quiesce();
  for (size_t r = 0; r < cluster.size(); ++r) {
    auto stock = cluster.db(r)->ExecuteAutoCommit(
        "SELECT stock FROM books WHERE id = 1");
    std::printf("replica %zu sees stock = %lld\n", r,
                static_cast<long long>(stock.value().rows[0][0].AsInt()));
  }

  // 7. Conflicting concurrent updates: SI-Rep detects the write/write
  // conflict at tuple granularity; exactly one side commits. The two
  // clients sit at *different* replicas — the conflict is found by the
  // middleware's optimistic validation, not by a database lock.
  sirep::client::ConnectionOptions o1, o2;
  o1.pinned_replica = 0;
  o2.pinned_replica = 1;
  auto c1 = std::move(cluster.Connect(o1)).value();
  auto c2 = std::move(cluster.Connect(o2)).value();
  c1->SetAutoCommit(false);
  c2->SetAutoCommit(false);
  c1->Execute("UPDATE books SET stock = 100 WHERE id = 2");
  c2->Execute("UPDATE books SET stock = 200 WHERE id = 2");
  sirep::Status s1 = c1->Commit();
  sirep::Status s2 = c2->Commit();
  std::printf("\nconflicting commits: first=%s second=%s\n",
              s1.ToString().c_str(), s2.ToString().c_str());

  // 8. Fault tolerance: crash the replica this connection uses; the next
  // statement fails over automatically.
  auto watcher = std::move(cluster.Connect()).value();
  const auto victim_id = watcher->replica()->member_id();
  for (size_t r = 0; r < cluster.size(); ++r) {
    if (cluster.replica(r)->member_id() == victim_id) {
      cluster.CrashReplica(r);
    }
  }
  auto after = watcher->Execute("SELECT stock FROM books WHERE id = 2");
  std::printf("\nafter crashing replica %u: stock=%lld via replica %u "
              "(failovers=%llu)\n",
              victim_id,
              static_cast<long long>(after.value().rows[0][0].AsInt()),
              watcher->replica()->member_id(),
              static_cast<unsigned long long>(watcher->failover_count()));

  // 9. Observability: every layer records into a unified metrics
  // registry; one merged snapshot covers the whole deployment.
  cluster.Quiesce();
  const auto snap = cluster.DumpMetrics();
  std::printf("\n%s\n",
              sirep::cluster::Cluster::FormatCommitBreakdown(snap).c_str());
  std::printf("committed=%llu global-validation-aborts=%llu "
              "multicasts-delivered=%llu\n",
              static_cast<unsigned long long>(snap.counters.at("mw.committed")),
              static_cast<unsigned long long>(
                  snap.counters.at("mw.global_val_aborts")),
              static_cast<unsigned long long>(
                  snap.counters.at("gcs.messages_delivered")));
  return 0;
}
