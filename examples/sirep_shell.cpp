// sirep_shell — an interactive SQL shell over a replicated SI-Rep
// cluster, in the spirit of psql. Starts N replicas in-process, connects
// through the JDBC-like driver, and reads statements from stdin (or from
// a here-doc / pipe for scripting).
//
//   $ ./sirep_shell            # 3 replicas
//   $ ./sirep_shell 5          # 5 replicas
//   $ echo "CREATE TABLE t (k INT, v INT, PRIMARY KEY (k));" | ./sirep_shell
//
// Meta-commands:
//   \tables            list tables
//   \replicas          replica status + load
//   \crash N           crash replica N
//   \restart N         online-recover replica N
//   \vacuum            garbage-collect old versions everywhere
//   \autocommit on|off
//   \quit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "cluster/cluster.h"

using sirep::cluster::Cluster;
using sirep::cluster::ClusterOptions;

namespace {

void PrintHelp() {
  std::printf(
      "SQL: CREATE TABLE/INDEX, INSERT, SELECT (joins, GROUP BY), UPDATE, "
      "DELETE, BEGIN, COMMIT, ROLLBACK\n"
      "meta: \\tables \\replicas \\crash N \\restart N \\vacuum "
      "\\autocommit on|off \\help \\quit\n");
}

bool HandleMeta(const std::string& line, Cluster& cluster,
                sirep::client::Connection& conn) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd == "\\help") {
    PrintHelp();
  } else if (cmd == "\\tables") {
    // Ask the connection's current replica.
    for (const auto& name :
         conn.replica()->db()->engine().TableNames()) {
      std::printf("  %s\n", name.c_str());
    }
  } else if (cmd == "\\replicas") {
    for (size_t r = 0; r < cluster.size(); ++r) {
      auto* mw = cluster.replica(r);
      std::printf("  replica %zu (member %u): %s, load=%zu%s\n", r,
                  mw->member_id(),
                  !mw->IsAlive()          ? "CRASHED"
                  : mw->IsAcceptingClients() ? "live"
                                             : "recovering",
                  mw->CurrentLoad(),
                  mw == conn.replica() ? "  <- you are here" : "");
    }
  } else if (cmd == "\\crash") {
    size_t n = 0;
    if (in >> n) {
      cluster.CrashReplica(n);
      std::printf("crashed replica %zu\n", n);
    }
  } else if (cmd == "\\restart") {
    size_t n = 0;
    if (in >> n) {
      auto st = cluster.RestartReplica(n);
      std::printf("restart replica %zu: %s\n", n, st.ToString().c_str());
    }
  } else if (cmd == "\\vacuum") {
    std::printf("freed %zu dead versions\n", cluster.VacuumAll());
  } else if (cmd == "\\autocommit") {
    std::string mode;
    in >> mode;
    conn.SetAutoCommit(mode != "off");
    std::printf("autocommit %s\n", conn.autocommit() ? "on" : "off");
  } else if (cmd == "\\quit" || cmd == "\\q") {
    return false;
  } else {
    std::printf("unknown meta-command %s (try \\help)\n", cmd.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t replicas = 3;
  if (argc > 1) replicas = std::max(1, std::atoi(argv[1]));

  ClusterOptions options;
  options.num_replicas = replicas;
  Cluster cluster(options);
  if (!cluster.Start().ok()) {
    std::fprintf(stderr, "cluster start failed\n");
    return 1;
  }
  auto conn_result = cluster.Connect();
  if (!conn_result.ok()) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  auto conn = std::move(conn_result).value();

  std::printf("sirep shell — %zu replicas, connected to member %u. "
              "\\help for help.\n",
              cluster.size(), conn->replica()->member_id());

  std::string line;
  std::string buffer;
  const bool interactive = isatty(fileno(stdin));
  while (true) {
    if (interactive) {
      std::printf(buffer.empty() ? "sirep> " : "   ... ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    // Trim.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    line = line.substr(first);

    if (line[0] == '\\') {
      if (!HandleMeta(line, cluster, *conn)) break;
      continue;
    }

    // Accumulate until ';' (statements may span lines).
    buffer += line;
    if (buffer.back() != ';') {
      buffer += ' ';
      continue;
    }
    std::string sql = buffer;
    buffer.clear();

    const auto t0 = std::chrono::steady_clock::now();
    auto result = conn->Execute(sql);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    const auto& qr = result.value();
    if (!qr.columns.empty()) {
      std::printf("%s(%zu row%s, %.2f ms)\n", qr.ToString().c_str(),
                  qr.NumRows(), qr.NumRows() == 1 ? "" : "s", ms);
    } else {
      std::printf("OK, %lld row(s) affected (%.2f ms)\n",
                  static_cast<long long>(qr.rows_affected), ms);
    }
  }
  return 0;
}
