// Bookstore: the TPC-W-style workload of the paper's evaluation, driven
// through the replicated middleware like a real application server would.
// Shows a customer session (browse, add to cart, buy) and then a burst of
// concurrent shoppers, ending with an inventory consistency audit across
// replicas.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "workload/runner.h"
#include "workload/tpcw.h"

using sirep::cluster::Cluster;
using sirep::cluster::ClusterOptions;
using sirep::sql::Value;
using sirep::workload::TpcwOptions;
using sirep::workload::TpcwWorkload;

int main() {
  ClusterOptions options;
  options.num_replicas = 3;
  Cluster cluster(options);
  if (!cluster.Start().ok()) return 1;

  TpcwOptions wopt;
  wopt.num_items = 200;
  wopt.num_ebs = 10;
  TpcwWorkload tpcw(wopt);
  std::printf("loading the bookstore at %zu replicas...\n", cluster.size());
  if (!cluster
           .LoadEverywhere(
               [&](sirep::engine::Database* db) { return tpcw.Load(db); })
           .ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  // --- One scripted customer session -----------------------------------
  auto conn = std::move(cluster.Connect()).value();
  conn->SetAutoCommit(false);

  std::printf("\n-- browsing the catalogue (read-only, local) --\n");
  auto detail = conn->Execute(
      "SELECT i_title, i_cost, i_stock FROM item WHERE i_id = 42");
  conn->Commit();
  std::printf("%s\n", detail.value().ToString().c_str());

  std::printf("-- adding to cart + buying (update transactions) --\n");
  conn->Execute("UPDATE shopping_cart SET sc_total = sc_total + 12.5, "
                "sc_items = sc_items + 1 WHERE sc_id = 1");
  conn->Commit();

  conn->Execute("INSERT INTO orders VALUES (999001, 1, 12.5, 'PENDING', "
                "2005)");
  conn->Execute("INSERT INTO order_line VALUES (999001, 999001, 42, 1)");
  conn->Execute("UPDATE item SET i_stock = i_stock - 1 WHERE i_id = 42");
  conn->Execute("INSERT INTO cc_xacts VALUES (999001, 12.5, 1)");
  conn->Execute("UPDATE shopping_cart SET sc_total = 0.0, sc_items = 0 "
                "WHERE sc_id = 1");
  auto buy = conn->Commit();
  std::printf("buy-confirm: %s\n", buy.ToString().c_str());

  // --- A burst of concurrent shoppers ----------------------------------
  std::printf("\n-- 8 concurrent shoppers, 25 transactions each --\n");
  std::atomic<int> committed{0}, aborted{0};
  std::vector<std::thread> shoppers;
  for (int s = 0; s < 8; ++s) {
    shoppers.emplace_back([&, s] {
      sirep::Prng prng(1000 + s);
      sirep::client::ConnectionOptions copt;
      copt.seed = 77 + s;
      auto c = cluster.Connect(copt);
      if (!c.ok()) return;
      sirep::workload::ConnectionExecutor executor(std::move(c).value());
      for (int i = 0; i < 25; ++i) {
        auto txn = tpcw.Next(prng);
        if (executor.Run(txn).ok()) {
          committed.fetch_add(1);
        } else {
          aborted.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : shoppers) t.join();
  cluster.Quiesce();
  std::printf("committed=%d aborted=%d (abort rate %.2f%%)\n",
              committed.load(), aborted.load(),
              100.0 * aborted.load() /
                  std::max(1, committed.load() + aborted.load()));

  // --- Consistency audit ------------------------------------------------
  std::printf("\n-- auditing replicas --\n");
  bool consistent = true;
  long long stock0 = 0, orders0 = 0;
  for (size_t r = 0; r < cluster.size(); ++r) {
    auto stock = cluster.db(r)->ExecuteAutoCommit(
        "SELECT SUM(i_stock) FROM item");
    auto orders = cluster.db(r)->ExecuteAutoCommit(
        "SELECT COUNT(*) FROM orders");
    const long long s = stock.value().rows[0][0].AsInt();
    const long long o = orders.value().rows[0][0].AsInt();
    std::printf("replica %zu: total stock=%lld, orders=%lld\n", r, s, o);
    if (r == 0) {
      stock0 = s;
      orders0 = o;
    } else if (s != stock0 || o != orders0) {
      consistent = false;
    }
  }
  std::printf(consistent ? "replicas are consistent ✓\n"
                         : "REPLICA DIVERGENCE!\n");
  return consistent ? 0 : 1;
}
