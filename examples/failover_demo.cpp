// Fail-over demo: walks through the three crash scenarios of the paper's
// §5.4 with a narrated transcript — idle connection, mid-transaction, and
// crash during commit with in-doubt resolution via global transaction
// ids.

#include <chrono>
#include <cstdio>
#include <thread>

#include "cluster/cluster.h"

using sirep::client::ConnectionOptions;
using sirep::cluster::Cluster;
using sirep::cluster::ClusterOptions;
using sirep::sql::Value;

namespace {

void CrashReplicaOf(Cluster& cluster, sirep::client::Connection& conn) {
  const auto victim = conn.replica()->member_id();
  for (size_t r = 0; r < cluster.size(); ++r) {
    if (cluster.replica(r)->member_id() == victim) {
      std::printf("  !! crashing replica %u\n", victim);
      cluster.CrashReplica(r);
    }
  }
}

}  // namespace

int main() {
  ClusterOptions options;
  options.num_replicas = 4;
  Cluster cluster(options);
  if (!cluster.Start().ok()) return 1;
  cluster.ExecuteEverywhere(
      "CREATE TABLE ledger (id INT, amount INT, PRIMARY KEY (id))");
  for (int i = 0; i < 5; ++i) {
    cluster.ExecuteEverywhere("INSERT INTO ledger VALUES (?, 0)",
                              {Value::Int(i)});
  }

  // ---- Case 1: no active transaction — fully transparent ----
  std::printf("case 1: crash while idle\n");
  auto conn = std::move(cluster.Connect()).value();
  conn->Execute("UPDATE ledger SET amount = 10 WHERE id = 0");
  CrashReplicaOf(cluster, *conn);
  auto read = conn->Execute("SELECT amount FROM ledger WHERE id = 0");
  std::printf("  next query after crash: %s (value %lld) — transparent\n",
              read.ok() ? "OK" : read.status().ToString().c_str(),
              read.ok()
                  ? static_cast<long long>(read.value().rows[0][0].AsInt())
                  : -1);

  // ---- Case 2: crash mid-transaction ----
  std::printf("\ncase 2: crash mid-transaction (commit not yet requested)\n");
  conn->SetAutoCommit(false);
  conn->Execute("UPDATE ledger SET amount = 99 WHERE id = 1");
  CrashReplicaOf(cluster, *conn);
  auto next = conn->Execute("UPDATE ledger SET amount = 98 WHERE id = 2");
  std::printf("  driver reports: %s\n", next.status().ToString().c_str());
  auto check = conn->Execute("SELECT amount FROM ledger WHERE id = 1");
  conn->Rollback();
  std::printf("  id=1 amount=%lld (the lost transaction left no trace)\n",
              static_cast<long long>(check.value().rows[0][0].AsInt()));

  // ---- Case 3: crash during commit, resolved via the transaction id ----
  std::printf("\ncase 3: crash during commit (in-doubt resolution)\n");
  conn->SetAutoCommit(false);
  conn->Execute("UPDATE ledger SET amount = 55 WHERE id = 3");
  // Crash the local replica concurrently with the commit.
  std::thread chaos([&] {
    std::this_thread::sleep_for(std::chrono::microseconds(150));
    CrashReplicaOf(cluster, *conn);
  });
  sirep::Status commit = conn->Commit();
  chaos.join();
  cluster.Quiesce();
  std::printf("  driver verdict: %s\n", commit.ToString().c_str());
  // Verify the verdict against a survivor.
  auto survivor = conn->Execute("SELECT amount FROM ledger WHERE id = 3");
  const long long amount =
      survivor.ok() ? survivor.value().rows[0][0].AsInt() : -1;
  std::printf("  survivor state: id=3 amount=%lld — %s\n", amount,
              (commit.ok() == (amount == 55)) ? "verdict matches state ✓"
                                              : "MISMATCH!");
  std::printf("\nconnection performed %llu fail-over(s); %zu of 4 replicas "
              "remain\n",
              static_cast<unsigned long long>(conn->failover_count()),
              cluster.Discover().size());
  return commit.ok() == (amount == 55) ? 0 : 1;
}
