#include "storage/write_set.h"

#include <algorithm>

#include "sql/serde.h"

namespace sirep::storage {

const char* WriteOpToString(WriteOp op) {
  switch (op) {
    case WriteOp::kInsert:
      return "INSERT";
    case WriteOp::kUpdate:
      return "UPDATE";
    case WriteOp::kDelete:
      return "DELETE";
  }
  return "?";
}

void WriteSet::Record(TupleId tuple, WriteOp op, sql::Row after) {
  auto it = index_.find(tuple);
  if (it == index_.end()) {
    index_[tuple] = entries_.size();
    entries_.push_back(WriteSetEntry{std::move(tuple), op, std::move(after)});
    return;
  }
  WriteSetEntry& existing = entries_[it->second];
  switch (op) {
    case WriteOp::kInsert:
      // delete + insert within one transaction => net update.
      existing.op = existing.op == WriteOp::kDelete ? WriteOp::kUpdate
                                                    : existing.op;
      existing.after = std::move(after);
      break;
    case WriteOp::kUpdate:
      // insert + update stays an insert with the final image.
      existing.after = std::move(after);
      break;
    case WriteOp::kDelete:
      // Whatever came before, the net effect on the committed state is a
      // delete (an insert of a brand-new key followed by delete is a no-op
      // against committed state, but keeping the delete entry is harmless
      // and keeps conflict detection conservative).
      existing.op = WriteOp::kDelete;
      existing.after.clear();
      break;
  }
}

const WriteSetEntry* WriteSet::Find(const TupleId& tuple) const {
  auto it = index_.find(tuple);
  if (it == index_.end()) return nullptr;
  return &entries_[it->second];
}

bool WriteSet::Intersects(const WriteSet& other) const {
  // Probe the smaller set against the larger index.
  const WriteSet* small = this;
  const WriteSet* large = &other;
  if (small->size() > large->size()) std::swap(small, large);
  for (const auto& entry : small->entries_) {
    if (large->Contains(entry.tuple)) return true;
  }
  return false;
}

std::vector<std::string> WriteSet::Tables() const {
  std::vector<std::string> tables;
  for (const auto& entry : entries_) {
    if (std::find(tables.begin(), tables.end(), entry.tuple.table) ==
        tables.end()) {
      tables.push_back(entry.tuple.table);
    }
  }
  return tables;
}

void WriteSet::Clear() {
  entries_.clear();
  index_.clear();
}

void EncodeWriteSet(const WriteSet& ws, std::string* out) {
  out->push_back(static_cast<char>(kWriteSetWireVersion));
  sql::EncodeU32(static_cast<uint32_t>(ws.size()), out);
  for (const WriteSetEntry& entry : ws.entries()) {
    sql::EncodeString(entry.tuple.table, out);
    sql::EncodeRow(entry.tuple.key.parts, out);
    out->push_back(static_cast<char>(entry.op));
    sql::EncodeRow(entry.after, out);
  }
}

Status DecodeWriteSet(const std::string& in, size_t* pos, WriteSet* out) {
  out->Clear();
  if (*pos >= in.size()) {
    return Status::InvalidArgument("truncated writeset: missing version");
  }
  const uint8_t version = static_cast<uint8_t>(in[(*pos)++]);
  if (version != kWriteSetWireVersion) {
    return Status::InvalidArgument("unsupported writeset version " +
                                   std::to_string(version));
  }
  uint32_t count = 0;
  SIREP_RETURN_IF_ERROR(sql::DecodeU32(in, pos, &count));
  // Each entry takes at least 13 bytes (empty table, empty key row, op,
  // empty after row); reject counts the remaining bytes cannot hold.
  if (static_cast<size_t>(count) * 13 > in.size() - *pos) {
    return Status::InvalidArgument("writeset entry count exceeds input size");
  }
  for (uint32_t i = 0; i < count; ++i) {
    TupleId tuple;
    SIREP_RETURN_IF_ERROR(sql::DecodeString(in, pos, &tuple.table));
    SIREP_RETURN_IF_ERROR(sql::DecodeRow(in, pos, &tuple.key.parts));
    if (*pos >= in.size()) {
      return Status::InvalidArgument("truncated writeset entry: missing op");
    }
    const uint8_t op = static_cast<uint8_t>(in[(*pos)++]);
    if (op > static_cast<uint8_t>(WriteOp::kDelete)) {
      return Status::InvalidArgument("invalid writeset op " +
                                     std::to_string(op));
    }
    sql::Row after;
    SIREP_RETURN_IF_ERROR(sql::DecodeRow(in, pos, &after));
    out->Record(std::move(tuple), static_cast<WriteOp>(op), std::move(after));
  }
  return Status::OK();
}

std::string WriteSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::string(WriteOpToString(entries_[i].op)) + " " +
           entries_[i].tuple.ToString();
  }
  out += "}";
  return out;
}

}  // namespace sirep::storage
