#include "storage/write_set.h"

#include <algorithm>

namespace sirep::storage {

const char* WriteOpToString(WriteOp op) {
  switch (op) {
    case WriteOp::kInsert:
      return "INSERT";
    case WriteOp::kUpdate:
      return "UPDATE";
    case WriteOp::kDelete:
      return "DELETE";
  }
  return "?";
}

void WriteSet::Record(TupleId tuple, WriteOp op, sql::Row after) {
  auto it = index_.find(tuple);
  if (it == index_.end()) {
    index_[tuple] = entries_.size();
    entries_.push_back(WriteSetEntry{std::move(tuple), op, std::move(after)});
    return;
  }
  WriteSetEntry& existing = entries_[it->second];
  switch (op) {
    case WriteOp::kInsert:
      // delete + insert within one transaction => net update.
      existing.op = existing.op == WriteOp::kDelete ? WriteOp::kUpdate
                                                    : existing.op;
      existing.after = std::move(after);
      break;
    case WriteOp::kUpdate:
      // insert + update stays an insert with the final image.
      existing.after = std::move(after);
      break;
    case WriteOp::kDelete:
      // Whatever came before, the net effect on the committed state is a
      // delete (an insert of a brand-new key followed by delete is a no-op
      // against committed state, but keeping the delete entry is harmless
      // and keeps conflict detection conservative).
      existing.op = WriteOp::kDelete;
      existing.after.clear();
      break;
  }
}

const WriteSetEntry* WriteSet::Find(const TupleId& tuple) const {
  auto it = index_.find(tuple);
  if (it == index_.end()) return nullptr;
  return &entries_[it->second];
}

bool WriteSet::Intersects(const WriteSet& other) const {
  // Probe the smaller set against the larger index.
  const WriteSet* small = this;
  const WriteSet* large = &other;
  if (small->size() > large->size()) std::swap(small, large);
  for (const auto& entry : small->entries_) {
    if (large->Contains(entry.tuple)) return true;
  }
  return false;
}

std::vector<std::string> WriteSet::Tables() const {
  std::vector<std::string> tables;
  for (const auto& entry : entries_) {
    if (std::find(tables.begin(), tables.end(), entry.tuple.table) ==
        tables.end()) {
      tables.push_back(entry.tuple.table);
    }
  }
  return tables;
}

void WriteSet::Clear() {
  entries_.clear();
  index_.clear();
}

std::string WriteSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::string(WriteOpToString(entries_[i].op)) + " " +
           entries_[i].tuple.ToString();
  }
  out += "}";
  return out;
}

}  // namespace sirep::storage
