#include "storage/mvcc_table.h"

#include <mutex>

namespace sirep::storage {

std::shared_ptr<const Version> MvccTable::ReadVisible(
    const sql::Key& key, Timestamp snapshot) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  auto it = rows_.find(key);
  if (it == rows_.end()) return nullptr;
  for (auto v = it->second; v != nullptr; v = v->prev) {
    if (v->commit_ts <= snapshot) return v;
  }
  return nullptr;
}

std::shared_ptr<const Version> MvccTable::ReadNewest(
    const sql::Key& key) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  auto it = rows_.find(key);
  if (it == rows_.end()) return nullptr;
  return it->second;
}

size_t MvccTable::Install(const sql::Key& key, Timestamp commit_ts,
                          bool deleted, sql::Row data) {
  auto version = std::make_shared<Version>();
  version->commit_ts = commit_ts;
  version->deleted = deleted;
  version->data = std::move(data);
  std::unique_lock<std::shared_mutex> latch(latch_);
  if (!version->deleted) IndexInsertLocked(key, version->data);
  auto [it, inserted] = rows_.try_emplace(key, nullptr);
  version->prev = it->second;
  it->second = std::move(version);
  constexpr size_t kChainCountCap = 1025;  // past the histogram's range
  size_t len = 0;
  for (const Version* v = it->second.get();
       v != nullptr && len < kChainCountCap; v = v->prev.get()) {
    ++len;
  }
  return len;
}

void MvccTable::IndexInsertLocked(const sql::Key& key, const sql::Row& data) {
  for (auto& [column, entries] : indexes_) {
    const int idx = schema_.FindColumn(column);
    if (idx < 0) continue;
    entries[data[static_cast<size_t>(idx)]].insert(key);
  }
}

Status MvccTable::CreateIndex(const std::string& column) {
  const int idx = schema_.FindColumn(column);
  if (idx < 0) {
    return Status::InvalidArgument("no column '" + column + "' in table '" +
                                   name_ + "'");
  }
  std::unique_lock<std::shared_mutex> latch(latch_);
  if (indexes_.count(column)) {
    return Status::AlreadyExists("index on '" + name_ + "." + column +
                                 "' already exists");
  }
  auto& entries = indexes_[column];
  // Backfill from every version so the index stays conservative.
  for (const auto& [key, head] : rows_) {
    for (auto v = head; v != nullptr; v = v->prev) {
      if (!v->deleted) {
        entries[v->data[static_cast<size_t>(idx)]].insert(key);
      }
    }
  }
  return Status::OK();
}

bool MvccTable::HasIndex(const std::string& column) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  return indexes_.count(column) > 0;
}

std::vector<sql::Key> MvccTable::IndexLookup(const std::string& column,
                                             const sql::Value& value) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  auto it = indexes_.find(column);
  if (it == indexes_.end()) return {};
  auto entry = it->second.find(value);
  if (entry == it->second.end()) return {};
  return std::vector<sql::Key>(entry->second.begin(), entry->second.end());
}

std::vector<std::string> MvccTable::IndexedColumns() const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  std::vector<std::string> out;
  for (const auto& [column, entries] : indexes_) out.push_back(column);
  return out;
}

size_t MvccTable::Vacuum(Timestamp horizon) {
  std::unique_lock<std::shared_mutex> latch(latch_);
  size_t freed = 0;
  std::vector<sql::Key> dead_keys;
  for (auto& [key, head] : rows_) {
    // Find the newest version visible at the horizon; everything older
    // can never be read again.
    std::shared_ptr<const Version> v = head;
    while (v != nullptr && v->commit_ts > horizon) {
      v = v->prev;
    }
    if (v == nullptr) continue;  // nothing at or below the horizon
    // v is the horizon version: cut the chain below it.
    for (auto old = v->prev; old != nullptr; old = old->prev) ++freed;
    // const_cast is confined to vacuum: versions are immutable to
    // readers, and we only sever the tail under the exclusive latch.
    const_cast<Version*>(v.get())->prev = nullptr;
    if (v == head && v->deleted) dead_keys.push_back(key);
  }
  for (const auto& key : dead_keys) {
    rows_.erase(key);
    ++freed;
  }
  // Rebuild indexes from the surviving versions (simple and correct; a
  // production system would prune incrementally).
  for (auto& [column, entries] : indexes_) {
    const int idx = schema_.FindColumn(column);
    entries.clear();
    for (const auto& [key, head] : rows_) {
      for (auto v = head; v != nullptr; v = v->prev) {
        if (!v->deleted) {
          entries[v->data[static_cast<size_t>(idx)]].insert(key);
        }
      }
    }
  }
  return freed;
}

void MvccTable::ScanVisible(
    Timestamp snapshot,
    const std::function<void(const sql::Key&, const sql::Row&)>& fn) const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  for (const auto& [key, head] : rows_) {
    for (auto v = head; v != nullptr; v = v->prev) {
      if (v->commit_ts <= snapshot) {
        if (!v->deleted) fn(key, v->data);
        break;
      }
    }
  }
}

size_t MvccTable::KeyCount() const {
  std::shared_lock<std::shared_mutex> latch(latch_);
  return rows_.size();
}

}  // namespace sirep::storage
