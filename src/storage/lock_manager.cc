#include "storage/lock_manager.h"

#include <algorithm>

namespace sirep::storage {

Status LockManager::Acquire(TxnId txn, const TupleId& tuple) {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t wait_start_ns = 0;
  auto record_wait = [&] {
    if (wait_start_ns != 0 && wait_hist_ != nullptr) {
      wait_hist_->Observe(
          obs::NanosToUs(obs::MonotonicNanos() - wait_start_ns));
    }
  };
  while (true) {
    if (poisoned_.count(txn)) {
      // Consume the poison: the transaction observed its cancellation.
      poisoned_.erase(txn);
      waits_for_.erase(txn);
      record_wait();
      return Status::Aborted("transaction poisoned while locking " +
                             tuple.ToString());
    }
    auto it = holders_.find(tuple);
    if (it == holders_.end()) {
      holders_[tuple] = txn;
      held_[txn].push_back(tuple);
      waits_for_.erase(txn);
      record_wait();
      return Status::OK();
    }
    if (it->second == txn) {
      waits_for_.erase(txn);
      record_wait();
      return Status::OK();  // re-entrant
    }
    const TxnId holder = it->second;
    // Would waiting close a cycle? Each transaction waits for at most one
    // other, so following edges from the holder either terminates or
    // reaches us.
    if (ReachesLocked(holder, txn)) {
      ++deadlock_count_;
      waits_for_.erase(txn);
      record_wait();
      return Status::Deadlock("would deadlock on " + tuple.ToString() +
                              " held by txn " + std::to_string(holder));
    }
    waits_for_[txn] = holder;
    if (wait_start_ns == 0) wait_start_ns = obs::MonotonicNanos();
    cv_.wait(lock);
    waits_for_.erase(txn);
    // Re-check everything: the lock may have been grabbed by a third
    // party, the holder may have changed, or we may have been poisoned.
  }
}

void LockManager::SetWaitHistogram(obs::Histogram* hist) {
  std::lock_guard<std::mutex> lock(mu_);
  wait_hist_ = hist;
}

bool LockManager::ReachesLocked(TxnId from, TxnId target) const {
  TxnId cur = from;
  // The functional wait-for graph has at most |txns| edges; bound the
  // chase defensively anyway.
  for (size_t steps = 0; steps < waits_for_.size() + 1; ++steps) {
    if (cur == target) return true;
    auto it = waits_for_.find(cur);
    if (it == waits_for_.end()) return false;
    cur = it->second;
  }
  return cur == target;
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(txn);
  if (it != held_.end()) {
    for (const auto& tuple : it->second) {
      auto h = holders_.find(tuple);
      if (h != holders_.end() && h->second == txn) holders_.erase(h);
    }
    held_.erase(it);
  }
  // Clear a pending poison only if the transaction is not blocked inside
  // Acquire right now — a blocked transaction must still observe it (the
  // waiter consumes and erases the flag itself).
  if (waits_for_.find(txn) == waits_for_.end()) {
    poisoned_.erase(txn);
  }
  cv_.notify_all();
}

void LockManager::Poison(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  poisoned_.insert(txn);
  cv_.notify_all();
}

TxnId LockManager::HolderOf(const TupleId& tuple) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = holders_.find(tuple);
  return it == holders_.end() ? kInvalidTxnId : it->second;
}

size_t LockManager::LocksHeld(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

void LockManager::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // Anyone still blocked belongs to the dead incarnation: poison them so
  // they observe kAborted instead of acquiring a ghost lock.
  for (const auto& [txn, holder] : waits_for_) poisoned_.insert(txn);
  holders_.clear();
  held_.clear();
  cv_.notify_all();
}

uint64_t LockManager::deadlock_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deadlock_count_;
}

}  // namespace sirep::storage
