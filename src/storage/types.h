#ifndef SIREP_STORAGE_TYPES_H_
#define SIREP_STORAGE_TYPES_H_

#include <cstdint>
#include <string>

#include "sql/value.h"

namespace sirep::storage {

/// Database-local transaction identifier.
using TxnId = uint64_t;
constexpr TxnId kInvalidTxnId = 0;

/// Monotone commit timestamp; doubles as the snapshot timestamp (a
/// snapshot sees every version with commit_ts <= snapshot_ts).
using Timestamp = uint64_t;

/// Identifies a tuple across the database: (table, primary key). This is
/// the granularity of locks, of version chains, and of writeset entries —
/// the paper's "record level" concurrency control.
struct TupleId {
  std::string table;
  sql::Key key;

  bool operator==(const TupleId& other) const {
    return table == other.table && key == other.key;
  }
  bool operator<(const TupleId& other) const {
    if (table != other.table) return table < other.table;
    return key < other.key;
  }
  std::string ToString() const { return table + key.ToString(); }
};

struct TupleIdHash {
  size_t operator()(const TupleId& id) const {
    return std::hash<std::string>()(id.table) * 1000003 ^ id.key.Hash();
  }
};

}  // namespace sirep::storage

#endif  // SIREP_STORAGE_TYPES_H_
