#ifndef SIREP_STORAGE_WRITE_SET_H_
#define SIREP_STORAGE_WRITE_SET_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sql/value.h"
#include "storage/types.h"

namespace sirep::storage {

enum class WriteOp { kInsert, kUpdate, kDelete };

const char* WriteOpToString(WriteOp op);

/// One modified tuple: the after-image plus enough identity to apply it at
/// a remote replica without re-executing SQL. `after` is empty for deletes.
struct WriteSetEntry {
  TupleId tuple;
  WriteOp op = WriteOp::kUpdate;
  sql::Row after;
};

/// The set of tuples a transaction modified, in first-modification order.
/// This is what the middleware extracts before commit, validates against
/// other writesets (write/write intersection), multicasts, and applies at
/// remote replicas. Multiple writes to the same tuple are coalesced into
/// the final image.
class WriteSet {
 public:
  /// Records a write, coalescing with an earlier write to the same tuple.
  /// Coalescing rules: insert+update => insert(final image);
  /// insert+delete => entry removed entirely (the tuple never existed
  /// outside the transaction is wrong for re-inserts of committed tuples,
  /// so delete of a previously-inserted tuple keeps a delete entry only if
  /// the insert was against an existing committed tombstone — we keep it
  /// simple and correct by downgrading to delete); update+delete => delete.
  void Record(TupleId tuple, WriteOp op, sql::Row after);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const std::vector<WriteSetEntry>& entries() const { return entries_; }

  bool Contains(const TupleId& tuple) const {
    return index_.count(tuple) > 0;
  }

  /// Looks up the pending after-image for `tuple`; returns nullptr if the
  /// transaction has not written it. Used for read-your-own-writes.
  const WriteSetEntry* Find(const TupleId& tuple) const;

  /// True iff the two writesets touch at least one common tuple — the
  /// write/write conflict test of SI validation.
  bool Intersects(const WriteSet& other) const;

  /// Tables touched by this writeset (used by the table-granularity
  /// baseline protocol for comparison benches).
  std::vector<std::string> Tables() const;

  void Clear();

  std::string ToString() const;

 private:
  std::vector<WriteSetEntry> entries_;
  std::unordered_map<TupleId, size_t, TupleIdHash> index_;
};

/// Binary writeset encoding on the sql/serde.h primitives — what crosses
/// the wire when the GCS runs on a byte-shipping transport:
///
///   u8   version   kWriteSetWireVersion
///   u32  count     number of entries
///   entry * count:
///     string  table
///     Row     key parts
///     u8      op     0=insert 1=update 2=delete
///     Row     after  (empty for deletes)
void EncodeWriteSet(const WriteSet& ws, std::string* out);

/// Decodes into `out` (cleared first), advancing *pos. Fails with
/// kInvalidArgument on truncation, a bad version, or an out-of-range op —
/// never by crashing.
Status DecodeWriteSet(const std::string& in, size_t* pos, WriteSet* out);

inline constexpr uint8_t kWriteSetWireVersion = 1;

}  // namespace sirep::storage

#endif  // SIREP_STORAGE_WRITE_SET_H_
