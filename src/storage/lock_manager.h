#ifndef SIREP_STORAGE_LOCK_MANAGER_H_
#define SIREP_STORAGE_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/types.h"

namespace sirep::storage {

/// Exclusive tuple locks with deadlock detection, mirroring what
/// PostgreSQL does for row updates under snapshot isolation: writers take
/// a row lock for the rest of the transaction; readers never lock.
///
/// Deadlocks can and do arise in SI-Rep between a local transaction and a
/// remote writeset application (paper §4.2, "secondly"); the engine
/// resolves them by aborting the requester that closes the cycle
/// (kDeadlock), which the middleware then retries (remote) or reports
/// (local).
///
/// Thread-safe. Waiting is condvar-based; since each transaction waits for
/// at most one lock at a time, the wait-for graph is a functional graph
/// and cycle detection is a simple pointer chase.
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires the exclusive lock on `tuple` for `txn`, blocking while
  /// another transaction holds it. Re-entrant for the same transaction.
  ///
  /// Returns kDeadlock when waiting would close a cycle in the wait-for
  /// graph (the requester is the victim), or kAborted when the
  /// transaction was marked poisoned (aborted by another thread) while
  /// waiting.
  Status Acquire(TxnId txn, const TupleId& tuple);

  /// Releases every lock held by `txn` and wakes waiters. Called on commit
  /// and on abort.
  void ReleaseAll(TxnId txn);

  /// Marks a transaction so that any current or future Acquire() by it
  /// fails with kAborted and it stops waiting. Used to cancel a blocked
  /// transaction from outside (e.g. the session aborting a deadlocked
  /// peer). Cleared by ReleaseAll.
  void Poison(TxnId txn);

  /// Current holder of `tuple` or kInvalidTxnId. Test/introspection only.
  TxnId HolderOf(const TupleId& tuple) const;

  /// Number of locks held by `txn`. Test/introspection only.
  size_t LocksHeld(TxnId txn) const;

  /// Total deadlock victims so far (statistics).
  uint64_t deadlock_count() const;

  /// Observes the blocked portion of every contended Acquire
  /// (microseconds) into `hist`. Set once before traffic starts.
  void SetWaitHistogram(obs::Histogram* hist);

  /// Drops every lock and wait edge — the lock table of a restarted
  /// database process (in-flight transactions implicitly roll back:
  /// their buffered writes were never installed). Waiters are woken and
  /// poisoned.
  void Reset();

 private:
  /// True if, starting from `from` and following wait-for edges, we reach
  /// `target`. Caller holds mu_.
  bool ReachesLocked(TxnId from, TxnId target) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  obs::Histogram* wait_hist_ = nullptr;
  // tuple -> holding transaction.
  std::unordered_map<TupleId, TxnId, TupleIdHash> holders_;
  // txn -> tuples it holds (for ReleaseAll).
  std::unordered_map<TxnId, std::vector<TupleId>> held_;
  // txn -> the txn whose lock it is waiting for (at most one).
  std::unordered_map<TxnId, TxnId> waits_for_;
  std::unordered_set<TxnId> poisoned_;
  uint64_t deadlock_count_ = 0;
};

}  // namespace sirep::storage

#endif  // SIREP_STORAGE_LOCK_MANAGER_H_
