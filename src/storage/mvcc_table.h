#ifndef SIREP_STORAGE_MVCC_TABLE_H_
#define SIREP_STORAGE_MVCC_TABLE_H_

#include <functional>
#include <map>
#include <set>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/schema.h"
#include "sql/value.h"
#include "storage/types.h"

namespace sirep::storage {

/// One committed version of a tuple. Versions form a chain, newest first.
/// A deleted tuple is represented by a tombstone version.
struct Version {
  Timestamp commit_ts = 0;
  bool deleted = false;
  sql::Row data;
  std::shared_ptr<const Version> prev;
};

/// Multi-version table: primary key -> chain of committed versions.
/// Uncommitted writes never appear here; they live in the writing
/// transaction's buffer until commit installs them.
///
/// Readers are latch-light: a shared lock protects the key map during
/// scans; version chains are immutable once published (installs swap the
/// head pointer under the exclusive latch).
class MvccTable {
 public:
  MvccTable(std::string name, sql::Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const sql::Schema& schema() const { return schema_; }

  /// Newest committed version of `key` visible at `snapshot`, or nullptr
  /// if none (never existed, or created after the snapshot). The returned
  /// version may be a tombstone (deleted == true).
  std::shared_ptr<const Version> ReadVisible(const sql::Key& key,
                                             Timestamp snapshot) const;

  /// Newest committed version regardless of snapshot (for the
  /// first-updater-wins version check), or nullptr.
  std::shared_ptr<const Version> ReadNewest(const sql::Key& key) const;

  /// Installs a new committed version (called at commit time, while the
  /// writer still holds the tuple lock, so no other install races on the
  /// same key). Returns the key's version-chain length after the install
  /// (counted up to a small cap — enough for monitoring), which the
  /// engine feeds into its chain-length histogram to watch vacuum debt.
  size_t Install(const sql::Key& key, Timestamp commit_ts, bool deleted,
                 sql::Row data);

  /// Invokes `fn` for every key's newest version visible at `snapshot`
  /// that is not a tombstone. Row data is handed out as shared_ptr-backed
  /// const refs valid for the callback's duration.
  void ScanVisible(
      Timestamp snapshot,
      const std::function<void(const sql::Key&, const sql::Row&)>& fn) const;

  /// Number of distinct keys ever inserted (incl. tombstoned). Test use.
  size_t KeyCount() const;

  // ---- secondary indexes ----

  /// Creates a single-column, non-unique secondary index and backfills it
  /// from the existing version chains. Index entries are conservative:
  /// they reference every value any version ever had (like a PostgreSQL
  /// index containing entries for dead tuples); readers re-check
  /// visibility and the predicate against the heap. Entries are pruned by
  /// Vacuum.
  Status CreateIndex(const std::string& column);

  /// True if `column` has a secondary index.
  bool HasIndex(const std::string& column) const;

  /// Primary keys whose tuple may currently (or historically) hold
  /// `value` in `column`. Callers must re-check against a visible read.
  std::vector<sql::Key> IndexLookup(const std::string& column,
                                    const sql::Value& value) const;

  /// Indexed column names (introspection).
  std::vector<std::string> IndexedColumns() const;

  /// Drops versions that can no longer be seen by any snapshot at or
  /// after `horizon` (i.e. keeps, per key, the newest version with
  /// commit_ts <= horizon plus everything newer), removes fully-dead
  /// keys' tombstones older than the horizon, and prunes index entries
  /// that no surviving version justifies. Returns the number of versions
  /// freed.
  size_t Vacuum(Timestamp horizon);

 private:
  /// Caller holds latch_ exclusively.
  void IndexInsertLocked(const sql::Key& key, const sql::Row& data);

  std::string name_;
  sql::Schema schema_;
  mutable std::shared_mutex latch_;
  std::map<sql::Key, std::shared_ptr<const Version>> rows_;
  // column -> value -> keys (conservative, multi-version).
  std::map<std::string, std::map<sql::Value, std::set<sql::Key>>> indexes_;
};

}  // namespace sirep::storage

#endif  // SIREP_STORAGE_MVCC_TABLE_H_
