#include "storage/storage_engine.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "common/logging.h"

namespace sirep::storage {

StorageEngine::StorageEngine() {
  c_commits_ = registry_.GetCounter("storage.commits");
  c_aborts_ = registry_.GetCounter("storage.aborts");
  c_ww_conflicts_ = registry_.GetCounter("storage.ww_conflicts");
  c_deadlocks_ = registry_.GetCounter("storage.deadlocks");
  h_wal_append_us_ = registry_.GetLatencyHistogram("storage.wal_append_us");
  h_wal_group_size_ = registry_.GetHistogram("storage.wal_group_size",
                                             obs::LengthBuckets());
  h_version_chain_len_ = registry_.GetHistogram("storage.version_chain_len",
                                                obs::LengthBuckets());
  locks_.SetWaitHistogram(
      registry_.GetLatencyHistogram("storage.lock_wait_us"));
}

Status StorageEngine::CreateTable(const std::string& name,
                                  sql::Schema schema) {
  if (schema.key_indexes().empty()) {
    return Status::InvalidArgument("table '" + name +
                                   "' must have a primary key");
  }
  std::lock_guard<std::mutex> lock(tables_mu_);
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_[name] = std::make_unique<MvccTable>(name, std::move(schema));
  return Status::OK();
}

MvccTable* StorageEngine::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> StorageEngine::TableNames() const {
  std::lock_guard<std::mutex> lock(tables_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

TransactionPtr StorageEngine::Begin() {
  auto txn = std::make_shared<Transaction>();
  txn->id_ = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    txn->snapshot_ = clock_;
    active_snapshots_.insert(txn->snapshot_);
  }
  return txn;
}

void StorageEngine::ReleaseSnapshot(Timestamp snapshot) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  auto it = active_snapshots_.find(snapshot);
  if (it != active_snapshots_.end()) active_snapshots_.erase(it);
}

Status StorageEngine::CheckActive(const TransactionPtr& txn) const {
  if (txn == nullptr) return Status::InvalidArgument("null transaction");
  switch (txn->state()) {
    case TxnState::kActive:
      return Status::OK();
    case TxnState::kCommitted:
      return Status::InvalidArgument("transaction already committed");
    case TxnState::kAborted:
      return Status::Aborted("transaction is aborted");
  }
  return Status::Internal("bad transaction state");
}

Status StorageEngine::AbortWith(const TransactionPtr& txn, Status status) {
  Abort(txn);
  return status;
}

Status StorageEngine::Commit(const TransactionPtr& txn) {
  uint64_t ticket = 0;
  SIREP_RETURN_IF_ERROR(Commit(txn, &ticket));
  return WaitWalDurable(ticket);
}

Status StorageEngine::Commit(const TransactionPtr& txn,
                             uint64_t* durability_ticket) {
  SIREP_RETURN_IF_ERROR(CheckActive(txn));
  if (txn->writes_.empty()) {
    txn->state_.store(TxnState::kCommitted, std::memory_order_release);
    locks_.ReleaseAll(txn->id());  // releases nothing, clears poison flag
    ReleaseSnapshot(txn->snapshot());
    c_commits_->Increment();
    return Status::OK();
  }
  uint64_t wal_ticket = 0;
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    const Timestamp commit_ts = ++clock_;
    // Write-ahead: the log record lands (group mode: is buffered, in
    // commit-timestamp order) before the in-memory install becomes
    // visible (both under commit_mu_, so readers never see a commit the
    // log does not have a record for).
    if (wal_ != nullptr) {
      obs::ScopedLatency wal_timer(h_wal_append_us_);
      if (wal_group_commit_) {
        auto ticket = wal_->AppendCommitBuffered(commit_ts, txn->writes_);
        SIREP_RETURN_IF_ERROR(ticket.status());
        wal_ticket = ticket.value();
      } else {
        SIREP_RETURN_IF_ERROR(wal_->AppendCommit(commit_ts, txn->writes_));
      }
    }
    for (const auto& entry : txn->writes_.entries()) {
      MvccTable* table = GetTable(entry.tuple.table);
      if (table == nullptr) {
        // Cannot happen through the public API; fail loudly if it does.
        return Status::Internal("commit references missing table " +
                                entry.tuple.table);
      }
      const size_t chain_len =
          table->Install(entry.tuple.key, commit_ts,
                         entry.op == WriteOp::kDelete, entry.after);
      h_version_chain_len_->Observe(static_cast<double>(chain_len));
    }
  }
  txn->state_.store(TxnState::kCommitted, std::memory_order_release);
  locks_.ReleaseAll(txn->id());
  ReleaseSnapshot(txn->snapshot());
  c_commits_->Increment();
  // Group commit: the caller waits via WaitWalDurable(*durability_ticket)
  // — crucially *outside* whatever lock wrapped this commit (the
  // middleware calls Commit inside HoleTracker::RecordCommit's mutex,
  // which must not be held across a flush wait or concurrent committers
  // could never pile into one group). The versions above are already
  // visible; on a flush failure the in-memory commit stands and the
  // error reports the durability loss.
  *durability_ticket = wal_ticket;
  return Status::OK();
}

Status StorageEngine::WaitWalDurable(uint64_t ticket) {
  if (ticket == 0 || wal_ == nullptr) return Status::OK();
  return wal_->WaitDurable(ticket);
}

void StorageEngine::Abort(const TransactionPtr& txn) {
  if (txn == nullptr) return;
  TxnState expected = TxnState::kActive;
  if (!txn->state_.compare_exchange_strong(expected, TxnState::kAborted,
                                           std::memory_order_acq_rel)) {
    return;  // already terminated
  }
  txn->writes_.Clear();
  // If the transaction's thread is blocked waiting for a tuple lock (an
  // external abort, e.g. the client giving up on a transaction stuck in
  // a hidden deadlock), wake it with kAborted.
  locks_.Poison(txn->id());
  locks_.ReleaseAll(txn->id());
  ReleaseSnapshot(txn->snapshot());
  c_aborts_->Increment();
}

Result<std::optional<sql::Row>> StorageEngine::Read(
    const TransactionPtr& txn, const std::string& table,
    const sql::Key& key) const {
  SIREP_RETURN_IF_ERROR(CheckActive(txn));
  MvccTable* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  // Read-your-own-writes.
  const WriteSetEntry* own = txn->writes().Find(TupleId{table, key});
  if (own != nullptr) {
    if (own->op == WriteOp::kDelete) return std::optional<sql::Row>();
    return std::optional<sql::Row>(own->after);
  }
  auto version = t->ReadVisible(key, txn->snapshot());
  if (version == nullptr || version->deleted) {
    return std::optional<sql::Row>();
  }
  return std::optional<sql::Row>(version->data);
}

Status StorageEngine::Scan(
    const TransactionPtr& txn, const std::string& table,
    const std::function<void(const sql::Key&, const sql::Row&)>& fn) const {
  SIREP_RETURN_IF_ERROR(CheckActive(txn));
  MvccTable* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");

  // Overlay the transaction's own buffered writes on the snapshot view.
  std::map<sql::Key, const WriteSetEntry*> own;
  for (const auto& entry : txn->writes().entries()) {
    if (entry.tuple.table == table) own[entry.tuple.key] = &entry;
  }
  if (own.empty()) {
    t->ScanVisible(txn->snapshot(), fn);
    return Status::OK();
  }
  // Merge: collect the snapshot view, then apply the overlay in key order.
  std::map<sql::Key, sql::Row> merged;
  t->ScanVisible(txn->snapshot(),
                 [&](const sql::Key& key, const sql::Row& row) {
                   merged[key] = row;
                 });
  for (const auto& [key, entry] : own) {
    if (entry->op == WriteOp::kDelete) {
      merged.erase(key);
    } else {
      merged[key] = entry->after;
    }
  }
  for (const auto& [key, row] : merged) fn(key, row);
  return Status::OK();
}

Status StorageEngine::LockAndCheck(const TransactionPtr& txn,
                                   const TupleId& tuple) {
  Status lock_status = locks_.Acquire(txn->id(), tuple);
  if (!lock_status.ok()) {
    if (lock_status.code() == StatusCode::kDeadlock) {
      c_deadlocks_->Increment();
    }
    return lock_status;
  }
  // First-updater-wins version check (paper §4): if the newest committed
  // version postdates our snapshot, a concurrent transaction committed a
  // write to this tuple — abort.
  MvccTable* t = GetTable(tuple.table);
  auto newest = t->ReadNewest(tuple.key);
  if (newest != nullptr && newest->commit_ts > txn->snapshot()) {
    c_ww_conflicts_->Increment();
    return Status::Conflict("concurrent committed write to " +
                            tuple.ToString());
  }
  return Status::OK();
}

Status StorageEngine::Insert(const TransactionPtr& txn,
                             const std::string& table, sql::Row row) {
  SIREP_RETURN_IF_ERROR(CheckActive(txn));
  MvccTable* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  SIREP_RETURN_IF_ERROR(t->schema().ValidateRow(row));
  const sql::Key key = t->schema().KeyOf(row);
  const TupleId tuple{table, key};

  Status st = LockAndCheck(txn, tuple);
  if (!st.ok()) return AbortWith(txn, std::move(st));

  // Uniqueness: a live tuple visible at our snapshot (or buffered by us).
  const WriteSetEntry* own = txn->writes().Find(tuple);
  if (own != nullptr && own->op != WriteOp::kDelete) {
    return AbortWith(txn, Status::AlreadyExists("duplicate key " +
                                                key.ToString() + " in '" +
                                                table + "'"));
  }
  if (own == nullptr) {
    auto visible = t->ReadVisible(key, txn->snapshot());
    if (visible != nullptr && !visible->deleted) {
      return AbortWith(txn, Status::AlreadyExists("duplicate key " +
                                                  key.ToString() + " in '" +
                                                  table + "'"));
    }
  }
  txn->writes_.Record(tuple, WriteOp::kInsert, std::move(row));
  return Status::OK();
}

Status StorageEngine::Update(const TransactionPtr& txn,
                             const std::string& table, sql::Row new_row) {
  SIREP_RETURN_IF_ERROR(CheckActive(txn));
  MvccTable* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  SIREP_RETURN_IF_ERROR(t->schema().ValidateRow(new_row));
  const sql::Key key = t->schema().KeyOf(new_row);
  const TupleId tuple{table, key};

  // Visibility first (cheap, no lock): updating an invisible tuple is "0
  // rows" — not an abort.
  const WriteSetEntry* own = txn->writes().Find(tuple);
  if (own != nullptr) {
    if (own->op == WriteOp::kDelete) {
      return Status::NotFound("tuple " + key.ToString() + " not visible");
    }
  } else {
    auto visible = t->ReadVisible(key, txn->snapshot());
    if (visible == nullptr || visible->deleted) {
      return Status::NotFound("tuple " + key.ToString() + " not visible");
    }
  }

  Status st = LockAndCheck(txn, tuple);
  if (!st.ok()) return AbortWith(txn, std::move(st));

  txn->writes_.Record(tuple, WriteOp::kUpdate, std::move(new_row));
  return Status::OK();
}

Status StorageEngine::Delete(const TransactionPtr& txn,
                             const std::string& table, const sql::Key& key) {
  SIREP_RETURN_IF_ERROR(CheckActive(txn));
  MvccTable* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  const TupleId tuple{table, key};

  const WriteSetEntry* own = txn->writes().Find(tuple);
  if (own != nullptr) {
    if (own->op == WriteOp::kDelete) {
      return Status::NotFound("tuple " + key.ToString() + " not visible");
    }
  } else {
    auto visible = t->ReadVisible(key, txn->snapshot());
    if (visible == nullptr || visible->deleted) {
      return Status::NotFound("tuple " + key.ToString() + " not visible");
    }
  }

  Status st = LockAndCheck(txn, tuple);
  if (!st.ok()) return AbortWith(txn, std::move(st));

  txn->writes_.Record(tuple, WriteOp::kDelete, {});
  return Status::OK();
}

std::shared_ptr<const WriteSet> StorageEngine::ExtractWriteSet(
    const TransactionPtr& txn) const {
  return std::make_shared<const WriteSet>(txn->writes());
}

Status StorageEngine::ApplyWriteSet(const TransactionPtr& txn,
                                    const WriteSet& ws) {
  SIREP_RETURN_IF_ERROR(CheckActive(txn));
  for (const auto& entry : ws.entries()) {
    MvccTable* t = GetTable(entry.tuple.table);
    if (t == nullptr) {
      return AbortWith(txn, Status::NotFound("no table '" +
                                             entry.tuple.table + "'"));
    }
    Status st = LockAndCheck(txn, entry.tuple);
    if (!st.ok()) return AbortWith(txn, std::move(st));
    txn->writes_.Record(entry.tuple, entry.op, entry.after);
  }
  return Status::OK();
}

Timestamp StorageEngine::last_committed() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return clock_;
}

Status StorageEngine::CreateIndex(const std::string& table,
                                  const std::string& column) {
  MvccTable* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  return t->CreateIndex(column);
}

Status StorageEngine::LookupByIndex(
    const TransactionPtr& txn, const std::string& table,
    const std::string& column, const sql::Value& value,
    const std::function<void(const sql::Key&, const sql::Row&)>& fn) const {
  SIREP_RETURN_IF_ERROR(CheckActive(txn));
  MvccTable* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  if (!t->HasIndex(column)) {
    return Status::NotFound("no index on '" + table + "." + column + "'");
  }
  const int col = t->schema().FindColumn(column);
  // Candidates from the index, re-checked through a visible point read
  // (which also sees the transaction's own writes).
  std::map<sql::Key, sql::Row> matched;
  for (const auto& key : t->IndexLookup(column, value)) {
    auto row = Read(txn, table, key);
    if (!row.ok()) return row.status();
    if (!row.value().has_value()) continue;
    if ((*row.value())[static_cast<size_t>(col)].Compare(value) != 0) {
      continue;  // stale index entry for an older version
    }
    matched.emplace(key, *std::move(row).value());
  }
  // The transaction's own buffered writes are not indexed: merge them.
  for (const auto& entry : txn->writes().entries()) {
    if (entry.tuple.table != table) continue;
    if (entry.op == WriteOp::kDelete) {
      matched.erase(entry.tuple.key);
    } else if (entry.after[static_cast<size_t>(col)].Compare(value) == 0) {
      matched[entry.tuple.key] = entry.after;
    } else {
      matched.erase(entry.tuple.key);  // own write moved it off this value
    }
  }
  for (const auto& [key, row] : matched) fn(key, row);
  return Status::OK();
}

size_t StorageEngine::Vacuum() {
  const Timestamp horizon = OldestActiveSnapshot();
  size_t freed = 0;
  std::vector<std::string> names = TableNames();
  for (const auto& name : names) {
    MvccTable* t = GetTable(name);
    if (t != nullptr) freed += t->Vacuum(horizon);
  }
  return freed;
}

Status StorageEngine::EnableWal(const std::string& path) {
  const char* env = std::getenv("SIREP_WAL_GROUP_COMMIT");
  return EnableWal(path, env != nullptr && *env != '\0' &&
                             std::string(env) != "0");
}

Status StorageEngine::EnableWal(const std::string& path, bool group_commit) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (wal_ != nullptr) return Status::AlreadyExists("WAL already enabled");
  auto wal = std::make_unique<Wal>(path);
  SIREP_RETURN_IF_ERROR(wal->Open());
  wal->SetGroupSizeHistogram(h_wal_group_size_);
  wal_ = std::move(wal);
  wal_group_commit_ = group_commit;
  return Status::OK();
}

Status StorageEngine::RecoverFromWal(const std::string& path) {
  Wal wal(path);
  Timestamp max_ts = 0;
  Status st = wal.Replay([&](Timestamp commit_ts,
                             const WriteSet& ws) -> Status {
    for (const auto& entry : ws.entries()) {
      MvccTable* table = GetTable(entry.tuple.table);
      if (table == nullptr) {
        return Status::NotFound("WAL references missing table '" +
                                entry.tuple.table +
                                "' (create the schema before recovery)");
      }
      const size_t chain_len =
          table->Install(entry.tuple.key, commit_ts,
                         entry.op == WriteOp::kDelete, entry.after);
      h_version_chain_len_->Observe(static_cast<double>(chain_len));
    }
    if (commit_ts > max_ts) max_ts = commit_ts;
    return Status::OK();
  });
  SIREP_RETURN_IF_ERROR(st);
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (max_ts > clock_) clock_ = max_ts;
  return Status::OK();
}

void StorageEngine::SimulateRestart() {
  locks_.Reset();
  std::lock_guard<std::mutex> lock(commit_mu_);
  active_snapshots_.clear();
}

Timestamp StorageEngine::OldestActiveSnapshot() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (active_snapshots_.empty()) return clock_;
  return *active_snapshots_.begin();
}

EngineStats StorageEngine::stats() const {
  EngineStats out;
  out.commits = c_commits_->Value();
  out.aborts = c_aborts_->Value();
  out.ww_conflicts = c_ww_conflicts_->Value();
  out.deadlocks = c_deadlocks_->Value();
  return out;
}

}  // namespace sirep::storage
