#include "storage/wal.h"

#include <cstdio>

#include "common/logging.h"
#include "sql/serde.h"

namespace sirep::storage {

namespace {
constexpr uint32_t kRecordMagic = 0x53495245;  // "SIRE"
}  // namespace

Wal::~Wal() { Close(); }

Status Wal::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return Status::OK();
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot open WAL at " + path_);
  }
  return Status::OK();
}

void Wal::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status Wal::AppendCommit(Timestamp commit_ts, const WriteSet& ws) {
  std::string record;
  sql::EncodeU32(kRecordMagic, &record);
  sql::EncodeU64(commit_ts, &record);
  sql::EncodeU32(static_cast<uint32_t>(ws.size()), &record);
  for (const auto& entry : ws.entries()) {
    sql::EncodeString(entry.tuple.table, &record);
    record.push_back(static_cast<char>(entry.op));
    sql::EncodeRow(entry.tuple.key.parts, &record);
    sql::EncodeRow(entry.after, &record);
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::Internal("WAL not open");
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::Internal("short WAL write");
  }
  std::fflush(file_);
  return Status::OK();
}

Status Wal::Replay(
    const std::function<Status(Timestamp, const WriteSet&)>& fn) const {
  std::string contents;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::FILE* in = std::fopen(path_.c_str(), "rb");
    if (in == nullptr) return Status::OK();  // no log yet
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      contents.append(buf, n);
    }
    std::fclose(in);
  }

  size_t pos = 0;
  while (pos < contents.size()) {
    const size_t record_start = pos;
    uint32_t magic = 0;
    uint64_t commit_ts = 0;
    uint32_t count = 0;
    WriteSet ws;
    auto read_record = [&]() -> Status {
      SIREP_RETURN_IF_ERROR(sql::DecodeU32(contents, &pos, &magic));
      if (magic != kRecordMagic) {
        return Status::InvalidArgument("bad WAL record magic");
      }
      SIREP_RETURN_IF_ERROR(sql::DecodeU64(contents, &pos, &commit_ts));
      SIREP_RETURN_IF_ERROR(sql::DecodeU32(contents, &pos, &count));
      for (uint32_t i = 0; i < count; ++i) {
        std::string table;
        SIREP_RETURN_IF_ERROR(sql::DecodeString(contents, &pos, &table));
        if (pos >= contents.size()) {
          return Status::InvalidArgument("truncated op byte");
        }
        const auto op = static_cast<WriteOp>(contents[pos++]);
        sql::Row key_parts, after;
        SIREP_RETURN_IF_ERROR(sql::DecodeRow(contents, &pos, &key_parts));
        SIREP_RETURN_IF_ERROR(sql::DecodeRow(contents, &pos, &after));
        ws.Record({std::move(table), sql::Key{std::move(key_parts)}}, op,
                  std::move(after));
      }
      return Status::OK();
    };
    Status st = read_record();
    if (!st.ok()) {
      // Torn tail from a crash mid-append: everything before it is valid.
      SIREP_WLOG << "WAL " << path_ << ": dropping torn tail at byte "
                 << record_start << " (" << st.ToString() << ")";
      return Status::OK();
    }
    SIREP_RETURN_IF_ERROR(fn(commit_ts, ws));
  }
  return Status::OK();
}

Status Wal::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::FILE* out = std::fopen(path_.c_str(), "wb");
  if (out == nullptr) return Status::Internal("cannot truncate WAL");
  std::fclose(out);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) return Status::Internal("cannot reopen WAL");
  return Status::OK();
}

}  // namespace sirep::storage
