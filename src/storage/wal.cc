#include "storage/wal.h"

#include <unistd.h>

#include <cstdio>

#include "common/failpoint.h"
#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "sql/serde.h"

namespace sirep::storage {

namespace {
constexpr uint32_t kRecordMagic = 0x53495245;  // "SIRE"

/// Parses one record at `*pos`, advancing it past the record. Returns a
/// non-OK status (without a defined `*pos`) on a truncated or corrupt
/// record. `ws` may be null to scan without materializing.
Status ParseRecord(const std::string& contents, size_t* pos,
                   Timestamp* commit_ts, WriteSet* ws) {
  uint32_t magic = 0;
  SIREP_RETURN_IF_ERROR(sql::DecodeU32(contents, pos, &magic));
  if (magic != kRecordMagic) {
    return Status::InvalidArgument("bad WAL record magic");
  }
  SIREP_RETURN_IF_ERROR(sql::DecodeU64(contents, pos, commit_ts));
  uint32_t count = 0;
  SIREP_RETURN_IF_ERROR(sql::DecodeU32(contents, pos, &count));
  for (uint32_t i = 0; i < count; ++i) {
    std::string table;
    SIREP_RETURN_IF_ERROR(sql::DecodeString(contents, pos, &table));
    if (*pos >= contents.size()) {
      return Status::InvalidArgument("truncated op byte");
    }
    const auto op = static_cast<WriteOp>(contents[(*pos)++]);
    sql::Row key_parts, after;
    SIREP_RETURN_IF_ERROR(sql::DecodeRow(contents, pos, &key_parts));
    SIREP_RETURN_IF_ERROR(sql::DecodeRow(contents, pos, &after));
    if (ws != nullptr) {
      ws->Record({std::move(table), sql::Key{std::move(key_parts)}}, op,
                 std::move(after));
    }
  }
  return Status::OK();
}

/// Reads the whole file at `path` into `contents`. Missing file => empty.
Status Slurp(const std::string& path, std::string* contents) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return Status::OK();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    contents->append(buf, n);
  }
  std::fclose(in);
  return Status::OK();
}

/// Byte length of the longest prefix of `contents` made of complete,
/// well-formed records.
size_t ValidPrefix(const std::string& contents) {
  size_t pos = 0;
  while (pos < contents.size()) {
    size_t next = pos;
    Timestamp ts = 0;
    if (!ParseRecord(contents, &next, &ts, nullptr).ok()) return pos;
    pos = next;
  }
  return pos;
}

/// Last path components for flight-recorder details (the ring keeps 48
/// bytes per event; the tail of a path identifies the replica, the
/// head is a shared temp dir).
std::string PathTail(const std::string& path) {
  constexpr size_t kKeep = obs::FlightRecorder::kDetailBytes - 8;
  return path.size() > kKeep ? path.substr(path.size() - kKeep) : path;
}

}  // namespace

Wal::~Wal() { Close(); }

Status Wal::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return Status::OK();
  SIREP_FAILPOINT("wal.open");
  // Truncate-and-recover: if a crash (or an injected torn append) left a
  // partial record at the tail, cut it off now. Appending behind garbage
  // would make every later record unreadable — the valid prefix parser
  // stops at the first bad byte.
  std::string contents;
  SIREP_RETURN_IF_ERROR(Slurp(path_, &contents));
  const size_t valid = ValidPrefix(contents);
  if (valid < contents.size()) {
    SIREP_WLOG << "WAL " << path_ << ": truncating torn tail ("
               << contents.size() - valid << " bytes at offset " << valid
               << ")";
    if (::truncate(path_.c_str(), static_cast<off_t>(valid)) != 0) {
      return Status::Internal("cannot truncate torn WAL tail at " + path_);
    }
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kWalTruncate, 0, valid,
        contents.size() - valid, PathTail(path_));
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot open WAL at " + path_);
  }
  wedged_ = false;
  // Unflushed buffered records predate the recovery scan and are gone —
  // releasing their tickets keeps any straggling WaitDurable from
  // leading a flush of a buffer that no longer exists.
  pending_.clear();
  pending_count_ = 0;
  durable_ticket_ = next_ticket_;
  flush_cv_.notify_all();
  return Status::OK();
}

void Wal::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool Wal::wedged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wedged_;
}

std::string Wal::EncodeRecord(Timestamp commit_ts, const WriteSet& ws) {
  std::string record;
  sql::EncodeU32(kRecordMagic, &record);
  sql::EncodeU64(commit_ts, &record);
  sql::EncodeU32(static_cast<uint32_t>(ws.size()), &record);
  for (const auto& entry : ws.entries()) {
    sql::EncodeString(entry.tuple.table, &record);
    record.push_back(static_cast<char>(entry.op));
    sql::EncodeRow(entry.tuple.key.parts, &record);
    sql::EncodeRow(entry.after, &record);
  }
  return record;
}

Status Wal::WriteAndFlush(std::FILE* file, const std::string& batch,
                          bool* tail_intact, bool* data_written) {
  *tail_intact = true;
  *data_written = false;
  SIREP_FAILPOINT("wal.append");  // fires before any bytes: tail intact
  const auto torn = SIREP_FAILPOINT_HIT("wal.append.torn");
  if (torn.fired) {
    // Write a real torn tail: a prefix of the batch reaches the OS, the
    // rest never does (the process "crashed" mid-write).
    size_t keep = batch.size() / 2;
    if (torn.arg > 0 && static_cast<size_t>(torn.arg) < batch.size()) {
      keep = static_cast<size_t>(torn.arg);
    }
    std::fwrite(batch.data(), 1, keep, file);
    std::fflush(file);
    *tail_intact = false;
    return Status::Internal("injected torn WAL write (" +
                            std::to_string(keep) + "/" +
                            std::to_string(batch.size()) + " bytes)");
  }
  if (std::fwrite(batch.data(), 1, batch.size(), file) != batch.size()) {
    *tail_intact = false;
    return Status::Internal("short WAL write");
  }
  std::fflush(file);
  *data_written = true;
  SIREP_FAILPOINT("wal.fsync");  // fires after a complete, flushed record
  return Status::OK();
}

Status Wal::AppendCommit(Timestamp commit_ts, const WriteSet& ws) {
  const std::string record = EncodeRecord(commit_ts, ws);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::Internal("WAL not open");
  if (wedged_) {
    return Status::Internal(
        "WAL wedged after a failed append; reopen or truncate to recover");
  }
  bool tail_intact = true, data_written = false;
  Status st = WriteAndFlush(file_, record, &tail_intact, &data_written);
  if (!tail_intact) wedged_ = true;
  return st;
}

Result<uint64_t> Wal::AppendCommitBuffered(Timestamp commit_ts,
                                           const WriteSet& ws) {
  std::string record = EncodeRecord(commit_ts, ws);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::Internal("WAL not open");
  if (wedged_) {
    return Status::Internal(
        "WAL wedged after a failed append; reopen or truncate to recover");
  }
  pending_ += record;
  ++pending_count_;
  return ++next_ticket_;
}

Status Wal::WaitDurable(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  while (durable_ticket_ < ticket) {
    if (wedged_) {
      return Status::Internal(
          "WAL wedged during a group flush; reopen or truncate to recover");
    }
    if (!flush_in_progress_) {
      // Become the flush leader: take the whole pending buffer — a
      // commit_ts-ordered prefix of the unflushed records — and write it
      // in one shot with mu_ released, so committers keep buffering
      // (and the engine's commit critical section keeps turning) behind
      // us. flush_in_progress_ is the file-ownership token while
      // unlocked: no second flush can start, and group mode never calls
      // the immediate AppendCommit concurrently.
      flush_in_progress_ = true;
      std::string batch;
      batch.swap(pending_);
      const size_t batch_records = pending_count_;
      pending_count_ = 0;
      const uint64_t batch_last = next_ticket_;
      std::FILE* const file = file_;
      lock.unlock();
      bool tail_intact = true, data_written = false;
      const Status st =
          WriteAndFlush(file, batch, &tail_intact, &data_written);
      lock.lock();
      flush_in_progress_ = false;
      if (st.ok() || data_written) {
        // Even on a post-flush error (injected fsync failure) the whole
        // batch reached the file with a well-formed tail: the records
        // are replayable, so the group counts as durable for waiters.
        durable_ticket_ = batch_last;
        if (group_size_hist_ != nullptr && batch_records > 0) {
          group_size_hist_->Observe(static_cast<double>(batch_records));
        }
      } else if (tail_intact) {
        // Nothing reached the file and the tail is still well-formed:
        // put the batch back at the front of the pending buffer (it
        // still precedes anything buffered while we were unlocked) so
        // the next flush leader retries it. The leader's own commit
        // reports the error; its record may still become durable later.
        pending_.insert(0, batch);
        pending_count_ += batch_records;
      } else {
        wedged_ = true;
      }
      flush_cv_.notify_all();
      if (!st.ok()) return st;
    } else {
      flush_cv_.wait(lock);
    }
  }
  return Status::OK();
}

void Wal::SetGroupSizeHistogram(obs::Histogram* hist) {
  std::lock_guard<std::mutex> lock(mu_);
  group_size_hist_ = hist;
}

Status Wal::Replay(
    const std::function<Status(Timestamp, const WriteSet&)>& fn) const {
  SIREP_FAILPOINT("wal.replay");
  std::string contents;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SIREP_RETURN_IF_ERROR(Slurp(path_, &contents));
  }

  size_t pos = 0;
  while (pos < contents.size()) {
    const size_t record_start = pos;
    Timestamp commit_ts = 0;
    WriteSet ws;
    Status st = ParseRecord(contents, &pos, &commit_ts, &ws);
    if (!st.ok()) {
      // Torn tail from a crash mid-append: everything before it is valid.
      SIREP_WLOG << "WAL " << path_ << ": dropping torn tail at byte "
                 << record_start << " (" << st.ToString() << ")";
      return Status::OK();
    }
    SIREP_RETURN_IF_ERROR(fn(commit_ts, ws));
  }
  return Status::OK();
}

Status Wal::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t dropped = 0;
  if (file_ != nullptr) {
    const long at = std::ftell(file_);
    if (at > 0) dropped = static_cast<uint64_t>(at);
    std::fclose(file_);
    file_ = nullptr;
  }
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kWalTruncate,
                                       0, 0, dropped, PathTail(path_));
  std::FILE* out = std::fopen(path_.c_str(), "wb");
  if (out == nullptr) return Status::Internal("cannot truncate WAL");
  std::fclose(out);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) return Status::Internal("cannot reopen WAL");
  wedged_ = false;
  pending_.clear();
  pending_count_ = 0;
  durable_ticket_ = next_ticket_;
  flush_cv_.notify_all();
  return Status::OK();
}

}  // namespace sirep::storage
