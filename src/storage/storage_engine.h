#ifndef SIREP_STORAGE_STORAGE_ENGINE_H_
#define SIREP_STORAGE_STORAGE_ENGINE_H_

#include <atomic>
#include <functional>
#include <set>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "sql/schema.h"
#include "sql/value.h"
#include "storage/lock_manager.h"
#include "storage/mvcc_table.h"
#include "storage/types.h"
#include "storage/wal.h"
#include "storage/write_set.h"

namespace sirep::storage {

enum class TxnState { kActive, kCommitted, kAborted };

/// A storage-level transaction handle. Created by StorageEngine::Begin();
/// used by a single thread at a time. Pending writes are buffered in
/// `writes` (which doubles as the extractable writeset) and installed into
/// the version chains only at commit.
class Transaction {
 public:
  TxnId id() const { return id_; }
  Timestamp snapshot() const { return snapshot_; }
  TxnState state() const { return state_.load(std::memory_order_acquire); }
  const WriteSet& writes() const { return writes_; }

 private:
  friend class StorageEngine;
  TxnId id_ = kInvalidTxnId;
  Timestamp snapshot_ = 0;
  std::atomic<TxnState> state_{TxnState::kActive};
  WriteSet writes_;
};

using TransactionPtr = std::shared_ptr<Transaction>;

/// Legacy aggregate view of the engine's counters; the values now live
/// in metrics() under the "storage." prefix and this struct is populated
/// from them (kept so existing tests and benches compile).
struct EngineStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t ww_conflicts = 0;  // first-updater-wins version-check failures
  uint64_t deadlocks = 0;
};

/// A single database replica's storage engine: multi-version tables with
/// **snapshot isolation** implemented the way PostgreSQL implements it
/// (paper §4): writers take tuple locks during execution and run a version
/// check — if the newest committed version of the tuple was created by a
/// transaction concurrent with ours, we abort (first-updater-wins). Blocked
/// writers re-run the check when the lock is granted, so a waiter whose
/// blocker commits aborts, and a waiter whose blocker aborts may proceed.
///
/// The engine additionally provides the two primitives the SI-Rep
/// middleware needs from its replicas (paper §3, §5.5):
///  * pre-commit **writeset extraction** (ExtractWriteSet), and
///  * **writeset application** (ApplyWriteSet) that installs after-images
///    directly, without re-executing SQL.
///
/// All methods are thread-safe; each Transaction must be driven by one
/// thread at a time.
class StorageEngine {
 public:
  StorageEngine();
  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  // ---- DDL ----

  Status CreateTable(const std::string& name, sql::Schema schema);
  MvccTable* GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // ---- transaction lifecycle ----

  /// Starts a transaction. The snapshot is the latest committed timestamp;
  /// taking it is atomic with respect to commits, which is what lets the
  /// middleware reason about "the last committed transaction before Ti
  /// started" (paper Fig. 1, I.1.b-c).
  TransactionPtr Begin();

  /// Commits: installs buffered writes as new versions with a fresh commit
  /// timestamp, releases locks. Cannot fail for an active transaction —
  /// conflicts were already detected at write time (locks are held from
  /// write to commit, so no newer committed version can have appeared).
  /// With group-commit WAL enabled this form also waits for the record's
  /// group flush before returning.
  Status Commit(const TransactionPtr& txn);

  /// Two-phase form for callers that hold a lock across Commit (the
  /// middleware commits inside the hole tracker's mutex): completes the
  /// in-memory commit and hands back a durability ticket instead of
  /// waiting. The caller must pass it to WaitWalDurable() *after*
  /// releasing its lock — before acknowledging the commit — so
  /// concurrent committers can share one group flush. The ticket is 0
  /// (WaitWalDurable is a no-op) without group-commit WAL.
  Status Commit(const TransactionPtr& txn, uint64_t* durability_ticket);

  /// Blocks until the ticket's WAL record is flushed (see above).
  Status WaitWalDurable(uint64_t ticket);

  /// Aborts: drops buffered writes, releases locks. Idempotent.
  void Abort(const TransactionPtr& txn);

  // ---- reads (never block, never lock) ----

  /// Point read by primary key; sees the transaction's own writes.
  /// nullopt => no visible live tuple.
  Result<std::optional<sql::Row>> Read(const TransactionPtr& txn,
                                       const std::string& table,
                                       const sql::Key& key) const;

  /// Snapshot scan including the transaction's own writes. Rows are
  /// delivered in key order.
  Status Scan(const TransactionPtr& txn, const std::string& table,
              const std::function<void(const sql::Key&, const sql::Row&)>&
                  fn) const;

  // ---- writes (lock + version check + buffer) ----

  /// Inserts a full row. Fails kAlreadyExists if a live tuple with the
  /// same key is visible, kConflict if a concurrent committed transaction
  /// touched the key. On any failure the transaction is aborted.
  Status Insert(const TransactionPtr& txn, const std::string& table,
                sql::Row row);

  /// Replaces the row identified by its key fields. Returns kNotFound
  /// (without aborting) if no live tuple is visible.
  Status Update(const TransactionPtr& txn, const std::string& table,
                sql::Row new_row);

  /// Deletes by key. Returns kNotFound (without aborting) if no live
  /// tuple is visible.
  Status Delete(const TransactionPtr& txn, const std::string& table,
                const sql::Key& key);

  // ---- middleware primitives ----

  /// Pre-commit writeset extraction: a snapshot copy of the transaction's
  /// buffered writes (paper: "we provide a pre-commit extraction").
  std::shared_ptr<const WriteSet> ExtractWriteSet(
      const TransactionPtr& txn) const;

  /// Applies a remote writeset inside `txn`: locks each tuple, performs
  /// the same first-updater-wins check, and buffers the after-images.
  /// The caller then Commit()s. Returns kConflict/kDeadlock (transaction
  /// aborted) if application must be retried, per paper §4.2.
  Status ApplyWriteSet(const TransactionPtr& txn, const WriteSet& ws);

  // ---- introspection ----

  Timestamp last_committed() const;
  EngineStats stats() const;
  LockManager& lock_manager() { return locks_; }

  /// This engine's metrics registry: "storage.*" counters plus the WAL
  /// append, lock wait, and version-chain-length histograms.
  obs::MetricsRegistry& metrics() { return registry_; }
  const obs::MetricsRegistry& metrics() const { return registry_; }

  /// Simulates a database process restart after a crash: committed state
  /// (the version chains) survives, every lock is dropped, stale
  /// snapshots stop pinning the vacuum horizon, and any transaction of
  /// the dead incarnation that is still blocked wakes up aborted. Called
  /// by the cluster harness before online recovery.
  void SimulateRestart();

  // ---- secondary indexes & maintenance ----

  /// Creates a single-column secondary index (see MvccTable::CreateIndex).
  Status CreateIndex(const std::string& table, const std::string& column);

  /// Index-assisted point-in: invokes `fn` for every live tuple visible
  /// to `txn` whose `column` equals `value`, including the transaction's
  /// own uncommitted writes (which are never in the index). Returns
  /// kNotFound if the column has no index.
  Status LookupByIndex(
      const TransactionPtr& txn, const std::string& table,
      const std::string& column, const sql::Value& value,
      const std::function<void(const sql::Key&, const sql::Row&)>& fn) const;

  /// Garbage-collects versions no active snapshot can see (PostgreSQL's
  /// VACUUM): the horizon is the oldest active snapshot (or the latest
  /// commit when idle). Returns the number of versions freed.
  size_t Vacuum();

  /// Oldest snapshot still active (== last_committed when none). Test
  /// and introspection helper.
  Timestamp OldestActiveSnapshot() const;

  // ---- durability (write-ahead log) ----

  /// Turns on WAL durability: every commit appends its writeset to the
  /// log at `path` before returning. Enable before traffic starts.
  ///
  /// With `group_commit` (default: the SIREP_WAL_GROUP_COMMIT env var),
  /// commits buffer their record inside the commit critical section and
  /// wait for a leader-elected group flush outside it, so concurrent
  /// committers — e.g. the middleware's parallel remote appliers —
  /// amortize flushes ("storage.wal_group_size" histograms the records
  /// per flush). A commit still never returns before its record is
  /// flushed; only the flush granularity changes. If the group flush
  /// fails (log wedged), the commit's versions are already visible —
  /// the commit completes in memory and the error reports the lost
  /// durability.
  Status EnableWal(const std::string& path);
  Status EnableWal(const std::string& path, bool group_commit);

  /// Rebuilds the committed state from the WAL at `path` (tables must
  /// already exist — schema is DDL, not logged). Installs versions with
  /// their original commit timestamps and advances the engine clock.
  /// Call on a fresh engine before traffic; typically followed by
  /// EnableWal on the same path to continue appending.
  Status RecoverFromWal(const std::string& path);

 private:
  /// Lock + first-updater-wins version check; buffers nothing.
  Status LockAndCheck(const TransactionPtr& txn, const TupleId& tuple);

  /// Fails any further use of an aborted/committed handle.
  Status CheckActive(const TransactionPtr& txn) const;

  /// Aborts and forwards `status` (the standard failure path for writes).
  Status AbortWith(const TransactionPtr& txn, Status status);

  /// Removes a finished transaction's snapshot from the vacuum horizon.
  void ReleaseSnapshot(Timestamp snapshot);

  mutable std::mutex tables_mu_;
  std::unordered_map<std::string, std::unique_ptr<MvccTable>> tables_;

  LockManager locks_;

  // Guards commit-timestamp assignment + version installs + snapshot
  // acquisition, making "begin" atomic w.r.t. "commit".
  mutable std::mutex commit_mu_;
  Timestamp clock_ = 0;
  std::unique_ptr<Wal> wal_;  // null unless EnableWal was called
  bool wal_group_commit_ = false;

  std::atomic<TxnId> next_txn_id_{1};

  // Active snapshots, for the vacuum horizon. Guarded by commit_mu_ (the
  // same mutex that makes Begin atomic with commits).
  std::multiset<Timestamp> active_snapshots_;

  // Observability handles (resolved once in the constructor; recording
  // through them is lock-free).
  obs::MetricsRegistry registry_;
  obs::Counter* c_commits_ = nullptr;
  obs::Counter* c_aborts_ = nullptr;
  obs::Counter* c_ww_conflicts_ = nullptr;
  obs::Counter* c_deadlocks_ = nullptr;
  obs::Histogram* h_wal_append_us_ = nullptr;
  obs::Histogram* h_wal_group_size_ = nullptr;
  obs::Histogram* h_version_chain_len_ = nullptr;
};

}  // namespace sirep::storage

#endif  // SIREP_STORAGE_STORAGE_ENGINE_H_
