#ifndef SIREP_STORAGE_WAL_H_
#define SIREP_STORAGE_WAL_H_

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

#include "common/status.h"
#include "storage/types.h"
#include "storage/write_set.h"

namespace sirep::storage {

/// Append-only write-ahead log of committed writesets, giving a replica's
/// database durability across process restarts (the paper's replicas rely
/// on PostgreSQL's WAL for the same thing; online recovery then only has
/// to ship what the *cluster* committed while the node was down).
///
/// Record format (binary, see sql/serde.h):
///   u32 magic | u64 commit_ts | u32 entry_count |
///     per entry: string table | u8 op | row key-parts | row after-image
///
/// Crash behaviour ("truncate-and-recover"): a truncated trailing record
/// (torn write at crash) is detected and ignored during replay, and
/// Open() physically truncates such a tail before appending — otherwise
/// the next incarnation would append valid records *behind* the garbage
/// and lose them all. A failed append in a live process wedges the log
/// (the tail state is unknown) until Open() re-scans or Truncate()
/// resets it, so no record is ever written after a possibly-torn one.
///
/// Failpoints (common/failpoint.h): "wal.open" and "wal.append" inject
/// errors, "wal.append.torn" makes the next append write only the first
/// arg(N) bytes of its record (N <= 0: half the record) — a real torn
/// tail on disk — and "wal.fsync" fails the post-write flush step.
class Wal {
 public:
  explicit Wal(std::string path) : path_(std::move(path)) {}
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  const std::string& path() const { return path_; }

  /// Opens (creating if needed) for appending. Scans any existing log
  /// first and truncates a torn tail left by a crash mid-append, so the
  /// valid prefix stays replayable after new appends.
  Status Open();

  /// Appends one committed transaction. Called under the engine's commit
  /// mutex, so records are naturally in commit-timestamp order. Flushes
  /// to the OS (simulating a group-commit flush; a production system
  /// would fsync).
  Status AppendCommit(Timestamp commit_ts, const WriteSet& ws);

  /// Reads every complete record in commit order. Stops cleanly at a
  /// torn tail.
  Status Replay(
      const std::function<Status(Timestamp, const WriteSet&)>& fn) const;

  /// Empties the log (after a checkpoint/full dump). Also clears the
  /// wedged state left by a failed append.
  Status Truncate();

  void Close();

  /// True after an append failed partway: the on-disk tail is unknown
  /// and further appends are refused until Open()/Truncate() recover.
  bool wedged() const;

 private:
  std::string path_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  bool wedged_ = false;
};

}  // namespace sirep::storage

#endif  // SIREP_STORAGE_WAL_H_
