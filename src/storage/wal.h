#ifndef SIREP_STORAGE_WAL_H_
#define SIREP_STORAGE_WAL_H_

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

#include "common/status.h"
#include "storage/types.h"
#include "storage/write_set.h"

namespace sirep::storage {

/// Append-only write-ahead log of committed writesets, giving a replica's
/// database durability across process restarts (the paper's replicas rely
/// on PostgreSQL's WAL for the same thing; online recovery then only has
/// to ship what the *cluster* committed while the node was down).
///
/// Record format (binary, see sql/serde.h):
///   u32 magic | u64 commit_ts | u32 entry_count |
///     per entry: string table | u8 op | row key-parts | row after-image
/// A truncated trailing record (torn write at crash) is detected and
/// ignored during replay.
class Wal {
 public:
  explicit Wal(std::string path) : path_(std::move(path)) {}
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  const std::string& path() const { return path_; }

  /// Opens (creating if needed) for appending.
  Status Open();

  /// Appends one committed transaction. Called under the engine's commit
  /// mutex, so records are naturally in commit-timestamp order. Flushes
  /// to the OS (simulating a group-commit flush; a production system
  /// would fsync).
  Status AppendCommit(Timestamp commit_ts, const WriteSet& ws);

  /// Reads every complete record in commit order. Stops cleanly at a
  /// torn tail.
  Status Replay(
      const std::function<Status(Timestamp, const WriteSet&)>& fn) const;

  /// Empties the log (after a checkpoint/full dump).
  Status Truncate();

  void Close();

 private:
  std::string path_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
};

}  // namespace sirep::storage

#endif  // SIREP_STORAGE_WAL_H_
