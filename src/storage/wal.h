#ifndef SIREP_STORAGE_WAL_H_
#define SIREP_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/types.h"
#include "storage/write_set.h"

namespace sirep::storage {

/// Append-only write-ahead log of committed writesets, giving a replica's
/// database durability across process restarts (the paper's replicas rely
/// on PostgreSQL's WAL for the same thing; online recovery then only has
/// to ship what the *cluster* committed while the node was down).
///
/// Record format (binary, see sql/serde.h):
///   u32 magic | u64 commit_ts | u32 entry_count |
///     per entry: string table | u8 op | row key-parts | row after-image
///
/// Crash behaviour ("truncate-and-recover"): a truncated trailing record
/// (torn write at crash) is detected and ignored during replay, and
/// Open() physically truncates such a tail before appending — otherwise
/// the next incarnation would append valid records *behind* the garbage
/// and lose them all. A failed append in a live process wedges the log
/// (the tail state is unknown) until Open() re-scans or Truncate()
/// resets it, so no record is ever written after a possibly-torn one.
///
/// Failpoints (common/failpoint.h): "wal.open" and "wal.append" inject
/// errors, "wal.append.torn" makes the next append write only the first
/// arg(N) bytes of its record (N <= 0: half the record) — a real torn
/// tail on disk — and "wal.fsync" fails the post-write flush step.
class Wal {
 public:
  explicit Wal(std::string path) : path_(std::move(path)) {}
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  const std::string& path() const { return path_; }

  /// Opens (creating if needed) for appending. Scans any existing log
  /// first and truncates a torn tail left by a crash mid-append, so the
  /// valid prefix stays replayable after new appends.
  Status Open();

  /// Appends one committed transaction. Called under the engine's commit
  /// mutex, so records are naturally in commit-timestamp order. Flushes
  /// to the OS (simulating a group-commit flush; a production system
  /// would fsync).
  Status AppendCommit(Timestamp commit_ts, const WriteSet& ws);

  // ---- group/epoch commit ----
  //
  // With parallel remote appliers the per-commit flush above becomes the
  // serialization point; group commit splits the append into a cheap
  // buffered stage (under the engine's commit mutex, preserving
  // commit-timestamp record order) and a shared flush stage performed
  // outside it. Waiters elect a leader: the first waiter whose ticket is
  // not yet durable writes and flushes the *entire* pending buffer — one
  // flush covers every commit buffered since the previous flush, so N
  // concurrent appliers amortize N flushes into ~1. Ordering is safe
  // because records enter the buffer in commit_ts order and the buffer
  // is always flushed as a prefix: a record is never durable before one
  // it depends on.

  /// Buffers one committed transaction's record without flushing.
  /// Returns a ticket to pass to WaitDurable(). Call under the engine's
  /// commit mutex. Fails without buffering when the log is wedged.
  Result<uint64_t> AppendCommitBuffered(Timestamp commit_ts,
                                        const WriteSet& ws);

  /// Blocks until every record up to and including `ticket` has been
  /// written and flushed (leader-elected: one waiter performs the group
  /// flush for all). Returns the wedged error if a group flush failed —
  /// such records may or may not be on disk, exactly like a torn
  /// AppendCommit.
  Status WaitDurable(uint64_t ticket);

  /// Count of records covered by each group flush (set by the engine;
  /// may be null). A mean near 1 means the workload is not concurrent
  /// enough to amortize anything.
  void SetGroupSizeHistogram(obs::Histogram* hist);

  /// Reads every complete record in commit order. Stops cleanly at a
  /// torn tail.
  Status Replay(
      const std::function<Status(Timestamp, const WriteSet&)>& fn) const;

  /// Empties the log (after a checkpoint/full dump). Also clears the
  /// wedged state left by a failed append.
  Status Truncate();

  void Close();

  /// True after an append failed partway: the on-disk tail is unknown
  /// and further appends are refused until Open()/Truncate() recover.
  bool wedged() const;

 private:
  /// Encodes one record (shared by the immediate and buffered appends).
  static std::string EncodeRecord(Timestamp commit_ts, const WriteSet& ws);

  /// Writes `batch` to `file` and flushes, honoring the append
  /// failpoints. Does not touch wedged_ (callers do, under mu_); the
  /// group-flush leader calls it with mu_ released, holding the file via
  /// the flush_in_progress_ token. On failure the out-params tell the
  /// caller what state the file is in: `*tail_intact` is false only when
  /// bytes may have partially reached the file (torn write, short write)
  /// — the wedge condition — and `*data_written` is true when the whole
  /// batch was written and flushed before the failure (e.g. an injected
  /// fsync error), i.e. the records are in fact replayable.
  static Status WriteAndFlush(std::FILE* file, const std::string& batch,
                              bool* tail_intact, bool* data_written);

  std::string path_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  bool wedged_ = false;

  // Group-commit state (guarded by mu_). pending_ holds encoded records
  // in commit_ts order; tickets number buffered records 1..N.
  std::string pending_;
  size_t pending_count_ = 0;
  uint64_t next_ticket_ = 0;
  uint64_t durable_ticket_ = 0;
  bool flush_in_progress_ = false;
  std::condition_variable flush_cv_;
  obs::Histogram* group_size_hist_ = nullptr;
};

}  // namespace sirep::storage

#endif  // SIREP_STORAGE_WAL_H_
