#include "sql/schema.h"

#include <algorithm>

namespace sirep::sql {

int Schema::FindColumn(const std::string& name) const {
  // Exact match first (covers qualified lookups against a bound schema
  // whose columns are named "alias.col", and plain lookups against a
  // plain schema).
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  // Qualified names must match exactly; a plain name may also resolve
  // against a bound schema by unique ".name" suffix.
  if (name.find('.') != std::string::npos) return -1;
  int found = -1;
  const std::string suffix = "." + name;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const std::string& cand = columns_[i].name;
    if (cand.size() > suffix.size() &&
        cand.compare(cand.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      if (found >= 0) return -1;  // ambiguous across tables
      found = static_cast<int>(i);
    }
  }
  return found;
}

Key Schema::KeyOf(const Row& row) const {
  Key key;
  key.parts.reserve(key_indexes_.size());
  for (size_t idx : key_indexes_) {
    key.parts.push_back(row[idx]);
  }
  return key;
}

bool Schema::IsKeyColumn(size_t index) const {
  return std::find(key_indexes_.begin(), key_indexes_.end(), index) !=
         key_indexes_.end();
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) {
      if (IsKeyColumn(i)) {
        return Status::InvalidArgument("NULL in primary key column '" +
                                       columns_[i].name + "'");
      }
      continue;
    }
    const ValueType want = columns_[i].type;
    const ValueType got = v.type();
    const bool ok =
        got == want ||
        (want == ValueType::kDouble && got == ValueType::kInt);
    if (!ok) {
      return Status::InvalidArgument(
          "type mismatch for column '" + columns_[i].name + "': expected " +
          ValueTypeToString(want) + ", got " + ValueTypeToString(got));
    }
  }
  return Status::OK();
}

}  // namespace sirep::sql
