#include "sql/ast.h"

namespace sirep::sql {

namespace {
const char* BinOpToString(BinOp op) {
  switch (op) {
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "<>";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kLike:
      return "LIKE";
  }
  return "?";
}
}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumnRef:
      return column;
    case ExprKind::kParam:
      return "?" + std::to_string(param_index);
    case ExprKind::kUnary:
      switch (un_op) {
        case UnOp::kNot:
          return "(NOT " + left->ToString() + ")";
        case UnOp::kNeg:
          return "(-" + left->ToString() + ")";
        case UnOp::kIsNull:
          return "(" + left->ToString() + " IS NULL)";
        case UnOp::kIsNotNull:
          return "(" + left->ToString() + " IS NOT NULL)";
      }
      return "?";
    case ExprKind::kBinary:
      return "(" + left->ToString() + " " + BinOpToString(bin_op) + " " +
             right->ToString() + ")";
  }
  return "?";
}

}  // namespace sirep::sql
