#ifndef SIREP_SQL_AST_H_
#define SIREP_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sql/schema.h"
#include "sql/value.h"

namespace sirep::sql {

enum class ExprKind { kLiteral, kColumnRef, kParam, kUnary, kBinary };

enum class BinOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  /// SQL LIKE with '%' (any run) and '_' (any char) wildcards.
  kLike,
};

enum class UnOp { kNot, kNeg, kIsNull, kIsNotNull };

/// Expression tree node. A plain struct: the evaluator in `engine/exec`
/// walks it directly.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  Value literal;           // kLiteral
  std::string column;      // kColumnRef
  int param_index = -1;    // kParam: 0-based '?' position
  BinOp bin_op = BinOp::kEq;
  UnOp un_op = UnOp::kNot;
  std::unique_ptr<Expr> left;
  std::unique_ptr<Expr> right;

  std::string ToString() const;
};

using ExprPtr = std::unique_ptr<Expr>;

enum class AggFunc { kNone, kCount, kSum, kAvg, kMin, kMax };

/// One SELECT output item: either a column reference or an aggregate over
/// a column (or COUNT(*)). Column names may be qualified ("alias.col").
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  std::string column;  // empty for COUNT(*)
  bool star = false;   // COUNT(*)
};

/// A table in the FROM clause, optionally aliased. Comma-joins and
/// JOIN..ON both produce entries here (ON predicates are folded into the
/// WHERE tree).
struct TableRef {
  std::string table;
  std::string alias;  // defaults to the table name
};

struct CreateTableStmt {
  std::string table;
  std::vector<Column> columns;
  std::vector<std::string> key_columns;
};

/// CREATE INDEX name ON table (column) — single-column secondary index.
struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::string column;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty => all columns in order
  std::vector<ExprPtr> values;
};

struct SelectStmt {
  bool star = false;               // SELECT *
  std::vector<SelectItem> items;   // used when !star
  std::vector<TableRef> tables;    // >= 1; joins when > 1
  ExprPtr where;                   // may be null (JOIN..ON folded in)
  std::vector<std::string> group_by;  // qualified or plain column names
  /// ORDER BY: a (possibly qualified) column name, or an output position
  /// (1-based, SQL-92 style — needed to order by an aggregate).
  std::optional<std::string> order_by;
  int64_t order_by_position = 0;  // > 0 when ordering by position
  bool order_desc = false;
  int64_t limit = -1;              // -1 => no limit

  /// Single-table convenience (most statements).
  const std::string& table() const { return tables.front().table; }
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // may be null
};

enum class StatementKind {
  kCreateTable,
  kCreateIndex,
  kInsert,
  kSelect,
  kUpdate,
  kDelete,
  kBegin,
  kCommit,
  kRollback,
};

/// A parsed SQL statement. Exactly the member matching `kind` is set.
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> delete_;

  bool IsReadOnly() const { return kind == StatementKind::kSelect; }
};

}  // namespace sirep::sql

#endif  // SIREP_SQL_AST_H_
