#ifndef SIREP_SQL_LEXER_H_
#define SIREP_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace sirep::sql {

enum class TokenType {
  kIdentifier,   // table/column names, unquoted
  kKeyword,      // SELECT, FROM, ... (uppercased in `text`)
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // contents without quotes
  kParam,          // '?'
  kComma,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,       // =
  kNe,       // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kSemicolon,
  kDot,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      // identifier / keyword / literal text
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;   // byte offset in the input, for error messages
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively and
/// reported uppercased; identifiers keep their original case but are
/// matched case-sensitively downstream (our schemas use lowercase names).
Result<std::vector<Token>> Tokenize(const std::string& sql);

/// True if `word` (already uppercased) is a reserved keyword.
bool IsKeyword(const std::string& word);

}  // namespace sirep::sql

#endif  // SIREP_SQL_LEXER_H_
