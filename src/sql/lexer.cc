#include "sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <unordered_set>

namespace sirep::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",    "WHERE",  "INSERT", "INTO",   "VALUES", "UPDATE",
      "SET",    "DELETE",  "CREATE", "TABLE",  "PRIMARY", "KEY",   "AND",
      "OR",     "NOT",     "NULL",   "TRUE",   "FALSE",  "ORDER",  "BY",
      "ASC",    "DESC",    "LIMIT",  "INT",    "BIGINT", "DOUBLE", "FLOAT",
      "VARCHAR", "TEXT",   "STRING", "BOOL",   "BOOLEAN", "BEGIN", "COMMIT",
      "ROLLBACK", "ABORT", "IS",     "COUNT",  "SUM",    "AVG",    "MIN",
      "MAX",    "GROUP",   "BY",     "JOIN",   "ON",     "AS",     "HAVING", "INDEX",
      "IN",     "BETWEEN", "LIKE",
  };
  return *kKeywords;
}

std::string ToUpper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

}  // namespace

bool IsKeyword(const std::string& word) {
  return Keywords().count(word) > 0;
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      std::string word = sql.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = word;
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E' ||
                       ((sql[j] == '+' || sql[j] == '-') && j > i &&
                        (sql[j - 1] == 'e' || sql[j - 1] == 'E')))) {
        if (sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E') is_double = true;
        ++j;
      }
      const std::string num = sql.substr(i, j - i);
      if (is_double) {
        tok.type = TokenType::kDoubleLiteral;
        tok.double_value = std::strtod(num.c_str(), nullptr);
      } else {
        tok.type = TokenType::kIntLiteral;
        tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      tok.text = num;
      i = j;
    } else if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // escaped quote ''
            text += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text += sql[j];
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(i));
      }
      tok.type = TokenType::kStringLiteral;
      tok.text = std::move(text);
      i = j;
    } else {
      switch (c) {
        case '?':
          tok.type = TokenType::kParam;
          ++i;
          break;
        case ',':
          tok.type = TokenType::kComma;
          ++i;
          break;
        case '(':
          tok.type = TokenType::kLParen;
          ++i;
          break;
        case ')':
          tok.type = TokenType::kRParen;
          ++i;
          break;
        case '*':
          tok.type = TokenType::kStar;
          ++i;
          break;
        case '+':
          tok.type = TokenType::kPlus;
          ++i;
          break;
        case '-':
          tok.type = TokenType::kMinus;
          ++i;
          break;
        case '/':
          tok.type = TokenType::kSlash;
          ++i;
          break;
        case ';':
          tok.type = TokenType::kSemicolon;
          ++i;
          break;
        case '.':
          tok.type = TokenType::kDot;
          ++i;
          break;
        case '=':
          tok.type = TokenType::kEq;
          ++i;
          break;
        case '!':
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.type = TokenType::kNe;
            i += 2;
          } else {
            return Status::InvalidArgument("unexpected '!' at offset " +
                                           std::to_string(i));
          }
          break;
        case '<':
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.type = TokenType::kLe;
            i += 2;
          } else if (i + 1 < n && sql[i + 1] == '>') {
            tok.type = TokenType::kNe;
            i += 2;
          } else {
            tok.type = TokenType::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.type = TokenType::kGe;
            i += 2;
          } else {
            tok.type = TokenType::kGt;
            ++i;
          }
          break;
        default:
          return Status::InvalidArgument(std::string("unexpected character '") +
                                         c + "' at offset " +
                                         std::to_string(i));
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace sirep::sql
