#ifndef SIREP_SQL_SERDE_H_
#define SIREP_SQL_SERDE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "sql/value.h"

namespace sirep::sql {

/// Binary serialization for values and rows — the on-disk format of the
/// write-ahead log and the wire format a networked deployment would use
/// for writesets. Little-endian, length-prefixed, no alignment
/// requirements.
///
/// Encoding:
///   Value: 1-byte type tag, then
///     NULL   -> nothing
///     BOOL   -> 1 byte
///     INT    -> 8 bytes LE
///     DOUBLE -> 8 bytes (bit pattern)
///     STRING -> u32 length + bytes
///   Row: u32 count + values.

void EncodeU32(uint32_t v, std::string* out);
void EncodeU64(uint64_t v, std::string* out);
void EncodeValue(const Value& value, std::string* out);
void EncodeRow(const Row& row, std::string* out);
void EncodeString(const std::string& s, std::string* out);

/// Decoders advance `*pos`; they fail cleanly (kInvalidArgument) on
/// truncated or corrupt input instead of reading out of bounds.
Status DecodeU32(const std::string& in, size_t* pos, uint32_t* out);
Status DecodeU64(const std::string& in, size_t* pos, uint64_t* out);
Status DecodeValue(const std::string& in, size_t* pos, Value* out);
Status DecodeRow(const std::string& in, size_t* pos, Row* out);
Status DecodeString(const std::string& in, size_t* pos, std::string* out);

}  // namespace sirep::sql

#endif  // SIREP_SQL_SERDE_H_
