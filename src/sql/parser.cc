#include "sql/parser.h"

#include <cctype>
#include <utility>

#include "sql/lexer.h"

namespace sirep::sql {

namespace {

/// Recursive-descent parser over the token stream. Precedence (low→high):
/// OR < AND < NOT < comparison < add/sub < mul/div < unary minus < primary.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    const Token& tok = Peek();
    if (tok.type != TokenType::kKeyword) {
      return Error("expected a statement keyword");
    }
    Status st;
    if (tok.text == "CREATE") {
      if (Peek(1).type == TokenType::kKeyword && Peek(1).text == "INDEX") {
        stmt.kind = StatementKind::kCreateIndex;
        stmt.create_index = std::make_unique<CreateIndexStmt>();
        st = ParseCreateIndex(stmt.create_index.get());
      } else {
        stmt.kind = StatementKind::kCreateTable;
        stmt.create_table = std::make_unique<CreateTableStmt>();
        st = ParseCreateTable(stmt.create_table.get());
      }
    } else if (tok.text == "INSERT") {
      stmt.kind = StatementKind::kInsert;
      stmt.insert = std::make_unique<InsertStmt>();
      st = ParseInsert(stmt.insert.get());
    } else if (tok.text == "SELECT") {
      stmt.kind = StatementKind::kSelect;
      stmt.select = std::make_unique<SelectStmt>();
      st = ParseSelect(stmt.select.get());
    } else if (tok.text == "UPDATE") {
      stmt.kind = StatementKind::kUpdate;
      stmt.update = std::make_unique<UpdateStmt>();
      st = ParseUpdate(stmt.update.get());
    } else if (tok.text == "DELETE") {
      stmt.kind = StatementKind::kDelete;
      stmt.delete_ = std::make_unique<DeleteStmt>();
      st = ParseDelete(stmt.delete_.get());
    } else if (tok.text == "BEGIN") {
      stmt.kind = StatementKind::kBegin;
      Advance();
      st = Status::OK();
    } else if (tok.text == "COMMIT") {
      stmt.kind = StatementKind::kCommit;
      Advance();
      st = Status::OK();
    } else if (tok.text == "ROLLBACK" || tok.text == "ABORT") {
      stmt.kind = StatementKind::kRollback;
      Advance();
      st = Status::OK();
    } else {
      return Error("unsupported statement '" + tok.text + "'");
    }
    if (!st.ok()) return st;
    // Optional trailing semicolon, then end of input.
    if (Peek().type == TokenType::kSemicolon) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool MatchKeyword(const std::string& kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!MatchKeyword(kw)) return Error("expected " + kw);
    return Status::OK();
  }

  Status Expect(TokenType type, const std::string& what) {
    if (Peek().type != type) return Error("expected " + what);
    Advance();
    return Status::OK();
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("parse error at offset " +
                                   std::to_string(Peek().position) + ": " +
                                   msg);
  }

  Result<std::string> ParseIdentifier(const std::string& what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected " + what);
    }
    return Advance().text;
  }

  /// Parses `ident` or `ident.ident` into a single (possibly qualified)
  /// column name.
  Result<std::string> ParseColumnName(const std::string& what) {
    auto name = ParseIdentifier(what);
    if (!name.ok()) return name;
    std::string full = name.value();
    if (Peek().type == TokenType::kDot) {
      Advance();
      auto rest = ParseIdentifier("column name after '.'");
      if (!rest.ok()) return rest;
      full += ".";
      full += rest.value();
    }
    return full;
  }

  Status ParseCreateIndex(CreateIndexStmt* out) {
    Advance();  // CREATE
    SIREP_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
    auto name = ParseIdentifier("index name");
    if (!name.ok()) return name.status();
    out->index = name.value();
    SIREP_RETURN_IF_ERROR(ExpectKeyword("ON"));
    auto table = ParseIdentifier("table name");
    if (!table.ok()) return table.status();
    out->table = table.value();
    SIREP_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    auto col = ParseIdentifier("column name");
    if (!col.ok()) return col.status();
    out->column = col.value();
    SIREP_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return Status::OK();
  }

  Status ParseCreateTable(CreateTableStmt* out) {
    Advance();  // CREATE
    SIREP_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto name = ParseIdentifier("table name");
    if (!name.ok()) return name.status();
    out->table = name.value();
    SIREP_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    bool first = true;
    while (true) {
      if (!first) {
        if (Peek().type == TokenType::kComma) {
          Advance();
        } else {
          break;
        }
      }
      first = false;
      if (MatchKeyword("PRIMARY")) {
        SIREP_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        SIREP_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
        while (true) {
          auto col = ParseIdentifier("key column");
          if (!col.ok()) return col.status();
          out->key_columns.push_back(col.value());
          if (Peek().type == TokenType::kComma) {
            Advance();
            continue;
          }
          break;
        }
        SIREP_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        continue;
      }
      auto col = ParseIdentifier("column name");
      if (!col.ok()) return col.status();
      Column column;
      column.name = col.value();
      if (Peek().type != TokenType::kKeyword) {
        return Error("expected column type");
      }
      const std::string type = Advance().text;
      if (type == "INT" || type == "BIGINT") {
        column.type = ValueType::kInt;
      } else if (type == "DOUBLE" || type == "FLOAT") {
        column.type = ValueType::kDouble;
      } else if (type == "VARCHAR" || type == "TEXT" || type == "STRING") {
        column.type = ValueType::kString;
        // Optional VARCHAR(n): length is parsed and ignored.
        if (Peek().type == TokenType::kLParen) {
          Advance();
          SIREP_RETURN_IF_ERROR(
              Expect(TokenType::kIntLiteral, "varchar length"));
          SIREP_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        }
      } else if (type == "BOOL" || type == "BOOLEAN") {
        column.type = ValueType::kBool;
      } else {
        return Error("unknown column type '" + type + "'");
      }
      out->columns.push_back(std::move(column));
    }
    SIREP_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    if (out->columns.empty()) return Error("table needs at least one column");
    if (out->key_columns.empty()) {
      return Error("table '" + out->table +
                   "' needs a PRIMARY KEY (writesets identify tuples by key)");
    }
    return Status::OK();
  }

  Status ParseInsert(InsertStmt* out) {
    Advance();  // INSERT
    SIREP_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    auto name = ParseIdentifier("table name");
    if (!name.ok()) return name.status();
    out->table = name.value();
    if (Peek().type == TokenType::kLParen) {
      Advance();
      while (true) {
        auto col = ParseIdentifier("column name");
        if (!col.ok()) return col.status();
        out->columns.push_back(col.value());
        if (Peek().type == TokenType::kComma) {
          Advance();
          continue;
        }
        break;
      }
      SIREP_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    }
    SIREP_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    SIREP_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    while (true) {
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      out->values.push_back(std::move(expr).value());
      if (Peek().type == TokenType::kComma) {
        Advance();
        continue;
      }
      break;
    }
    SIREP_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return Status::OK();
  }

  Status ParseSelect(SelectStmt* out) {
    Advance();  // SELECT
    if (Peek().type == TokenType::kStar) {
      Advance();
      out->star = true;
    } else {
      while (true) {
        SelectItem item;
        if (Peek().type == TokenType::kKeyword &&
            (Peek().text == "COUNT" || Peek().text == "SUM" ||
             Peek().text == "AVG" || Peek().text == "MIN" ||
             Peek().text == "MAX")) {
          const std::string fn = Advance().text;
          if (fn == "COUNT") item.agg = AggFunc::kCount;
          else if (fn == "SUM") item.agg = AggFunc::kSum;
          else if (fn == "AVG") item.agg = AggFunc::kAvg;
          else if (fn == "MIN") item.agg = AggFunc::kMin;
          else item.agg = AggFunc::kMax;
          SIREP_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
          if (Peek().type == TokenType::kStar) {
            if (item.agg != AggFunc::kCount) {
              return Error("'*' only allowed in COUNT(*)");
            }
            Advance();
            item.star = true;
          } else {
            auto col = ParseColumnName("column name");
            if (!col.ok()) return col.status();
            item.column = col.value();
          }
          SIREP_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        } else {
          auto col = ParseColumnName("column name");
          if (!col.ok()) return col.status();
          item.column = col.value();
        }
        out->items.push_back(std::move(item));
        if (Peek().type == TokenType::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    SIREP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    SIREP_RETURN_IF_ERROR(ParseTableRef(out));
    // Comma joins and JOIN .. ON (inner joins only).
    while (true) {
      if (Peek().type == TokenType::kComma) {
        Advance();
        SIREP_RETURN_IF_ERROR(ParseTableRef(out));
        continue;
      }
      if (MatchKeyword("JOIN")) {
        SIREP_RETURN_IF_ERROR(ParseTableRef(out));
        if (MatchKeyword("ON")) {
          auto on = ParseExpr();
          if (!on.ok()) return on.status();
          // Fold the ON predicate into the WHERE tree.
          if (out->where == nullptr) {
            out->where = std::move(on).value();
          } else {
            out->where = MakeBinary(BinOp::kAnd, std::move(out->where),
                                    std::move(on).value());
          }
        }
        continue;
      }
      break;
    }
    if (MatchKeyword("WHERE")) {
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      if (out->where == nullptr) {
        out->where = std::move(expr).value();
      } else {
        out->where = MakeBinary(BinOp::kAnd, std::move(out->where),
                                std::move(expr).value());
      }
    }
    if (MatchKeyword("GROUP")) {
      SIREP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        auto col = ParseColumnName("GROUP BY column");
        if (!col.ok()) return col.status();
        out->group_by.push_back(col.value());
        if (Peek().type == TokenType::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (MatchKeyword("ORDER")) {
      SIREP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      if (Peek().type == TokenType::kIntLiteral) {
        out->order_by_position = Advance().int_value;
        if (out->order_by_position <= 0) {
          return Error("ORDER BY position must be >= 1");
        }
      } else if (Peek().type == TokenType::kKeyword &&
                 (Peek().text == "COUNT" || Peek().text == "SUM" ||
                  Peek().text == "AVG" || Peek().text == "MIN" ||
                  Peek().text == "MAX")) {
        // ORDER BY an aggregate: normalize to the output label
        // ("sum(col)" / "count(*)") the executor produces.
        std::string fn = Advance().text;
        for (auto& c : fn) c = static_cast<char>(std::tolower(c));
        SIREP_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
        std::string arg;
        if (Peek().type == TokenType::kStar) {
          Advance();
          arg = "*";
        } else {
          auto col = ParseColumnName("column name");
          if (!col.ok()) return col.status();
          arg = col.value();
        }
        SIREP_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        out->order_by = fn + "(" + arg + ")";
      } else {
        auto col = ParseColumnName("column name");
        if (!col.ok()) return col.status();
        out->order_by = col.value();
      }
      if (MatchKeyword("DESC")) {
        out->order_desc = true;
      } else {
        MatchKeyword("ASC");
      }
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().type != TokenType::kIntLiteral) {
        return Error("expected LIMIT count");
      }
      out->limit = Advance().int_value;
    }
    return Status::OK();
  }

  /// Parses `table [AS] [alias]` and appends it to the FROM list.
  Status ParseTableRef(SelectStmt* out) {
    auto name = ParseIdentifier("table name");
    if (!name.ok()) return name.status();
    TableRef ref;
    ref.table = name.value();
    ref.alias = ref.table;
    if (MatchKeyword("AS")) {
      auto alias = ParseIdentifier("alias");
      if (!alias.ok()) return alias.status();
      ref.alias = alias.value();
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Advance().text;
    }
    out->tables.push_back(std::move(ref));
    return Status::OK();
  }

  Status ParseUpdate(UpdateStmt* out) {
    Advance();  // UPDATE
    auto name = ParseIdentifier("table name");
    if (!name.ok()) return name.status();
    out->table = name.value();
    SIREP_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      auto col = ParseIdentifier("column name");
      if (!col.ok()) return col.status();
      SIREP_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      out->assignments.emplace_back(col.value(), std::move(expr).value());
      if (Peek().type == TokenType::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (MatchKeyword("WHERE")) {
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      out->where = std::move(expr).value();
    }
    return Status::OK();
  }

  Status ParseDelete(DeleteStmt* out) {
    Advance();  // DELETE
    SIREP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto name = ParseIdentifier("table name");
    if (!name.ok()) return name.status();
    out->table = name.value();
    if (MatchKeyword("WHERE")) {
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      out->where = std::move(expr).value();
    }
    return Status::OK();
  }

  // ---- expressions ----

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    auto left = ParseAnd();
    if (!left.ok()) return left;
    ExprPtr node = std::move(left).value();
    while (MatchKeyword("OR")) {
      auto right = ParseAnd();
      if (!right.ok()) return right;
      node = MakeBinary(BinOp::kOr, std::move(node), std::move(right).value());
    }
    return node;
  }

  Result<ExprPtr> ParseAnd() {
    auto left = ParseNot();
    if (!left.ok()) return left;
    ExprPtr node = std::move(left).value();
    while (MatchKeyword("AND")) {
      auto right = ParseNot();
      if (!right.ok()) return right;
      node = MakeBinary(BinOp::kAnd, std::move(node), std::move(right).value());
    }
    return node;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      auto operand = ParseNot();
      if (!operand.ok()) return operand;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->un_op = UnOp::kNot;
      node->left = std::move(operand).value();
      return node;
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    auto left = ParseAddSub();
    if (!left.ok()) return left;
    ExprPtr node = std::move(left).value();
    // expr [NOT] IN (v, ...)  — sugar for an OR-chain of equalities.
    // expr [NOT] BETWEEN a AND b — sugar for expr >= a AND expr <= b.
    // expr [NOT] LIKE pattern.
    bool negated = false;
    const bool saw_not = Peek().type == TokenType::kKeyword &&
                         Peek().text == "NOT" &&
                         Peek(1).type == TokenType::kKeyword &&
                         (Peek(1).text == "IN" || Peek(1).text == "BETWEEN" ||
                          Peek(1).text == "LIKE");
    if (saw_not) {
      Advance();
      negated = true;
    }
    if (MatchKeyword("IN")) {
      SIREP_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      ExprPtr chain;
      while (true) {
        auto value = ParseAddSub();
        if (!value.ok()) return value;
        auto eq = MakeBinary(BinOp::kEq, CloneExpr(*node),
                             std::move(value).value());
        chain = chain == nullptr
                    ? std::move(eq)
                    : MakeBinary(BinOp::kOr, std::move(chain), std::move(eq));
        if (Peek().type == TokenType::kComma) {
          Advance();
          continue;
        }
        break;
      }
      SIREP_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return MaybeNegate(std::move(chain), negated);
    }
    if (MatchKeyword("BETWEEN")) {
      auto lo = ParseAddSub();
      if (!lo.ok()) return lo;
      SIREP_RETURN_IF_ERROR(ExpectKeyword("AND"));
      auto hi = ParseAddSub();
      if (!hi.ok()) return hi;
      auto ge = MakeBinary(BinOp::kGe, CloneExpr(*node), std::move(lo).value());
      auto le = MakeBinary(BinOp::kLe, std::move(node), std::move(hi).value());
      return MaybeNegate(
          MakeBinary(BinOp::kAnd, std::move(ge), std::move(le)), negated);
    }
    if (MatchKeyword("LIKE")) {
      auto pattern = ParseAddSub();
      if (!pattern.ok()) return pattern;
      return MaybeNegate(MakeBinary(BinOp::kLike, std::move(node),
                                    std::move(pattern).value()),
                         negated);
    }
    if (negated) return Error("expected IN, BETWEEN or LIKE after NOT");
    // IS [NOT] NULL
    if (MatchKeyword("IS")) {
      bool negated = MatchKeyword("NOT");
      SIREP_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto unary = std::make_unique<Expr>();
      unary->kind = ExprKind::kUnary;
      unary->un_op = negated ? UnOp::kIsNotNull : UnOp::kIsNull;
      unary->left = std::move(node);
      return ExprPtr(std::move(unary));
    }
    BinOp op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = BinOp::kEq;
        break;
      case TokenType::kNe:
        op = BinOp::kNe;
        break;
      case TokenType::kLt:
        op = BinOp::kLt;
        break;
      case TokenType::kLe:
        op = BinOp::kLe;
        break;
      case TokenType::kGt:
        op = BinOp::kGt;
        break;
      case TokenType::kGe:
        op = BinOp::kGe;
        break;
      default:
        return node;
    }
    Advance();
    auto right = ParseAddSub();
    if (!right.ok()) return right;
    return MakeBinary(op, std::move(node), std::move(right).value());
  }

  Result<ExprPtr> ParseAddSub() {
    auto left = ParseMulDiv();
    if (!left.ok()) return left;
    ExprPtr node = std::move(left).value();
    while (true) {
      BinOp op;
      if (Peek().type == TokenType::kPlus) {
        op = BinOp::kAdd;
      } else if (Peek().type == TokenType::kMinus) {
        op = BinOp::kSub;
      } else {
        return node;
      }
      Advance();
      auto right = ParseMulDiv();
      if (!right.ok()) return right;
      node = MakeBinary(op, std::move(node), std::move(right).value());
    }
  }

  Result<ExprPtr> ParseMulDiv() {
    auto left = ParseUnary();
    if (!left.ok()) return left;
    ExprPtr node = std::move(left).value();
    while (true) {
      BinOp op;
      if (Peek().type == TokenType::kStar) {
        op = BinOp::kMul;
      } else if (Peek().type == TokenType::kSlash) {
        op = BinOp::kDiv;
      } else {
        return node;
      }
      Advance();
      auto right = ParseUnary();
      if (!right.ok()) return right;
      node = MakeBinary(op, std::move(node), std::move(right).value());
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().type == TokenType::kMinus) {
      Advance();
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->un_op = UnOp::kNeg;
      node->left = std::move(operand).value();
      return ExprPtr(std::move(node));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    auto node = std::make_unique<Expr>();
    switch (tok.type) {
      case TokenType::kIntLiteral:
        node->kind = ExprKind::kLiteral;
        node->literal = Value::Int(tok.int_value);
        Advance();
        return ExprPtr(std::move(node));
      case TokenType::kDoubleLiteral:
        node->kind = ExprKind::kLiteral;
        node->literal = Value::Double(tok.double_value);
        Advance();
        return ExprPtr(std::move(node));
      case TokenType::kStringLiteral:
        node->kind = ExprKind::kLiteral;
        node->literal = Value::String(tok.text);
        Advance();
        return ExprPtr(std::move(node));
      case TokenType::kParam:
        node->kind = ExprKind::kParam;
        node->param_index = next_param_++;
        Advance();
        return ExprPtr(std::move(node));
      case TokenType::kIdentifier: {
        node->kind = ExprKind::kColumnRef;
        node->column = tok.text;
        Advance();
        if (Peek().type == TokenType::kDot) {
          Advance();
          if (Peek().type != TokenType::kIdentifier) {
            return Error("expected column name after '.'");
          }
          node->column += ".";
          node->column += Advance().text;
        }
        return ExprPtr(std::move(node));
      }
      case TokenType::kKeyword:
        if (tok.text == "NULL") {
          node->kind = ExprKind::kLiteral;
          node->literal = Value::Null();
          Advance();
          return ExprPtr(std::move(node));
        }
        if (tok.text == "TRUE" || tok.text == "FALSE") {
          node->kind = ExprKind::kLiteral;
          node->literal = Value::Bool(tok.text == "TRUE");
          Advance();
          return ExprPtr(std::move(node));
        }
        return Error("unexpected keyword '" + tok.text + "' in expression");
      case TokenType::kLParen: {
        Advance();
        auto inner = ParseExpr();
        if (!inner.ok()) return inner;
        SIREP_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return inner;
      }
      default:
        return Error("unexpected token in expression");
    }
  }

  static ExprPtr CloneExpr(const Expr& expr) {
    auto node = std::make_unique<Expr>();
    node->kind = expr.kind;
    node->literal = expr.literal;
    node->column = expr.column;
    node->param_index = expr.param_index;
    node->bin_op = expr.bin_op;
    node->un_op = expr.un_op;
    if (expr.left != nullptr) node->left = CloneExpr(*expr.left);
    if (expr.right != nullptr) node->right = CloneExpr(*expr.right);
    return node;
  }

  static ExprPtr MaybeNegate(ExprPtr expr, bool negated) {
    if (!negated) return expr;
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kUnary;
    node->un_op = UnOp::kNot;
    node->left = std::move(expr);
    return node;
  }

  static ExprPtr MakeBinary(BinOp op, ExprPtr left, ExprPtr right) {
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kBinary;
    node->bin_op = op;
    node->left = std::move(left);
    node->right = std::move(right);
    return node;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int next_param_ = 0;
};

}  // namespace

Result<Statement> Parse(const std::string& sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseStatement();
}

}  // namespace sirep::sql
