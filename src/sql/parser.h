#ifndef SIREP_SQL_PARSER_H_
#define SIREP_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace sirep::sql {

/// Parses one SQL statement (a trailing semicolon is allowed).
///
/// Grammar (case-insensitive keywords):
///   CREATE TABLE t (col TYPE [, ...] [, PRIMARY KEY (col [, ...])])
///   INSERT INTO t [(col, ...)] VALUES (expr, ...)
///   SELECT * | item [, ...] FROM t [WHERE expr]
///       [ORDER BY col [ASC|DESC]] [LIMIT n]
///   UPDATE t SET col = expr [, ...] [WHERE expr]
///   DELETE FROM t [WHERE expr]
///   BEGIN | COMMIT | ROLLBACK | ABORT
///
/// `item` is a column name or an aggregate COUNT(*)/COUNT(c)/SUM(c)/AVG(c)/
/// MIN(c)/MAX(c). Expressions support literals, column refs, '?' parameters,
/// arithmetic, comparisons, IS [NOT] NULL, AND/OR/NOT and parentheses.
Result<Statement> Parse(const std::string& sql);

}  // namespace sirep::sql

#endif  // SIREP_SQL_PARSER_H_
