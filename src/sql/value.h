#ifndef SIREP_SQL_VALUE_H_
#define SIREP_SQL_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace sirep::sql {

enum class ValueType { kNull = 0, kInt, kDouble, kString, kBool };

const char* ValueTypeToString(ValueType type);

/// A typed SQL value: NULL, INT (64-bit), DOUBLE, STRING (also used for
/// VARCHAR/TEXT) or BOOL. Values order NULL < BOOL < INT/DOUBLE < STRING
/// across types so they can key ordered containers; numeric types compare
/// by value with each other.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }
  static Value Bool(bool v) { return Value(v); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const;
  const std::string& AsString() const { return std::get<std::string>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }

  bool IsNumeric() const {
    ValueType t = type();
    return t == ValueType::kInt || t == ValueType::kDouble;
  }

  /// Three-way comparison used by the executor and by key ordering.
  /// NULLs compare equal to each other and less than everything else.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  size_t Hash() const;

  std::string ToString() const;

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(bool v) : data_(v) {}

  std::variant<std::monostate, int64_t, double, std::string, bool> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

/// A row is simply a vector of values ordered per the table schema.
using Row = std::vector<Value>;

std::string RowToString(const Row& row);

/// Primary-key value (possibly composite). Hashable and ordered so it can
/// key both hash maps (writeset intersection) and ordered maps (storage).
struct Key {
  std::vector<Value> parts;

  bool operator==(const Key& other) const { return parts == other.parts; }
  bool operator<(const Key& other) const;
  size_t Hash() const;
  std::string ToString() const;
};

struct KeyHash {
  size_t operator()(const Key& key) const { return key.Hash(); }
};

}  // namespace sirep::sql

#endif  // SIREP_SQL_VALUE_H_
