#ifndef SIREP_SQL_SCHEMA_H_
#define SIREP_SQL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/value.h"

namespace sirep::sql {

struct Column {
  std::string name;
  ValueType type = ValueType::kInt;
};

/// Table schema: ordered columns plus the primary-key column indexes.
/// Every table must have a primary key — writesets identify tuples by
/// (table, primary key), as in the paper's writeset extraction.
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<Column> columns, std::vector<size_t> key_indexes)
      : columns_(std::move(columns)), key_indexes_(std::move(key_indexes)) {}

  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<size_t>& key_indexes() const { return key_indexes_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of the named column, or -1 if absent.
  int FindColumn(const std::string& name) const;

  /// Extracts the primary key from a full row.
  Key KeyOf(const Row& row) const;

  /// Checks arity and (loose) type compatibility of a row against the
  /// schema. Ints are accepted for double columns; NULL anywhere except
  /// key columns.
  Status ValidateRow(const Row& row) const;

  bool IsKeyColumn(size_t index) const;

 private:
  std::vector<Column> columns_;
  std::vector<size_t> key_indexes_;
};

}  // namespace sirep::sql

#endif  // SIREP_SQL_SCHEMA_H_
