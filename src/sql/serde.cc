#include "sql/serde.h"

#include <cstring>

namespace sirep::sql {

namespace {
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagBool = 1;
constexpr uint8_t kTagInt = 2;
constexpr uint8_t kTagDouble = 3;
constexpr uint8_t kTagString = 4;

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated input decoding ") +
                                 what);
}
}  // namespace

void EncodeU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void EncodeU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void EncodeString(const std::string& s, std::string* out) {
  EncodeU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

void EncodeValue(const Value& value, std::string* out) {
  switch (value.type()) {
    case ValueType::kNull:
      out->push_back(static_cast<char>(kTagNull));
      return;
    case ValueType::kBool:
      out->push_back(static_cast<char>(kTagBool));
      out->push_back(value.AsBool() ? 1 : 0);
      return;
    case ValueType::kInt:
      out->push_back(static_cast<char>(kTagInt));
      EncodeU64(static_cast<uint64_t>(value.AsInt()), out);
      return;
    case ValueType::kDouble: {
      out->push_back(static_cast<char>(kTagDouble));
      const double d = value.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      EncodeU64(bits, out);
      return;
    }
    case ValueType::kString:
      out->push_back(static_cast<char>(kTagString));
      EncodeString(value.AsString(), out);
      return;
  }
}

void EncodeRow(const Row& row, std::string* out) {
  EncodeU32(static_cast<uint32_t>(row.size()), out);
  for (const auto& v : row) EncodeValue(v, out);
}

Status DecodeU32(const std::string& in, size_t* pos, uint32_t* out) {
  if (*pos + 4 > in.size()) return Truncated("u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *pos += 4;
  *out = v;
  return Status::OK();
}

Status DecodeU64(const std::string& in, size_t* pos, uint64_t* out) {
  if (*pos + 8 > in.size()) return Truncated("u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(in[*pos + i])) << (8 * i);
  }
  *pos += 8;
  *out = v;
  return Status::OK();
}

Status DecodeString(const std::string& in, size_t* pos, std::string* out) {
  uint32_t len = 0;
  SIREP_RETURN_IF_ERROR(DecodeU32(in, pos, &len));
  if (*pos + len > in.size()) return Truncated("string body");
  out->assign(in, *pos, len);
  *pos += len;
  return Status::OK();
}

Status DecodeValue(const std::string& in, size_t* pos, Value* out) {
  if (*pos >= in.size()) return Truncated("value tag");
  const uint8_t tag = static_cast<uint8_t>(in[(*pos)++]);
  switch (tag) {
    case kTagNull:
      *out = Value::Null();
      return Status::OK();
    case kTagBool: {
      if (*pos >= in.size()) return Truncated("bool");
      *out = Value::Bool(in[(*pos)++] != 0);
      return Status::OK();
    }
    case kTagInt: {
      uint64_t v = 0;
      SIREP_RETURN_IF_ERROR(DecodeU64(in, pos, &v));
      *out = Value::Int(static_cast<int64_t>(v));
      return Status::OK();
    }
    case kTagDouble: {
      uint64_t bits = 0;
      SIREP_RETURN_IF_ERROR(DecodeU64(in, pos, &bits));
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value::Double(d);
      return Status::OK();
    }
    case kTagString: {
      std::string s;
      SIREP_RETURN_IF_ERROR(DecodeString(in, pos, &s));
      *out = Value::String(std::move(s));
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("unknown value tag " +
                                     std::to_string(tag));
  }
}

Status DecodeRow(const std::string& in, size_t* pos, Row* out) {
  uint32_t count = 0;
  SIREP_RETURN_IF_ERROR(DecodeU32(in, pos, &count));
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Value v;
    SIREP_RETURN_IF_ERROR(DecodeValue(in, pos, &v));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

}  // namespace sirep::sql
