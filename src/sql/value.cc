#include "sql/value.h"

#include <cmath>
#include <sstream>

namespace sirep::sql {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kBool:
      return "BOOL";
  }
  return "?";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt;
    case 2:
      return ValueType::kDouble;
    case 3:
      return ValueType::kString;
    case 4:
      return ValueType::kBool;
  }
  return ValueType::kNull;
}

double Value::AsDouble() const {
  if (std::holds_alternative<int64_t>(data_)) {
    return static_cast<double>(std::get<int64_t>(data_));
  }
  return std::get<double>(data_);
}

namespace {
/// Rank used for cross-type ordering: NULL < BOOL < numeric < STRING.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
  }
  return 4;
}
}  // namespace

int Value::Compare(const Value& other) const {
  const ValueType ta = type();
  const ValueType tb = other.type();
  const int ra = TypeRank(ta);
  const int rb = TypeRank(tb);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ta) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      const bool a = AsBool(), b = other.AsBool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kInt:
    case ValueType::kDouble: {
      if (ta == ValueType::kInt && tb == ValueType::kInt) {
        const int64_t a = AsInt(), b = other.AsInt();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      const double a = AsDouble(), b = other.AsDouble();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kString: {
      const int c = AsString().compare(other.AsString());
      return c == 0 ? 0 : (c < 0 ? -1 : 1);
    }
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b9;
    case ValueType::kBool:
      return std::hash<bool>()(AsBool());
    case ValueType::kInt:
      return std::hash<int64_t>()(AsInt());
    case ValueType::kDouble: {
      // Hash doubles that hold integral values like the equal int so that
      // Compare-equal values hash equal.
      const double d = AsDouble();
      if (d == std::floor(d) && std::abs(d) < 1e18) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

bool Key::operator<(const Key& other) const {
  const size_t n = std::min(parts.size(), other.parts.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = parts[i].Compare(other.parts[i]);
    if (c != 0) return c < 0;
  }
  return parts.size() < other.parts.size();
}

size_t Key::Hash() const {
  size_t h = 0x345678;
  for (const auto& v : parts) {
    h = h * 1000003 ^ v.Hash();
  }
  return h;
}

std::string Key::ToString() const { return RowToString(parts); }

}  // namespace sirep::sql
