#include "gcs/wire.h"

#include "sql/serde.h"

namespace sirep::gcs {

namespace {
/// Smallest possible encoded entry: empty type string (4), stash_id (8),
/// enqueue_ns (8), empty payload string (4); version >= 2 adds the
/// trace context (8 + 4 + 8 + 8).
constexpr size_t kMinEntryBytesV1 = 24;
constexpr size_t kMinEntryBytesV2 = kMinEntryBytesV1 + 28;
}  // namespace

void EncodeWireFrame(const WireFrame& frame, std::string* out) {
  sql::EncodeU32(kWireMagic, out);
  out->push_back(static_cast<char>(kWireVersion));
  out->push_back(
      static_cast<char>(frame.header_variant ? kWireFlagHeaderOnly : 0));
  sql::EncodeU32(frame.sender, out);
  sql::EncodeU32(static_cast<uint32_t>(frame.entries.size()), out);
  for (const auto& entry : frame.entries) {
    sql::EncodeString(entry.type, out);
    sql::EncodeU64(entry.stash_id, out);
    sql::EncodeU64(entry.enqueue_ns, out);
    sql::EncodeU64(entry.trace.trace_id, out);
    sql::EncodeU32(entry.trace.origin_replica, out);
    sql::EncodeU64(entry.trace.origin_mono_ns, out);
    sql::EncodeU64(entry.trace.origin_wall_ns, out);
    sql::EncodeString(entry.payload, out);
  }
}

Status DecodeWireFrame(const std::string& in, WireFrame* out) {
  size_t pos = 0;
  uint32_t magic = 0;
  SIREP_RETURN_IF_ERROR(sql::DecodeU32(in, &pos, &magic));
  if (magic != kWireMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (pos + 2 > in.size()) {
    return Status::InvalidArgument("truncated frame header");
  }
  const uint8_t version = static_cast<uint8_t>(in[pos++]);
  if (version < 1 || version > kWireVersion) {
    return Status::InvalidArgument("unsupported frame version " +
                                   std::to_string(version));
  }
  const uint8_t flags = static_cast<uint8_t>(in[pos++]);
  const uint8_t known_flags = version >= 3 ? kWireFlagHeaderOnly : 0;
  if ((flags & ~known_flags) != 0) {
    return Status::InvalidArgument("unsupported frame flags");
  }
  out->header_variant = (flags & kWireFlagHeaderOnly) != 0;
  uint32_t sender = 0;
  SIREP_RETURN_IF_ERROR(sql::DecodeU32(in, &pos, &sender));
  uint32_t count = 0;
  SIREP_RETURN_IF_ERROR(sql::DecodeU32(in, &pos, &count));
  const size_t min_entry_bytes =
      version >= 2 ? kMinEntryBytesV2 : kMinEntryBytesV1;
  if (static_cast<size_t>(count) * min_entry_bytes > in.size() - pos) {
    return Status::InvalidArgument("frame entry count exceeds frame size");
  }
  out->sender = sender;
  out->entries.clear();
  out->entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireEntry entry;
    SIREP_RETURN_IF_ERROR(sql::DecodeString(in, &pos, &entry.type));
    SIREP_RETURN_IF_ERROR(sql::DecodeU64(in, &pos, &entry.stash_id));
    SIREP_RETURN_IF_ERROR(sql::DecodeU64(in, &pos, &entry.enqueue_ns));
    if (version >= 2) {
      SIREP_RETURN_IF_ERROR(sql::DecodeU64(in, &pos, &entry.trace.trace_id));
      SIREP_RETURN_IF_ERROR(
          sql::DecodeU32(in, &pos, &entry.trace.origin_replica));
      SIREP_RETURN_IF_ERROR(
          sql::DecodeU64(in, &pos, &entry.trace.origin_mono_ns));
      SIREP_RETURN_IF_ERROR(
          sql::DecodeU64(in, &pos, &entry.trace.origin_wall_ns));
    }
    SIREP_RETURN_IF_ERROR(sql::DecodeString(in, &pos, &entry.payload));
    out->entries.push_back(std::move(entry));
  }
  if (pos != in.size()) {
    return Status::InvalidArgument("trailing bytes after frame");
  }
  return Status::OK();
}

}  // namespace sirep::gcs
