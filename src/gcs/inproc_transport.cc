// The original single-process dissemination model: the sequencer is a
// mutex, delivery queues are in-memory, payloads are shared pointers
// (zero copy). Retained as the default backend because it is exact and
// fast for single-process experiments; the TCP backend (tcp_transport.cc)
// exists for everything that needs real frames on real sockets.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/logging.h"
#include "common/sync.h"
#include "gcs/transport.h"

namespace sirep::gcs {

namespace {

class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(const TransportOptions& options)
      : options_(options) {
    if (options_.registry != nullptr) {
      h_delivery_lag_us_ =
          options_.registry->GetLatencyHistogram("gcs.delivery_lag_us");
      g_queue_depth_ = options_.registry->GetGauge("gcs.queue_depth");
    }
  }

  ~InProcessTransport() override { Shutdown(); }

  bool needs_encoding() const override { return false; }

  MemberId AddMember(FrameSink* sink) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return kInvalidMember;
    const MemberId id = next_member_++;
    auto member = std::make_unique<Member>();
    member->sink = sink;
    members_[id] = std::move(member);
    members_[id]->delivery_thread =
        std::thread([this, id] { DeliveryLoop(id); });
    EnqueueViewLocked();
    return id;
  }

  void Crash(MemberId member_id) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = members_.find(member_id);
    if (it == members_.end() ||
        it->second->crashed.load(std::memory_order_acquire)) {
      return;
    }
    it->second->crashed.store(true, std::memory_order_release);
    // Stop delivery to the crashed member. Its queue may still hold
    // frames; they are dropped (the process is gone). Uniformity is about
    // *surviving* members, whose queues already hold everything multicast
    // before this point — and the view change below is enqueued after
    // them.
    it->second->queue.Close();
    SIREP_ILOG << "GCS: member " << member_id << " crashed";
    EnqueueViewLocked();
  }

  bool IsAlive(MemberId member) const override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = members_.find(member);
    return it != members_.end() &&
           !it->second->crashed.load(std::memory_order_acquire) &&
           !shutdown_;
  }

  Status Multicast(Frame frame) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::Unavailable("group is shut down");
    auto it = members_.find(frame.sender);
    if (it == members_.end()) {
      return Status::InvalidArgument("unknown sender " +
                                     std::to_string(frame.sender));
    }
    if (it->second->crashed.load(std::memory_order_acquire)) {
      return Status::Unavailable("sender " + std::to_string(frame.sender) +
                                 " has crashed");
    }
    Event event;
    event.kind = Event::Kind::kFrame;
    event.base_seqno = next_seqno_ + 1;
    next_seqno_ += frame.message_count;
    event.frame = std::move(frame);
    event.deliver_at =
        std::chrono::steady_clock::now() + options_.multicast_delay;
    // Enqueue to every live member under the same lock that assigned the
    // sequence numbers: this is what makes the order total and the
    // delivery uniform. Members named in strip_members get the same
    // slot with each entry's payload swapped for its header-only twin
    // (partial replication): identical order, lighter body.
    for (const auto& [id, member] : members_) {
      if (member->crashed.load(std::memory_order_acquire)) continue;
      pending_count_.fetch_add(1, std::memory_order_relaxed);
      const bool stripped = id <= 63 &&
                            ((event.frame.strip_members >> id) & 1) != 0;
      bool pushed;
      if (stripped) {
        Event header_event = event;
        for (auto& entry : header_event.frame.entries) {
          if (entry.header_payload != nullptr) {
            entry.payload = entry.header_payload;
          }
        }
        pushed = member->queue.Push(std::move(header_event));
      } else {
        pushed = member->queue.Push(event);
      }
      if (!pushed) {
        pending_count_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    return Status::OK();
  }

  View CurrentView() const override {
    std::lock_guard<std::mutex> lock(mu_);
    View view;
    view.view_id = view_id_;
    for (const auto& [id, member] : members_) {
      if (!member->crashed.load(std::memory_order_acquire)) {
        view.members.push_back(id);
      }
    }
    std::sort(view.members.begin(), view.members.end());
    return view;
  }

  void WaitForQuiescence() override {
    std::unique_lock<std::mutex> lock(quiesce_mu_);
    quiesce_cv_.wait(lock, [&] {
      return pending_count_.load(std::memory_order_acquire) <= 0;
    });
  }

  void Shutdown() override {
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      shutdown_ = true;
      for (auto& [id, member] : members_) {
        member->crashed.store(true, std::memory_order_release);
        member->queue.Close();
        threads.push_back(std::move(member->delivery_thread));
      }
    }
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  }

 private:
  struct Event {
    enum class Kind { kFrame, kView } kind = Kind::kFrame;
    uint64_t base_seqno = 0;
    Frame frame;
    View view;
    std::chrono::steady_clock::time_point deliver_at;
  };

  struct Member {
    FrameSink* sink = nullptr;
    /// Set on crash (and shutdown); the delivery loop discards any events
    /// still queued instead of delivering them.
    std::atomic<bool> crashed{false};
    WorkQueue<Event> queue;
    std::thread delivery_thread;
  };

  void EnqueueViewLocked() {  // caller holds mu_
    View view;
    view.view_id = ++view_id_;
    for (const auto& [id, member] : members_) {
      if (!member->crashed.load(std::memory_order_acquire)) {
        view.members.push_back(id);
      }
    }
    std::sort(view.members.begin(), view.members.end());
    Event event;
    event.kind = Event::Kind::kView;
    event.view = view;
    event.deliver_at = std::chrono::steady_clock::now();
    for (const auto& [id, member] : members_) {
      if (member->crashed.load(std::memory_order_acquire)) continue;
      pending_count_.fetch_add(1, std::memory_order_relaxed);
      if (!member->queue.Push(event)) {
        pending_count_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }

  void DeliveryLoop(MemberId id) {
    Member* self;
    {
      std::lock_guard<std::mutex> lock(mu_);
      self = members_[id].get();
    }
    while (true) {
      auto event = self->queue.Pop();
      if (!event.has_value()) break;  // closed and drained
      if (!self->crashed.load(std::memory_order_acquire)) {
        // Emulated network latency: sleep until the scheduled delivery
        // time. The queue is FIFO and the delay constant, so order is
        // preserved.
        std::this_thread::sleep_until(event->deliver_at);
        if (event->kind == Event::Kind::kFrame) {
          if (h_delivery_lag_us_ != nullptr) {
            // Lag past the emulated network delay = scheduling + backlog.
            h_delivery_lag_us_->Observe(
                std::chrono::duration_cast<
                    std::chrono::duration<double, std::micro>>(
                    std::chrono::steady_clock::now() - event->deliver_at)
                    .count());
          }
          self->sink->OnFrame(event->base_seqno, event->frame);
        } else {
          self->sink->OnViewChange(event->view);
        }
      }
      const int64_t left =
          pending_count_.fetch_sub(1, std::memory_order_acq_rel);
      if (g_queue_depth_ != nullptr) g_queue_depth_->Set(left - 1);
      if (left == 1) {
        std::lock_guard<std::mutex> lock(quiesce_mu_);
        quiesce_cv_.notify_all();
      }
    }
  }

  TransportOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<MemberId, std::unique_ptr<Member>> members_;
  MemberId next_member_ = 0;
  uint64_t next_seqno_ = 0;
  uint64_t view_id_ = 0;
  bool shutdown_ = false;

  std::atomic<int64_t> pending_count_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;

  obs::Histogram* h_delivery_lag_us_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
};

}  // namespace

std::unique_ptr<Transport> MakeInProcessTransport(
    const TransportOptions& options) {
  return std::make_unique<InProcessTransport>(options);
}

}  // namespace sirep::gcs
