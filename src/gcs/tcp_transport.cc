// TCP sequencer transport: the group runs over real loopback sockets
// with one sequencer role that assigns the global total order, the way
// a fixed-sequencer GCS (or Spread's token holder for a single segment)
// does. Every broadcast record — data frame or view change — occupies
// one slot of a single *stream index* space; members buffer records,
// ack them immediately, and only deliver up to the stable watermark the
// sequencer computes from the acks of all live members. That
// ack-before-deliver discipline is what makes delivery uniform: a
// record is never delivered anywhere until every live member holds it,
// so a crash after first delivery cannot lose it at the survivors.
//
// Wire records (all little-endian, `u32 length` prefix over the body):
//
//   member -> sequencer
//     kSend   u32 message_count, string frame,     multicast request
//             u64 strip_members,
//             string header_frame                  header-only variant
//                                                  delivered to members
//                                                  named in strip_members
//                                                  (partial replication);
//                                                  empty when unrouted
//     kAck    u64 stream_index                     "I buffered record i"
//     kCrash  (empty)                              crash marker; sent
//                                                  after the member's
//                                                  final kSend, so the
//                                                  sequencer orders all
//                                                  pre-crash messages
//                                                  before the view change
//   sequencer -> member
//     kWelcome u32 member_id
//     kData    u64 stream_index, u64 base_seqno,
//              u32 message_count, string frame
//     kStable  u64 stream_index                    deliver up to here
//     kView    u64 stream_index, u64 view_id,
//              u32 n, n x u32 members
//
// Everything still lives in one process (the reproduction's replicas
// are threads), so CurrentView()/IsAlive() read sequencer state through
// shared memory instead of a membership protocol; the data path,
// however, moves only serialized bytes through the sockets.

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/sync.h"
#include "gcs/socket_util.h"
#include "gcs/transport.h"
#include "sql/serde.h"

namespace sirep::gcs {

namespace {

enum Opcode : uint8_t {
  kWelcome = 1,
  kView = 2,
  kData = 3,
  kStable = 4,
  kSend = 5,
  kAck = 6,
  kCrash = 7,
};

using net::ConfigureSocket;
using net::ReadRecord;
using net::RecordBuffer;
using net::WriteRecord;
using net::kRecvPollPeriod;

class TcpSequencerTransport : public Transport {
  struct Endpoint;  // defined in the private section below

 public:
  explicit TcpSequencerTransport(const TransportOptions& options)
      : send_timeout_(options.tcp_send_timeout),
        connect_deadline_(options.tcp_connect_deadline) {
    if (options.registry != nullptr) {
      h_delivery_lag_us_ =
          options.registry->GetLatencyHistogram("gcs.delivery_lag_us");
      g_queue_depth_ = options.registry->GetGauge("gcs.queue_depth");
      c_reconnects_ = options.registry->GetCounter("gcs.tcp.connect_retries");
      c_peer_expelled_ = options.registry->GetCounter("gcs.tcp.peers_expelled");
      c_dup_dropped_ = options.registry->GetCounter("gcs.tcp.dup_frames_dropped");
      c_self_expelled_ = options.registry->GetCounter("gcs.tcp.self_expulsions");
      c_backoff_resets_ = options.registry->GetCounter("gcs.tcp.backoff_resets");
    }
    StartSequencer();
  }

  ~TcpSequencerTransport() override { Shutdown(); }

  bool needs_encoding() const override { return true; }

  MemberId AddMember(FrameSink* sink) override {
    if (shutdown_.load(std::memory_order_acquire) || listen_fd_ < 0) {
      return kInvalidMember;
    }
    // Connect + welcome handshake, retried with bounded exponential
    // backoff until connect_deadline_: a sequencer that is briefly
    // unreachable or drops the connection mid-handshake (e.g. the
    // "gcs.tcp.accept" failpoint) costs join latency, not the join.
    const auto deadline = std::chrono::steady_clock::now() + connect_deadline_;
    auto backoff = std::chrono::milliseconds(1);
    auto endpoint = std::make_unique<Endpoint>();
    while (true) {
      if (shutdown_.load(std::memory_order_acquire)) return kInvalidMember;
      bool connect_accepted = false;
      if (TryConnect(endpoint.get(), &connect_accepted)) break;
      if (std::chrono::steady_clock::now() + backoff >= deadline) {
        SIREP_WLOG << "GCS/tcp: join failed; connect deadline exhausted";
        return kInvalidMember;
      }
      if (c_reconnects_ != nullptr) c_reconnects_->Increment();
      if (connect_accepted && backoff > std::chrono::milliseconds(1)) {
        // The TCP connect was accepted and only the welcome failed: the
        // sequencer process is reachable again after whatever blip drove
        // the backoff up. Restart the ladder at its floor — otherwise a
        // member that survived two blips begins its third recovery at
        // max backoff and pays ~100ms of join latency for a sequencer
        // that is already back.
        backoff = std::chrono::milliseconds(1);
        if (c_backoff_resets_ != nullptr) c_backoff_resets_->Increment();
      }
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, std::chrono::milliseconds(100));
    }
    const MemberId id = endpoint->id;
    endpoint->sink = sink;
    Endpoint* ep = endpoint.get();
    {
      std::lock_guard<std::mutex> lock(endpoints_mu_);
      endpoints_[id] = std::move(endpoint);
    }
    ep->rx_thread = std::thread([this, ep] { ReceiveLoop(ep); });
    ep->delivery_thread = std::thread([this, ep] { DeliveryLoop(ep); });
    // Balanced by AcceptMember: reading the welcome only proves the
    // sequencer accepted us, not that it has broadcast the join view yet,
    // and WaitForQuiescence() must cover that view.
    joins_submitted_.fetch_add(1, std::memory_order_acq_rel);
    return id;
  }

  /// One connect + welcome-handshake attempt. On success fills
  /// endpoint->fd and endpoint->id and returns true; on any failure
  /// (including the "gcs.tcp.connect" failpoint simulating a transient
  /// network error) cleans up and returns false for the caller to retry.
  /// `connect_accepted` reports the stage the attempt reached: true iff
  /// the TCP connect itself succeeded and only the welcome handshake
  /// failed afterwards — the caller's signal that the sequencer is
  /// reachable and escalated backoff is no longer warranted.
  bool TryConnect(Endpoint* endpoint, bool* connect_accepted) {
    *connect_accepted = false;
    if (failpoint::AnyArmed() &&
        !failpoint::EvalStatus("gcs.tcp.connect").ok()) {
      return false;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    ConfigureSocket(fd, send_timeout_);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return false;
    }
    *connect_accepted = true;
    // The first record on a fresh connection is always kWelcome. Bound
    // the wait: a sequencer that accepted the TCP connection but never
    // welcomes us (hung, or injected accept failure) is a failed attempt.
    const auto welcome_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(1);
    endpoint->rx_buffer = RecordBuffer();
    std::string body;
    const auto keep_waiting = [&] {
      return !shutdown_.load(std::memory_order_acquire) &&
             std::chrono::steady_clock::now() < welcome_deadline;
    };
    if (!ReadRecord(fd, &endpoint->rx_buffer, &body, keep_waiting) ||
        body.empty() || static_cast<uint8_t>(body[0]) != kWelcome) {
      ::close(fd);
      return false;
    }
    size_t pos = 1;
    uint32_t id = kInvalidMember;
    if (!sql::DecodeU32(body, &pos, &id).ok()) {
      ::close(fd);
      return false;
    }
    endpoint->fd = fd;
    endpoint->id = id;
    return true;
  }

  void Crash(MemberId member) override {
    Endpoint* ep = FindEndpoint(member);
    if (ep == nullptr || ep->crashed.exchange(true)) return;
    SIREP_ILOG << "GCS/tcp: member " << member << " crashed";
    // Balanced by RemoveMemberLocked; WaitForQuiescence() holds out until
    // the sequencer has processed the marker (and thus broadcast the
    // resulting view change).
    crashes_submitted_.fetch_add(1, std::memory_order_acq_rel);
    {
      // The marker is written after any in-flight Multicast() completes
      // its kSend (same mutex), so on the sequencer's stream every
      // pre-crash message precedes the crash — and therefore precedes
      // the view change the sequencer broadcasts for it.
      std::lock_guard<std::mutex> lock(ep->send_mu);
      std::string body(1, static_cast<char>(kCrash));
      WriteRecord(ep->fd, body);
      ::shutdown(ep->fd, SHUT_WR);
    }
  }

  bool IsAlive(MemberId member) const override {
    if (shutdown_.load(std::memory_order_acquire)) return false;
    // The endpoint flag, not sequencer membership: Crash() sets it before
    // returning, while the sequencer learns of the crash asynchronously —
    // and the caller expects IsAlive(m) == false as soon as Crash(m)
    // returns.
    std::lock_guard<std::mutex> lock(endpoints_mu_);
    auto it = endpoints_.find(member);
    return it != endpoints_.end() &&
           !it->second->crashed.load(std::memory_order_acquire);
  }

  Status Multicast(Frame frame) override {
    if (shutdown_.load(std::memory_order_acquire)) {
      return Status::Unavailable("group is shut down");
    }
    Endpoint* ep = FindEndpoint(frame.sender);
    if (ep == nullptr) {
      return Status::InvalidArgument("unknown sender " +
                                     std::to_string(frame.sender));
    }
    if (ep->crashed.load(std::memory_order_acquire)) {
      return Status::Unavailable("sender " + std::to_string(frame.sender) +
                                 " has crashed");
    }
    // Fault injection on the member->sequencer link. "gcs.tcp.send"
    // drops (error) or slows (delay) the frame before it reaches the
    // wire; "gcs.tcp.send.reset" tears the whole connection down with no
    // kCrash marker — an unannounced drop both the sequencer (EOF =>
    // expel + view change) and this member (EOF => self-expulsion) must
    // discover on their own.
    if (const auto hit = SIREP_FAILPOINT_HIT("gcs.tcp.send"); hit.fired) {
      const Status injected = hit.ToStatus("gcs.tcp.send");
      if (!injected.ok()) return injected;
    }
    if (SIREP_FAILPOINT_HIT("gcs.tcp.send.reset").fired) {
      SIREP_WLOG << "GCS/tcp: injected connection reset at member "
                 << frame.sender;
      std::lock_guard<std::mutex> lock(ep->send_mu);
      // SHUT_RDWR, not a lingering close: queued bytes already accepted
      // by the kernel still reach the sequencer (TCP flushes before the
      // FIN), matching a process that died after its last full send.
      ::shutdown(ep->fd, SHUT_RDWR);
      return Status::Unavailable("injected connection reset");
    }
    std::string body(1, static_cast<char>(kSend));
    sql::EncodeU32(frame.message_count, &body);
    sql::EncodeString(frame.encoded, &body);
    sql::EncodeU64(frame.strip_members, &body);
    sql::EncodeString(frame.encoded_header, &body);
    sends_submitted_.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> lock(ep->send_mu);
    if (ep->crashed.load(std::memory_order_acquire) ||
        !WriteRecord(ep->fd, body)) {
      sends_submitted_.fetch_sub(1, std::memory_order_acq_rel);
      return Status::Unavailable("sender " + std::to_string(frame.sender) +
                                 " disconnected");
    }
    return Status::OK();
  }

  View CurrentView() const override {
    std::lock_guard<std::mutex> lock(seq_mu_);
    View view;
    view.view_id = seq_view_id_;
    for (const auto& [id, fd] : seq_live_) view.members.push_back(id);
    return view;
  }

  void WaitForQuiescence() override {
    std::unique_lock<std::mutex> lock(quiesce_mu_);
    quiesce_cv_.wait(lock, [&] { return QuiescentLocked(); });
  }

  void Shutdown() override {
    if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
    // Wake every blocked recv/accept; threads observe shutdown_ and exit.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    {
      std::lock_guard<std::mutex> lock(endpoints_mu_);
      for (auto& [id, ep] : endpoints_) {
        ep->crashed.store(true, std::memory_order_release);
        ::shutdown(ep->fd, SHUT_RDWR);
        ep->rx_queue.Close();
      }
    }
    if (sequencer_thread_.joinable()) sequencer_thread_.join();
    {
      std::lock_guard<std::mutex> lock(endpoints_mu_);
      for (auto& [id, ep] : endpoints_) {
        if (ep->rx_thread.joinable()) ep->rx_thread.join();
        if (ep->delivery_thread.joinable()) ep->delivery_thread.join();
        ::close(ep->fd);
      }
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    quiesce_cv_.notify_all();
  }

 private:
  /// One record of the member-side delivery stream, already acked and
  /// waiting for the stable watermark to reach its index.
  struct RxRecord {
    /// kDisconnect: pushed by the rx thread when the connection dies
    /// without this member having crashed or the transport shutting
    /// down — the sequencer dropped *us*. The delivery thread turns it
    /// into a synthetic self-excluding view change so the member's
    /// listener learns it was expelled (and can crash itself) instead
    /// of running on as a zombie that clients still get routed to.
    enum class Kind { kFrame, kView, kStableMark, kDisconnect } kind =
        Kind::kFrame;
    uint64_t stream_index = 0;
    uint64_t base_seqno = 0;  // kFrame
    Frame frame;              // kFrame
    View view;                // kView
    uint64_t stable = 0;      // kStableMark
    uint64_t rx_ns = 0;       // kFrame: MonotonicNanos at socket receive
  };

  struct Endpoint {
    MemberId id = kInvalidMember;
    int fd = -1;
    FrameSink* sink = nullptr;
    std::atomic<bool> crashed{false};
    /// Serializes all writes to fd: kSend (Multicast), kAck (rx thread),
    /// kCrash (Crash).
    std::mutex send_mu;
    RecordBuffer rx_buffer;
    /// rx thread -> delivery thread. Keeping the socket drained on a
    /// dedicated thread means a slow listener can never back-pressure
    /// the sequencer's blocking broadcast writes into a deadlock.
    WorkQueue<RxRecord> rx_queue;
    std::thread rx_thread;
    std::thread delivery_thread;
    /// Highest stream index this member has delivered (quiescence).
    std::atomic<uint64_t> delivered_index{0};
  };

  /// Sequencer-side per-broadcast ack bookkeeping.
  struct PendingRecord {
    std::vector<MemberId> waiting;  // live members that have not acked
  };

  // ---------------------------------------------------------------- //
  // Sequencer role                                                   //
  // ---------------------------------------------------------------- //

  void StartSequencer() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    sequencer_thread_ = std::thread([this] { SequencerLoop(); });
  }

  void SequencerLoop() {
    std::unordered_map<int, RecordBuffer> rx;  // fd -> parse buffer
    std::unordered_map<int, MemberId> who;     // fd -> member
    while (!shutdown_.load(std::memory_order_acquire)) {
      std::vector<pollfd> fds;
      fds.push_back({listen_fd_, POLLIN, 0});
      {
        std::lock_guard<std::mutex> lock(seq_mu_);
        for (const auto& [id, fd] : seq_live_) fds.push_back({fd, POLLIN, 0});
      }
      const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/50);
      if (ready <= 0) continue;
      if (fds[0].revents != 0) AcceptMember(&rx, &who);
      for (size_t i = 1; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        DrainMember(fds[i].fd, &rx, &who);
      }
    }
  }

  void AcceptMember(std::unordered_map<int, RecordBuffer>* rx,
                    std::unordered_map<int, MemberId>* who) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    // Injected accept failure: drop the connection before the welcome.
    // The joiner sees EOF on its welcome read and retries with backoff.
    if (failpoint::AnyArmed() &&
        !failpoint::EvalStatus("gcs.tcp.accept").ok()) {
      SIREP_WLOG << "GCS/tcp: injected accept failure";
      ::close(fd);
      return;
    }
    ConfigureSocket(fd, send_timeout_);
    std::lock_guard<std::mutex> lock(seq_mu_);
    const MemberId id = seq_next_member_++;
    std::string welcome(1, static_cast<char>(kWelcome));
    sql::EncodeU32(id, &welcome);
    if (!WriteRecord(fd, welcome)) {
      ::close(fd);
      return;
    }
    seq_live_[id] = fd;
    (*rx)[fd];
    (*who)[fd] = id;
    BroadcastViewLocked();
    joins_processed_.fetch_add(1, std::memory_order_acq_rel);
    NotifyQuiescence();
  }

  void DrainMember(int fd, std::unordered_map<int, RecordBuffer>* rx,
                   std::unordered_map<int, MemberId>* who) {
    auto it = who->find(fd);
    if (it == who->end()) return;
    const MemberId id = it->second;
    RecordBuffer& buf = (*rx)[fd];
    bool eof = false;
    char chunk[16384];
    while (true) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n > 0) {
        buf.Append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      eof = true;  // EOF or hard error
      break;
    }
    // Process every complete record read so far — crucially *before*
    // acting on EOF, so kSends and kAcks that preceded a crash marker
    // (or the connection teardown) still take effect first. Only a
    // crash marker (or corruption) cuts the record stream short.
    bool crashed = false;
    std::string body;
    std::lock_guard<std::mutex> lock(seq_mu_);
    while (!crashed && buf.Next(&body)) {
      if (seq_live_.count(id) == 0) return;  // already removed
      HandleRecordLocked(id, body, &crashed);
    }
    if (buf.corrupt()) crashed = true;
    if ((eof || crashed) && seq_live_.count(id) != 0) RemoveMemberLocked(id);
  }

  void HandleRecordLocked(MemberId id, const std::string& body, bool* gone) {
    if (body.empty()) return;
    const uint8_t op = static_cast<uint8_t>(body[0]);
    size_t pos = 1;
    switch (op) {
      case kSend: {
        uint32_t count = 0;
        std::string frame;
        uint64_t strip = 0;
        std::string header_frame;
        if (!sql::DecodeU32(body, &pos, &count).ok() ||
            !sql::DecodeString(body, &pos, &frame).ok() ||
            !sql::DecodeU64(body, &pos, &strip).ok() ||
            !sql::DecodeString(body, &pos, &header_frame).ok() ||
            count == 0) {
          SIREP_ELOG << "GCS/tcp: malformed kSend from member " << id;
          *gone = true;
          return;
        }
        const uint64_t idx = ++seq_next_index_;
        last_index_.store(idx, std::memory_order_release);
        const uint64_t base = seq_next_seqno_ + 1;
        seq_next_seqno_ += count;
        const std::string data = MakeDataRecord(idx, base, count, frame);
        if (strip != 0 && !header_frame.empty()) {
          // Routed multicast: stripped members get the header-only twin
          // in the SAME stream slot — identical index, base seqno, ack
          // and stability bookkeeping, lighter body.
          BroadcastRoutedLocked(
              idx, data, MakeDataRecord(idx, base, count, header_frame),
              strip);
        } else {
          BroadcastLocked(idx, data);
        }
        sends_sequenced_.fetch_add(1, std::memory_order_acq_rel);
        NotifyQuiescence();
        break;
      }
      case kAck: {
        uint64_t idx = 0;
        if (!sql::DecodeU64(body, &pos, &idx).ok()) return;
        auto it = seq_pending_.find(idx);
        if (it == seq_pending_.end()) return;
        auto& waiting = it->second.waiting;
        waiting.erase(std::remove(waiting.begin(), waiting.end(), id),
                      waiting.end());
        AdvanceStableLocked();
        break;
      }
      case kCrash:
        *gone = true;
        break;
      default:
        SIREP_ELOG << "GCS/tcp: unexpected opcode " << int{op}
                   << " from member " << id;
        *gone = true;
        break;
    }
  }

  static std::string MakeDataRecord(uint64_t idx, uint64_t base,
                                    uint32_t count, const std::string& frame) {
    std::string data(1, static_cast<char>(kData));
    sql::EncodeU64(idx, &data);
    sql::EncodeU64(base, &data);
    sql::EncodeU32(count, &data);
    sql::EncodeString(frame, &data);
    return data;
  }

  /// Broadcasts one stream record to all live members and registers it
  /// for ack tracking. A member whose socket cannot take the record
  /// within the send timeout is hung or gone — it gets expelled (view
  /// change) instead of wedging every future broadcast behind its full
  /// buffer. Caller holds seq_mu_.
  void BroadcastLocked(uint64_t idx, const std::string& body) {
    BroadcastRoutedLocked(idx, body, body, /*strip=*/0);
  }

  /// BroadcastLocked with payload routing: members named in `strip`
  /// (ids < 64) receive `header_body`, everyone else `full_body`. Both
  /// are encodings of the same stream slot, so acks, the stable
  /// watermark and view synchrony see exactly one record either way.
  /// Caller holds seq_mu_.
  void BroadcastRoutedLocked(uint64_t idx, const std::string& full_body,
                             const std::string& header_body, uint64_t strip) {
    PendingRecord pending;
    for (const auto& [mid, mfd] : seq_live_) pending.waiting.push_back(mid);
    seq_pending_[idx] = std::move(pending);
    std::vector<MemberId> dead;
    for (const auto& [mid, mfd] : seq_live_) {
      const bool stripped = mid <= 63 && ((strip >> mid) & 1) != 0;
      if (!WriteRecord(mfd, stripped ? header_body : full_body)) {
        dead.push_back(mid);
      }
    }
    if (seq_live_.empty()) AdvanceStableLocked();
    ExpelLocked(dead);
  }

  /// Advances the stable watermark over fully-acked records and tells
  /// everyone. Caller holds seq_mu_.
  void AdvanceStableLocked() {
    uint64_t advanced = seq_stable_;
    while (true) {
      auto it = seq_pending_.find(advanced + 1);
      if (it == seq_pending_.end() || !it->second.waiting.empty()) break;
      seq_pending_.erase(it);
      ++advanced;
    }
    if (advanced == seq_stable_) return;
    seq_stable_ = advanced;
    std::string body(1, static_cast<char>(kStable));
    sql::EncodeU64(seq_stable_, &body);
    std::vector<MemberId> dead;
    for (const auto& [mid, mfd] : seq_live_) {
      if (!WriteRecord(mfd, body)) dead.push_back(mid);
    }
    ExpelLocked(dead);
  }

  /// Removes members whose broadcast write failed (hung peer hit the
  /// send timeout, or the connection died). Collected-then-removed so
  /// the caller's seq_live_ iteration stays valid; the recursion through
  /// RemoveMemberLocked -> BroadcastViewLocked -> BroadcastLocked is
  /// bounded by the member count (each removal shrinks seq_live_).
  /// Caller holds seq_mu_.
  void ExpelLocked(const std::vector<MemberId>& dead) {
    for (const MemberId mid : dead) {
      if (seq_live_.count(mid) == 0) continue;  // already expelled
      SIREP_WLOG << "GCS/tcp: expelling member " << mid
                 << " (broadcast write failed or timed out)";
      if (c_peer_expelled_ != nullptr) c_peer_expelled_->Increment();
      RemoveMemberLocked(mid);
    }
  }

  /// Removes a crashed/disconnected member: waive its outstanding acks,
  /// advance stability, then broadcast the new view — which, being a
  /// later stream record, is delivered after everything the member sent
  /// before it crashed (view synchrony). Caller holds seq_mu_.
  void RemoveMemberLocked(MemberId id) {
    auto it = seq_live_.find(id);
    if (it == seq_live_.end()) return;
    const int fd = it->second;
    seq_live_.erase(it);
    ::close(fd);
    // Deliberately NOT marking the endpoint crashed here. The close()
    // above sends the member a FIN; its rx loop sees EOF and queues a
    // disconnect, and SelfExpel then both marks it crashed (which is
    // what un-blocks the quiescence predicate) and delivers the
    // self-excluding view change. Pre-marking it crashed from this
    // (sequencer) thread races ahead of the member's rx loop and
    // suppresses that notification — leaving the expelled replica
    // serving snapshot reads as a zombie.
    for (auto& [idx, pending] : seq_pending_) {
      auto& waiting = pending.waiting;
      waiting.erase(std::remove(waiting.begin(), waiting.end(), id),
                    waiting.end());
    }
    BroadcastViewLocked();
    AdvanceStableLocked();
    // Counts every removal (crash marker or EOF), so it can run ahead of
    // crashes_submitted_ — the quiescence predicate uses >=.
    crashes_processed_.fetch_add(1, std::memory_order_acq_rel);
    NotifyQuiescence();
  }

  /// Broadcasts the current membership as a stream record. Caller holds
  /// seq_mu_.
  void BroadcastViewLocked() {
    ++seq_view_id_;
    const uint64_t idx = ++seq_next_index_;
    last_index_.store(idx, std::memory_order_release);
    std::string body(1, static_cast<char>(kView));
    sql::EncodeU64(idx, &body);
    sql::EncodeU64(seq_view_id_, &body);
    sql::EncodeU32(static_cast<uint32_t>(seq_live_.size()), &body);
    for (const auto& [mid, mfd] : seq_live_) sql::EncodeU32(mid, &body);
    BroadcastLocked(idx, body);
  }

  // ---------------------------------------------------------------- //
  // Member role                                                      //
  // ---------------------------------------------------------------- //

  /// Reads records off the socket, acks them, and hands them to the
  /// delivery thread. Never does application work: its only job is to
  /// keep the socket drained and the ack latency low.
  void ReceiveLoop(Endpoint* ep) {
    std::string body;
    const auto keep_waiting = [this, ep] {
      // Idle is normal here: keep blocking while the member is alive.
      return !shutdown_.load(std::memory_order_acquire) &&
             !ep->crashed.load(std::memory_order_acquire);
    };
    bool dup_pending = false;
    RxRecord dup_record;
    while (ReadRecord(ep->fd, &ep->rx_buffer, &body, keep_waiting)) {
      if (shutdown_.load(std::memory_order_acquire)) break;
      if (body.empty()) continue;
      const uint8_t op = static_cast<uint8_t>(body[0]);
      size_t pos = 1;
      RxRecord record;
      switch (op) {
        case kData: {
          record.kind = RxRecord::Kind::kFrame;
          uint32_t count = 0;
          if (!sql::DecodeU64(body, &pos, &record.stream_index).ok() ||
              !sql::DecodeU64(body, &pos, &record.base_seqno).ok() ||
              !sql::DecodeU32(body, &pos, &count).ok() ||
              !sql::DecodeString(body, &pos, &record.frame.encoded).ok()) {
            SIREP_ELOG << "GCS/tcp: malformed kData at member " << ep->id;
            continue;
          }
          record.frame.message_count = count;
          record.rx_ns = obs::MonotonicNanos();
          // "gcs.tcp.recv" delays the ack (stalls the stable watermark —
          // a slow consumer); "gcs.tcp.recv.dup" re-enqueues the frame
          // (a retransmitting network) to prove delivery dedupes.
          SIREP_FAILPOINT_HIT("gcs.tcp.recv");
          if (SIREP_FAILPOINT_HIT("gcs.tcp.recv.dup").fired) {
            dup_pending = true;
            dup_record = record;
          }
          SendAck(ep, record.stream_index);
          break;
        }
        case kView: {
          record.kind = RxRecord::Kind::kView;
          uint32_t n = 0;
          if (!sql::DecodeU64(body, &pos, &record.stream_index).ok() ||
              !sql::DecodeU64(body, &pos, &record.view.view_id).ok() ||
              !sql::DecodeU32(body, &pos, &n).ok()) {
            continue;
          }
          record.view.members.resize(n);
          bool ok = true;
          for (uint32_t i = 0; i < n; ++i) {
            ok = ok && sql::DecodeU32(body, &pos, &record.view.members[i]).ok();
          }
          if (!ok) continue;
          std::sort(record.view.members.begin(), record.view.members.end());
          SendAck(ep, record.stream_index);
          break;
        }
        case kStable: {
          record.kind = RxRecord::Kind::kStableMark;
          if (!sql::DecodeU64(body, &pos, &record.stable).ok()) continue;
          break;
        }
        default:
          continue;
      }
      ep->rx_queue.Push(std::move(record));
      if (dup_pending) {
        dup_pending = false;
        ep->rx_queue.Push(dup_record);  // injected duplicate frame
      }
    }
    // Unexpected EOF — the socket died while this member believed itself
    // alive, i.e. the sequencer expelled us (send timeout, reset, accept
    // churn). Queue a disconnect event so the delivery thread can raise
    // the self-excluding view change in stream order.
    if (!shutdown_.load(std::memory_order_acquire) &&
        !ep->crashed.load(std::memory_order_acquire)) {
      RxRecord disconnect;
      disconnect.kind = RxRecord::Kind::kDisconnect;
      ep->rx_queue.Push(std::move(disconnect));
    }
    ep->rx_queue.Close();
  }

  void SendAck(Endpoint* ep, uint64_t idx) {
    std::string body(1, static_cast<char>(kAck));
    sql::EncodeU64(idx, &body);
    std::lock_guard<std::mutex> lock(ep->send_mu);
    if (!ep->crashed.load(std::memory_order_acquire)) {
      WriteRecord(ep->fd, body);
    }
  }

  /// Delivers buffered records in stream order up to the stable
  /// watermark. TCP preserves the sequencer's write order, so the
  /// buffer is a plain FIFO. Duplicate records (injected retransmits)
  /// are dropped by the last-delivered index; a kDisconnect from the rx
  /// thread becomes a synthetic self-excluding view change.
  void DeliveryLoop(Endpoint* ep) {
    std::deque<RxRecord> buffered;
    uint64_t stable = 0;
    uint64_t last_delivered = 0;
    View last_view;  // latest membership this member has seen
    while (true) {
      auto record = ep->rx_queue.Pop();
      if (!record.has_value()) break;
      if (record->kind == RxRecord::Kind::kDisconnect) {
        SelfExpel(ep, last_view);
        continue;
      }
      if (record->kind == RxRecord::Kind::kStableMark) {
        stable = std::max(stable, record->stable);
      } else {
        buffered.push_back(std::move(*record));
      }
      if (g_queue_depth_ != nullptr) {
        g_queue_depth_->Set(static_cast<int64_t>(buffered.size()));
      }
      while (!buffered.empty() && buffered.front().stream_index <= stable) {
        RxRecord front = std::move(buffered.front());
        buffered.pop_front();
        if (front.stream_index <= last_delivered) {
          // Duplicate of an already-delivered record: drop it. The ack
          // we re-sent is harmless (the sequencer ignores acks for
          // records past the watermark).
          if (c_dup_dropped_ != nullptr) c_dup_dropped_->Increment();
          continue;
        }
        last_delivered = front.stream_index;
        if (!ep->crashed.load(std::memory_order_acquire)) {
          if (front.kind == RxRecord::Kind::kFrame) {
            if (h_delivery_lag_us_ != nullptr) {
              // Socket receive -> stable delivery: the ack-stability
              // wait the sequencer's uniform-delivery discipline adds.
              h_delivery_lag_us_->Observe(front.rx_ns == 0
                                              ? 0.0
                                              : obs::NanosToUs(
                                                    obs::MonotonicNanos() -
                                                    front.rx_ns));
            }
            ep->sink->OnFrame(front.base_seqno, front.frame);
          } else {
            last_view = front.view;
            ep->sink->OnViewChange(front.view);
          }
        }
        ep->delivered_index.store(front.stream_index,
                                  std::memory_order_release);
        NotifyQuiescence();
      }
    }
  }

  /// The sequencer dropped this member's connection while the member
  /// still considered itself alive: deliver a synthetic view change
  /// that excludes the member itself, so its listener observes the
  /// expulsion (SI-Rep replicas crash themselves on it — a replica the
  /// group has moved on from must not keep serving clients as a
  /// zombie). Runs on the delivery thread, in stream order.
  void SelfExpel(Endpoint* ep, const View& last_view) {
    if (ep->crashed.exchange(true)) {
      NotifyQuiescence();
      return;  // lost a race with Crash()/Shutdown(): nothing to report
    }
    SIREP_WLOG << "GCS/tcp: member " << ep->id
               << " lost its connection; delivering self-expulsion view";
    if (c_self_expelled_ != nullptr) c_self_expelled_->Increment();
    View synthetic;
    synthetic.view_id = last_view.view_id + 1;
    for (const MemberId m : last_view.members) {
      if (m != ep->id) synthetic.members.push_back(m);
    }
    ep->sink->OnViewChange(synthetic);
    NotifyQuiescence();
  }

  // ---------------------------------------------------------------- //
  // Shared state / quiescence                                        //
  // ---------------------------------------------------------------- //

  Endpoint* FindEndpoint(MemberId id) {
    std::lock_guard<std::mutex> lock(endpoints_mu_);
    auto it = endpoints_.find(id);
    return it == endpoints_.end() ? nullptr : it->second.get();
  }

  /// Quiescent = every submitted send has been sequenced and every live
  /// member has delivered up to the last broadcast stream record. Reads
  /// only atomics + endpoints_mu_ — deliberately NOT seq_mu_, because
  /// the sequencer thread notifies the quiescence cv while holding
  /// seq_mu_ and taking it here would invert the lock order.
  bool QuiescentLocked() {
    if (shutdown_.load(std::memory_order_acquire)) return true;
    if (sends_submitted_.load(std::memory_order_acquire) !=
        sends_sequenced_.load(std::memory_order_acquire)) {
      return false;
    }
    if (crashes_processed_.load(std::memory_order_acquire) <
        crashes_submitted_.load(std::memory_order_acquire)) {
      return false;
    }
    if (joins_processed_.load(std::memory_order_acquire) <
        joins_submitted_.load(std::memory_order_acquire)) {
      return false;
    }
    const uint64_t last = last_index_.load(std::memory_order_acquire);
    std::lock_guard<std::mutex> ep_lock(endpoints_mu_);
    for (const auto& [id, ep] : endpoints_) {
      if (ep->crashed.load(std::memory_order_acquire)) continue;
      if (ep->delivered_index.load(std::memory_order_acquire) < last) {
        return false;
      }
    }
    return true;
  }

  void NotifyQuiescence() {
    std::lock_guard<std::mutex> lock(quiesce_mu_);
    quiesce_cv_.notify_all();
  }

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread sequencer_thread_;
  std::atomic<bool> shutdown_{false};

  /// Sequencer state. std::map keeps view member lists sorted for free.
  mutable std::mutex seq_mu_;
  std::map<MemberId, int> seq_live_;  // member -> fd
  MemberId seq_next_member_ = 0;
  uint64_t seq_next_index_ = 0;
  uint64_t seq_next_seqno_ = 0;
  uint64_t seq_stable_ = 0;
  uint64_t seq_view_id_ = 0;
  std::unordered_map<uint64_t, PendingRecord> seq_pending_;
  /// Mirror of seq_next_index_ readable without seq_mu_ (quiescence).
  std::atomic<uint64_t> last_index_{0};

  mutable std::mutex endpoints_mu_;
  std::unordered_map<MemberId, std::unique_ptr<Endpoint>> endpoints_;

  std::atomic<uint64_t> sends_submitted_{0};
  std::atomic<uint64_t> sends_sequenced_{0};
  std::atomic<uint64_t> crashes_submitted_{0};
  std::atomic<uint64_t> crashes_processed_{0};
  std::atomic<uint64_t> joins_submitted_{0};
  std::atomic<uint64_t> joins_processed_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;

  const std::chrono::milliseconds send_timeout_;
  const std::chrono::milliseconds connect_deadline_;

  obs::Histogram* h_delivery_lag_us_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Counter* c_reconnects_ = nullptr;
  obs::Counter* c_peer_expelled_ = nullptr;
  obs::Counter* c_dup_dropped_ = nullptr;
  obs::Counter* c_self_expelled_ = nullptr;
  obs::Counter* c_backoff_resets_ = nullptr;
};

}  // namespace

std::unique_ptr<Transport> MakeTcpSequencerTransport(
    const TransportOptions& options) {
  return std::make_unique<TcpSequencerTransport>(options);
}

}  // namespace sirep::gcs
