#include "gcs/group.h"

#include <algorithm>

#include "common/logging.h"

namespace sirep::gcs {

bool View::Contains(MemberId m) const {
  return std::find(members.begin(), members.end(), m) != members.end();
}

Group::Group(GroupOptions options) : options_(options) {
  h_multicast_us_ = registry_.GetLatencyHistogram("gcs.multicast_us");
  h_delivery_lag_us_ = registry_.GetLatencyHistogram("gcs.delivery_lag_us");
  g_queue_depth_ = registry_.GetGauge("gcs.queue_depth");
  c_delivered_ = registry_.GetCounter("gcs.messages_delivered");
}

Group::~Group() { Shutdown(); }

MemberId Group::Join(GroupListener* listener) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return kInvalidMember;
  const MemberId id = next_member_++;
  auto member = std::make_unique<Member>();
  member->listener = listener;
  members_[id] = std::move(member);
  members_[id]->delivery_thread =
      std::thread([this, id] { DeliveryLoop(id); });
  EnqueueViewLocked();
  return id;
}

void Group::EnqueueViewLocked() {
  View view;
  view.view_id = ++view_id_;
  for (const auto& [id, member] : members_) {
    if (!member->crashed.load(std::memory_order_acquire)) {
      view.members.push_back(id);
    }
  }
  std::sort(view.members.begin(), view.members.end());
  Event event;
  event.kind = Event::Kind::kView;
  event.view = view;
  event.deliver_at = std::chrono::steady_clock::now();
  for (const auto& [id, member] : members_) {
    if (member->crashed.load(std::memory_order_acquire)) continue;
    pending_count_.fetch_add(1, std::memory_order_relaxed);
    if (!member->queue.Push(event)) {
      pending_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void Group::Crash(MemberId member_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = members_.find(member_id);
  if (it == members_.end() ||
      it->second->crashed.load(std::memory_order_acquire)) {
    return;
  }
  it->second->crashed.store(true, std::memory_order_release);
  // Stop delivery to the crashed member. Its queue may still hold
  // messages; they are dropped (the process is gone). Uniformity is about
  // *surviving* members, whose queues already hold everything multicast
  // before this point — and the view change below is enqueued after them.
  it->second->queue.Close();
  SIREP_ILOG << "GCS: member " << member_id << " crashed";
  EnqueueViewLocked();
}

bool Group::IsAlive(MemberId member) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = members_.find(member);
  return it != members_.end() &&
         !it->second->crashed.load(std::memory_order_acquire) && !shutdown_;
}

Status Group::Multicast(MemberId sender, std::string type,
                        std::shared_ptr<const void> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return Status::Unavailable("group is shut down");
  auto it = members_.find(sender);
  if (it == members_.end()) {
    return Status::InvalidArgument("unknown sender " + std::to_string(sender));
  }
  if (it->second->crashed.load(std::memory_order_acquire)) {
    return Status::Unavailable("sender " + std::to_string(sender) +
                               " has crashed");
  }
  Event event;
  event.kind = Event::Kind::kMessage;
  event.message.sender = sender;
  event.message.seqno = ++next_seqno_;
  event.message.type = std::move(type);
  event.message.payload = std::move(payload);
  event.deliver_at = std::chrono::steady_clock::now() +
                     options_.multicast_delay;
  event.enqueued_ns = obs::MonotonicNanos();
  // Enqueue to every live member under the same lock that assigned the
  // sequence number: this is what makes the order total and the delivery
  // uniform.
  for (const auto& [id, member] : members_) {
    if (member->crashed.load(std::memory_order_acquire)) continue;
    pending_count_.fetch_add(1, std::memory_order_relaxed);
    if (!member->queue.Push(event)) {
      pending_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

View Group::CurrentView() const {
  std::lock_guard<std::mutex> lock(mu_);
  View view;
  view.view_id = view_id_;
  for (const auto& [id, member] : members_) {
    if (!member->crashed.load(std::memory_order_acquire)) {
      view.members.push_back(id);
    }
  }
  std::sort(view.members.begin(), view.members.end());
  return view;
}

void Group::DeliveryLoop(MemberId id) {
  Member* self;
  {
    std::lock_guard<std::mutex> lock(mu_);
    self = members_[id].get();
  }
  while (true) {
    auto event = self->queue.Pop();
    if (!event.has_value()) break;  // closed and drained
    if (!self->crashed.load(std::memory_order_acquire)) {
      // Emulated network latency: sleep until the scheduled delivery
      // time. The queue is FIFO and the delay constant, so order is
      // preserved.
      std::this_thread::sleep_until(event->deliver_at);
      if (event->kind == Event::Kind::kMessage) {
        const auto now_tp = std::chrono::steady_clock::now();
        // Lag past the emulated network delay = scheduling + backlog.
        h_delivery_lag_us_->Observe(
            std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
                now_tp - event->deliver_at)
                .count());
        h_multicast_us_->Observe(
            obs::NanosToUs(obs::MonotonicNanos() - event->enqueued_ns));
        self->listener->OnDeliver(event->message);
        delivered_count_.fetch_add(1, std::memory_order_relaxed);
        c_delivered_->Increment();
      } else {
        self->listener->OnViewChange(event->view);
      }
    }
    const int64_t left = pending_count_.fetch_sub(1, std::memory_order_acq_rel);
    g_queue_depth_->Set(left - 1);
    if (left == 1) {
      std::lock_guard<std::mutex> lock(quiesce_mu_);
      quiesce_cv_.notify_all();
    }
  }
}

void Group::WaitForQuiescence() {
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.wait(lock, [&] {
    return pending_count_.load(std::memory_order_acquire) <= 0;
  });
}

void Group::Shutdown() {
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    for (auto& [id, member] : members_) {
      member->crashed.store(true, std::memory_order_release);
      member->queue.Close();
      threads.push_back(std::move(member->delivery_thread));
    }
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace sirep::gcs
