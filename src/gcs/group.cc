#include "gcs/group.h"

#include <algorithm>
#include <cstdlib>
#include <optional>

#include "common/failpoint.h"
#include "common/logging.h"
#include "gcs/wire.h"

namespace sirep::gcs {

namespace {

/// Stash entries beyond this evict oldest-first. The stash only backs
/// in-flight frames, so the cap just bounds damage from a leaked type.
constexpr size_t kStashCapacity = 1024;

TransportKind ResolveTransportKind(TransportKind requested) {
  if (requested != TransportKind::kDefault) return requested;
  const char* env = std::getenv("SIREP_GCS_TRANSPORT");
  if (env != nullptr && std::string(env) == "tcp") return TransportKind::kTcp;
  return TransportKind::kInProcess;
}

}  // namespace

bool View::Contains(MemberId m) const {
  return std::find(members.begin(), members.end(), m) != members.end();
}

/// Per-member frame-to-message adapter: decodes wire frames (codec or
/// stash), fans entries out to the listener as Messages with their
/// per-entry seqnos, and records delivery metrics. Runs on the member's
/// transport delivery thread, so everything here stays in total order.
class Group::MemberSink : public FrameSink {
 public:
  MemberSink(Group* group, GroupListener* listener)
      : group_(group), listener_(listener) {}

  void OnFrame(uint64_t base_seqno, const Frame& frame) override {
    if (!frame.entries.empty()) {
      // Pointer path (in-process transport): payloads pass through.
      for (size_t i = 0; i < frame.entries.size(); ++i) {
        const FrameEntry& entry = frame.entries[i];
        Deliver(frame.sender, base_seqno + i, entry.type, entry.payload,
                entry.enqueue_ns, entry.trace);
      }
      return;
    }
    WireFrame wire;
    const Status status = DecodeWireFrame(frame.encoded, &wire);
    if (!status.ok()) {
      SIREP_ELOG << "GCS: dropping undecodable frame at seqno " << base_seqno
                 << ": " << status;
      return;
    }
    for (size_t i = 0; i < wire.entries.size(); ++i) {
      WireEntry& entry = wire.entries[i];
      auto payload =
          group_->ResolvePayload(entry.type, entry.stash_id, entry.payload);
      if (payload == nullptr) continue;  // already logged
      Deliver(frame.sender, base_seqno + i, entry.type, std::move(payload),
              entry.enqueue_ns, entry.trace);
    }
  }

  void OnViewChange(const View& view) override {
    listener_->OnViewChange(view);
  }

 private:
  void Deliver(MemberId sender, uint64_t seqno, const std::string& type,
               std::shared_ptr<const void> payload, uint64_t enqueue_ns,
               const obs::TraceContext& trace) {
    Message message;
    message.sender = sender;
    message.seqno = seqno;
    message.type = type;
    message.payload = std::move(payload);
    message.enqueue_ns = enqueue_ns;
    message.trace = trace;
    group_->h_multicast_us_->Observe(
        obs::NanosToUs(obs::MonotonicNanos() - enqueue_ns));
    listener_->OnDeliver(message);
    group_->delivered_count_.fetch_add(1, std::memory_order_relaxed);
    group_->c_delivered_->Increment();
  }

  Group* group_;
  GroupListener* listener_;
};

Group::Group(GroupOptions options) : options_(options) {
  h_multicast_us_ = registry_.GetLatencyHistogram("gcs.multicast_us");
  c_delivered_ = registry_.GetCounter("gcs.messages_delivered");
  c_frames_ = registry_.GetCounter("gcs.frames_sent");

  TransportOptions transport_options;
  transport_options.multicast_delay = options_.multicast_delay;
  transport_options.registry = &registry_;
  transport_options.tcp_send_timeout = options_.tcp_send_timeout;
  transport_options.tcp_connect_deadline = options_.tcp_connect_deadline;
  switch (ResolveTransportKind(options_.transport)) {
    case TransportKind::kTcp:
      transport_ = MakeTcpSequencerTransport(transport_options);
      break;
    case TransportKind::kDefault:
    case TransportKind::kInProcess:
      transport_ = MakeInProcessTransport(transport_options);
      break;
  }

  batching_ = options_.batch_max_count > 1;
  if (batching_) {
    flusher_thread_ = std::thread([this] { FlusherLoop(); });
  }
}

Group::~Group() { Shutdown(); }

MemberId Group::Join(GroupListener* listener) {
  if (shutdown_.load(std::memory_order_acquire)) return kInvalidMember;
  auto sink = std::make_unique<MemberSink>(this, listener);
  MemberSink* raw = sink.get();
  {
    std::lock_guard<std::mutex> lock(sinks_mu_);
    sinks_.push_back(std::move(sink));
  }
  return transport_->AddMember(raw);
}

void Group::RegisterCodec(const std::string& type, PayloadCodec codec) {
  std::lock_guard<std::mutex> lock(codec_mu_);
  codecs_[type] = std::move(codec);
}

void Group::Crash(MemberId member) {
  {
    // The crashed process' queued-but-unsent batch dies with it.
    std::lock_guard<std::mutex> lock(batch_mu_);
    batches_.erase(member);
  }
  transport_->Crash(member);
}

bool Group::IsAlive(MemberId member) const {
  return !shutdown_.load(std::memory_order_acquire) &&
         transport_->IsAlive(member);
}

Group::Staged Group::Stage(MemberId sender, std::string type,
                           std::shared_ptr<const void> payload,
                           const obs::TraceContext& trace) {
  (void)sender;
  Staged staged;
  staged.entry.type = std::move(type);
  staged.entry.enqueue_ns = obs::MonotonicNanos();
  staged.entry.trace = trace;
  if (!transport_->needs_encoding()) {
    staged.entry.payload = std::move(payload);
    staged.bytes = staged.entry.type.size() + sizeof(FrameEntry);
    return staged;
  }
  std::optional<PayloadCodec> codec;
  {
    std::lock_guard<std::mutex> lock(codec_mu_);
    auto it = codecs_.find(staged.entry.type);
    if (it != codecs_.end()) codec = it->second;
  }
  if (codec.has_value()) {
    codec->encode(payload.get(), &staged.wire_payload);
  } else {
    // No codec: park the payload in the stash; only the handle crosses
    // the wire. Works because all members share this Group object.
    std::lock_guard<std::mutex> lock(stash_mu_);
    staged.entry.stash_id = ++next_stash_id_;
    stash_[staged.entry.stash_id] = std::move(payload);
    stash_order_.push_back(staged.entry.stash_id);
    while (stash_order_.size() > kStashCapacity) {
      stash_.erase(stash_order_.front());
      stash_order_.pop_front();
    }
  }
  staged.bytes = staged.entry.type.size() + staged.wire_payload.size() + 24;
  return staged;
}

Status Group::Multicast(MemberId sender, std::string type,
                        std::shared_ptr<const void> payload,
                        obs::TraceContext trace, MulticastRoute route) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::Unavailable("group is shut down");
  }
  // Transport-agnostic send-drop injection: the message never enters the
  // total order, mimicking a transient dissemination failure on any
  // backend (the TCP transport additionally has socket-level points).
  SIREP_FAILPOINT("gcs.send");
  if (!batching_) {
    Staged staged = Stage(sender, std::move(type), std::move(payload), trace);
    const bool routed =
        route.strip_members != 0 && route.header_payload != nullptr;
    Frame frame;
    frame.sender = sender;
    frame.message_count = 1;
    if (transport_->needs_encoding()) {
      WireFrame wire;
      wire.sender = sender;
      wire.entries.push_back({std::move(staged.entry.type),
                              staged.entry.stash_id, staged.entry.enqueue_ns,
                              staged.entry.trace,
                              std::move(staged.wire_payload)});
      EncodeWireFrame(wire, &frame.encoded);
      // Routed sends additionally encode the header-only twin; stashed
      // payloads (no codec) cannot be routed and fall back to full
      // delivery everywhere.
      std::string header_bytes;
      if (routed && wire.entries[0].stash_id == 0 &&
          EncodeWithCodec(wire.entries[0].type, route.header_payload.get(),
                          &header_bytes)) {
        WireFrame header_wire;
        header_wire.sender = sender;
        header_wire.header_variant = true;
        header_wire.entries.push_back(
            {wire.entries[0].type, /*stash_id=*/0, staged.entry.enqueue_ns,
             staged.entry.trace, std::move(header_bytes)});
        EncodeWireFrame(header_wire, &frame.encoded_header);
        frame.strip_members = route.strip_members;
      }
    } else {
      if (routed) {
        staged.entry.header_payload = std::move(route.header_payload);
        frame.strip_members = route.strip_members;
      }
      frame.entries.push_back(std::move(staged.entry));
    }
    // Count the frame before the transport sees it: once a recipient
    // observes a delivery from this frame, frames_sent() must already
    // include it.
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    const Status status = transport_->Multicast(std::move(frame));
    if (status.ok()) {
      c_frames_->Increment();
    } else {
      frames_sent_.fetch_sub(1, std::memory_order_relaxed);
    }
    return status;
  }
  // Batching path: stage into the sender's pending batch; flush when the
  // count/bytes budget is hit (the window flush runs on FlusherLoop).
  if (!transport_->IsAlive(sender)) {
    return Status::Unavailable("sender " + std::to_string(sender) +
                               " has crashed");
  }
  Staged staged = Stage(sender, std::move(type), std::move(payload), trace);
  std::lock_guard<std::mutex> lock(batch_mu_);
  Batch& batch = batches_[sender];
  if (batch.staged.empty()) {
    batch.deadline = std::chrono::steady_clock::now() + options_.batch_window;
    batch_cv_.notify_all();  // flusher re-arms for the new deadline
  }
  batch.bytes += staged.bytes;
  batch.staged.push_back(std::move(staged));
  if (batch.staged.size() >= options_.batch_max_count ||
      batch.bytes >= options_.batch_max_bytes) {
    FlushBatchLocked(sender, &batch);
  }
  return Status::OK();
}

void Group::FlushBatchLocked(MemberId sender, Batch* batch) {
  if (batch->staged.empty()) return;
  Frame frame;
  frame.sender = sender;
  frame.message_count = static_cast<uint32_t>(batch->staged.size());
  if (transport_->needs_encoding()) {
    WireFrame wire;
    wire.sender = sender;
    wire.entries.reserve(batch->staged.size());
    for (Staged& staged : batch->staged) {
      wire.entries.push_back({std::move(staged.entry.type),
                              staged.entry.stash_id, staged.entry.enqueue_ns,
                              staged.entry.trace,
                              std::move(staged.wire_payload)});
    }
    EncodeWireFrame(wire, &frame.encoded);
  } else {
    frame.entries.reserve(batch->staged.size());
    for (Staged& staged : batch->staged) {
      frame.entries.push_back(std::move(staged.entry));
    }
  }
  batch->staged.clear();
  batch->bytes = 0;
  // Pre-count as in the non-batching path (delivery may be observed
  // before Multicast returns).
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  const Status status = transport_->Multicast(std::move(frame));
  if (status.ok()) {
    c_frames_->Increment();
  } else {
    frames_sent_.fetch_sub(1, std::memory_order_relaxed);
    SIREP_WLOG << "GCS: batch flush for sender " << sender
               << " failed: " << status;
  }
}

void Group::FlushAll() {
  std::lock_guard<std::mutex> lock(batch_mu_);
  for (auto& [sender, batch] : batches_) {
    FlushBatchLocked(sender, &batch);
  }
}

void Group::FlusherLoop() {
  std::unique_lock<std::mutex> lock(batch_mu_);
  while (!flusher_stop_) {
    const auto now = std::chrono::steady_clock::now();
    std::optional<std::chrono::steady_clock::time_point> next;
    for (auto& [sender, batch] : batches_) {
      if (batch.staged.empty()) continue;
      if (batch.deadline <= now) {
        FlushBatchLocked(sender, &batch);
      } else if (!next.has_value() || batch.deadline < *next) {
        next = batch.deadline;
      }
    }
    if (next.has_value()) {
      batch_cv_.wait_until(lock, *next);
    } else {
      batch_cv_.wait(lock);
    }
  }
}

std::shared_ptr<const void> Group::ResolvePayload(const std::string& type,
                                                 uint64_t stash_id,
                                                 const std::string& bytes) {
  if (stash_id != 0) {
    std::lock_guard<std::mutex> lock(stash_mu_);
    auto it = stash_.find(stash_id);
    if (it == stash_.end()) {
      SIREP_ELOG << "GCS: stash miss for \"" << type << "\" id " << stash_id
                 << " (evicted? register a codec for this type)";
      return nullptr;
    }
    return it->second;
  }
  std::optional<PayloadCodec> codec;
  {
    std::lock_guard<std::mutex> lock(codec_mu_);
    auto it = codecs_.find(type);
    if (it != codecs_.end()) codec = it->second;
  }
  if (!codec.has_value()) {
    SIREP_ELOG << "GCS: no codec registered for delivered type \"" << type
               << "\"";
    return nullptr;
  }
  auto decoded = codec->decode(bytes);
  if (!decoded.ok()) {
    SIREP_ELOG << "GCS: failed to decode \"" << type
               << "\" payload: " << decoded.status();
    return nullptr;
  }
  return decoded.value();
}

bool Group::EncodeWithCodec(const std::string& type, const void* payload,
                            std::string* out) {
  std::optional<PayloadCodec> codec;
  {
    std::lock_guard<std::mutex> lock(codec_mu_);
    auto it = codecs_.find(type);
    if (it != codecs_.end()) codec = it->second;
  }
  if (!codec.has_value()) return false;
  codec->encode(payload, out);
  return true;
}

View Group::CurrentView() const { return transport_->CurrentView(); }

void Group::WaitForQuiescence() {
  if (batching_) FlushAll();
  transport_->WaitForQuiescence();
}

void Group::Shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  if (batching_) {
    {
      std::lock_guard<std::mutex> lock(batch_mu_);
      flusher_stop_ = true;
    }
    batch_cv_.notify_all();
    if (flusher_thread_.joinable()) flusher_thread_.join();
  }
  transport_->Shutdown();
}

}  // namespace sirep::gcs
