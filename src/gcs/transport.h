#ifndef SIREP_GCS_TRANSPORT_H_
#define SIREP_GCS_TRANSPORT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sirep::gcs {

/// Identifies a group member (one SI-Rep middleware replica).
using MemberId = uint32_t;
constexpr MemberId kInvalidMember = ~0u;

/// A membership view: delivered to surviving members after every
/// join/crash, in order with respect to messages (view synchrony).
struct View {
  uint64_t view_id = 0;
  std::vector<MemberId> members;

  bool Contains(MemberId m) const;
};

/// Which dissemination backend a Group runs on.
enum class TransportKind {
  /// Resolve from the SIREP_GCS_TRANSPORT environment variable
  /// ("inproc" | "tcp"); falls back to kInProcess when unset.
  kDefault,
  /// Zero-copy in-process queues (the original single-process model).
  kInProcess,
  /// Loopback TCP with a sequencer process-role: real sockets, real
  /// serialized frames, ack-before-deliver uniform delivery.
  kTcp,
};

/// One application message inside a multicast frame, in the pointer
/// representation used by transports that do not serialize.
struct FrameEntry {
  std::string type;
  std::shared_ptr<const void> payload;
  /// Partial replication: the lightweight header-only twin of `payload`
  /// (digests instead of row images). Members named in the frame's
  /// `strip_members` mask receive this pointer as their payload instead;
  /// null when the multicast carries no alternate variant.
  std::shared_ptr<const void> header_payload;
  /// Non-zero when the payload has no wire codec and rides the Group's
  /// in-process stash instead of the encoded frame (see group.h).
  uint64_t stash_id = 0;
  /// MonotonicNanos at Multicast() time, for end-to-end latency metrics.
  uint64_t enqueue_ns = 0;
  /// Distributed trace context of the originating transaction (empty
  /// when the sender did not trace). Carried verbatim by every
  /// transport — in the pointer representation here, in the encoded
  /// wire entry otherwise — so remote replicas can record their spans
  /// under the origin's trace id.
  obs::TraceContext trace;
};

/// A multicast unit occupying `message_count` consecutive slots of the
/// total order (writeset batching packs several messages per frame).
/// Exactly one representation is populated: `entries` for transports
/// with needs_encoding() == false, `encoded` (a gcs/wire.h frame) for
/// transports that ship bytes.
///
/// **Payload routing (partial replication).** `strip_members` is a
/// bitmask over member ids < 64: members whose bit is set receive the
/// header-only variant (`FrameEntry::header_payload` on the pointer
/// path, `encoded_header` on the byte path) in the SAME total-order
/// slot; everyone else — including members with ids >= 64 and members
/// unknown to the sender — receives the full payload. Stripping never
/// changes ordering, acks, or view synchrony: the sequencer/queues
/// still treat this as one frame occupying one slot range.
struct Frame {
  MemberId sender = kInvalidMember;
  uint32_t message_count = 0;
  std::vector<FrameEntry> entries;
  std::string encoded;
  /// Alternate wire-v3 encoding delivered to `strip_members`; empty when
  /// the frame has no header variant.
  std::string encoded_header;
  uint64_t strip_members = 0;
};

/// Receives one member's totally ordered event stream. Callbacks run on
/// that member's dedicated delivery thread, strictly in order.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  /// `base_seqno` is the first total-order slot of the frame; entry i
  /// has seqno base_seqno + i.
  virtual void OnFrame(uint64_t base_seqno, const Frame& frame) = 0;
  virtual void OnViewChange(const View& view) = 0;
};

struct TransportOptions {
  /// Emulated one-way multicast latency. Applied by the in-process
  /// backend; the TCP backend has real (loopback) network latency and
  /// ignores it.
  std::chrono::microseconds multicast_delay{0};
  /// Optional registry for transport-internal metrics
  /// ("gcs.delivery_lag_us", "gcs.queue_depth"). May be null.
  obs::MetricsRegistry* registry = nullptr;
  /// TCP backend: a blocking socket send that makes no progress for this
  /// long means the peer is hung — the sequencer expels it (view change)
  /// instead of wedging every broadcast behind its full buffer.
  std::chrono::milliseconds tcp_send_timeout{2000};
  /// TCP backend: total budget for AddMember's connect + welcome
  /// handshake, retried with bounded exponential backoff (a flapping or
  /// briefly unreachable sequencer degrades join latency, not liveness).
  std::chrono::milliseconds tcp_connect_deadline{2000};
};

/// The dissemination seam behind gcs::Group: assigns the global sequence
/// numbers and delivers frames + views to every member's sink with the
/// paper's §5.2 guarantees (total order, uniform reliable delivery,
/// view synchrony). Group handles everything above the frame: payload
/// encode/decode, batching, metrics, listener fan-out.
class Transport {
 public:
  virtual ~Transport() = default;

  /// True if Multicast() requires Frame::encoded (wire bytes); false if
  /// the transport passes Frame::entries pointers through unserialized.
  virtual bool needs_encoding() const = 0;

  /// Adds a member; its first delivered event is the view containing it.
  /// Returns kInvalidMember after Shutdown().
  virtual MemberId AddMember(FrameSink* sink) = 0;

  /// Simulates the member's crash: no further deliveries to it, its
  /// future multicasts fail, survivors get an ordered view change after
  /// every frame multicast before the crash.
  virtual void Crash(MemberId member) = 0;

  virtual bool IsAlive(MemberId member) const = 0;

  /// Multicasts `frame` (frame.sender set) to all members in total
  /// order. kUnavailable if the sender crashed or the transport is shut
  /// down.
  virtual Status Multicast(Frame frame) = 0;

  virtual View CurrentView() const = 0;

  /// Blocks until every frame handed to Multicast() has been delivered
  /// at every live member (test helper).
  virtual void WaitForQuiescence() = 0;

  /// Stops delivery. Pending events are dropped.
  virtual void Shutdown() = 0;
};

std::unique_ptr<Transport> MakeInProcessTransport(
    const TransportOptions& options);
std::unique_ptr<Transport> MakeTcpSequencerTransport(
    const TransportOptions& options);

}  // namespace sirep::gcs

#endif  // SIREP_GCS_TRANSPORT_H_
