#ifndef SIREP_GCS_WIRE_H_
#define SIREP_GCS_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "gcs/transport.h"

namespace sirep::gcs {

/// Multicast frame wire format, built on the sql/serde.h primitives
/// (little-endian, length-prefixed). One frame carries a batch of
/// application messages that share one total-order slot range:
///
///   u32     magic      "SIRW" (0x57524953)
///   u8      version    kWireVersion
///   u8      flags      reserved, must be 0
///   u32     sender     MemberId of the multicasting member
///   u32     count      number of entries
///   entry*  count times:
///     string  type       application tag ("writeset", "ddl", ...)
///     u64     stash_id   0 = payload bytes follow; non-zero = payload
///                        lives in the sender process' stash (types
///                        without a registered wire codec)
///     u64     enqueue_ns Multicast() timestamp (latency accounting)
///     string  payload    codec-encoded message body (empty if stashed)
///
/// Decoders fail with kInvalidArgument on truncation, bad magic, an
/// unknown version, or a count that cannot fit the remaining bytes —
/// never by reading out of bounds.

constexpr uint32_t kWireMagic = 0x57524953;  // "SIRW"
constexpr uint8_t kWireVersion = 1;

struct WireEntry {
  std::string type;
  uint64_t stash_id = 0;
  uint64_t enqueue_ns = 0;
  std::string payload;
};

struct WireFrame {
  MemberId sender = kInvalidMember;
  std::vector<WireEntry> entries;
};

void EncodeWireFrame(const WireFrame& frame, std::string* out);
Status DecodeWireFrame(const std::string& in, WireFrame* out);

}  // namespace sirep::gcs

#endif  // SIREP_GCS_WIRE_H_
