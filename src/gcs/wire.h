#ifndef SIREP_GCS_WIRE_H_
#define SIREP_GCS_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "gcs/transport.h"
#include "obs/trace.h"

namespace sirep::gcs {

/// Multicast frame wire format, built on the sql/serde.h primitives
/// (little-endian, length-prefixed). One frame carries a batch of
/// application messages that share one total-order slot range:
///
///   u32     magic      "SIRW" (0x57524953)
///   u8      version    kWireVersion
///   u8      flags      bit 0 (version >= 3): header-only variant — the
///                      entry payloads carry digest headers, not row
///                      images (partial replication); other bits
///                      reserved, must be 0
///   u32     sender     MemberId of the multicasting member
///   u32     count      number of entries
///   entry*  count times:
///     string  type       application tag ("writeset", "ddl", ...)
///     u64     stash_id   0 = payload bytes follow; non-zero = payload
///                        lives in the sender process' stash (types
///                        without a registered wire codec)
///     u64     enqueue_ns Multicast() timestamp (latency accounting)
///     -- version >= 2 only (distributed trace context) --
///     u64     trace_id        0 = no context
///     u32     trace_origin    originating replica's MemberId
///     u64     trace_mono_ns   origin MonotonicNanos() at multicast
///     u64     trace_wall_ns   origin wall clock at multicast
///     -- all versions --
///     string  payload    codec-encoded message body (empty if stashed)
///
/// Version 2 added the per-entry TraceContext; version 3 claimed flags
/// bit 0 for the header-only frame variant that partial replication
/// ships to non-holder members. Encoders always write the current
/// version; decoders still accept version-1/2 frames, whose entries
/// decode with an empty (trace_id == 0) context and flags == 0.
///
/// Decoders fail with kInvalidArgument on truncation, bad magic, an
/// unknown version, or a count that cannot fit the remaining bytes —
/// never by reading out of bounds.

constexpr uint32_t kWireMagic = 0x57524953;  // "SIRW"
constexpr uint8_t kWireVersion = 3;
/// Frame flags (version >= 3).
constexpr uint8_t kWireFlagHeaderOnly = 0x01;

struct WireEntry {
  std::string type;
  uint64_t stash_id = 0;
  uint64_t enqueue_ns = 0;
  obs::TraceContext trace;
  std::string payload;
};

struct WireFrame {
  MemberId sender = kInvalidMember;
  std::vector<WireEntry> entries;
  /// True when this is the header-only variant of a routed multicast
  /// (flags bit 0). Informational: the entry payloads self-describe
  /// (WriteSetMessage v3 carries its own header_only flag).
  bool header_variant = false;
};

void EncodeWireFrame(const WireFrame& frame, std::string* out);
Status DecodeWireFrame(const std::string& in, WireFrame* out);

}  // namespace sirep::gcs

#endif  // SIREP_GCS_WIRE_H_
