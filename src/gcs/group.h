#ifndef SIREP_GCS_GROUP_H_
#define SIREP_GCS_GROUP_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "gcs/transport.h"
#include "obs/metrics.h"

namespace sirep::gcs {

/// A multicast message as seen by the application. On the in-process
/// transport the payload is the sender's immutable blob, shared by all
/// recipients (zero copy); on the TCP transport it is a fresh object
/// decoded from the wire by the type's registered codec.
struct Message {
  MemberId sender = kInvalidMember;
  uint64_t seqno = 0;  ///< position in the total order (1-based)
  std::string type;    ///< application tag, e.g. "writeset"
  std::shared_ptr<const void> payload;
  /// Sender's MonotonicNanos() at Multicast() time (latency accounting;
  /// meaningful only where sender and receiver share a clock).
  uint64_t enqueue_ns = 0;
  /// Originating transaction's distributed trace context, propagated by
  /// both transports (empty trace_id when the sender did not trace).
  obs::TraceContext trace;

  template <typename T>
  const T* As() const {
    return static_cast<const T*>(payload.get());
  }
};

/// Per-multicast payload routing (partial replication). Members named
/// in `strip_members` (a bitmask over ids < 64) receive `header_payload`
/// — the lightweight header-only twin of the full message — in the same
/// total-order slot everyone else receives the full payload. Routing is
/// best-effort bandwidth optimization, never a correctness gate: the
/// default-constructed route (strip_members == 0), a null
/// header_payload, a stash-backed payload, or an enabled batching path
/// all degrade to full-payload delivery for every member.
struct MulticastRoute {
  uint64_t strip_members = 0;
  std::shared_ptr<const void> header_payload;
};

/// Callbacks invoked on the member's dedicated delivery thread, in total
/// order. Implementations must not block indefinitely (they may take
/// locks, enqueue work, etc.).
class GroupListener {
 public:
  virtual ~GroupListener() = default;
  virtual void OnDeliver(const Message& message) = 0;
  virtual void OnViewChange(const View& view) = 0;
};

/// Serializes one payload type for transports that ship bytes (see
/// gcs/wire.h). Types without a codec still work on every transport:
/// their payloads ride the group's in-process stash and only a stash
/// handle crosses the wire (sufficient while all replicas share one
/// process; a true multi-process deployment requires codecs for every
/// multicast type).
struct PayloadCodec {
  std::function<void(const void* payload, std::string* out)> encode;
  std::function<Result<std::shared_ptr<const void>>(const std::string& in)>
      decode;
};

struct GroupOptions {
  /// Emulated one-way multicast latency (ordering + network). The paper
  /// reports Spread's uniform reliable multicast at <= 3 ms in a LAN.
  /// Applied by the in-process backend only.
  std::chrono::microseconds multicast_delay{0};

  /// Which dissemination backend to run on. kDefault resolves from the
  /// SIREP_GCS_TRANSPORT environment variable ("tcp" | "inproc"),
  /// falling back to the in-process backend.
  TransportKind transport = TransportKind::kDefault;

  /// Writeset batching: messages a sender multicasts within the window
  /// are coalesced into one transport frame (one sequencer round-trip,
  /// one wire header) and unpacked in order at delivery. <= 1 disables
  /// batching and every message is its own frame.
  size_t batch_max_count = 1;
  /// Flush the pending batch once its payload bytes exceed this.
  size_t batch_max_bytes = 1 << 16;
  /// Flush the pending batch this long after its first message.
  std::chrono::microseconds batch_window{200};

  /// TCP transport deadlines (see TransportOptions); ignored in-process.
  std::chrono::milliseconds tcp_send_timeout{2000};
  std::chrono::milliseconds tcp_connect_deadline{2000};
};

/// Group communication endpoint providing the guarantees SI-Rep needs
/// from Spread (paper §5.2):
///
///  * **Total order**: all members deliver all messages in one global
///    order (sequencer-based).
///  * **Uniform reliable delivery**: once a message is multicast, a
///    subsequent crash of the sender (or of any member) cannot
///    un-deliver it at survivors, and every survivor delivers it
///    *before* the crash notification (view change). With batching
///    enabled the boundary is the frame flush: messages still waiting
///    in the sender's batch when it crashes die with it, exactly like
///    messages a real process fails to hand to its GCS daemon.
///  * **View synchrony**: membership changes are delivered as views,
///    totally ordered with messages.
///
/// How those guarantees are produced is the pluggable Transport's
/// business (gcs/transport.h): the in-process backend or the TCP
/// sequencer backend, selected by GroupOptions::transport. Group itself
/// handles everything above the frame: payload encode/decode (codecs +
/// stash), batching, metrics, and listener fan-out. Each member gets a
/// dedicated delivery thread; listener callbacks run there, strictly in
/// order.
class Group {
 public:
  explicit Group(GroupOptions options = {});
  ~Group();

  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  /// Adds a member. The new view is delivered to all members (including
  /// the new one, as its first event).
  MemberId Join(GroupListener* listener);

  /// Simulates a crash: the member stops receiving anything, its future
  /// multicasts are rejected, its un-flushed batch (if any) is dropped,
  /// and survivors get a view change ordered after every frame multicast
  /// before the crash.
  void Crash(MemberId member);

  /// True if the member has not crashed (and the group is running).
  bool IsAlive(MemberId member) const;

  /// Multicasts to all members in total order. Returns kUnavailable if
  /// the sender has crashed or the group is shut down. With batching
  /// enabled, OK means the message is accepted into the sender's pending
  /// batch (flushed by count/bytes/window). `route` optionally names
  /// members that receive the header-only twin instead of the full
  /// payload (see MulticastRoute); batching ignores it (batched frames
  /// always carry full payloads).
  Status Multicast(MemberId sender, std::string type,
                   std::shared_ptr<const void> payload,
                   obs::TraceContext trace = {}, MulticastRoute route = {});

  /// Registers the wire codec for a payload type (idempotent; later
  /// registrations win). Byte-shipping transports use it to serialize
  /// payloads into frames; types without one fall back to the stash.
  void RegisterCodec(const std::string& type, PayloadCodec codec);

  View CurrentView() const;

  /// Blocks until every multicast message (including pending batches,
  /// which are flushed first) has been delivered everywhere (test
  /// helper).
  void WaitForQuiescence();

  /// Stops delivery threads. Pending events are dropped.
  void Shutdown();

  uint64_t messages_delivered() const {
    return delivered_count_.load(std::memory_order_relaxed);
  }

  /// Transport frames multicast so far (== messages sent when batching
  /// is off; fewer when batches coalesce).
  uint64_t frames_sent() const {
    return frames_sent_.load(std::memory_order_relaxed);
  }

  /// This group's metrics registry: multicast latency (enqueue to
  /// delivery, "gcs.multicast_us"), scheduler lag past the emulated
  /// network delay ("gcs.delivery_lag_us"), the undelivered-event
  /// backlog gauge ("gcs.queue_depth"), delivered-message and sent-frame
  /// counters ("gcs.messages_delivered", "gcs.frames_sent").
  obs::MetricsRegistry& metrics() { return registry_; }
  const obs::MetricsRegistry& metrics() const { return registry_; }

 private:
  class MemberSink;

  /// One message staged in a sender's pending batch.
  struct Staged {
    FrameEntry entry;
    std::string wire_payload;  ///< codec output (needs_encoding only)
    size_t bytes = 0;
  };

  struct Batch {
    std::vector<Staged> staged;
    size_t bytes = 0;
    std::chrono::steady_clock::time_point deadline;
  };

  /// Builds and multicasts the frame for `batch`. Caller holds batch_mu_.
  void FlushBatchLocked(MemberId sender, Batch* batch);
  void FlushAll();
  void FlusherLoop();

  /// Encodes `payload` into a Staged entry, stashing it if `type` has no
  /// codec and the transport needs bytes.
  Staged Stage(MemberId sender, std::string type,
               std::shared_ptr<const void> payload,
               const obs::TraceContext& trace);

  /// Delivery-side payload reconstruction (codec decode or stash fetch).
  std::shared_ptr<const void> ResolvePayload(const std::string& type,
                                             uint64_t stash_id,
                                             const std::string& bytes);

  /// Encodes `payload` with `type`'s registered codec into `out`.
  /// Returns false (out untouched) when no codec is registered.
  bool EncodeWithCodec(const std::string& type, const void* payload,
                       std::string* out);

  GroupOptions options_;
  bool batching_ = false;

  obs::MetricsRegistry registry_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::unique_ptr<MemberSink>> sinks_;
  std::mutex sinks_mu_;

  mutable std::mutex codec_mu_;
  std::unordered_map<std::string, PayloadCodec> codecs_;

  /// Payloads of types without a codec, parked so the wire only carries
  /// a handle. Capped FIFO: entries beyond kStashCapacity evict oldest.
  mutable std::mutex stash_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const void>> stash_;
  std::deque<uint64_t> stash_order_;
  uint64_t next_stash_id_ = 0;

  std::mutex batch_mu_;
  std::unordered_map<MemberId, Batch> batches_;
  std::condition_variable batch_cv_;
  std::thread flusher_thread_;
  bool flusher_stop_ = false;

  std::atomic<uint64_t> delivered_count_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<bool> shutdown_{false};

  obs::Histogram* h_multicast_us_ = nullptr;
  obs::Counter* c_delivered_ = nullptr;
  obs::Counter* c_frames_ = nullptr;
};

}  // namespace sirep::gcs

#endif  // SIREP_GCS_GROUP_H_
