#ifndef SIREP_GCS_GROUP_H_
#define SIREP_GCS_GROUP_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "obs/metrics.h"

namespace sirep::gcs {

/// Identifies a group member (one SI-Rep middleware replica).
using MemberId = uint32_t;
constexpr MemberId kInvalidMember = ~0u;

/// A multicast message. The payload is an immutable, type-erased blob
/// shared between all recipients (we model Spread running in one process;
/// a wire format would serialize WriteSets instead).
struct Message {
  MemberId sender = kInvalidMember;
  uint64_t seqno = 0;  ///< position in the total order (1-based)
  std::string type;    ///< application tag, e.g. "writeset"
  std::shared_ptr<const void> payload;

  template <typename T>
  const T* As() const {
    return static_cast<const T*>(payload.get());
  }
};

/// A membership view: delivered to surviving members after every
/// join/crash, in order with respect to messages (view synchrony).
struct View {
  uint64_t view_id = 0;
  std::vector<MemberId> members;

  bool Contains(MemberId m) const;
};

/// Callbacks invoked on the member's dedicated delivery thread, in total
/// order. Implementations must not block indefinitely (they may take
/// locks, enqueue work, etc.).
class GroupListener {
 public:
  virtual ~GroupListener() = default;
  virtual void OnDeliver(const Message& message) = 0;
  virtual void OnViewChange(const View& view) = 0;
};

struct GroupOptions {
  /// Emulated one-way multicast latency (ordering + network). The paper
  /// reports Spread's uniform reliable multicast at <= 3 ms in a LAN.
  std::chrono::microseconds multicast_delay{0};
};

/// In-process group communication system providing the guarantees SI-Rep
/// needs from Spread (paper §5.2):
///
///  * **Total order**: all members deliver all messages in one global
///    order (sequencer-based: a global sequence number is assigned
///    atomically with enqueueing to every member's delivery queue).
///  * **Uniform reliable delivery**: once Multicast() returns, the message
///    is queued for every member; a subsequent crash of the sender (or of
///    any member) cannot un-deliver it at survivors, and every survivor
///    delivers it *before* the crash notification (view change).
///  * **View synchrony**: membership changes are delivered as views,
///    totally ordered with messages.
///
/// Each member gets a dedicated delivery thread; listener callbacks run
/// there, strictly in order.
class Group {
 public:
  explicit Group(GroupOptions options = {});
  ~Group();

  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  /// Adds a member. The new view is delivered to all members (including
  /// the new one, as its first event).
  MemberId Join(GroupListener* listener);

  /// Simulates a crash: the member stops receiving anything, its future
  /// multicasts are rejected, and survivors get a view change ordered
  /// after every message multicast before the crash.
  void Crash(MemberId member);

  /// True if the member has not crashed (and the group is running).
  bool IsAlive(MemberId member) const;

  /// Multicasts to all members in total order. Returns kUnavailable if
  /// the sender has crashed or the group is shut down.
  Status Multicast(MemberId sender, std::string type,
                   std::shared_ptr<const void> payload);

  View CurrentView() const;

  /// Blocks until every queued event has been delivered (test helper).
  void WaitForQuiescence();

  /// Stops delivery threads. Pending events are dropped.
  void Shutdown();

  uint64_t messages_delivered() const {
    return delivered_count_.load(std::memory_order_relaxed);
  }

  /// This group's metrics registry: multicast latency (enqueue to
  /// delivery, "gcs.multicast_us"), scheduler lag past the emulated
  /// network delay ("gcs.delivery_lag_us"), and the undelivered-event
  /// backlog gauge ("gcs.queue_depth").
  obs::MetricsRegistry& metrics() { return registry_; }
  const obs::MetricsRegistry& metrics() const { return registry_; }

 private:
  struct Event {
    enum class Kind { kMessage, kView } kind = Kind::kMessage;
    Message message;
    View view;
    std::chrono::steady_clock::time_point deliver_at;
    uint64_t enqueued_ns = 0;  ///< MonotonicNanos at multicast time
  };

  struct Member {
    GroupListener* listener = nullptr;
    /// Set on crash (and shutdown); the delivery loop discards any events
    /// still queued instead of delivering them.
    std::atomic<bool> crashed{false};
    WorkQueue<Event> queue;
    std::thread delivery_thread;
  };

  void DeliveryLoop(MemberId id);
  void EnqueueViewLocked();  // caller holds mu_

  GroupOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<MemberId, std::unique_ptr<Member>> members_;
  MemberId next_member_ = 0;
  uint64_t next_seqno_ = 0;
  uint64_t view_id_ = 0;
  bool shutdown_ = false;

  std::atomic<uint64_t> delivered_count_{0};
  std::atomic<int64_t> pending_count_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;

  obs::MetricsRegistry registry_;
  obs::Histogram* h_multicast_us_ = nullptr;
  obs::Histogram* h_delivery_lag_us_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Counter* c_delivered_ = nullptr;
};

}  // namespace sirep::gcs

#endif  // SIREP_GCS_GROUP_H_
