#ifndef SIREP_GCS_SOCKET_UTIL_H_
#define SIREP_GCS_SOCKET_UTIL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

namespace sirep::gcs::net {

/// Loopback socket plumbing shared by the TCP sequencer transport and
/// the metrics exposition HTTP listener: option/deadline setup, blocking
/// whole-buffer writes, and incremental length-prefixed record parsing.

constexpr int kSocketBufferBytes = 1 << 20;
constexpr uint32_t kMaxRecordBytes = 64u << 20;

/// Blocking recvs wake this often so reader loops can re-check their
/// keep-waiting predicate (shutdown, crash) without a signal.
constexpr auto kRecvPollPeriod = std::chrono::milliseconds(100);

/// Sets TCP_NODELAY, buffer sizes, and I/O deadlines. `send_timeout` is
/// the hung-peer bound: a send() that cannot make progress for that long
/// fails with EAGAIN instead of blocking forever (a full socket buffer
/// on a stalled peer must degrade into a removal, not wedge the writer).
/// Receives always time out at kRecvPollPeriod — idle is normal there;
/// the short period only bounds how stale a reader's exit predicate is.
void ConfigureSocket(int fd, std::chrono::milliseconds send_timeout);

/// Blocking write of the whole byte string; false on error or a send
/// deadline expiring mid-write.
bool WriteAll(int fd, const std::string& data);

/// Blocking write of one record (u32 length prefix + body).
bool WriteRecord(int fd, const std::string& body);

/// Incremental record parser over a receive buffer. Append() bytes as
/// they arrive; Next() pops one complete record body at a time.
class RecordBuffer {
 public:
  void Append(const char* data, size_t n) { buf_.append(data, n); }

  bool Next(std::string* body);

  bool corrupt() const { return corrupt_; }

 private:
  std::string buf_;
  bool corrupt_ = false;
};

/// Blocking read of one record body; returns false on EOF/error, or when
/// a receive deadline expires and `keep_waiting` says to stop. Sockets
/// carry a short SO_RCVTIMEO (kRecvPollPeriod), so the predicate is
/// re-evaluated on that cadence while the connection is idle.
bool ReadRecord(int fd, RecordBuffer* rb, std::string* body,
                const std::function<bool()>& keep_waiting);

}  // namespace sirep::gcs::net

#endif  // SIREP_GCS_SOCKET_UTIL_H_
