#include "gcs/socket_util.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <cerrno>

#include "sql/serde.h"

namespace sirep::gcs::net {

namespace {

timeval ToTimeval(std::chrono::milliseconds ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms.count() % 1000) * 1000);
  return tv;
}

}  // namespace

void ConfigureSocket(int fd, std::chrono::milliseconds send_timeout) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  int buf = kSocketBufferBytes;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  if (send_timeout.count() > 0) {
    const timeval tv = ToTimeval(send_timeout);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  const timeval rv = ToTimeval(
      std::chrono::duration_cast<std::chrono::milliseconds>(kRecvPollPeriod));
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rv, sizeof(rv));
}

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    // EAGAIN here is the SO_SNDTIMEO deadline expiring: the peer has not
    // drained its socket for the whole send timeout. Treat it like a dead
    // connection — callers expel the peer rather than retrying into the
    // same full buffer.
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

bool WriteRecord(int fd, const std::string& body) {
  std::string wire;
  wire.reserve(4 + body.size());
  sql::EncodeU32(static_cast<uint32_t>(body.size()), &wire);
  wire += body;
  return WriteAll(fd, wire);
}

bool RecordBuffer::Next(std::string* body) {
  if (buf_.size() < 4) return false;
  uint32_t len = 0;
  size_t pos = 0;
  if (!sql::DecodeU32(buf_, &pos, &len).ok() || len > kMaxRecordBytes) {
    corrupt_ = true;
    return false;
  }
  if (buf_.size() < 4 + static_cast<size_t>(len)) return false;
  body->assign(buf_, 4, len);
  buf_.erase(0, 4 + static_cast<size_t>(len));
  return true;
}

bool ReadRecord(int fd, RecordBuffer* rb, std::string* body,
                const std::function<bool()>& keep_waiting) {
  char chunk[16384];
  while (!rb->Next(body)) {
    if (rb->corrupt()) return false;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      if (keep_waiting != nullptr && keep_waiting()) continue;
      return false;
    }
    if (n <= 0) return false;
    rb->Append(chunk, static_cast<size_t>(n));
  }
  return true;
}

}  // namespace sirep::gcs::net
