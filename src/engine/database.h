#ifndef SIREP_ENGINE_DATABASE_H_
#define SIREP_ENGINE_DATABASE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/query_result.h"
#include "sql/ast.h"
#include "sql/parser.h"
#include "storage/storage_engine.h"
#include "storage/write_set.h"

namespace sirep::engine {

/// One database replica: SQL execution over the MVCC storage engine. This
/// is the component the SI-Rep middleware runs *on top of* — it plays the
/// role PostgreSQL plays in the paper, including the two extension hooks
/// the paper adds to PostgreSQL (pre-commit writeset extraction and
/// writeset application).
///
/// Thread-safe; one transaction handle must be driven by one thread at a
/// time. Statement texts are parsed once and cached (prepared statements).
class Database {
 public:
  explicit Database(std::string name = "db") : name_(std::move(name)) {
    h_stmt_us_ = engine_.metrics().GetLatencyHistogram("engine.stmt_us");
  }
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::string& name() const { return name_; }
  storage::StorageEngine& engine() { return engine_; }
  const storage::StorageEngine& engine() const { return engine_; }

  // ---- transactions ----

  storage::TransactionPtr Begin() { return engine_.Begin(); }
  Status Commit(const storage::TransactionPtr& txn) {
    return engine_.Commit(txn);
  }
  /// Lock-holding callers: commit now, wait for WAL durability later
  /// (see StorageEngine::Commit's two-phase form).
  Status Commit(const storage::TransactionPtr& txn,
                uint64_t* durability_ticket) {
    return engine_.Commit(txn, durability_ticket);
  }
  Status WaitWalDurable(uint64_t ticket) {
    return engine_.WaitWalDurable(ticket);
  }
  void Abort(const storage::TransactionPtr& txn) { engine_.Abort(txn); }

  // ---- statement execution ----

  /// Parses (with cache) and executes one statement within `txn`.
  /// Transaction-control statements (BEGIN/COMMIT/ROLLBACK) are rejected
  /// here; they are session-level concerns.
  Result<QueryResult> Execute(const storage::TransactionPtr& txn,
                              const std::string& sql,
                              const std::vector<sql::Value>& params = {});

  /// Executes a pre-parsed statement.
  Result<QueryResult> Execute(const storage::TransactionPtr& txn,
                              const sql::Statement& stmt,
                              const std::vector<sql::Value>& params = {});

  /// Runs a DDL or DML statement in its own transaction (autocommit).
  /// Convenience for schema setup and data loading.
  Result<QueryResult> ExecuteAutoCommit(
      const std::string& sql, const std::vector<sql::Value>& params = {});

  /// Parses with cache. The returned statement is immutable and shared.
  Result<std::shared_ptr<const sql::Statement>> Prepare(
      const std::string& sql);

  // ---- middleware primitives (paper §5.5) ----

  std::shared_ptr<const storage::WriteSet> ExtractWriteSet(
      const storage::TransactionPtr& txn) const {
    return engine_.ExtractWriteSet(txn);
  }

  Status ApplyWriteSet(const storage::TransactionPtr& txn,
                       const storage::WriteSet& ws) {
    if (apply_cost_hook_) apply_cost_hook_(ws);
    return engine_.ApplyWriteSet(txn, ws);
  }

  // ---- durability ----

  /// See StorageEngine::EnableWal / RecoverFromWal.
  Status EnableWal(const std::string& path) {
    return engine_.EnableWal(path);
  }
  Status EnableWal(const std::string& path, bool group_commit) {
    return engine_.EnableWal(path, group_commit);
  }
  Status RecoverFromWal(const std::string& path) {
    return engine_.RecoverFromWal(path);
  }

  // ---- resource-cost emulation (cluster harness) ----

  /// `statement_hook` runs before each statement executes; the benchmark
  /// harness uses it to charge the replica's worker capacity for an
  /// emulated service time. `apply_hook` likewise runs before a writeset
  /// is applied (the paper measures apply at ~20 % of full execution).
  /// Hooks must be set before concurrent use and be thread-safe.
  using StatementCostHook = std::function<void(const sql::Statement&)>;
  using ApplyCostHook = std::function<void(const storage::WriteSet&)>;
  void SetCostHooks(StatementCostHook statement_hook,
                    ApplyCostHook apply_hook) {
    statement_cost_hook_ = std::move(statement_hook);
    apply_cost_hook_ = std::move(apply_hook);
  }

 private:
  Result<QueryResult> ExecCreateTable(const sql::CreateTableStmt& stmt);
  Result<QueryResult> ExecCreateIndex(const sql::CreateIndexStmt& stmt);
  Result<QueryResult> ExecInsert(const storage::TransactionPtr& txn,
                                 const sql::InsertStmt& stmt,
                                 const std::vector<sql::Value>& params);
  Result<QueryResult> ExecSelect(const storage::TransactionPtr& txn,
                                 const sql::SelectStmt& stmt,
                                 const std::vector<sql::Value>& params);
  Result<QueryResult> ExecUpdate(const storage::TransactionPtr& txn,
                                 const sql::UpdateStmt& stmt,
                                 const std::vector<sql::Value>& params);
  Result<QueryResult> ExecDelete(const storage::TransactionPtr& txn,
                                 const sql::DeleteStmt& stmt,
                                 const std::vector<sql::Value>& params);

  std::string name_;
  storage::StorageEngine engine_;

  std::mutex prepared_mu_;
  std::unordered_map<std::string, std::shared_ptr<const sql::Statement>>
      prepared_;

  StatementCostHook statement_cost_hook_;
  ApplyCostHook apply_cost_hook_;

  /// Per-statement execution latency ("engine.stmt_us"), kept in the
  /// storage engine's registry so one snapshot covers the whole replica.
  obs::Histogram* h_stmt_us_ = nullptr;
};

}  // namespace sirep::engine

#endif  // SIREP_ENGINE_DATABASE_H_
