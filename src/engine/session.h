#ifndef SIREP_ENGINE_SESSION_H_
#define SIREP_ENGINE_SESSION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "engine/query_result.h"

namespace sirep::engine {

/// A client session against a single (non-replicated) Database, with
/// JDBC-like transaction semantics: with autocommit on (default) every
/// statement runs in its own transaction; with autocommit off, the first
/// statement after a commit/rollback implicitly begins a transaction
/// (JDBC has no explicit begin — paper §5.3).
///
/// BEGIN / COMMIT / ROLLBACK statements are accepted and translated.
/// Used by the examples and tests for standalone operation; the replicated
/// path goes through client::Connection instead.
class Session {
 public:
  explicit Session(Database* db) : db_(db) {}
  ~Session() { Rollback(); }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  void SetAutoCommit(bool autocommit) { autocommit_ = autocommit; }
  bool autocommit() const { return autocommit_; }
  bool in_transaction() const { return txn_ != nullptr; }

  /// Executes one statement. Errors with a transaction-failure code mean
  /// the active transaction was aborted; the session forgets it.
  Result<QueryResult> Execute(const std::string& sql,
                              const std::vector<sql::Value>& params = {});

  /// Commits the active transaction (no-op without one).
  Status Commit();

  /// Rolls back the active transaction (no-op without one).
  Status Rollback();

 private:
  Database* db_;
  storage::TransactionPtr txn_;
  bool autocommit_ = true;
};

}  // namespace sirep::engine

#endif  // SIREP_ENGINE_SESSION_H_
