#include "engine/database.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "engine/exec.h"

namespace sirep::engine {

using sql::Statement;
using sql::StatementKind;
using sql::Value;
using storage::TransactionPtr;

Result<std::shared_ptr<const Statement>> Database::Prepare(
    const std::string& sql) {
  {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    auto it = prepared_.find(sql);
    if (it != prepared_.end()) return it->second;
  }
  auto parsed = sql::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  auto stmt = std::make_shared<const Statement>(std::move(parsed).value());
  std::lock_guard<std::mutex> lock(prepared_mu_);
  prepared_.emplace(sql, stmt);
  return stmt;
}

Result<QueryResult> Database::Execute(const TransactionPtr& txn,
                                      const std::string& sql,
                                      const std::vector<Value>& params) {
  auto stmt = Prepare(sql);
  if (!stmt.ok()) return stmt.status();
  return Execute(txn, *stmt.value(), params);
}

Result<QueryResult> Database::Execute(const TransactionPtr& txn,
                                      const Statement& stmt,
                                      const std::vector<Value>& params) {
  if (statement_cost_hook_) statement_cost_hook_(stmt);
  obs::ScopedLatency stmt_timer(h_stmt_us_);
  switch (stmt.kind) {
    case StatementKind::kCreateTable:
      return ExecCreateTable(*stmt.create_table);
    case StatementKind::kCreateIndex:
      return ExecCreateIndex(*stmt.create_index);
    case StatementKind::kInsert:
      return ExecInsert(txn, *stmt.insert, params);
    case StatementKind::kSelect:
      return ExecSelect(txn, *stmt.select, params);
    case StatementKind::kUpdate:
      return ExecUpdate(txn, *stmt.update, params);
    case StatementKind::kDelete:
      return ExecDelete(txn, *stmt.delete_, params);
    case StatementKind::kBegin:
    case StatementKind::kCommit:
    case StatementKind::kRollback:
      return Status::InvalidArgument(
          "transaction control statements are handled by the session");
  }
  return Status::Internal("unhandled statement kind");
}

Result<QueryResult> Database::ExecuteAutoCommit(
    const std::string& sql, const std::vector<Value>& params) {
  auto txn = Begin();
  auto result = Execute(txn, sql, params);
  if (!result.ok()) {
    Abort(txn);
    return result;
  }
  Status st = Commit(txn);
  if (!st.ok()) return st;
  return result;
}

Result<QueryResult> Database::ExecCreateTable(
    const sql::CreateTableStmt& stmt) {
  std::vector<size_t> key_indexes;
  for (const auto& key_col : stmt.key_columns) {
    bool found = false;
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
      if (stmt.columns[i].name == key_col) {
        key_indexes.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("PRIMARY KEY column '" + key_col +
                                     "' is not a table column");
    }
  }
  sql::Schema schema(stmt.columns, std::move(key_indexes));
  SIREP_RETURN_IF_ERROR(engine_.CreateTable(stmt.table, std::move(schema)));
  return QueryResult{};
}

Result<QueryResult> Database::ExecCreateIndex(
    const sql::CreateIndexStmt& stmt) {
  SIREP_RETURN_IF_ERROR(engine_.CreateIndex(stmt.table, stmt.column));
  return QueryResult{};
}

Result<QueryResult> Database::ExecInsert(const TransactionPtr& txn,
                                         const sql::InsertStmt& stmt,
                                         const std::vector<Value>& params) {
  storage::MvccTable* table = engine_.GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("no table '" + stmt.table + "'");
  }
  const sql::Schema& schema = table->schema();

  std::vector<Value> values;
  values.reserve(stmt.values.size());
  for (const auto& expr : stmt.values) {
    auto v = Eval(*expr, nullptr, nullptr, params);
    if (!v.ok()) return v.status();
    values.push_back(std::move(v).value());
  }

  sql::Row row(schema.num_columns(), Value::Null());
  if (stmt.columns.empty()) {
    if (values.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "INSERT has " + std::to_string(values.size()) + " values, table '" +
          stmt.table + "' has " + std::to_string(schema.num_columns()) +
          " columns");
    }
    row = std::move(values);
  } else {
    if (values.size() != stmt.columns.size()) {
      return Status::InvalidArgument("INSERT column/value count mismatch");
    }
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
      const int idx = schema.FindColumn(stmt.columns[i]);
      if (idx < 0) {
        return Status::InvalidArgument("unknown column '" + stmt.columns[i] +
                                       "'");
      }
      row[idx] = std::move(values[i]);
    }
  }

  SIREP_RETURN_IF_ERROR(engine_.Insert(txn, stmt.table, std::move(row)));
  QueryResult result;
  result.rows_affected = 1;
  return result;
}

namespace {

/// An equality conjunct on an indexed column, usable as an access path.
struct IndexProbe {
  std::string raw_column;
  Value value;
};

/// Walks the AND-tree for `col = constant` where `col` has a secondary
/// index. `raw_names[i]` maps schema position i back to the table's real
/// column name (identical to the schema names except in bound/aliased
/// select schemas).
std::optional<IndexProbe> FindIndexProbe(
    storage::StorageEngine& engine, const std::string& table_name,
    const sql::Schema& schema, const std::vector<std::string>& raw_names,
    const sql::Expr* expr, const std::vector<Value>& params) {
  if (expr == nullptr) return std::nullopt;
  if (expr->kind != sql::ExprKind::kBinary) return std::nullopt;
  if (expr->bin_op == sql::BinOp::kAnd) {
    auto left = FindIndexProbe(engine, table_name, schema, raw_names,
                               expr->left.get(), params);
    if (left.has_value()) return left;
    return FindIndexProbe(engine, table_name, schema, raw_names,
                          expr->right.get(), params);
  }
  if (expr->bin_op != sql::BinOp::kEq) return std::nullopt;
  const sql::Expr* col = nullptr;
  const sql::Expr* val = nullptr;
  if (expr->left->kind == sql::ExprKind::kColumnRef) {
    col = expr->left.get();
    val = expr->right.get();
  } else if (expr->right->kind == sql::ExprKind::kColumnRef) {
    col = expr->right.get();
    val = expr->left.get();
  } else {
    return std::nullopt;
  }
  Value constant;
  if (val->kind == sql::ExprKind::kLiteral) {
    constant = val->literal;
  } else if (val->kind == sql::ExprKind::kParam) {
    if (val->param_index < 0 ||
        static_cast<size_t>(val->param_index) >= params.size()) {
      return std::nullopt;
    }
    constant = params[val->param_index];
  } else {
    return std::nullopt;
  }
  const int idx = schema.FindColumn(col->column);
  if (idx < 0) return std::nullopt;
  const std::string& raw = raw_names[static_cast<size_t>(idx)];
  storage::MvccTable* table = engine.GetTable(table_name);
  if (table == nullptr || !table->HasIndex(raw)) return std::nullopt;
  return IndexProbe{raw, std::move(constant)};
}

/// Gathers (key, row) pairs matching the WHERE clause, using a primary-key
/// point lookup or a secondary-index probe when the predicate allows it.
Status CollectMatches(storage::StorageEngine& engine,
                      const storage::TransactionPtr& txn,
                      const std::string& table_name,
                      const sql::Schema& schema, const sql::Expr* where,
                      const std::vector<Value>& params,
                      std::vector<std::pair<sql::Key, sql::Row>>* out) {
  auto key = TryExtractKeyLookup(schema, where, params);
  if (key.has_value()) {
    auto row = engine.Read(txn, table_name, *key);
    if (!row.ok()) return row.status();
    if (row.value().has_value()) {
      auto match = Matches(where, schema, *row.value(), params);
      if (!match.ok()) return match.status();
      if (match.value()) out->emplace_back(*key, *std::move(row).value());
    }
    return Status::OK();
  }
  std::vector<std::string> raw_names;
  for (const auto& col : schema.columns()) raw_names.push_back(col.name);
  Status match_status;
  auto visit = [&](const sql::Key& k, const sql::Row& row) {
    if (!match_status.ok()) return;
    auto match = Matches(where, schema, row, params);
    if (!match.ok()) {
      match_status = match.status();
      return;
    }
    if (match.value()) out->emplace_back(k, row);
  };
  auto probe =
      FindIndexProbe(engine, table_name, schema, raw_names, where, params);
  Status scan_status =
      probe.has_value()
          ? engine.LookupByIndex(txn, table_name, probe->raw_column,
                                 probe->value, visit)
          : engine.Scan(txn, table_name, visit);
  SIREP_RETURN_IF_ERROR(scan_status);
  return match_status;
}

}  // namespace

namespace {

/// A relation bound for execution: columns renamed "alias.col" so
/// qualified and plain references resolve via Schema::FindColumn.
struct BoundRelation {
  sql::Schema schema;
  std::vector<std::string> raw_names;  ///< plain names, for SELECT * output
  std::vector<sql::Row> rows;
};

/// True if every column reference in `expr` resolves in `schema`.
bool ExprResolves(const sql::Expr& expr, const sql::Schema& schema) {
  switch (expr.kind) {
    case sql::ExprKind::kColumnRef:
      return schema.FindColumn(expr.column) >= 0;
    case sql::ExprKind::kUnary:
      return ExprResolves(*expr.left, schema);
    case sql::ExprKind::kBinary:
      return ExprResolves(*expr.left, schema) &&
             ExprResolves(*expr.right, schema);
    default:
      return true;
  }
}

/// Flattens the AND-tree of `where` into conjuncts.
void CollectConjuncts(const sql::Expr* where,
                      std::vector<const sql::Expr*>* out) {
  if (where == nullptr) return;
  if (where->kind == sql::ExprKind::kBinary &&
      where->bin_op == sql::BinOp::kAnd) {
    CollectConjuncts(where->left.get(), out);
    CollectConjuncts(where->right.get(), out);
    return;
  }
  out->push_back(where);
}

sql::Schema BindSchema(const sql::Schema& raw, const std::string& alias) {
  std::vector<sql::Column> columns = raw.columns();
  for (auto& col : columns) col.name = alias + "." + col.name;
  return sql::Schema(std::move(columns), raw.key_indexes());
}

/// Concatenates two bound relations' schemas.
sql::Schema ConcatSchemas(const sql::Schema& a, const sql::Schema& b) {
  std::vector<sql::Column> columns = a.columns();
  for (const auto& col : b.columns()) columns.push_back(col);
  return sql::Schema(std::move(columns), {});
}

}  // namespace

Result<QueryResult> Database::ExecSelect(const TransactionPtr& txn,
                                         const sql::SelectStmt& stmt,
                                         const std::vector<Value>& params) {
  // ---- bind the FROM list ----
  std::vector<const storage::MvccTable*> tables;
  for (const auto& ref : stmt.tables) {
    storage::MvccTable* table = engine_.GetTable(ref.table);
    if (table == nullptr) {
      return Status::NotFound("no table '" + ref.table + "'");
    }
    tables.push_back(table);
  }

  std::vector<const sql::Expr*> conjuncts;
  CollectConjuncts(stmt.where.get(), &conjuncts);

  // ---- produce the (joined) working relation ----
  BoundRelation rel;
  if (stmt.tables.size() == 1) {
    rel.schema = BindSchema(tables[0]->schema(), stmt.tables[0].alias);
    for (const auto& col : tables[0]->schema().columns()) {
      rel.raw_names.push_back(col.name);
    }
    // Point lookup when the predicate pins the primary key; otherwise a
    // secondary-index probe if an indexed column is pinned; else a scan.
    auto key = TryExtractKeyLookup(rel.schema, stmt.where.get(), params);
    if (key.has_value()) {
      auto row = engine_.Read(txn, stmt.tables[0].table, *key);
      if (!row.ok()) return row.status();
      if (row.value().has_value()) rel.rows.push_back(*std::move(row).value());
    } else {
      auto collect = [&](const sql::Key&, const sql::Row& row) {
        rel.rows.push_back(row);
      };
      auto probe = FindIndexProbe(engine_, stmt.tables[0].table, rel.schema,
                                  rel.raw_names, stmt.where.get(), params);
      Status scan =
          probe.has_value()
              ? engine_.LookupByIndex(txn, stmt.tables[0].table,
                                      probe->raw_column, probe->value,
                                      collect)
              : engine_.Scan(txn, stmt.tables[0].table, collect);
      SIREP_RETURN_IF_ERROR(scan);
    }
  } else {
    // Iterative inner join: scan each table (pushing down the conjuncts
    // that resolve within it), then fold with a hash join on an equi-
    // conjunct where possible, falling back to a bounded nested loop.
    std::vector<BoundRelation> inputs;
    for (size_t t = 0; t < stmt.tables.size(); ++t) {
      BoundRelation input;
      input.schema = BindSchema(tables[t]->schema(), stmt.tables[t].alias);
      for (const auto& col : tables[t]->schema().columns()) {
        input.raw_names.push_back(col.name);
      }
      std::vector<const sql::Expr*> local;
      for (const auto* c : conjuncts) {
        if (ExprResolves(*c, input.schema)) local.push_back(c);
      }
      Status filter_status;
      Status scan = engine_.Scan(
          txn, stmt.tables[t].table,
          [&](const sql::Key&, const sql::Row& row) {
            if (!filter_status.ok()) return;
            for (const auto* c : local) {
              auto m = Matches(c, input.schema, row, params);
              if (!m.ok()) {
                filter_status = m.status();
                return;
              }
              if (!m.value()) return;
            }
            input.rows.push_back(row);
          });
      SIREP_RETURN_IF_ERROR(scan);
      SIREP_RETURN_IF_ERROR(filter_status);
      inputs.push_back(std::move(input));
    }

    rel = std::move(inputs[0]);
    for (size_t t = 1; t < inputs.size(); ++t) {
      BoundRelation& right = inputs[t];
      BoundRelation joined;
      joined.schema = ConcatSchemas(rel.schema, right.schema);
      joined.raw_names = rel.raw_names;
      joined.raw_names.insert(joined.raw_names.end(),
                              right.raw_names.begin(),
                              right.raw_names.end());

      // Find an equi-join conjunct col_left = col_right across the two
      // sides.
      int left_idx = -1, right_idx = -1;
      for (const auto* c : conjuncts) {
        if (c->kind != sql::ExprKind::kBinary ||
            c->bin_op != sql::BinOp::kEq) {
          continue;
        }
        if (c->left->kind != sql::ExprKind::kColumnRef ||
            c->right->kind != sql::ExprKind::kColumnRef) {
          continue;
        }
        const int l_in_acc = rel.schema.FindColumn(c->left->column);
        const int r_in_new = right.schema.FindColumn(c->right->column);
        if (l_in_acc >= 0 && r_in_new >= 0) {
          left_idx = l_in_acc;
          right_idx = r_in_new;
          break;
        }
        const int r_in_acc = rel.schema.FindColumn(c->right->column);
        const int l_in_new = right.schema.FindColumn(c->left->column);
        if (r_in_acc >= 0 && l_in_new >= 0) {
          left_idx = r_in_acc;
          right_idx = l_in_new;
          break;
        }
      }

      if (left_idx >= 0) {
        // Hash join: build on the right side, probe with the left.
        std::unordered_multimap<size_t, const sql::Row*> build;
        build.reserve(right.rows.size());
        for (const auto& row : right.rows) {
          build.emplace(row[right_idx].Hash(), &row);
        }
        for (const auto& lrow : rel.rows) {
          auto [lo, hi] = build.equal_range(lrow[left_idx].Hash());
          for (auto it = lo; it != hi; ++it) {
            if (lrow[left_idx].Compare((*it->second)[right_idx]) != 0) {
              continue;
            }
            sql::Row combined = lrow;
            combined.insert(combined.end(), it->second->begin(),
                            it->second->end());
            joined.rows.push_back(std::move(combined));
          }
        }
      } else {
        constexpr size_t kNestedLoopCap = 5'000'000;
        if (rel.rows.size() * right.rows.size() > kNestedLoopCap) {
          return Status::NotSupported(
              "join without an equality condition is too large (" +
              std::to_string(rel.rows.size()) + " x " +
              std::to_string(right.rows.size()) + " rows)");
        }
        for (const auto& lrow : rel.rows) {
          for (const auto& rrow : right.rows) {
            sql::Row combined = lrow;
            combined.insert(combined.end(), rrow.begin(), rrow.end());
            joined.rows.push_back(std::move(combined));
          }
        }
      }
      rel = std::move(joined);
    }
  }

  // ---- filter by the full WHERE ----
  std::vector<sql::Row> filtered;
  filtered.reserve(rel.rows.size());
  for (auto& row : rel.rows) {
    auto m = Matches(stmt.where.get(), rel.schema, row, params);
    if (!m.ok()) return m.status();
    if (m.value()) filtered.push_back(std::move(row));
  }

  QueryResult result;

  // ---- SELECT * (no grouping allowed) ----
  if (stmt.star) {
    if (!stmt.group_by.empty()) {
      return Status::NotSupported("SELECT * with GROUP BY");
    }
    result.columns = stmt.tables.size() == 1
                         ? rel.raw_names
                         : std::vector<std::string>();
    if (stmt.tables.size() != 1) {
      for (const auto& col : rel.schema.columns()) {
        result.columns.push_back(col.name);
      }
    }
    // ORDER BY before projection-free output.
    if (stmt.order_by.has_value() || stmt.order_by_position > 0) {
      int idx;
      if (stmt.order_by_position > 0) {
        idx = static_cast<int>(stmt.order_by_position) - 1;
        if (idx >= static_cast<int>(rel.schema.num_columns())) {
          return Status::InvalidArgument("ORDER BY position out of range");
        }
      } else {
        idx = rel.schema.FindColumn(*stmt.order_by);
        if (idx < 0) {
          return Status::InvalidArgument("unknown ORDER BY column '" +
                                         *stmt.order_by + "'");
        }
      }
      std::stable_sort(filtered.begin(), filtered.end(),
                       [&](const sql::Row& a, const sql::Row& b) {
                         const int c = a[idx].Compare(b[idx]);
                         return stmt.order_desc ? c > 0 : c < 0;
                       });
    }
    if (stmt.limit >= 0 &&
        filtered.size() > static_cast<size_t>(stmt.limit)) {
      filtered.resize(static_cast<size_t>(stmt.limit));
    }
    result.rows = std::move(filtered);
    return result;
  }

  // ---- resolve output items ----
  struct OutItem {
    sql::AggFunc agg;
    int idx;  // column index in rel.schema; -1 for COUNT(*)
    std::string label;
  };
  std::vector<OutItem> out_items;
  const bool has_agg =
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const sql::SelectItem& i) {
                    return i.agg != sql::AggFunc::kNone;
                  });
  const bool grouped = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    OutItem out;
    out.agg = item.agg;
    out.idx = -1;
    if (!item.star && !item.column.empty()) {
      out.idx = rel.schema.FindColumn(item.column);
      if (out.idx < 0) {
        return Status::InvalidArgument("unknown column '" + item.column +
                                       "'");
      }
    }
    switch (item.agg) {
      case sql::AggFunc::kNone:
        out.label = item.column;
        break;
      case sql::AggFunc::kCount:
        out.label = item.star ? "count(*)" : "count(" + item.column + ")";
        break;
      case sql::AggFunc::kSum:
        out.label = "sum(" + item.column + ")";
        break;
      case sql::AggFunc::kAvg:
        out.label = "avg(" + item.column + ")";
        break;
      case sql::AggFunc::kMin:
        out.label = "min(" + item.column + ")";
        break;
      case sql::AggFunc::kMax:
        out.label = "max(" + item.column + ")";
        break;
    }
    result.columns.push_back(out.label);
    out_items.push_back(out);
  }

  if (has_agg || grouped) {
    // Resolve GROUP BY columns; plain output items must be among them.
    std::vector<int> group_idx;
    for (const auto& g : stmt.group_by) {
      const int idx = rel.schema.FindColumn(g);
      if (idx < 0) {
        return Status::InvalidArgument("unknown GROUP BY column '" + g +
                                       "'");
      }
      group_idx.push_back(idx);
    }
    for (size_t i = 0; i < out_items.size(); ++i) {
      if (out_items[i].agg != sql::AggFunc::kNone) continue;
      if (std::find(group_idx.begin(), group_idx.end(), out_items[i].idx) ==
          group_idx.end()) {
        return Status::InvalidArgument(
            "column '" + result.columns[i] +
            "' must appear in GROUP BY or be aggregated");
      }
    }

    // Partition rows by group key (one implicit group when no GROUP BY).
    std::map<sql::Key, std::vector<const sql::Row*>> groups;
    if (grouped) {
      for (const auto& row : filtered) {
        sql::Key key;
        for (int idx : group_idx) key.parts.push_back(row[idx]);
        groups[key].push_back(&row);
      }
    } else {
      auto& all = groups[sql::Key{}];
      for (const auto& row : filtered) all.push_back(&row);
    }

    for (const auto& [gkey, rows] : groups) {
      sql::Row out_row;
      for (const auto& item : out_items) {
        switch (item.agg) {
          case sql::AggFunc::kNone:
            out_row.push_back((*rows.front())[item.idx]);
            break;
          case sql::AggFunc::kCount: {
            int64_t count = 0;
            for (const auto* row : rows) {
              if (item.idx < 0 || !(*row)[item.idx].is_null()) ++count;
            }
            out_row.push_back(Value::Int(count));
            break;
          }
          case sql::AggFunc::kSum:
          case sql::AggFunc::kAvg: {
            double sum = 0.0;
            int64_t isum = 0;
            int64_t n = 0;
            bool any_double = false;
            for (const auto* row : rows) {
              const Value& v = (*row)[item.idx];
              if (v.is_null()) continue;
              if (!v.IsNumeric()) {
                return Status::InvalidArgument(
                    "SUM/AVG on non-numeric column");
              }
              if (v.type() == sql::ValueType::kDouble) any_double = true;
              sum += v.AsDouble();
              if (v.type() == sql::ValueType::kInt) isum += v.AsInt();
              ++n;
            }
            if (n == 0) {
              out_row.push_back(Value::Null());
            } else if (item.agg == sql::AggFunc::kSum) {
              out_row.push_back(any_double ? Value::Double(sum)
                                           : Value::Int(isum));
            } else {
              out_row.push_back(
                  Value::Double(sum / static_cast<double>(n)));
            }
            break;
          }
          case sql::AggFunc::kMin:
          case sql::AggFunc::kMax: {
            Value best;
            bool first = true;
            for (const auto* row : rows) {
              const Value& v = (*row)[item.idx];
              if (v.is_null()) continue;
              if (first) {
                best = v;
                first = false;
                continue;
              }
              const int c = v.Compare(best);
              if ((item.agg == sql::AggFunc::kMin && c < 0) ||
                  (item.agg == sql::AggFunc::kMax && c > 0)) {
                best = v;
              }
            }
            out_row.push_back(best);
            break;
          }
        }
      }
      result.rows.push_back(std::move(out_row));
    }
  } else {
    // Plain projection.
    result.rows.reserve(filtered.size());
    // ORDER BY a non-output schema column must sort before projection.
    if (stmt.order_by.has_value()) {
      bool is_output = std::find(result.columns.begin(),
                                 result.columns.end(),
                                 *stmt.order_by) != result.columns.end();
      if (!is_output) {
        const int idx = rel.schema.FindColumn(*stmt.order_by);
        if (idx < 0) {
          return Status::InvalidArgument("unknown ORDER BY column '" +
                                         *stmt.order_by + "'");
        }
        std::stable_sort(filtered.begin(), filtered.end(),
                         [&](const sql::Row& a, const sql::Row& b) {
                           const int c = a[idx].Compare(b[idx]);
                           return stmt.order_desc ? c > 0 : c < 0;
                         });
      }
    }
    for (const auto& row : filtered) {
      sql::Row out_row;
      out_row.reserve(out_items.size());
      for (const auto& item : out_items) out_row.push_back(row[item.idx]);
      result.rows.push_back(std::move(out_row));
    }
  }

  // ---- ORDER BY on the output (position, or an output column label) ----
  int sort_idx = -1;
  if (stmt.order_by_position > 0) {
    if (stmt.order_by_position > static_cast<int64_t>(result.columns.size())) {
      return Status::InvalidArgument("ORDER BY position out of range");
    }
    sort_idx = static_cast<int>(stmt.order_by_position) - 1;
  } else if (stmt.order_by.has_value()) {
    auto it = std::find(result.columns.begin(), result.columns.end(),
                        *stmt.order_by);
    if (it != result.columns.end()) {
      sort_idx = static_cast<int>(it - result.columns.begin());
    } else if (has_agg || grouped) {
      return Status::InvalidArgument(
          "ORDER BY of a grouped query must name an output column or "
          "position");
    }
  }
  if (sort_idx >= 0) {
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const sql::Row& a, const sql::Row& b) {
                       const int c = a[sort_idx].Compare(b[sort_idx]);
                       return stmt.order_desc ? c > 0 : c < 0;
                     });
  }
  if (stmt.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(stmt.limit)) {
    result.rows.resize(static_cast<size_t>(stmt.limit));
  }
  return result;
}

Result<QueryResult> Database::ExecUpdate(const TransactionPtr& txn,
                                         const sql::UpdateStmt& stmt,
                                         const std::vector<Value>& params) {
  storage::MvccTable* table = engine_.GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("no table '" + stmt.table + "'");
  }
  const sql::Schema& schema = table->schema();

  // Resolve assignment targets once.
  std::vector<std::pair<int, const sql::Expr*>> sets;
  for (const auto& [col, expr] : stmt.assignments) {
    const int idx = schema.FindColumn(col);
    if (idx < 0) {
      return Status::InvalidArgument("unknown column '" + col + "'");
    }
    if (schema.IsKeyColumn(static_cast<size_t>(idx))) {
      return Status::NotSupported(
          "updating primary key column '" + col +
          "' (tuple identity must be stable for replication)");
    }
    sets.emplace_back(idx, expr.get());
  }

  std::vector<std::pair<sql::Key, sql::Row>> matches;
  SIREP_RETURN_IF_ERROR(CollectMatches(engine_, txn, stmt.table, schema,
                                       stmt.where.get(), params, &matches));

  int64_t affected = 0;
  for (auto& [key, row] : matches) {
    sql::Row new_row = row;
    for (const auto& [idx, expr] : sets) {
      auto v = Eval(*expr, &schema, &row, params);
      if (!v.ok()) return v.status();
      new_row[idx] = std::move(v).value();
    }
    Status st = engine_.Update(txn, stmt.table, std::move(new_row));
    if (st.code() == StatusCode::kNotFound) continue;  // raced: 0 rows
    SIREP_RETURN_IF_ERROR(st);
    ++affected;
  }
  QueryResult result;
  result.rows_affected = affected;
  return result;
}

Result<QueryResult> Database::ExecDelete(const TransactionPtr& txn,
                                         const sql::DeleteStmt& stmt,
                                         const std::vector<Value>& params) {
  storage::MvccTable* table = engine_.GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("no table '" + stmt.table + "'");
  }
  const sql::Schema& schema = table->schema();

  std::vector<std::pair<sql::Key, sql::Row>> matches;
  SIREP_RETURN_IF_ERROR(CollectMatches(engine_, txn, stmt.table, schema,
                                       stmt.where.get(), params, &matches));

  int64_t affected = 0;
  for (const auto& [key, row] : matches) {
    Status st = engine_.Delete(txn, stmt.table, key);
    if (st.code() == StatusCode::kNotFound) continue;
    SIREP_RETURN_IF_ERROR(st);
    ++affected;
  }
  QueryResult result;
  result.rows_affected = affected;
  return result;
}

}  // namespace sirep::engine
