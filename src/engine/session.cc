#include "engine/session.h"

namespace sirep::engine {

Result<QueryResult> Session::Execute(const std::string& sql,
                                     const std::vector<sql::Value>& params) {
  auto stmt = db_->Prepare(sql);
  if (!stmt.ok()) return stmt.status();

  switch (stmt.value()->kind) {
    case sql::StatementKind::kBegin:
      if (txn_ != nullptr) {
        return Status::InvalidArgument("transaction already in progress");
      }
      txn_ = db_->Begin();
      return QueryResult{};
    case sql::StatementKind::kCommit: {
      SIREP_RETURN_IF_ERROR(Commit());
      return QueryResult{};
    }
    case sql::StatementKind::kRollback: {
      SIREP_RETURN_IF_ERROR(Rollback());
      return QueryResult{};
    }
    default:
      break;
  }

  const bool own_txn = txn_ == nullptr;
  if (own_txn) txn_ = db_->Begin();
  auto result = db_->Execute(txn_, *stmt.value(), params);
  if (!result.ok()) {
    // A transaction-failure status means storage already aborted the
    // transaction; statement-level errors (parse, unknown column) leave
    // it usable only in autocommit mode, where we abort our own txn.
    if (result.status().IsTransactionFailure() || own_txn) {
      db_->Abort(txn_);
      txn_ = nullptr;
    }
    return result;
  }
  if (own_txn && autocommit_) {
    Status st = db_->Commit(txn_);
    txn_ = nullptr;
    if (!st.ok()) return st;
  }
  return result;
}

Status Session::Commit() {
  if (txn_ == nullptr) return Status::OK();
  Status st = db_->Commit(txn_);
  txn_ = nullptr;
  return st;
}

Status Session::Rollback() {
  if (txn_ == nullptr) return Status::OK();
  db_->Abort(txn_);
  txn_ = nullptr;
  return Status::OK();
}

}  // namespace sirep::engine
