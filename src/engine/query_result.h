#ifndef SIREP_ENGINE_QUERY_RESULT_H_
#define SIREP_ENGINE_QUERY_RESULT_H_

#include <string>
#include <vector>

#include "sql/value.h"

namespace sirep::engine {

/// Result of executing one statement: column names + rows for SELECT,
/// rows_affected for DML, both empty for DDL/transaction control.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<sql::Row> rows;
  int64_t rows_affected = 0;

  bool empty() const { return rows.empty(); }
  size_t NumRows() const { return rows.size(); }

  /// Convenience for single-value results (aggregates, point reads).
  /// Returns NULL if there are no rows.
  sql::Value ScalarOrNull() const {
    if (rows.empty() || rows[0].empty()) return sql::Value::Null();
    return rows[0][0];
  }

  std::string ToString() const;
};

}  // namespace sirep::engine

#endif  // SIREP_ENGINE_QUERY_RESULT_H_
