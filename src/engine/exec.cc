#include "engine/exec.h"

#include <cmath>
#include <unordered_map>

namespace sirep::engine {

using sql::BinOp;
using sql::Expr;
using sql::ExprKind;
using sql::UnOp;
using sql::Value;
using sql::ValueType;

namespace {

/// SQL LIKE matcher: '%' matches any run (incl. empty), '_' any single
/// character. Iterative with backtracking over the last '%'.
bool LikeMatch(const std::string& text, const std::string& pattern) {
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> EvalBinary(const Expr& expr, const sql::Schema* schema,
                         const sql::Row* row,
                         const std::vector<Value>& params) {
  // AND/OR evaluate lazily to short-circuit.
  if (expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr) {
    auto left = Eval(*expr.left, schema, row, params);
    if (!left.ok()) return left;
    if (left.value().type() != ValueType::kBool) {
      return Status::InvalidArgument("AND/OR operand is not boolean");
    }
    const bool lval = left.value().AsBool();
    if (expr.bin_op == BinOp::kAnd && !lval) return Value::Bool(false);
    if (expr.bin_op == BinOp::kOr && lval) return Value::Bool(true);
    auto right = Eval(*expr.right, schema, row, params);
    if (!right.ok()) return right;
    if (right.value().type() != ValueType::kBool) {
      return Status::InvalidArgument("AND/OR operand is not boolean");
    }
    return Value::Bool(right.value().AsBool());
  }

  auto left = Eval(*expr.left, schema, row, params);
  if (!left.ok()) return left;
  auto right = Eval(*expr.right, schema, row, params);
  if (!right.ok()) return right;
  const Value& a = left.value();
  const Value& b = right.value();

  switch (expr.bin_op) {
    case BinOp::kLike: {
      if (a.is_null() || b.is_null()) return Value::Bool(false);
      if (a.type() != ValueType::kString ||
          b.type() != ValueType::kString) {
        return Status::InvalidArgument("LIKE requires string operands");
      }
      return Value::Bool(LikeMatch(a.AsString(), b.AsString()));
    }
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      if (a.is_null() || b.is_null()) return Value::Bool(false);
      const int c = a.Compare(b);
      switch (expr.bin_op) {
        case BinOp::kEq:
          return Value::Bool(c == 0);
        case BinOp::kNe:
          return Value::Bool(c != 0);
        case BinOp::kLt:
          return Value::Bool(c < 0);
        case BinOp::kLe:
          return Value::Bool(c <= 0);
        case BinOp::kGt:
          return Value::Bool(c > 0);
        default:
          return Value::Bool(c >= 0);
      }
    }
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv: {
      if (a.is_null() || b.is_null()) return Value::Null();
      if (!a.IsNumeric() || !b.IsNumeric()) {
        return Status::InvalidArgument("arithmetic on non-numeric value");
      }
      const bool as_double = a.type() == ValueType::kDouble ||
                             b.type() == ValueType::kDouble;
      if (as_double) {
        const double x = a.AsDouble(), y = b.AsDouble();
        switch (expr.bin_op) {
          case BinOp::kAdd:
            return Value::Double(x + y);
          case BinOp::kSub:
            return Value::Double(x - y);
          case BinOp::kMul:
            return Value::Double(x * y);
          default:
            if (y == 0.0) return Status::InvalidArgument("division by zero");
            return Value::Double(x / y);
        }
      }
      const int64_t x = a.AsInt(), y = b.AsInt();
      switch (expr.bin_op) {
        case BinOp::kAdd:
          return Value::Int(x + y);
        case BinOp::kSub:
          return Value::Int(x - y);
        case BinOp::kMul:
          return Value::Int(x * y);
        default:
          if (y == 0) return Status::InvalidArgument("division by zero");
          return Value::Int(x / y);
      }
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

}  // namespace

Result<Value> Eval(const Expr& expr, const sql::Schema* schema,
                   const sql::Row* row, const std::vector<Value>& params) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kParam: {
      if (expr.param_index < 0 ||
          static_cast<size_t>(expr.param_index) >= params.size()) {
        return Status::InvalidArgument(
            "missing value for parameter ?" +
            std::to_string(expr.param_index + 1) + " (got " +
            std::to_string(params.size()) + " parameters)");
      }
      return params[expr.param_index];
    }
    case ExprKind::kColumnRef: {
      if (schema == nullptr || row == nullptr) {
        return Status::InvalidArgument("column reference '" + expr.column +
                                       "' outside a row context");
      }
      const int idx = schema->FindColumn(expr.column);
      if (idx < 0) {
        return Status::InvalidArgument("unknown column '" + expr.column + "'");
      }
      return (*row)[idx];
    }
    case ExprKind::kUnary: {
      auto operand = Eval(*expr.left, schema, row, params);
      if (!operand.ok()) return operand;
      const Value& v = operand.value();
      switch (expr.un_op) {
        case UnOp::kNot:
          if (v.type() != ValueType::kBool) {
            return Status::InvalidArgument("NOT operand is not boolean");
          }
          return Value::Bool(!v.AsBool());
        case UnOp::kNeg:
          if (v.is_null()) return Value::Null();
          if (v.type() == ValueType::kInt) return Value::Int(-v.AsInt());
          if (v.type() == ValueType::kDouble) {
            return Value::Double(-v.AsDouble());
          }
          return Status::InvalidArgument("negation of non-numeric value");
        case UnOp::kIsNull:
          return Value::Bool(v.is_null());
        case UnOp::kIsNotNull:
          return Value::Bool(!v.is_null());
      }
      return Status::Internal("unhandled unary op");
    }
    case ExprKind::kBinary:
      return EvalBinary(expr, schema, row, params);
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> Matches(const Expr* where, const sql::Schema& schema,
                     const sql::Row& row, const std::vector<Value>& params) {
  if (where == nullptr) return true;
  auto result = Eval(*where, &schema, &row, params);
  if (!result.ok()) return result.status();
  if (result.value().type() != ValueType::kBool) {
    return Status::InvalidArgument("WHERE clause is not boolean");
  }
  return result.value().AsBool();
}

namespace {

/// Collects `col = constant` terms from an AND-tree, keyed by resolved
/// column index (so qualified and plain spellings meet). Returns false if
/// any non-AND / non-equality structure is found (the caller falls back
/// to a scan; this is only an optimization, so being conservative is
/// fine).
bool CollectEqualities(const Expr* expr, const sql::Schema& schema,
                       const std::vector<Value>& params,
                       std::unordered_map<int, Value>* out) {
  if (expr->kind != ExprKind::kBinary) return false;
  if (expr->bin_op == BinOp::kAnd) {
    return CollectEqualities(expr->left.get(), schema, params, out) &&
           CollectEqualities(expr->right.get(), schema, params, out);
  }
  if (expr->bin_op != BinOp::kEq) return false;
  const Expr* col = nullptr;
  const Expr* val = nullptr;
  if (expr->left->kind == ExprKind::kColumnRef) {
    col = expr->left.get();
    val = expr->right.get();
  } else if (expr->right->kind == ExprKind::kColumnRef) {
    col = expr->right.get();
    val = expr->left.get();
  } else {
    return false;
  }
  Value constant;
  if (val->kind == ExprKind::kLiteral) {
    constant = val->literal;
  } else if (val->kind == ExprKind::kParam) {
    if (val->param_index < 0 ||
        static_cast<size_t>(val->param_index) >= params.size()) {
      return false;
    }
    constant = params[val->param_index];
  } else {
    return false;
  }
  const int idx = schema.FindColumn(col->column);
  if (idx < 0) return false;
  // A repeated column with a different constant makes the predicate
  // unsatisfiable; keep the first binding and let the point lookup + final
  // Matches() filter sort it out.
  out->emplace(idx, std::move(constant));
  return true;
}

}  // namespace

std::optional<sql::Key> TryExtractKeyLookup(
    const sql::Schema& schema, const Expr* where,
    const std::vector<Value>& params) {
  if (where == nullptr) return std::nullopt;
  std::unordered_map<int, Value> eq;
  if (!CollectEqualities(where, schema, params, &eq)) return std::nullopt;
  sql::Key key;
  for (size_t idx : schema.key_indexes()) {
    auto it = eq.find(static_cast<int>(idx));
    if (it == eq.end()) return std::nullopt;
    key.parts.push_back(it->second);
  }
  return key;
}

}  // namespace sirep::engine
