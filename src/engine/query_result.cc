#include "engine/query_result.h"

#include <sstream>

namespace sirep::engine {

std::string QueryResult::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) os << " | ";
    os << columns[i];
  }
  if (!columns.empty()) os << "\n";
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << " | ";
      os << row[i].ToString();
    }
    os << "\n";
  }
  if (columns.empty()) {
    os << rows_affected << " row(s) affected\n";
  }
  return os.str();
}

}  // namespace sirep::engine
