#ifndef SIREP_ENGINE_EXEC_H_
#define SIREP_ENGINE_EXEC_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/schema.h"
#include "sql/value.h"

namespace sirep::engine {

/// Evaluates `expr` against an optional row (for column references) and
/// the statement parameters ('?' placeholders).
///
/// Semantics (deliberately small but consistent):
///  * arithmetic on INT stays INT; mixing with DOUBLE promotes to DOUBLE;
///    any NULL operand yields NULL; division by zero is an error.
///  * comparisons yield BOOL; a NULL operand yields FALSE (except via
///    IS NULL / IS NOT NULL).
///  * AND/OR/NOT require BOOL operands.
Result<sql::Value> Eval(const sql::Expr& expr, const sql::Schema* schema,
                        const sql::Row* row,
                        const std::vector<sql::Value>& params);

/// True if `where` (may be null => always true) accepts the row.
/// Evaluation errors propagate.
Result<bool> Matches(const sql::Expr* where, const sql::Schema& schema,
                     const sql::Row& row,
                     const std::vector<sql::Value>& params);

/// If `where` is a conjunction of equality predicates that pins every
/// primary-key column to a constant (literal or parameter), returns that
/// key — enabling a point lookup instead of a scan. Returns nullopt
/// otherwise.
std::optional<sql::Key> TryExtractKeyLookup(
    const sql::Schema& schema, const sql::Expr* where,
    const std::vector<sql::Value>& params);

}  // namespace sirep::engine

#endif  // SIREP_ENGINE_EXEC_H_
