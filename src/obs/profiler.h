#ifndef SIREP_OBS_PROFILER_H_
#define SIREP_OBS_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.h"

namespace sirep::obs {

/// In-process profiler hooks (ISSUE 10): two cheap instruments that make
/// "where did the regression come from" answerable from a bench artifact
/// alone, without attaching perf/gdb to a live run.
///
///  1. A *sampling wall-clock profiler* over annotated sections. Threads
///     mark the region they are executing with a Profiler::Section RAII
///     guard (a thread-local pointer swap — two relaxed stores, no
///     atomics contended across threads); a background sampler thread
///     wakes at a fixed interval and counts which section every live
///     thread is in. Sample shares approximate wall-clock shares the
///     same way `perf record`'s do, but over semantic section names
///     ("mw.apply_remote") instead of symbolized frames.
///
///  2. A *mutex-contention* helper (AcquireProfiled + LockStats) for
///     named critical sections — the hole tracker, the ToCommitQueue,
///     the ShardedWsIndex shards. Uncontended acquisitions cost one
///     striped counter bump; contended ones additionally record the
///     wait in a latency histogram. All three metrics live in the
///     owning component's MetricsRegistry ("<section>.acquires",
///     "<section>.contended", "<section>.wait_us"), so they ride every
///     existing exposition path (/metrics, DumpMetrics, bench JSON).
///
/// Section names must be string literals (or otherwise outlive the
/// process): the sampler reads the pointer from another thread after the
/// section may have exited.
class Profiler {
 public:
  /// Process-wide instance: sections and the sampler must see each other
  /// across component boundaries, like FlightRecorder::DumpAllText().
  static Profiler& Global();

  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// RAII section annotation. Nests: the enclosing section resumes when
  /// an inner one exits. Cost when no sampler runs: two thread-local
  /// stores.
  class Section {
   public:
    explicit Section(const char* name);
    ~Section();
    Section(const Section&) = delete;
    Section& operator=(const Section&) = delete;

   private:
    const char* prev_;
  };

  /// Starts the background sampler at `interval` (idempotent; a running
  /// sampler keeps its original interval).
  void StartSampling(std::chrono::microseconds interval);

  /// Stops and joins the sampler. Accumulated counts survive — snapshots
  /// after Stop see the final tallies. Idempotent.
  void StopSampling();

  bool sampling() const { return running_.load(std::memory_order_acquire); }

  struct Snapshot {
    bool sampling = false;
    uint64_t interval_us = 0;
    /// Sampler wakeups so far; section shares = samples / ticks (one
    /// thread in a section for a full tick contributes `1` per tick, so
    /// shares can exceed 1 with several threads in the same section).
    uint64_t ticks = 0;
    /// Section name -> samples observed in it.
    std::map<std::string, uint64_t> sections;
  };
  Snapshot GetSnapshot() const;

  /// {"sampling":true,"interval_us":...,"ticks":...,
  ///  "sections":{"mw.apply_remote":123,...}} — the /profile endpoint
  /// body and the bench artifact's "profile" section.
  std::string SnapshotJson() const;

  /// Resets sample counts and tick count (bench warmup boundary).
  void ResetCounts();

 private:
  friend class Section;

  static constexpr size_t kMaxThreads = 256;
  struct alignas(64) ThreadSlot {
    std::atomic<bool> used{false};
    /// Null when the thread is outside every annotated section. Always a
    /// string literal (see class comment).
    std::atomic<const char*> section{nullptr};
  };

  /// The calling thread's slot, claimed on first use and released by the
  /// thread-local handle's destructor at thread exit. Null when all
  /// kMaxThreads slots are taken (annotation becomes a no-op).
  ThreadSlot* MySlot();

  void SamplerLoop();

  ThreadSlot slots_[kMaxThreads];

  std::atomic<bool> running_{false};
  std::chrono::microseconds interval_{std::chrono::microseconds(2000)};
  std::thread sampler_;
  std::mutex sampler_mu_;  ///< guards Start/Stop transitions

  /// Sample tallies, written only by the sampler thread.
  mutable std::mutex counts_mu_;
  std::map<const char*, uint64_t> counts_;
  std::atomic<uint64_t> ticks_{0};
};

/// Metric handles for one named lock, resolved once from a registry.
/// Null members no-op, so components can be built without a registry.
struct LockStats {
  Counter* acquires = nullptr;
  Counter* contended = nullptr;
  Histogram* wait_us = nullptr;

  /// Registers "<prefix>.acquires" / "<prefix>.contended" /
  /// "<prefix>.wait_us" in `registry` (e.g. prefix "mw.lock.holes").
  /// Returns all-null stats when `registry` is null.
  static LockStats FromRegistry(MetricsRegistry* registry,
                                std::string_view prefix);
};

/// Acquires `mu`, accounting the acquisition into `stats`: fast path is
/// a try_lock plus one striped counter increment; only a contended
/// acquisition takes a clock reading and a histogram observation.
inline std::unique_lock<std::mutex> AcquireProfiled(std::mutex& mu,
                                                    const LockStats& stats) {
  if (stats.acquires != nullptr) stats.acquires->Increment();
  std::unique_lock<std::mutex> lock(mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    if (stats.contended != nullptr) stats.contended->Increment();
    const uint64_t t0 = MonotonicNanos();
    lock.lock();
    if (stats.wait_us != nullptr) {
      stats.wait_us->Observe(NanosToUs(MonotonicNanos() - t0));
    }
  }
  return lock;
}

}  // namespace sirep::obs

#endif  // SIREP_OBS_PROFILER_H_
