#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>

namespace sirep::obs {

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t Counter::SlotIndex() {
  // Hash the thread id once per thread; threads spread across stripes so
  // concurrent increments mostly touch distinct cache lines.
  static thread_local const size_t slot =
      std::hash<std::thread::id>()(std::this_thread::get_id()) % kStripes;
  return slot;
}

const std::vector<double>& LatencyBucketsUs() {
  static const std::vector<double>* const buckets = [] {
    auto* b = new std::vector<double>;
    for (int i = 0; i < 24; ++i) b->push_back(static_cast<double>(1u << i));
    return b;
  }();
  return *buckets;
}

const std::vector<double>& LengthBuckets() {
  static const std::vector<double>* const buckets = [] {
    auto* b = new std::vector<double>;
    for (int i = 1; i <= 16; ++i) b->push_back(i);
    for (double v : {24, 32, 48, 64, 96, 128, 256, 1024}) b->push_back(v);
    return b;
  }();
  return *buckets;
}

// ---- Histogram ----

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  const size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  // Lock-free running sum; fetch_add on atomic<double> is C++20.
  sum_.fetch_add(value, std::memory_order_relaxed);
  // Racy-but-monotone min/max via CAS loops.
  double seen = min_.load(std::memory_order_relaxed);
  while ((count_.load(std::memory_order_relaxed) == 0 || value < seen) &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while ((count_.load(std::memory_order_relaxed) == 0 || value > seen) &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  // Count is bumped last with release ordering: a snapshot that reads
  // count first (acquire) then buckets is guaranteed bucket-sum >= count.
  count_.fetch_add(1, std::memory_order_release);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_acquire);
  snap.bounds = bounds_;
  snap.buckets.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  snap.max = snap.count == 0 ? 0 : max_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : max;
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      double value = lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
      return std::min(max, std::max(min, value));
    }
    cumulative += in_bucket;
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  if (bounds == other.bounds) {
    for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  } else {
    // Shape mismatch (should not happen for same-named metrics): fold the
    // other side's mass into our overflow bucket so counts stay honest.
    buckets.back() += other.count;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

// ---- MetricsSnapshot ----

HistogramSnapshot::Percentiles HistogramSnapshot::SummaryPercentiles()
    const {
  Percentiles p;
  p.count = count;
  p.mean = Mean();
  p.p50 = Quantile(0.50);
  p.p95 = Quantile(0.95);
  p.p99 = Quantile(0.99);
  return p;
}

HistogramSnapshot::Percentiles MetricsSnapshot::Percentiles(
    const std::string& name) const {
  auto it = histograms.find(name);
  if (it == histograms.end()) return {};
  return it->second.SummaryPercentiles();
}

bool IsValidMetricName(std::string_view name) {
  // component.noun[_unit]: >= 2 lowercase dot-separated segments, each
  // [a-z][a-z0-9_]*. Underscores separate words within a segment, so a
  // segment may not end in one or contain a run of them ("mw.foo_",
  // "mw.foo__bar") — tightened when the mw.partial.* / mw.recovery.*
  // families joined the registry so their noun_unit suffixes
  // (bytes_sent, buffered_msgs, ...) are lintable, not just legal.
  bool at_segment_start = true;
  bool prev_underscore = false;
  size_t segments = 0;
  for (const char c : name) {
    if (at_segment_start) {
      if (c < 'a' || c > 'z') return false;
      at_segment_start = false;
      prev_underscore = false;
      ++segments;
    } else if (c == '.') {
      if (prev_underscore) return false;  // segment ends in '_'
      at_segment_start = true;
    } else if (c == '_') {
      if (prev_underscore) return false;  // "__" run
      prev_underscore = true;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      prev_underscore = false;
    } else {
      return false;
    }
  }
  return segments >= 2 && !at_segment_start && !prev_underscore;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, hist] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms[name] = hist;
    } else {
      it->second.Merge(hist);
    }
  }
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[40];
  // %.17g round-trips every finite double.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':') {
      c = '_';
    }
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendU64(&out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendI64(&out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"bounds\":[";
    for (size_t i = 0; i < hist.bounds.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendDouble(&out, hist.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendU64(&out, hist.buckets[i]);
    }
    out += "],\"count\":";
    AppendU64(&out, hist.count);
    out += ",\"sum\":";
    AppendDouble(&out, hist.sum);
    out += ",\"min\":";
    AppendDouble(&out, hist.min);
    out += ",\"max\":";
    AppendDouble(&out, hist.max);
    out.push_back('}');
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string pname = PromName(name);
    out += "# TYPE " + pname + " counter\n" + pname + " ";
    AppendU64(&out, value);
    out.push_back('\n');
  }
  for (const auto& [name, value] : gauges) {
    const std::string pname = PromName(name);
    out += "# TYPE " + pname + " gauge\n" + pname + " ";
    AppendI64(&out, value);
    out.push_back('\n');
  }
  for (const auto& [name, hist] : histograms) {
    const std::string pname = PromName(name);
    out += "# TYPE " + pname + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist.bounds.size(); ++i) {
      cumulative += hist.buckets[i];
      out += pname + "_bucket{le=\"";
      AppendDouble(&out, hist.bounds[i]);
      out += "\"} ";
      AppendU64(&out, cumulative);
      out.push_back('\n');
    }
    cumulative += hist.buckets.empty() ? 0 : hist.buckets.back();
    out += pname + "_bucket{le=\"+Inf\"} ";
    AppendU64(&out, cumulative);
    out += "\n" + pname + "_sum ";
    AppendDouble(&out, hist.sum);
    out += "\n" + pname + "_count ";
    AppendU64(&out, hist.count);
    out.push_back('\n');
  }
  return out;
}

// ---- minimal JSON parser (exactly the subset ToJson emits) ----

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool error() const { return error_; }
  const std::string& message() const { return message_; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    Fail(std::string("expected '") + c + "'");
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  std::string ParseString() {
    SkipWs();
    std::string out;
    if (!Consume('"')) return out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        if (esc == 'u' && pos_ + 4 <= text_.size()) {
          // ToJson only emits \u00XX for control chars.
          out.push_back(static_cast<char>(
              std::strtol(text_.substr(pos_, 4).c_str(), nullptr, 16)));
          pos_ += 4;
        } else {
          out.push_back(esc);
        }
      } else {
        out.push_back(c);
      }
    }
    Consume('"');
    return out;
  }

  double ParseNumber() {
    SkipWs();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(start, &end);
    if (end == start) {
      Fail("expected number");
      return 0;
    }
    pos_ += static_cast<size_t>(end - start);
    return v;
  }

  void Fail(std::string message) {
    if (!error_) {
      error_ = true;
      message_ = std::move(message) + " at offset " + std::to_string(pos_);
    }
    pos_ = text_.size();
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  bool error_ = false;
  std::string message_;
};

/// Parses `{"key": <number>, ...}` with ParseValue applied per entry.
template <typename Fn>
void ParseObject(JsonParser& p, const Fn& on_entry) {
  if (!p.Consume('{')) return;
  if (p.Peek('}')) {
    p.Consume('}');
    return;
  }
  while (!p.error()) {
    std::string key = p.ParseString();
    p.Consume(':');
    on_entry(key);
    if (p.Peek(',')) {
      p.Consume(',');
      continue;
    }
    p.Consume('}');
    break;
  }
}

template <typename Fn>
void ParseArray(JsonParser& p, const Fn& on_element) {
  if (!p.Consume('[')) return;
  if (p.Peek(']')) {
    p.Consume(']');
    return;
  }
  while (!p.error()) {
    on_element(p.ParseNumber());
    if (p.Peek(',')) {
      p.Consume(',');
      continue;
    }
    p.Consume(']');
    break;
  }
}

}  // namespace

Result<MetricsSnapshot> MetricsSnapshot::FromJson(const std::string& json) {
  MetricsSnapshot snap;
  JsonParser p(json);
  ParseObject(p, [&](const std::string& section) {
    if (section == "counters") {
      ParseObject(p, [&](const std::string& name) {
        snap.counters[name] = static_cast<uint64_t>(p.ParseNumber());
      });
    } else if (section == "gauges") {
      ParseObject(p, [&](const std::string& name) {
        snap.gauges[name] = static_cast<int64_t>(p.ParseNumber());
      });
    } else if (section == "histograms") {
      ParseObject(p, [&](const std::string& name) {
        HistogramSnapshot hist;
        ParseObject(p, [&](const std::string& field) {
          if (field == "bounds") {
            ParseArray(p, [&](double v) { hist.bounds.push_back(v); });
          } else if (field == "buckets") {
            ParseArray(p, [&](double v) {
              hist.buckets.push_back(static_cast<uint64_t>(v));
            });
          } else if (field == "count") {
            hist.count = static_cast<uint64_t>(p.ParseNumber());
          } else if (field == "sum") {
            hist.sum = p.ParseNumber();
          } else if (field == "min") {
            hist.min = p.ParseNumber();
          } else if (field == "max") {
            hist.max = p.ParseNumber();
          } else {
            p.Fail("unknown histogram field '" + field + "'");
          }
        });
        snap.histograms[name] = std::move(hist);
      });
    } else {
      p.Fail("unknown section '" + section + "'");
    }
  });
  if (p.error()) {
    return Status::InvalidArgument("bad metrics JSON: " + p.message());
  }
  return snap;
}

// ---- MetricsRegistry ----

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  assert(IsValidMetricName(name) && "metric name violates component.noun");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  assert(IsValidMetricName(name) && "metric name violates component.noun");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const std::vector<double>& bounds) {
  assert(IsValidMetricName(name) && "metric name violates component.noun");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->Snapshot();
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

// ---- ScopedLatency ----

ScopedLatency::ScopedLatency(Histogram* hist)
    : hist_(hist), start_ns_(hist == nullptr ? 0 : MonotonicNanos()) {}

ScopedLatency::~ScopedLatency() { Stop(); }

void ScopedLatency::Stop() {
  if (hist_ == nullptr) return;
  hist_->Observe(NanosToUs(MonotonicNanos() - start_ns_));
  hist_ = nullptr;
}

}  // namespace sirep::obs
