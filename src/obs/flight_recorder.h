#ifndef SIREP_OBS_FLIGHT_RECORDER_H_
#define SIREP_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sirep::obs {

/// What a flight-recorder event describes. The scalar payload (a, b)
/// and the short detail string are event-specific:
///
///   kViewChange      a = view id, b = member count, detail = reason
///   kValidation      a = gid.seq, b = origin replica, detail = first
///                    conflicting key (abort verdicts only; successful
///                    validations are counted in metrics, not recorded,
///                    so rare events survive longer in the ring)
///   kFailpoint       a = 1 if the point fired, b = verdict kind,
///                    detail = point name
///   kWalTruncate     a = valid prefix bytes, b = bytes dropped,
///                    detail = WAL path tail
///   kQueueHighWater  a = new high-water depth, b = previous high
///                    water, detail = queue name
///   kInvariant       a/b free-form, detail = violation summary
///   kCrash           a = signal number or 0, detail = origin
///   kRecovery        a = transfer id, b = stage-specific (donor id,
///                    tid, chunk count), detail = stage ("request",
///                    "donate", "donor_switch", "buffer_spill",
///                    "cutover", "complete")
enum class FlightEventType : uint8_t {
  kViewChange = 0,
  kValidation,
  kFailpoint,
  kWalTruncate,
  kQueueHighWater,
  kInvariant,
  kCrash,
  kRecovery,
};

const char* FlightEventTypeName(FlightEventType type);

/// One recorded event, as read back by Dump().
struct FlightEvent {
  uint64_t seq = 0;      ///< global claim order (monotonic)
  uint64_t mono_ns = 0;  ///< MonotonicNanos() at record time
  FlightEventType type = FlightEventType::kViewChange;
  uint32_t replica = 0;  ///< recording replica id (0 for process-wide)
  uint64_t a = 0;
  uint64_t b = 0;
  std::string detail;    ///< truncated to kDetailBytes
};

/// Fixed-size lock-free black box: the last `capacity` structured
/// events, recorded from hot paths with one atomic claim per event.
///
/// Writers claim a slot with a single fetch_add on the sequence
/// counter, fill the slot's fields with relaxed atomic stores, then
/// publish with a release store of the stamp. No locks, no allocation,
/// no syscalls on the record path. If the ring wraps while a slow
/// writer is still filling a slot, the stamp mismatch lets readers
/// drop that slot instead of reporting a torn event; every field is an
/// atomic word, so the race is benign (and TSan-clean) by
/// construction.
///
/// Readers (Dump/DumpText) are best-effort and lock-free too: they
/// re-check the stamp after copying and discard slots that changed
/// underneath them. The recorder is meant to be dumped on crash
/// signal, invariant violation, or explicit request — not polled.
class FlightRecorder {
 public:
  static constexpr size_t kDetailBytes = 48;

  /// `capacity` is rounded up to a power of two (min 64).
  explicit FlightRecorder(size_t capacity = 4096);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event. Safe from any thread; one atomic claim plus a
  /// handful of relaxed stores.
  void Record(FlightEventType type, uint32_t replica, uint64_t a,
              uint64_t b, std::string_view detail);

  /// Events currently readable, oldest first. Slots being overwritten
  /// concurrently are skipped.
  std::vector<FlightEvent> Dump() const;

  /// Human-readable dump, one line per event:
  ///   [seq] +<ms-since-first> <type> r<replica> a=<a> b=<b> <detail>
  std::string DumpText() const;

  /// Total events ever recorded (claims), including overwritten ones.
  uint64_t TotalRecorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

  /// Process-wide recorder for components without a per-replica one
  /// (WAL recovery, failpoint hits, harness-level events). Never
  /// destroyed.
  static FlightRecorder& Global();

  /// Concatenated DumpText() of every live recorder (the global one
  /// plus each registered per-replica recorder), section-headed.
  static std::string DumpAllText();

  /// Installs fatal-signal handlers (SIGSEGV, SIGABRT, SIGBUS, SIGFPE)
  /// that write DumpAllText() to "<path_prefix>.pid<pid>.txt" before
  /// re-raising the default action. Best-effort: the handler formats
  /// text, which is not strictly async-signal-safe, but a black box
  /// that usually survives beats none. Idempotent.
  static void InstallCrashHandler(const std::string& path_prefix);

  /// Routes failpoint verdicts into the global recorder (one
  /// kFailpoint event per evaluation of an armed point), so injected
  /// faults appear in the black box next to their consequences.
  /// Idempotent.
  static void RecordFailpointHits();

 private:
  struct Slot {
    /// 0 = never written; otherwise claim seq + 1, stored last with
    /// release ordering (the publication stamp).
    std::atomic<uint64_t> stamp{0};
    std::atomic<uint64_t> mono_ns{0};
    std::atomic<uint64_t> meta{0};  ///< type | replica << 8
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint64_t> detail[kDetailBytes / 8]{};
  };

  bool ReadSlot(const Slot& slot, FlightEvent* out) const;

  size_t capacity_;  ///< power of two
  std::atomic<uint64_t> next_seq_{0};
  std::vector<Slot> slots_;
};

}  // namespace sirep::obs

#endif  // SIREP_OBS_FLIGHT_RECORDER_H_
