#include "obs/profiler.h"

#include <cinttypes>
#include <cstdio>

namespace sirep::obs {

Profiler& Profiler::Global() {
  // Leaked like MetricsRegistry::Default(): thread-local slot handles
  // may release their slot after static destruction would have run.
  static Profiler* const profiler = new Profiler();
  return *profiler;
}

Profiler::Profiler() = default;

Profiler::~Profiler() { StopSampling(); }

namespace {

/// Releases the thread's slot when the thread exits, so the fixed slot
/// array survives arbitrary thread churn (appliers, donors, samplers).
struct SlotHandle {
  void* slot = nullptr;  ///< Profiler::ThreadSlot* (opaque here)
  std::atomic<bool>* used = nullptr;
  std::atomic<const char*>* section = nullptr;
  ~SlotHandle() {
    if (slot == nullptr) return;
    section->store(nullptr, std::memory_order_release);
    used->store(false, std::memory_order_release);
  }
};

thread_local SlotHandle t_slot;
thread_local bool t_slot_claimed = false;

}  // namespace

Profiler::ThreadSlot* Profiler::MySlot() {
  if (t_slot_claimed) {
    // Null when claiming failed earlier (all slots taken).
    return static_cast<ThreadSlot*>(t_slot.slot);
  }
  t_slot_claimed = true;
  for (size_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (slots_[i].used.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
      t_slot.slot = &slots_[i];
      t_slot.used = &slots_[i].used;
      t_slot.section = &slots_[i].section;
      return &slots_[i];
    }
  }
  return nullptr;  // all slots taken: annotation becomes a no-op
}

Profiler::Section::Section(const char* name) : prev_(nullptr) {
  ThreadSlot* slot = Profiler::Global().MySlot();
  if (slot == nullptr) return;
  prev_ = slot->section.load(std::memory_order_relaxed);
  slot->section.store(name, std::memory_order_release);
}

Profiler::Section::~Section() {
  if (t_slot.section == nullptr) return;
  t_slot.section->store(prev_, std::memory_order_release);
}

void Profiler::StartSampling(std::chrono::microseconds interval) {
  std::lock_guard<std::mutex> lock(sampler_mu_);
  if (running_.load(std::memory_order_acquire)) return;
  if (interval.count() > 0) interval_ = interval;
  running_.store(true, std::memory_order_release);
  sampler_ = std::thread([this] { SamplerLoop(); });
}

void Profiler::StopSampling() {
  std::lock_guard<std::mutex> lock(sampler_mu_);
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (sampler_.joinable()) sampler_.join();
}

void Profiler::SamplerLoop() {
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(interval_);
    ticks_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(counts_mu_);
    for (size_t i = 0; i < kMaxThreads; ++i) {
      if (!slots_[i].used.load(std::memory_order_acquire)) continue;
      const char* section = slots_[i].section.load(std::memory_order_acquire);
      if (section != nullptr) ++counts_[section];
    }
  }
}

Profiler::Snapshot Profiler::GetSnapshot() const {
  Snapshot snap;
  snap.sampling = sampling();
  snap.interval_us = static_cast<uint64_t>(interval_.count());
  snap.ticks = ticks_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(counts_mu_);
  for (const auto& [name, count] : counts_) {
    snap.sections[name] += count;
  }
  return snap;
}

std::string Profiler::SnapshotJson() const {
  const Snapshot snap = GetSnapshot();
  std::string out = "{\"sampling\":";
  out += snap.sampling ? "true" : "false";
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"interval_us\":%" PRIu64,
                snap.interval_us);
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"ticks\":%" PRIu64, snap.ticks);
  out += buf;
  out += ",\"sections\":{";
  bool first = true;
  for (const auto& [name, count] : snap.sections) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += name;  // section names are identifier-like literals
    out += "\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, count);
    out += buf;
  }
  out += "}}";
  return out;
}

void Profiler::ResetCounts() {
  std::lock_guard<std::mutex> lock(counts_mu_);
  counts_.clear();
  ticks_.store(0, std::memory_order_relaxed);
}

LockStats LockStats::FromRegistry(MetricsRegistry* registry,
                                  std::string_view prefix) {
  LockStats stats;
  if (registry == nullptr) return stats;
  const std::string base(prefix);
  stats.acquires = registry->GetCounter(base + ".acquires");
  stats.contended = registry->GetCounter(base + ".contended");
  stats.wait_us = registry->GetLatencyHistogram(base + ".wait_us");
  return stats;
}

}  // namespace sirep::obs
