#include "obs/trace.h"

#include <chrono>

#include "common/logging.h"

namespace sirep::obs {

std::string TraceContext::ToString() const {
  return "r" + std::to_string(origin_replica) + "/" +
         std::to_string(trace_id);
}

uint64_t TraceContext::WallNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kExecute:
      return "execute";
    case Stage::kExtract:
      return "extract";
    case Stage::kLocalValidate:
      return "local_validate";
    case Stage::kMulticast:
      return "multicast";
    case Stage::kGlobalValidate:
      return "global_validate";
    case Stage::kApply:
      return "apply";
    case Stage::kCommit:
      return "commit";
    case Stage::kApplyParallelism:
      return "apply_parallelism";
    case Stage::kSequencerQueue:
      return "sequencer_queue";
    case Stage::kDeliverySkew:
      return "delivery_skew";
    case Stage::kRemoteApplyLag:
      return "remote_apply_lag";
    case Stage::kSnapshotStaleness:
      return "snapshot_staleness";
  }
  return "unknown";
}

std::string StageMetricName(Stage stage) {
  // kApplyParallelism counts concurrent appliers, not microseconds.
  if (stage == Stage::kApplyParallelism) {
    return std::string("mw.commit.stage.") + StageName(stage);
  }
  return std::string("mw.commit.stage.") + StageName(stage) + "_us";
}

StageHistograms StageHistograms::FromRegistry(MetricsRegistry* registry) {
  StageHistograms hists;
  if (registry == nullptr) return hists;
  for (int i = 0; i < kNumStages; ++i) {
    const Stage stage = static_cast<Stage>(i);
    hists.stage[i] =
        stage == Stage::kApplyParallelism
            ? registry->GetHistogram(StageMetricName(stage), LengthBuckets())
            : registry->GetLatencyHistogram(StageMetricName(stage));
  }
  return hists;
}

void TxnTrace::Begin(Stage stage) {
  start_ns_[Index(stage)] = MonotonicNanos();
}

void TxnTrace::End(Stage stage) { EndAt(stage, MonotonicNanos()); }

void TxnTrace::EndAt(Stage stage, uint64_t end_ns) {
  const int i = Index(stage);
  if (start_ns_[i] == 0) return;
  if (end_ns > start_ns_[i]) duration_ns_[i] += end_ns - start_ns_[i];
  counts_[i] += 1;
  start_ns_[i] = 0;
}

void TxnTrace::Add(Stage stage, uint64_t duration_ns) {
  const int i = Index(stage);
  duration_ns_[i] += duration_ns;
  counts_[i] += 1;
}

uint64_t TxnTrace::TotalNs() const {
  uint64_t total = 0;
  for (uint64_t d : duration_ns_) total += d;
  return total;
}

void TxnTrace::Flush(const StageHistograms& hists) const {
  for (int i = 0; i < kNumStages; ++i) {
    if (counts_[i] == 0) continue;
    if (hists.stage[i] != nullptr) {
      hists.stage[i]->Observe(NanosToUs(duration_ns_[i]));
    }
  }
  if (SIREP_LOG_ENABLED(LogLevel::kDebug)) {
    for (int i = 0; i < kNumStages; ++i) {
      if (counts_[i] == 0) continue;
      SIREP_DLOG << "span txn=" << id_
                 << " stage=" << StageName(static_cast<Stage>(i))
                 << " us=" << NanosToUs(duration_ns_[i])
                 << " spans=" << counts_[i];
    }
    SIREP_DLOG << "span txn=" << id_
               << " stage=total us=" << NanosToUs(TotalNs());
  }
}

}  // namespace sirep::obs
