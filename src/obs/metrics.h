#ifndef SIREP_OBS_METRICS_H_
#define SIREP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sirep::obs {

/// The observability substrate for the SI-Rep stack: named counters,
/// gauges, and fixed-bucket histograms behind one thread-safe registry.
///
/// Design constraints (this sits on the commit hot path):
///  * recording is lock-free — counters are striped across cache lines,
///    histograms bump per-bucket atomics; no mutex is ever taken after a
///    metric handle has been obtained;
///  * handles are raw pointers that stay valid for the registry's
///    lifetime, so components look a metric up once (constructor) and
///    record through the pointer forever after;
///  * snapshots are merely racy-consistent (each atomic is read once;
///    totals can lag bucket sums by in-flight updates) — fine for
///    monitoring, and the ordering in Histogram::Observe guarantees
///    bucket-sum >= count in any snapshot.
///
/// Each component (storage engine, GCS group, middleware replica) owns
/// its own registry so per-replica numbers stay separable; a deployment
/// aggregates them with MetricsSnapshot::Merge (see Cluster::DumpMetrics).

/// Monotone event counter, striped to keep concurrent increments off a
/// single cache line.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t n) {
    slots_[SlotIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& slot : slots_) {
      total += slot.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kStripes = 8;
  static size_t SlotIndex();

  struct alignas(64) Slot {
    std::atomic<uint64_t> value{0};
  };
  std::array<Slot, kStripes> slots_;
};

/// Instantaneous level (queue depth, active transactions, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Exponential bucket upper bounds for latency histograms, in
/// microseconds: 1, 2, 4, ..., 2^23 us (~8.4 s), 24 finite buckets plus
/// the implicit +inf overflow bucket.
const std::vector<double>& LatencyBucketsUs();

/// Small linear bounds for length-like distributions (queue depths,
/// version-chain lengths, retry counts): 1..16, 24, 32, 48, 64, 96, 128,
/// 256, 1024.
const std::vector<double>& LengthBuckets();

struct HistogramSnapshot {
  std::vector<double> bounds;      ///< finite upper bounds, ascending
  std::vector<uint64_t> buckets;   ///< bounds.size() + 1 (last = +inf)
  uint64_t count = 0;
  double sum = 0;
  double min = 0;  ///< 0 when count == 0
  double max = 0;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }
  /// Quantile estimate by linear interpolation inside the bucket (q in
  /// [0,1]). Clamped to [min, max] so tiny samples don't report a whole
  /// bucket's width.
  double Quantile(double q) const;

  /// The percentile summary benches print instead of raw bucket dumps.
  struct Percentiles {
    uint64_t count = 0;
    double mean = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
  };
  Percentiles SummaryPercentiles() const;

  void Merge(const HistogramSnapshot& other);
  bool operator==(const HistogramSnapshot& other) const = default;
};

/// Fixed-bucket histogram. A value lands in the first bucket whose upper
/// bound is >= value; values above every bound land in the overflow
/// bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);
  uint64_t Count() const { return count_.load(std::memory_order_acquire); }
  HistogramSnapshot Snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  const std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<double> sum_{0};
  std::atomic<double> min_{0};
  std::atomic<double> max_{0};
  std::atomic<uint64_t> count_{0};  // bumped last (release)
};

/// Everything a registry knew at one instant. Mergeable across
/// registries (counters/gauges add, same-shape histograms add
/// bucket-wise) and serializable as JSON or Prometheus text.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  void Merge(const MetricsSnapshot& other);
  std::string ToJson() const;
  std::string ToPrometheusText() const;

  /// Percentile summary of the named histogram, or a zeroed row when the
  /// histogram is absent or empty.
  HistogramSnapshot::Percentiles Percentiles(const std::string& name) const;

  /// Parses the output of ToJson() back (round-trip; used by tests and
  /// by tooling that scrapes bench output).
  static Result<MetricsSnapshot> FromJson(const std::string& json);

  bool operator==(const MetricsSnapshot& other) const = default;
};

/// Naming convention lint: every registered metric name must be
/// `component.noun` (optionally nested, with a unit suffix where the
/// value has one): lowercase dot-separated segments of [a-z0-9_],
/// starting with a letter, at least two segments — e.g.
/// "mw.commit.stage.apply_us", "gcs.tcp.connect_retries". Enforced by
/// an assert in the registry's Get* methods (debug builds) and by a
/// unit test that sweeps every name a running cluster registers.
bool IsValidMetricName(std::string_view name);

/// Thread-safe name -> metric registry. Registration takes a mutex;
/// recording through the returned pointers never does. Metrics are never
/// removed, so pointers remain valid until the registry dies.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `bounds` is consulted only on first creation; later callers get the
  /// existing histogram whatever its bounds.
  Histogram* GetHistogram(std::string_view name,
                          const std::vector<double>& bounds);
  /// Latency-bucketed convenience (microseconds).
  Histogram* GetLatencyHistogram(std::string_view name) {
    return GetHistogram(name, LatencyBucketsUs());
  }

  MetricsSnapshot Snapshot() const;
  std::string SnapshotJson() const { return Snapshot().ToJson(); }
  std::string PrometheusText() const { return Snapshot().ToPrometheusText(); }

  /// Process-global registry for standalone components that were not
  /// handed one explicitly.
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Stopwatch recording elapsed wall time into a histogram (microseconds)
/// on destruction. `hist` may be null (no-op) so call sites don't need
/// their own guards.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* hist);
  ~ScopedLatency();

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

  /// Stops the clock early and records once; destruction then no-ops.
  void Stop();

 private:
  Histogram* hist_;
  uint64_t start_ns_;
};

/// Monotonic nanosecond clock reading (steady_clock), the time base for
/// every duration metric in the system.
uint64_t MonotonicNanos();

inline double NanosToUs(uint64_t ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace sirep::obs

#endif  // SIREP_OBS_METRICS_H_
