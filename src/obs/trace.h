#ifndef SIREP_OBS_TRACE_H_
#define SIREP_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace sirep::obs {

/// The stages a transaction passes through on the SI-Rep commit path
/// (paper Fig. 4): statement execution, writeset extraction, local
/// validation (I.2), total-order multicast, global validation (II), and
/// apply + commit (III). `kApply` is writeset application to the
/// database (remote txns; zero for the local replica, which already
/// holds the changes); `kCommit` is the storage-level commit install.
enum class Stage : int {
  kExecute = 0,
  kExtract,
  kLocalValidate,
  kMulticast,
  kGlobalValidate,
  kApply,
  kCommit,
};
inline constexpr int kNumStages = 7;

/// Short lowercase name, e.g. "local_validate".
const char* StageName(Stage stage);

/// Registry metric name for a stage histogram, e.g.
/// "mw.commit.stage.local_validate_us".
std::string StageMetricName(Stage stage);

/// The per-stage histograms a tracing component records into; resolved
/// once from a registry and then shared by every trace.
struct StageHistograms {
  std::array<Histogram*, kNumStages> stage{};

  static StageHistograms FromRegistry(MetricsRegistry* registry);
};

/// Per-transaction trace context carried from BeginTxn to commit.
///
/// Threading: a trace is written by one thread at a time — the client
/// session thread up to multicast, the GCS delivery thread between
/// delivery and validation outcome, then the client thread again. Those
/// handoffs are ordered by the middleware's pending-commit mutex and
/// condition variable, so plain (non-atomic) fields are race-free.
class TxnTrace {
 public:
  /// `id` labels the kDebug span log lines (typically the GlobalTxnId).
  void SetId(std::string id) { id_ = std::move(id); }
  const std::string& id() const { return id_; }

  /// Starts the stage clock. Begin/End pairs may repeat (e.g. one
  /// kExecute span per statement); durations accumulate.
  void Begin(Stage stage);
  /// Stops the stage clock and accumulates the elapsed time. No-op if
  /// the stage is not running.
  void End(Stage stage);
  /// Like End, but against a caller-supplied clock reading — for stages
  /// whose end is observed on a different thread than where the end time
  /// was taken (e.g. multicast delivery).
  void EndAt(Stage stage, uint64_t end_ns);
  /// Records an externally measured duration for `stage`.
  void Add(Stage stage, uint64_t duration_ns);

  bool Running(Stage stage) const { return start_ns_[Index(stage)] != 0; }
  uint64_t Count(Stage stage) const { return counts_[Index(stage)]; }
  uint64_t DurationNs(Stage stage) const {
    return duration_ns_[Index(stage)];
  }
  uint64_t TotalNs() const;

  /// Observes every stage that ran into `hists` and, when kDebug
  /// logging is on, emits one structured span line per stage plus a
  /// summary line, all tagged with id(). Call once, at commit.
  void Flush(const StageHistograms& hists) const;

 private:
  static int Index(Stage stage) { return static_cast<int>(stage); }

  std::string id_;
  std::array<uint64_t, kNumStages> start_ns_{};
  std::array<uint64_t, kNumStages> duration_ns_{};
  std::array<uint64_t, kNumStages> counts_{};
};

}  // namespace sirep::obs

#endif  // SIREP_OBS_TRACE_H_
