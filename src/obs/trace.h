#ifndef SIREP_OBS_TRACE_H_
#define SIREP_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace sirep::obs {

/// The stages a transaction passes through on the SI-Rep commit path
/// (paper Fig. 4): statement execution, writeset extraction, local
/// validation (I.2), total-order multicast, global validation (II), and
/// apply + commit (III). `kApply` is writeset application to the
/// database (remote txns; zero for the local replica, which already
/// holds the changes); `kCommit` is the storage-level commit install.
///
/// The stages after kCommit are cross-replica: measured against the
/// originating replica's TraceContext timestamps carried in the
/// multicast writeset, so the replicated leg (the one SI-Rep adds over
/// a standalone database) is visible in the Fig. 7 breakdown.
///   kSequencerQueue   multicast enqueue -> delivery at the origin
///                     replica (batch wait + sequencer round-trip).
///   kDeliverySkew     how much later a *remote* replica saw the
///                     writeset than the estimated fastest delivery
///                     (local arrival minus origin send, minus the
///                     replica's clock-offset estimate).
///   kRemoteApplyLag   delivery at a remote replica -> that replica's
///                     commit install (tocommit queueing + apply).
///   kSnapshotStaleness  origin multicast send -> visible (committed)
///                     at a remote replica: the window in which a read
///                     there still sees the pre-transaction snapshot.
///
/// kApplyParallelism is the odd one out: not a latency but the number of
/// concurrently in-flight remote applies, sampled once per apply start.
/// Its metric name carries no "_us" suffix and its histogram uses count
/// (length) buckets; it shows how much of the apply pipeline's width
/// (SIREP_APPLY_THREADS) the workload actually exploits.
enum class Stage : int {
  kExecute = 0,
  kExtract,
  kLocalValidate,
  kMulticast,
  kGlobalValidate,
  kApply,
  kCommit,
  kApplyParallelism,
  kSequencerQueue,
  kDeliverySkew,
  kRemoteApplyLag,
  kSnapshotStaleness,
};
inline constexpr int kNumStages = 12;

/// First cross-replica stage; [kFirstCrossReplicaStage, kNumStages) are
/// measured against the origin's TraceContext rather than one replica's
/// own clock.
inline constexpr int kFirstCrossReplicaStage =
    static_cast<int>(Stage::kSequencerQueue);

/// Compact distributed-trace context propagated with every multicast
/// writeset (gcs::WireEntry / middleware::WriteSetMessage, versioned
/// serde), so remote replicas can record their validate/apply/commit
/// spans under the *originating* transaction's trace id and measure
/// delivery skew and snapshot staleness against the origin's clocks.
/// A zero trace_id means "no context" (e.g. a frame decoded from the
/// v1 wire format).
struct TraceContext {
  uint64_t trace_id = 0;        ///< cluster-unique; 0 = absent
  uint32_t origin_replica = 0;  ///< GCS member id of the originator
  uint64_t origin_mono_ns = 0;  ///< origin MonotonicNanos() at multicast
  uint64_t origin_wall_ns = 0;  ///< origin wall clock (ns since epoch)

  bool valid() const { return trace_id != 0; }
  /// "r<origin>/<trace_id>" — the span-log tag remote replicas use.
  std::string ToString() const;
  /// Current wall clock in nanoseconds since the Unix epoch.
  static uint64_t WallNanos();

  friend bool operator==(const TraceContext& a, const TraceContext& b) {
    return a.trace_id == b.trace_id &&
           a.origin_replica == b.origin_replica &&
           a.origin_mono_ns == b.origin_mono_ns &&
           a.origin_wall_ns == b.origin_wall_ns;
  }
};

/// Short lowercase name, e.g. "local_validate".
const char* StageName(Stage stage);

/// Registry metric name for a stage histogram, e.g.
/// "mw.commit.stage.local_validate_us".
std::string StageMetricName(Stage stage);

/// The per-stage histograms a tracing component records into; resolved
/// once from a registry and then shared by every trace.
struct StageHistograms {
  std::array<Histogram*, kNumStages> stage{};

  static StageHistograms FromRegistry(MetricsRegistry* registry);
};

/// Per-transaction trace context carried from BeginTxn to commit.
///
/// Threading: a trace is written by one thread at a time — the client
/// session thread up to multicast, the GCS delivery thread between
/// delivery and validation outcome, then the client thread again. Those
/// handoffs are ordered by the middleware's pending-commit mutex and
/// condition variable, so plain (non-atomic) fields are race-free.
/// Origin-tagged remote traces follow the same rule: the delivery
/// thread finishes all writes (skew + validation spans) *before*
/// appending the tocommit entry that carries the trace, and the queue's
/// lock orders that handoff to the single applier thread that takes the
/// entry.
class TxnTrace {
 public:
  /// `id` labels the kDebug span log lines (typically the GlobalTxnId).
  void SetId(std::string id) { id_ = std::move(id); }
  const std::string& id() const { return id_; }

  /// The distributed-trace context this trace originates (set once by
  /// the originating replica, before multicast).
  void SetContext(const TraceContext& context) { context_ = context; }
  const TraceContext& context() const { return context_; }

  /// Starts the stage clock. Begin/End pairs may repeat (e.g. one
  /// kExecute span per statement); durations accumulate.
  void Begin(Stage stage);
  /// Stops the stage clock and accumulates the elapsed time. No-op if
  /// the stage is not running.
  void End(Stage stage);
  /// Like End, but against a caller-supplied clock reading — for stages
  /// whose end is observed on a different thread than where the end time
  /// was taken (e.g. multicast delivery).
  void EndAt(Stage stage, uint64_t end_ns);
  /// Records an externally measured duration for `stage`.
  void Add(Stage stage, uint64_t duration_ns);

  bool Running(Stage stage) const { return start_ns_[Index(stage)] != 0; }
  uint64_t Count(Stage stage) const { return counts_[Index(stage)]; }
  uint64_t DurationNs(Stage stage) const {
    return duration_ns_[Index(stage)];
  }
  uint64_t TotalNs() const;

  /// Observes every stage that ran into `hists` and, when kDebug
  /// logging is on, emits one structured span line per stage plus a
  /// summary line, all tagged with id(). Call once, at commit.
  void Flush(const StageHistograms& hists) const;

 private:
  static int Index(Stage stage) { return static_cast<int>(stage); }

  std::string id_;
  TraceContext context_;
  std::array<uint64_t, kNumStages> start_ns_{};
  std::array<uint64_t, kNumStages> duration_ns_{};
  std::array<uint64_t, kNumStages> counts_{};
};

}  // namespace sirep::obs

#endif  // SIREP_OBS_TRACE_H_
