#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace sirep::obs {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

/// Live recorders, for DumpAllText() and the crash handler. Leaked so
/// the crash handler can walk it at any point of process teardown.
struct RecorderRegistry {
  std::mutex mu;
  std::vector<FlightRecorder*> recorders;
};

RecorderRegistry& GetRecorderRegistry() {
  static RecorderRegistry* registry = new RecorderRegistry;
  return *registry;
}

char g_crash_path_prefix[256] = {0};

void CrashHandler(int sig) {
  // Restore default disposition first: a fault inside the handler (or
  // the re-raise below) must terminate, not loop.
  std::signal(sig, SIG_DFL);
  FlightRecorder::Global().Record(FlightEventType::kCrash, 0,
                                  static_cast<uint64_t>(sig), 0,
                                  "fatal signal");
  const std::string text = FlightRecorder::DumpAllText();
  char path[320];
  std::snprintf(path, sizeof(path), "%s.pid%d.txt", g_crash_path_prefix,
                static_cast<int>(::getpid()));
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    size_t off = 0;
    while (off < text.size()) {
      const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    ::close(fd);
  }
  ::raise(sig);
}

void ObserveFailpointHit(std::string_view name, const failpoint::Hit& hit,
                         bool delayed) {
  FlightRecorder::Global().Record(
      FlightEventType::kFailpoint, 0, hit.fired ? 1 : 0,
      delayed ? 255 : static_cast<uint64_t>(hit.kind), name);
}

}  // namespace

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kViewChange:
      return "view_change";
    case FlightEventType::kValidation:
      return "validation_abort";
    case FlightEventType::kFailpoint:
      return "failpoint";
    case FlightEventType::kWalTruncate:
      return "wal_truncate";
    case FlightEventType::kQueueHighWater:
      return "queue_high_water";
    case FlightEventType::kInvariant:
      return "invariant";
    case FlightEventType::kCrash:
      return "crash";
    case FlightEventType::kRecovery:
      return "recovery";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(RoundUpPow2(capacity)), slots_(capacity_) {
  RecorderRegistry& registry = GetRecorderRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.recorders.push_back(this);
}

FlightRecorder::~FlightRecorder() {
  RecorderRegistry& registry = GetRecorderRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto& v = registry.recorders;
  v.erase(std::remove(v.begin(), v.end(), this), v.end());
}

void FlightRecorder::Record(FlightEventType type, uint32_t replica,
                            uint64_t a, uint64_t b,
                            std::string_view detail) {
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & (capacity_ - 1)];
  slot.mono_ns.store(MonotonicNanos(), std::memory_order_relaxed);
  slot.meta.store(static_cast<uint64_t>(type) |
                      (static_cast<uint64_t>(replica) << 8),
                  std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  uint64_t words[kDetailBytes / 8] = {0};
  const size_t len = std::min(detail.size(), kDetailBytes);
  std::memcpy(words, detail.data(), len);
  for (size_t i = 0; i < kDetailBytes / 8; ++i) {
    slot.detail[i].store(words[i], std::memory_order_relaxed);
  }
  slot.stamp.store(seq + 1, std::memory_order_release);
}

bool FlightRecorder::ReadSlot(const Slot& slot, FlightEvent* out) const {
  const uint64_t stamp = slot.stamp.load(std::memory_order_acquire);
  if (stamp == 0) return false;
  out->seq = stamp - 1;
  out->mono_ns = slot.mono_ns.load(std::memory_order_relaxed);
  const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
  out->type = static_cast<FlightEventType>(meta & 0xff);
  out->replica = static_cast<uint32_t>(meta >> 8);
  out->a = slot.a.load(std::memory_order_relaxed);
  out->b = slot.b.load(std::memory_order_relaxed);
  char bytes[kDetailBytes];
  for (size_t i = 0; i < kDetailBytes / 8; ++i) {
    const uint64_t w = slot.detail[i].load(std::memory_order_relaxed);
    std::memcpy(bytes + i * 8, &w, 8);
  }
  out->detail.assign(bytes, strnlen(bytes, kDetailBytes));
  // A writer may have overwritten the slot while we copied: discard
  // rather than report a torn event.
  return slot.stamp.load(std::memory_order_acquire) == stamp;
}

std::vector<FlightEvent> FlightRecorder::Dump() const {
  std::vector<FlightEvent> events;
  events.reserve(capacity_);
  for (const Slot& slot : slots_) {
    FlightEvent event;
    if (ReadSlot(slot, &event)) events.push_back(std::move(event));
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return events;
}

std::string FlightRecorder::DumpText() const {
  const std::vector<FlightEvent> events = Dump();
  std::string out;
  const uint64_t total = TotalRecorded();
  char line[192];
  std::snprintf(line, sizeof(line),
                "# flight recorder: %llu events recorded, %zu retained "
                "(capacity %zu)\n",
                static_cast<unsigned long long>(total), events.size(),
                capacity_);
  out += line;
  const uint64_t base = events.empty() ? 0 : events.front().mono_ns;
  for (const FlightEvent& e : events) {
    std::snprintf(
        line, sizeof(line),
        "[%8llu] +%11.3fms %-16s r%-3u a=%-12llu b=%-12llu %s\n",
        static_cast<unsigned long long>(e.seq),
        static_cast<double>(e.mono_ns - base) / 1e6,
        FlightEventTypeName(e.type), e.replica,
        static_cast<unsigned long long>(e.a),
        static_cast<unsigned long long>(e.b), e.detail.c_str());
    out += line;
  }
  return out;
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder(8192);
  return *recorder;
}

std::string FlightRecorder::DumpAllText() {
  // Make sure the global recorder exists (and is registered) even if
  // nothing recorded into it yet.
  FlightRecorder& global = Global();
  RecorderRegistry& registry = GetRecorderRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::string out;
  int section = 0;
  for (FlightRecorder* recorder : registry.recorders) {
    out += "=== flight recorder ";
    out += (recorder == &global ? "global" : std::to_string(section));
    out += " ===\n";
    out += recorder->DumpText();
    ++section;
  }
  return out;
}

void FlightRecorder::InstallCrashHandler(const std::string& path_prefix) {
  std::snprintf(g_crash_path_prefix, sizeof(g_crash_path_prefix), "%s",
                path_prefix.c_str());
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &CrashHandler;
  sigemptyset(&action.sa_mask);
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    ::sigaction(sig, &action, nullptr);
  }
}

void FlightRecorder::RecordFailpointHits() {
  failpoint::SetHitObserver(&ObserveFailpointHit);
}

}  // namespace sirep::obs
