#ifndef SIREP_WORKLOAD_SIMPLE_WORKLOADS_H_
#define SIREP_WORKLOAD_SIMPLE_WORKLOADS_H_

#include <cstdint>

#include "workload/workload.h"

namespace sirep::workload {

/// The "large database" workload of the paper's §6.2 (Fig. 6): 10 tables,
/// read-intensive (20 % update transactions of 10 single-row updates,
/// 80 % medium-weight queries), highly I/O bound — the regime where
/// adding replicas buys throughput because the read load distributes.
/// The 1.1 GB database is scaled down; the cost model carries the I/O
/// weight (set a large select_service for the query class).
class LargeDbWorkload : public WorkloadGenerator {
 public:
  struct Options {
    int64_t num_tables = 10;
    int64_t rows_per_table = 2000;
    int64_t updates_per_txn = 10;
    /// Percent of update transactions (paper: 20).
    int64_t update_percent = 20;
  };

  LargeDbWorkload() : LargeDbWorkload(Options()) {}
  explicit LargeDbWorkload(Options options) : options_(options) {}

  std::string name() const override { return "large-db"; }
  Status Load(engine::Database* db) override;
  TxnInstance Next(Prng& prng) override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// The update-intensive stress workload of §6.3 (Fig. 7): a small 10-table
/// database, 100 % update transactions performing 10 simple updates each,
/// touching 3 distinct tables ("a bit less than the number of tables
/// accessed by a typical transaction in TPC-W") — the configuration where
/// replica-control overhead, hole synchronization, and table- vs
/// tuple-granularity locking all become visible.
class UpdateIntensiveWorkload : public WorkloadGenerator {
 public:
  struct Options {
    int64_t num_tables = 10;
    int64_t rows_per_table = 100;
    int64_t updates_per_txn = 10;
    int64_t tables_per_txn = 3;
  };

  UpdateIntensiveWorkload() : UpdateIntensiveWorkload(Options()) {}
  explicit UpdateIntensiveWorkload(Options options) : options_(options) {}

  std::string name() const override { return "update-intensive"; }
  Status Load(engine::Database* db) override;
  TxnInstance Next(Prng& prng) override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace sirep::workload

#endif  // SIREP_WORKLOAD_SIMPLE_WORKLOADS_H_
