#ifndef SIREP_WORKLOAD_TPCW_H_
#define SIREP_WORKLOAD_TPCW_H_

#include <atomic>
#include <cstdint>

#include "workload/workload.h"

namespace sirep::workload {

struct TpcwOptions {
  /// TPC-W scale knobs; the paper uses 1000 items and 40 emulated
  /// browsers (a ~200 MB database at full row widths).
  int64_t num_items = 1000;
  int64_t num_ebs = 40;
  int64_t customers_per_eb = 10;
  /// Zipf skew for item popularity.
  double item_theta = 0.6;
};

/// TPC-W-style bookstore workload, **ordering mix** (paper §6.1): 50 %
/// update transactions, 50 % read-only, over an 8-table schema:
/// item, customer, address, country, orders, order_line, cc_xacts,
/// shopping_cart.
///
/// Update transactions: AddToCart (cart totals), BuyRequest (customer
/// visit bump), BuyConfirm (order + order lines + payment + stock
/// decrements + cart reset). Read-only: ProductDetail, Home, OrderInquiry,
/// BestSellers. Conflicts concentrate on shopping_cart rows (one per EB)
/// and popular items' stock — tuple-granularity hot spots that a
/// table-level scheme would serialize wholesale.
class TpcwWorkload : public WorkloadGenerator {
 public:
  explicit TpcwWorkload(TpcwOptions options = {});

  std::string name() const override { return "tpcw-ordering"; }
  Status Load(engine::Database* db) override;
  TxnInstance Next(Prng& prng) override;

  const TpcwOptions& options() const { return options_; }

 private:
  TxnInstance AddToCart(Prng& prng);
  TxnInstance BuyRequest(Prng& prng);
  TxnInstance BuyConfirm(Prng& prng);
  TxnInstance ProductDetail(Prng& prng);
  TxnInstance Home(Prng& prng);
  TxnInstance OrderInquiry(Prng& prng);
  TxnInstance BestSellers(Prng& prng);

  TpcwOptions options_;
  ZipfGenerator item_zipf_;
  /// Globally unique ids for inserted orders/lines (shared across client
  /// threads).
  std::atomic<int64_t> next_order_id_;
  std::atomic<int64_t> next_order_line_id_;
};

}  // namespace sirep::workload

#endif  // SIREP_WORKLOAD_TPCW_H_
