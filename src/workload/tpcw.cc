#include "workload/tpcw.h"

namespace sirep::workload {

using sql::Value;

TpcwWorkload::TpcwWorkload(TpcwOptions options)
    : options_(options),
      item_zipf_(static_cast<uint64_t>(options.num_items),
                 options.item_theta),
      next_order_id_(1'000'000),
      next_order_line_id_(1'000'000) {}

Status TpcwWorkload::Load(engine::Database* db) {
  const char* ddl[] = {
      "CREATE TABLE item (i_id INT, i_title VARCHAR(60), i_stock INT,"
      " i_cost DOUBLE, i_pub_date INT, i_subject VARCHAR(20),"
      " PRIMARY KEY (i_id))",
      "CREATE TABLE customer (c_id INT, c_uname VARCHAR(20),"
      " c_balance DOUBLE, c_ltd DOUBLE, c_visits INT, PRIMARY KEY (c_id))",
      "CREATE TABLE address (addr_id INT, addr_c_id INT,"
      " addr_street VARCHAR(40), addr_city VARCHAR(30),"
      " PRIMARY KEY (addr_id))",
      "CREATE TABLE country (co_id INT, co_name VARCHAR(50),"
      " PRIMARY KEY (co_id))",
      "CREATE TABLE orders (o_id INT, o_c_id INT, o_total DOUBLE,"
      " o_status VARCHAR(10), o_date INT, PRIMARY KEY (o_id))",
      "CREATE TABLE order_line (ol_id INT, ol_o_id INT, ol_i_id INT,"
      " ol_qty INT, PRIMARY KEY (ol_id))",
      "CREATE TABLE cc_xacts (cx_o_id INT, cx_amount DOUBLE, cx_auth INT,"
      " PRIMARY KEY (cx_o_id))",
      "CREATE TABLE shopping_cart (sc_id INT, sc_c_id INT, sc_total DOUBLE,"
      " sc_items INT, PRIMARY KEY (sc_id))",
  };
  for (const char* stmt : ddl) {
    auto r = db->ExecuteAutoCommit(stmt);
    if (!r.ok()) return r.status();
  }
  // Secondary indexes for the non-key access paths of the mix.
  for (const char* idx :
       {"CREATE INDEX orders_cust ON orders (o_c_id)",
        "CREATE INDEX ol_item ON order_line (ol_i_id)"}) {
    auto r = db->ExecuteAutoCommit(idx);
    if (!r.ok()) return r.status();
  }

  Prng prng(42);  // deterministic content, identical at every replica
  auto txn = db->Begin();
  auto exec = [&](const std::string& sql,
                  std::vector<Value> params) -> Status {
    auto r = db->Execute(txn, sql, params);
    return r.ok() ? Status::OK() : r.status();
  };

  for (int64_t i = 1; i <= options_.num_items; ++i) {
    SIREP_RETURN_IF_ERROR(
        exec("INSERT INTO item VALUES (?, ?, ?, ?, ?, ?)",
             {Value::Int(i), Value::String("Book #" + std::to_string(i)),
              Value::Int(1000), Value::Double(5.0 + (i % 90)),
              Value::Int(1990 + static_cast<int64_t>(prng.Uniform(35))),
              Value::String("SUBJ" + std::to_string(i % 24))}));
  }
  const int64_t num_customers = options_.num_ebs * options_.customers_per_eb;
  for (int64_t c = 1; c <= num_customers; ++c) {
    SIREP_RETURN_IF_ERROR(
        exec("INSERT INTO customer VALUES (?, ?, ?, ?, ?)",
             {Value::Int(c), Value::String("user" + std::to_string(c)),
              Value::Double(0.0), Value::Double(0.0), Value::Int(0)}));
    SIREP_RETURN_IF_ERROR(
        exec("INSERT INTO address VALUES (?, ?, ?, ?)",
             {Value::Int(c), Value::Int(c),
              Value::String(std::to_string(100 + c) + " Main St"),
              Value::String("City" + std::to_string(c % 50))}));
  }
  for (int64_t co = 1; co <= 50; ++co) {
    SIREP_RETURN_IF_ERROR(
        exec("INSERT INTO country VALUES (?, ?)",
             {Value::Int(co), Value::String("Country" + std::to_string(co))}));
  }
  // One shopping cart per emulated browser.
  for (int64_t sc = 1; sc <= options_.num_ebs; ++sc) {
    SIREP_RETURN_IF_ERROR(exec(
        "INSERT INTO shopping_cart VALUES (?, ?, ?, ?)",
        {Value::Int(sc), Value::Int(sc), Value::Double(0.0), Value::Int(0)}));
  }
  // Seed order history so best-seller / order-inquiry queries have data.
  int64_t ol_id = 1;
  for (int64_t o = 1; o <= num_customers; ++o) {
    SIREP_RETURN_IF_ERROR(
        exec("INSERT INTO orders VALUES (?, ?, ?, ?, ?)",
             {Value::Int(o), Value::Int(1 + (o % num_customers)),
              Value::Double(30.0), Value::String("SHIPPED"),
              Value::Int(2004)}));
    SIREP_RETURN_IF_ERROR(
        exec("INSERT INTO cc_xacts VALUES (?, ?, ?)",
             {Value::Int(o), Value::Double(30.0), Value::Int(1)}));
    for (int l = 0; l < 3; ++l) {
      SIREP_RETURN_IF_ERROR(exec(
          "INSERT INTO order_line VALUES (?, ?, ?, ?)",
          {Value::Int(ol_id++), Value::Int(o),
           Value::Int(1 + static_cast<int64_t>(
                              prng.Uniform(options_.num_items))),
           Value::Int(1 + static_cast<int64_t>(prng.Uniform(5)))}));
    }
  }
  return db->Commit(txn);
}

TxnInstance TpcwWorkload::Next(Prng& prng) {
  // Ordering mix: 50 % updates / 50 % read-only (paper §6.1).
  const uint64_t pick = prng.Uniform(100);
  if (pick < 20) return AddToCart(prng);
  if (pick < 35) return BuyRequest(prng);
  if (pick < 50) return BuyConfirm(prng);
  if (pick < 70) return ProductDetail(prng);
  if (pick < 85) return Home(prng);
  if (pick < 95) return OrderInquiry(prng);
  return BestSellers(prng);
}

TxnInstance TpcwWorkload::AddToCart(Prng& prng) {
  TxnInstance txn;
  txn.tables = {"item", "shopping_cart"};
  const int64_t cart = 1 + static_cast<int64_t>(prng.Uniform(
                               static_cast<uint64_t>(options_.num_ebs)));
  const int64_t item = 1 + static_cast<int64_t>(item_zipf_.Sample(prng));
  txn.statements = {
      {"SELECT i_cost, i_stock FROM item WHERE i_id = ?", {Value::Int(item)}},
      {"UPDATE shopping_cart SET sc_total = sc_total + ?, sc_items = "
       "sc_items + 1 WHERE sc_id = ?",
       {Value::Double(12.5), Value::Int(cart)}},
  };
  return txn;
}

TxnInstance TpcwWorkload::BuyRequest(Prng& prng) {
  TxnInstance txn;
  txn.tables = {"customer", "address", "shopping_cart"};
  const int64_t customer =
      1 + static_cast<int64_t>(prng.Uniform(static_cast<uint64_t>(
              options_.num_ebs * options_.customers_per_eb)));
  const int64_t cart = 1 + (customer % options_.num_ebs);
  txn.statements = {
      {"UPDATE customer SET c_visits = c_visits + 1 WHERE c_id = ?",
       {Value::Int(customer)}},
      {"SELECT addr_street, addr_city FROM address WHERE addr_id = ?",
       {Value::Int(customer)}},
      {"SELECT sc_total, sc_items FROM shopping_cart WHERE sc_id = ?",
       {Value::Int(cart)}},
  };
  return txn;
}

TxnInstance TpcwWorkload::BuyConfirm(Prng& prng) {
  TxnInstance txn;
  txn.tables = {"shopping_cart", "orders", "order_line", "cc_xacts", "item",
                "customer"};
  const int64_t cart = 1 + static_cast<int64_t>(prng.Uniform(
                               static_cast<uint64_t>(options_.num_ebs)));
  const int64_t customer = cart;  // EB's primary customer
  const int64_t order = next_order_id_.fetch_add(1);
  const int64_t lines = 1 + static_cast<int64_t>(prng.Uniform(3));
  txn.statements.push_back(
      {"SELECT sc_total, sc_items FROM shopping_cart WHERE sc_id = ?",
       {Value::Int(cart)}});
  txn.statements.push_back(
      {"INSERT INTO orders VALUES (?, ?, ?, ?, ?)",
       {Value::Int(order), Value::Int(customer), Value::Double(42.0),
        Value::String("PENDING"), Value::Int(2005)}});
  for (int64_t l = 0; l < lines; ++l) {
    const int64_t item = 1 + static_cast<int64_t>(item_zipf_.Sample(prng));
    const int64_t qty = 1 + static_cast<int64_t>(prng.Uniform(3));
    txn.statements.push_back(
        {"INSERT INTO order_line VALUES (?, ?, ?, ?)",
         {Value::Int(next_order_line_id_.fetch_add(1)), Value::Int(order),
          Value::Int(item), Value::Int(qty)}});
    txn.statements.push_back(
        {"UPDATE item SET i_stock = i_stock - ? WHERE i_id = ?",
         {Value::Int(qty), Value::Int(item)}});
  }
  txn.statements.push_back(
      {"INSERT INTO cc_xacts VALUES (?, ?, ?)",
       {Value::Int(order), Value::Double(42.0), Value::Int(1)}});
  txn.statements.push_back(
      {"UPDATE shopping_cart SET sc_total = 0.0, sc_items = 0 WHERE sc_id "
       "= ?",
       {Value::Int(cart)}});
  return txn;
}

TxnInstance TpcwWorkload::ProductDetail(Prng& prng) {
  TxnInstance txn;
  txn.read_only = true;
  txn.tables = {"item", "country"};
  const int64_t item = 1 + static_cast<int64_t>(item_zipf_.Sample(prng));
  txn.statements = {
      {"SELECT i_title, i_cost, i_stock, i_subject FROM item WHERE i_id = ?",
       {Value::Int(item)}},
      {"SELECT co_name FROM country WHERE co_id = ?",
       {Value::Int(1 + static_cast<int64_t>(prng.Uniform(50)))}},
  };
  return txn;
}

TxnInstance TpcwWorkload::Home(Prng& prng) {
  TxnInstance txn;
  txn.read_only = true;
  txn.tables = {"customer", "item"};
  const int64_t customer =
      1 + static_cast<int64_t>(prng.Uniform(static_cast<uint64_t>(
              options_.num_ebs * options_.customers_per_eb)));
  txn.statements.push_back(
      {"SELECT c_uname, c_balance FROM customer WHERE c_id = ?",
       {Value::Int(customer)}});
  for (int i = 0; i < 3; ++i) {
    txn.statements.push_back(
        {"SELECT i_title, i_cost FROM item WHERE i_id = ?",
         {Value::Int(1 + static_cast<int64_t>(item_zipf_.Sample(prng)))}});
  }
  return txn;
}

TxnInstance TpcwWorkload::OrderInquiry(Prng& prng) {
  TxnInstance txn;
  txn.read_only = true;
  txn.tables = {"orders"};
  const int64_t customer =
      1 + static_cast<int64_t>(prng.Uniform(static_cast<uint64_t>(
              options_.num_ebs * options_.customers_per_eb)));
  txn.statements = {
      {"SELECT o_id, o_total, o_status FROM orders WHERE o_c_id = ? "
       "ORDER BY o_id DESC LIMIT 5",
       {Value::Int(customer)}},
  };
  return txn;
}

TxnInstance TpcwWorkload::BestSellers(Prng&) {
  // The real TPC-W best-seller query: total quantity sold per item,
  // joined with the catalogue for the title, top 50.
  TxnInstance txn;
  txn.read_only = true;
  txn.tables = {"order_line", "item"};
  txn.statements = {
      {"SELECT i_title, SUM(ol_qty) FROM order_line JOIN item ON "
       "ol_i_id = i_id GROUP BY i_title ORDER BY sum(ol_qty) DESC "
       "LIMIT 50",
       {}},
  };
  return txn;
}

}  // namespace sirep::workload
