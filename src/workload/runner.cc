#include "workload/runner.h"

#include <cmath>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace sirep::workload {

Status ConnectionExecutor::Run(const TxnInstance& txn) {
  for (const auto& [sql, params] : txn.statements) {
    auto result = conn_->Execute(sql, params);
    if (!result.ok()) {
      conn_->Rollback();
      return result.status();
    }
  }
  return conn_->Commit();
}

Status SessionExecutor::Run(const TxnInstance& txn) {
  for (const auto& [sql, params] : txn.statements) {
    auto result = session_.Execute(sql, params);
    if (!result.ok()) {
      session_.Rollback();
      return result.status();
    }
  }
  return session_.Commit();
}

Status BaselineExecutor::Run(const TxnInstance& txn) {
  auto declared = std::make_shared<middleware::DeclaredTxn>();
  declared->tables = txn.tables;
  declared->read_only = txn.read_only;
  // The program re-executes the statement list inside the middleware —
  // [20] requires transactions to run in the middleware's context.
  const TxnInstance* instance = &txn;
  declared->program = [instance](engine::Database* db,
                                 const storage::TransactionPtr& db_txn)
      -> Status {
    for (const auto& [sql, params] : instance->statements) {
      auto result = db->Execute(db_txn, sql, params);
      if (!result.ok()) return result.status();
    }
    return Status::OK();
  };
  return replica_->Submit(std::move(declared));
}

LoadMetrics RunLoad(WorkloadGenerator& generator,
                    const std::function<std::unique_ptr<TxnExecutor>(
                        size_t client_index)>& make_executor,
                    const LoadOptions& options) {
  using Clock = std::chrono::steady_clock;
  LoadMetrics total;
  std::mutex merge_mu;

  const auto start = Clock::now();
  const auto measure_from = start + options.warmup;
  const auto deadline = start + options.warmup + options.duration;
  // Per-client mean interarrival so that the sum of client rates is the
  // offered system-wide load.
  const double interarrival_s =
      static_cast<double>(options.clients) / options.offered_tps;

  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  for (size_t c = 0; c < options.clients; ++c) {
    threads.emplace_back([&, c] {
      Prng prng(options.seed * 1000003 + c);
      auto executor = make_executor(c);
      if (executor == nullptr) return;
      LoadMetrics local;

      auto next_arrival =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          prng.Exponential(interarrival_s)));
      while (Clock::now() < deadline) {
        std::this_thread::sleep_until(next_arrival);
        auto now = Clock::now();
        if (now - next_arrival > options.max_schedule_lag) {
          // Too far behind schedule (system saturated): drop the backlog
          // so queues stay bounded.
          next_arrival = now;
        }
        next_arrival += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(
                prng.Exponential(interarrival_s)));
        if (now >= deadline) break;

        TxnInstance txn = generator.Next(prng);
        const auto t0 = Clock::now();
        Status st = executor->Run(txn);
        const auto t1 = Clock::now();
        if (t0 < measure_from) continue;  // warmup

        ++local.attempted;
        if (st.ok()) {
          ++local.committed;
          const double ms =
              std::chrono::duration<double, std::milli>(t1 - t0).count();
          if (txn.read_only) {
            local.readonly_ms.Add(ms);
          } else {
            local.update_ms.Add(ms);
          }
        } else if (st.code() == StatusCode::kUnavailable ||
                   st.code() == StatusCode::kTransactionLost) {
          ++local.lost;
        } else {
          ++local.aborted;
        }
      }

      std::lock_guard<std::mutex> lock(merge_mu);
      total.update_ms.Merge(local.update_ms);
      total.readonly_ms.Merge(local.readonly_ms);
      total.attempted += local.attempted;
      total.committed += local.committed;
      total.aborted += local.aborted;
      total.lost += local.lost;
    });
  }
  for (auto& t : threads) t.join();

  const double measured_s =
      std::chrono::duration<double>(options.duration).count();
  total.achieved_tps =
      measured_s > 0 ? static_cast<double>(total.committed) / measured_s : 0;
  return total;
}

const std::vector<double>& ResponseBucketsMs() {
  static const std::vector<double>* const buckets = [] {
    auto* b = new std::vector<double>;
    for (int i = -2; i < 14; ++i) b->push_back(std::ldexp(1.0, i));
    return b;
  }();
  return *buckets;
}

obs::MetricsSnapshot LoadMetrics::ToMetricsSnapshot() const {
  obs::MetricsSnapshot snap;
  snap.counters["workload.attempted"] = attempted;
  snap.counters["workload.committed"] = committed;
  snap.counters["workload.aborted"] = aborted;
  snap.counters["workload.lost"] = lost;
  snap.gauges["workload.achieved_tps_milli"] =
      static_cast<int64_t>(achieved_tps * 1000.0);
  snap.histograms["workload.update_ms"] =
      update_ms.ToHistogram(ResponseBucketsMs());
  snap.histograms["workload.readonly_ms"] =
      readonly_ms.ToHistogram(ResponseBucketsMs());
  return snap;
}

}  // namespace sirep::workload
