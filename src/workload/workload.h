#ifndef SIREP_WORKLOAD_WORKLOAD_H_
#define SIREP_WORKLOAD_WORKLOAD_H_

#include <string>
#include <utility>
#include <vector>

#include "common/prng.h"
#include "common/status.h"
#include "engine/database.h"
#include "sql/value.h"

namespace sirep::workload {

/// One concrete transaction to run: an ordered list of parameterized SQL
/// statements. The same instance can be driven through the replicated
/// JDBC-like connection, a plain single-node session (the centralized
/// baseline), or wrapped into a pre-declared program for the table-lock
/// baseline (which additionally needs `tables`).
struct TxnInstance {
  std::vector<std::pair<std::string, std::vector<sql::Value>>> statements;
  bool read_only = false;
  /// Tables the transaction touches — only consumed by the [20] baseline,
  /// which requires tables to be declared in advance.
  std::vector<std::string> tables;
};

/// A benchmark workload: how to populate a replica and how to draw the
/// next transaction. Next() must be thread-safe (it is called by many
/// client threads; per-call randomness comes from the caller's Prng, and
/// any shared id counters must be atomic).
class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  virtual std::string name() const = 0;

  /// Creates the schema and loads the initial data at one replica. Called
  /// once per replica before traffic starts (replicas start identical).
  virtual Status Load(engine::Database* db) = 0;

  /// Draws the next transaction.
  virtual TxnInstance Next(Prng& prng) = 0;
};

}  // namespace sirep::workload

#endif  // SIREP_WORKLOAD_WORKLOAD_H_
