#include "workload/simple_workloads.h"

#include <algorithm>

namespace sirep::workload {

using sql::Value;

namespace {

/// Creates `num_tables` tables named <prefix>0..N-1 with (k INT PK, v INT,
/// pad VARCHAR) and loads `rows` keys [0, rows) into each.
Status LoadKvTables(engine::Database* db, const std::string& prefix,
                    int64_t num_tables, int64_t rows) {
  for (int64_t t = 0; t < num_tables; ++t) {
    const std::string table = prefix + std::to_string(t);
    auto r = db->ExecuteAutoCommit("CREATE TABLE " + table +
                                   " (k INT, v INT, pad VARCHAR(100),"
                                   " PRIMARY KEY (k))");
    if (!r.ok()) return r.status();
    auto txn = db->Begin();
    const std::string insert =
        "INSERT INTO " + table + " VALUES (?, ?, ?)";
    for (int64_t k = 0; k < rows; ++k) {
      auto res = db->Execute(txn, insert,
                             {Value::Int(k), Value::Int(0),
                              Value::String("xxxxxxxxxxxxxxxx")});
      if (!res.ok()) {
        db->Abort(txn);
        return res.status();
      }
    }
    SIREP_RETURN_IF_ERROR(db->Commit(txn));
  }
  return Status::OK();
}

}  // namespace

Status LargeDbWorkload::Load(engine::Database* db) {
  return LoadKvTables(db, "lt", options_.num_tables, options_.rows_per_table);
}

TxnInstance LargeDbWorkload::Next(Prng& prng) {
  TxnInstance txn;
  if (static_cast<int64_t>(prng.Uniform(100)) < options_.update_percent) {
    // Update transaction: 10 single-row increments on random tables/keys.
    for (int64_t i = 0; i < options_.updates_per_txn; ++i) {
      const int64_t t = static_cast<int64_t>(
          prng.Uniform(static_cast<uint64_t>(options_.num_tables)));
      const int64_t k = static_cast<int64_t>(
          prng.Uniform(static_cast<uint64_t>(options_.rows_per_table)));
      const std::string table = "lt" + std::to_string(t);
      txn.statements.push_back(
          {"UPDATE " + table + " SET v = v + 1 WHERE k = ?",
           {Value::Int(k)}});
      if (std::find(txn.tables.begin(), txn.tables.end(), table) ==
          txn.tables.end()) {
        txn.tables.push_back(table);
      }
    }
  } else {
    // Medium query: an aggregate over a key range of one table. Its
    // "medium execution requirement" weight comes from the cost model's
    // select_service, not from the scanned row count.
    const int64_t t = static_cast<int64_t>(
        prng.Uniform(static_cast<uint64_t>(options_.num_tables)));
    const int64_t lo = static_cast<int64_t>(prng.Uniform(
        static_cast<uint64_t>(std::max<int64_t>(1, options_.rows_per_table -
                                                       100))));
    const std::string table = "lt" + std::to_string(t);
    txn.read_only = true;
    txn.tables = {table};
    txn.statements.push_back(
        {"SELECT SUM(v), COUNT(*) FROM " + table +
             " WHERE k >= ? AND k < ?",
         {Value::Int(lo), Value::Int(lo + 100)}});
  }
  return txn;
}

Status UpdateIntensiveWorkload::Load(engine::Database* db) {
  return LoadKvTables(db, "ut", options_.num_tables, options_.rows_per_table);
}

TxnInstance UpdateIntensiveWorkload::Next(Prng& prng) {
  TxnInstance txn;
  // Pick `tables_per_txn` distinct tables, then spread the updates.
  std::vector<int64_t> tables;
  while (static_cast<int64_t>(tables.size()) < options_.tables_per_txn) {
    const int64_t t = static_cast<int64_t>(
        prng.Uniform(static_cast<uint64_t>(options_.num_tables)));
    if (std::find(tables.begin(), tables.end(), t) == tables.end()) {
      tables.push_back(t);
    }
  }
  for (int64_t t : tables) {
    txn.tables.push_back("ut" + std::to_string(t));
  }
  for (int64_t i = 0; i < options_.updates_per_txn; ++i) {
    const std::string& table =
        txn.tables[static_cast<size_t>(i) % txn.tables.size()];
    const int64_t k = static_cast<int64_t>(
        prng.Uniform(static_cast<uint64_t>(options_.rows_per_table)));
    txn.statements.push_back(
        {"UPDATE " + table + " SET v = v + 1 WHERE k = ?", {Value::Int(k)}});
  }
  return txn;
}

}  // namespace sirep::workload
