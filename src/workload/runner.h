#ifndef SIREP_WORKLOAD_RUNNER_H_
#define SIREP_WORKLOAD_RUNNER_H_

#include <chrono>
#include <functional>
#include <memory>
#include <string>

#include "client/driver.h"
#include "common/stats.h"
#include "engine/session.h"
#include "middleware/table_lock_baseline.h"
#include "workload/workload.h"

namespace sirep::workload {

/// Drives one TxnInstance to completion on some system under test.
/// Run() returns OK on commit; a transaction-failure status (conflict,
/// deadlock, validation abort) counts as an abort.
class TxnExecutor {
 public:
  virtual ~TxnExecutor() = default;
  virtual Status Run(const TxnInstance& txn) = 0;
};

/// Executes through the replicated JDBC-like connection (SI-Rep).
class ConnectionExecutor : public TxnExecutor {
 public:
  explicit ConnectionExecutor(std::unique_ptr<client::Connection> conn)
      : conn_(std::move(conn)) {
    conn_->SetAutoCommit(false);
  }
  Status Run(const TxnInstance& txn) override;

  client::Connection* connection() { return conn_.get(); }

 private:
  std::unique_ptr<client::Connection> conn_;
};

/// Executes against a single non-replicated database (the paper's
/// "centralized" baseline: the middleware merely forwards statements).
class SessionExecutor : public TxnExecutor {
 public:
  explicit SessionExecutor(engine::Database* db) : session_(db) {
    session_.SetAutoCommit(false);
  }
  Status Run(const TxnInstance& txn) override;

 private:
  engine::Session session_;
};

/// Wraps instances into pre-declared programs for the [20] baseline.
class BaselineExecutor : public TxnExecutor {
 public:
  explicit BaselineExecutor(middleware::TableLockReplica* replica)
      : replica_(replica) {}
  Status Run(const TxnInstance& txn) override;

 private:
  middleware::TableLockReplica* replica_;
};

struct LoadOptions {
  double offered_tps = 50;
  size_t clients = 20;
  std::chrono::milliseconds warmup{500};
  std::chrono::milliseconds duration{5000};
  uint64_t seed = 7;
  /// If a client falls further behind its open-loop schedule than this,
  /// the backlog is dropped (bounds queue growth past saturation).
  std::chrono::milliseconds max_schedule_lag{2000};
};

struct LoadMetrics {
  SampleStats update_ms;    ///< response times of committed update txns
  SampleStats readonly_ms;  ///< response times of committed read-only txns
  uint64_t attempted = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;  ///< conflict/deadlock/validation aborts
  uint64_t lost = 0;     ///< kTransactionLost / kUnavailable
  double achieved_tps = 0;
  double abort_rate() const {
    return attempted == 0 ? 0.0
                          : static_cast<double>(aborted) /
                                static_cast<double>(attempted);
  }

  /// Exports the run's results in the unified metrics form ("workload.*"
  /// counters + millisecond response-time histograms), mergeable with a
  /// cluster's registry snapshots into one report.
  obs::MetricsSnapshot ToMetricsSnapshot() const;
};

/// Exponential bucket bounds for millisecond response times: 0.25 ms ..
/// ~8.4 s.
const std::vector<double>& ResponseBucketsMs();

/// Open-loop load generator in the paper's style (§6): `clients` threads,
/// each submitting statements back-to-back within a transaction and
/// sleeping between transactions so the offered system-wide load matches
/// `offered_tps` (exponential interarrivals). Response times are recorded
/// only after the warmup.
LoadMetrics RunLoad(WorkloadGenerator& generator,
                    const std::function<std::unique_ptr<TxnExecutor>(
                        size_t client_index)>& make_executor,
                    const LoadOptions& options);

}  // namespace sirep::workload

#endif  // SIREP_WORKLOAD_RUNNER_H_
