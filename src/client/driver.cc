#include "client/driver.h"

#include <algorithm>
#include <thread>

#include "common/failpoint.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "sql/parser.h"

namespace sirep::client {

using middleware::SrcaRepReplica;
using middleware::TxnOutcome;

namespace {

/// Driver-side fault/retry/failover counters, in the process-global
/// registry (connections are per-client and short-lived; a per-object
/// registry would fragment the numbers the chaos harness wants).
struct DriverCounters {
  obs::Counter* connect_retries;
  obs::Counter* failovers;
  obs::Counter* indoubt_resolutions;
  obs::Counter* indoubt_committed;
  obs::Counter* txn_lost;

  static DriverCounters& Get() {
    static DriverCounters* const c = [] {
      auto* r = &obs::MetricsRegistry::Default();
      return new DriverCounters{r->GetCounter("client.connect_retries"),
                                r->GetCounter("client.failovers"),
                                r->GetCounter("client.indoubt_resolutions"),
                                r->GetCounter("client.indoubt_committed"),
                                r->GetCounter("client.txn_lost")};
    }();
    return *c;
  }
};

}  // namespace

Connection::Connection(ReplicaDirectory* directory, ConnectionOptions options)
    : directory_(directory),
      options_(options),
      prng_(options.seed),
      autocommit_(options.autocommit) {}

Connection::~Connection() {
  if (txn_.valid() && replica_ != nullptr && replica_->IsAlive()) {
    replica_->RollbackTxn(txn_);
  }
}

Status Connection::ConnectToReplica(gcs::MemberId exclude) {
  const auto deadline =
      std::chrono::steady_clock::now() + options_.connect_deadline;
  auto backoff = std::max(options_.connect_backoff,
                          std::chrono::milliseconds(1));
  while (true) {
    Status st = Status::Unavailable("injected discovery failure");
    if (!failpoint::AnyArmed() ||
        failpoint::EvalStatus("client.connect").ok()) {
      st = TryConnect(exclude);
    }
    if (st.ok() || st.code() != StatusCode::kUnavailable) return st;
    // No live replica right now (all crashed/recovering, or an injected
    // discovery failure): retry with backoff until the deadline — in a
    // restarting cluster "nobody home yet" is usually transient.
    if (options_.connect_deadline.count() <= 0 ||
        std::chrono::steady_clock::now() + backoff >= deadline) {
      return st;
    }
    DriverCounters::Get().connect_retries->Increment();
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(100));
  }
}

Status Connection::TryConnect(gcs::MemberId exclude) {
  auto replicas = directory_->Discover();
  std::vector<SrcaRepReplica*> candidates;
  for (auto* r : replicas) {
    if (r == nullptr || !r->IsAlive()) continue;
    if (exclude != gcs::kInvalidMember && r->member_id() == exclude) continue;
    candidates.push_back(r);
  }
  if (options_.pinned_replica >= 0) {
    // The pin is a preference: honoured while that replica is alive,
    // overridden by fail-over when it is not.
    auto it = std::find_if(candidates.begin(), candidates.end(),
                           [&](SrcaRepReplica* r) {
                             return static_cast<int>(r->member_id()) ==
                                    options_.pinned_replica;
                           });
    if (it != candidates.end()) candidates = {*it};
  }
  if (candidates.empty()) {
    return Status::Unavailable("no live replica found");
  }
  SrcaRepReplica* chosen = nullptr;
  if (options_.balance == BalancePolicy::kLeastLoaded) {
    size_t best = ~size_t{0};
    for (auto* r : candidates) {
      const size_t load = r->CurrentLoad();
      if (load < best) {
        best = load;
        chosen = r;
      }
    }
  } else {
    chosen = candidates[prng_.Uniform(candidates.size())];
  }
  const bool is_failover = replica_ != nullptr && chosen != replica_;
  replica_ = chosen;
  if (is_failover) {
    ++failovers_;
    DriverCounters::Get().failovers->Increment();
    // Session consistency: make sure our last committed update is already
    // applied at the new replica before running anything there.
    if (last_update_gid_.valid()) {
      replica_->InquireOutcome(last_update_gid_, exclude);
    }
  }
  return Status::OK();
}

Status Connection::EnsureTxn() {
  if (replica_ == nullptr || !replica_->IsAlive()) {
    const gcs::MemberId crashed =
        replica_ != nullptr ? replica_->member_id() : gcs::kInvalidMember;
    const bool had_txn = txn_.valid();
    txn_ = {};
    SIREP_RETURN_IF_ERROR(ConnectToReplica(crashed));
    if (had_txn) {
      // Paper §5.4 case 2: the transaction existed only at the crashed
      // replica; it is lost, but the connection survives.
      return Status::TransactionLost(
          "replica crashed mid-transaction; restart the transaction");
    }
  }
  if (txn_.valid()) return Status::OK();
  auto txn = replica_->BeginTxn();
  if (!txn.ok()) return txn.status();
  txn_ = std::move(txn).value();
  return Status::OK();
}

Result<engine::QueryResult> Connection::Execute(
    const std::string& sql, const std::vector<sql::Value>& params) {
  // Recognize transaction-control statements.
  auto parsed = sql::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  switch (parsed.value().kind) {
    case sql::StatementKind::kBegin: {
      if (txn_.valid()) {
        return Status::InvalidArgument("transaction already in progress");
      }
      SIREP_RETURN_IF_ERROR(EnsureTxn());
      return engine::QueryResult{};
    }
    case sql::StatementKind::kCommit:
      SIREP_RETURN_IF_ERROR(Commit());
      return engine::QueryResult{};
    case sql::StatementKind::kRollback:
      SIREP_RETURN_IF_ERROR(Rollback());
      return engine::QueryResult{};
    default:
      break;
  }

  const bool had_txn_before = txn_.valid();
  Status st = EnsureTxn();
  if (!st.ok()) return st;
  auto result = replica_->Execute(txn_, sql, params);

  if (!result.ok() &&
      result.status().code() == StatusCode::kUnavailable &&
      !had_txn_before) {
    // The replica crashed under a brand-new transaction that has not
    // executed anything yet: retry transparently elsewhere (case 1).
    txn_ = {};
    st = EnsureTxn();
    if (st.ok()) result = replica_->Execute(txn_, sql, params);
  }

  if (!result.ok()) {
    if (result.status().code() == StatusCode::kUnavailable) {
      // Crash mid-transaction: the transaction is lost (case 2). Keep the
      // connection usable by failing over now.
      const gcs::MemberId crashed = replica_->member_id();
      txn_ = {};
      Status reconnect = ConnectToReplica(crashed);
      if (!reconnect.ok()) return reconnect;
      return Status::TransactionLost(
          "replica crashed mid-transaction; restart the transaction");
    }
    if (result.status().IsTransactionFailure()) {
      // The DB aborted the transaction (conflict/deadlock); forget it.
      txn_ = {};
    }
    return result;
  }

  if (!had_txn_before && autocommit_) {
    SIREP_RETURN_IF_ERROR(Commit());
  }
  return result;
}

Status Connection::Commit() {
  if (!txn_.valid()) return Status::OK();
  return CommitInternal();
}

Status Connection::CommitInternal() {
  middleware::SrcaRepReplica::TxnHandle txn = txn_;
  txn_ = {};
  bool had_writes = false;
  Status st = replica_->CommitTxn(txn, &had_writes);
  if (st.ok()) {
    if (had_writes) last_update_gid_ = txn.gid;
    return st;
  }
  if (st.code() != StatusCode::kUnavailable) {
    return st;  // validation conflict etc.; transaction aborted
  }
  if (replica_->IsAlive()) {
    // kUnavailable from a replica that did NOT crash: the multicast was
    // dropped by a transient transport fault and the middleware aborted
    // the transaction locally. No in-doubt question to resolve — the
    // writeset never entered the total order. Report it lost; the
    // connection (and replica) stay usable.
    DriverCounters::Get().txn_lost->Increment();
    return Status::TransactionLost(
        "transient multicast failure during commit; transaction aborted");
  }

  // Crash during commit (paper §5.4 case 3): resolve the in-doubt
  // transaction at another replica using the global transaction id.
  const gcs::MemberId crashed = replica_->member_id();
  replica_ = nullptr;
  DriverCounters::Get().indoubt_resolutions->Increment();
  SIREP_RETURN_IF_ERROR(ConnectToReplica(crashed));
  const TxnOutcome outcome = replica_->InquireOutcome(txn.gid, crashed);
  switch (outcome) {
    case TxnOutcome::kCommitted:
      // 3b: the writeset survived (uniform reliable delivery) and the
      // transaction committed — fail-over is fully transparent.
      last_update_gid_ = txn.gid;
      DriverCounters::Get().indoubt_committed->Increment();
      return Status::OK();
    case TxnOutcome::kAborted:
    case TxnOutcome::kUnknown:
      // 3a: the writeset never made it out; same exception as a crash
      // before the commit request.
      DriverCounters::Get().txn_lost->Increment();
      return Status::TransactionLost(
          "replica crashed during commit; transaction did not commit");
  }
  return Status::Internal("unreachable");
}

Status Connection::Rollback() {
  if (!txn_.valid()) return Status::OK();
  middleware::SrcaRepReplica::TxnHandle txn = txn_;
  txn_ = {};
  if (replica_ == nullptr || !replica_->IsAlive()) return Status::OK();
  return replica_->RollbackTxn(txn);
}

Status Connection::EnsureConnected() {
  if (replica_ != nullptr && replica_->IsAlive()) return Status::OK();
  const gcs::MemberId crashed =
      replica_ != nullptr ? replica_->member_id() : gcs::kInvalidMember;
  return ConnectToReplica(crashed);
}

Result<std::unique_ptr<Connection>> Driver::Connect(
    ConnectionOptions options) {
  auto conn = std::make_unique<Connection>(directory_, options);
  // Eagerly resolve a replica so connection errors surface here.
  SIREP_RETURN_IF_ERROR(conn->EnsureConnected());
  return conn;
}

}  // namespace sirep::client
