#ifndef SIREP_CLIENT_DRIVER_H_
#define SIREP_CLIENT_DRIVER_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/prng.h"
#include "common/status.h"
#include "engine/query_result.h"
#include "middleware/replica_mw.h"

namespace sirep::client {

/// How the driver finds middleware replicas — the in-process stand-in for
/// the paper's IP-multicast discovery (§5.4: "the SI-Rep JDBC driver
/// multicasts a discovery message... replicas that are able to handle
/// additional workload respond"). cluster::Cluster implements this.
class ReplicaDirectory {
 public:
  virtual ~ReplicaDirectory() = default;

  /// Live replicas currently accepting connections.
  virtual std::vector<middleware::SrcaRepReplica*> Discover() = 0;
};

/// How the driver picks among the replicas discovery returns.
enum class BalancePolicy {
  kRandom,       ///< uniform choice (the default; paper behaviour)
  kLeastLoaded,  ///< pick the replica reporting the smallest load
};

struct ConnectionOptions {
  bool autocommit = true;
  BalancePolicy balance = BalancePolicy::kRandom;
  /// Seed for the replica choice (reproducible tests).
  uint64_t seed = 1;
  /// If >= 0, prefer this member id while it is alive (tests / sticky
  /// routing); fail-over still moves to a survivor when it crashes.
  int pinned_replica = -1;
  /// Discovery/fail-over deadline: ConnectToReplica retries discovery
  /// with bounded exponential backoff until a live replica answers or
  /// this budget runs out (a restarting cluster costs latency, not an
  /// immediate kUnavailable). Zero disables retries (single attempt).
  std::chrono::milliseconds connect_deadline{2000};
  /// Initial discovery retry backoff; doubles per attempt, capped at
  /// 100 ms.
  std::chrono::milliseconds connect_backoff{1};
};

/// A JDBC-like connection. The replication middleware is completely
/// transparent: the application executes SQL and commits; fail-over,
/// discovery, and in-doubt resolution happen underneath (paper §5.4).
///
/// Transaction semantics mirror JDBC: with autocommit on, each statement
/// is its own transaction; with autocommit off, the first statement after
/// a commit/rollback implicitly starts one. BEGIN/COMMIT/ROLLBACK
/// statements are also accepted.
///
/// Error contract on replica crash:
///  * no transaction active: fail-over is fully transparent;
///  * mid-transaction (commit not yet requested): kTransactionLost — the
///    transaction never left its replica; restart it;
///  * crash during Commit(): the driver inquires at another replica and
///    returns the true outcome — OK if the writeset survived (uniform
///    delivery), kTransactionLost otherwise.
class Connection {
 public:
  Connection(ReplicaDirectory* directory, ConnectionOptions options);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Executes one SQL statement (handles BEGIN/COMMIT/ROLLBACK too).
  Result<engine::QueryResult> Execute(
      const std::string& sql, const std::vector<sql::Value>& params = {});

  Status Commit();
  Status Rollback();

  void SetAutoCommit(bool autocommit) { autocommit_ = autocommit; }
  bool autocommit() const { return autocommit_; }
  bool in_transaction() const { return txn_.valid(); }

  /// Resolves a replica if none is connected yet (discovery). Called by
  /// Driver::Connect; safe to call any time.
  Status EnsureConnected();

  /// The replica currently serving this connection (introspection).
  middleware::SrcaRepReplica* replica() const { return replica_; }

  /// Number of transparent fail-overs performed so far.
  uint64_t failover_count() const { return failovers_; }

 private:
  /// (Re)connects to a live replica, excluding `exclude` (or pass
  /// kInvalidMember), retrying discovery with bounded exponential
  /// backoff until options_.connect_deadline. After fail-over, waits
  /// until this client's last committed update transaction is visible
  /// at the new replica (session consistency / read-your-writes).
  /// The "client.connect" failpoint injects failed discovery attempts.
  Status ConnectToReplica(gcs::MemberId exclude);

  /// One discovery + selection attempt (no retries).
  Status TryConnect(gcs::MemberId exclude);

  /// Ensures a transaction is open (JDBC implicit begin).
  Status EnsureTxn();

  /// Commit with in-doubt resolution on crash.
  Status CommitInternal();

  ReplicaDirectory* const directory_;
  ConnectionOptions options_;
  Prng prng_;

  middleware::SrcaRepReplica* replica_ = nullptr;
  middleware::SrcaRepReplica::TxnHandle txn_;
  bool autocommit_;
  uint64_t failovers_ = 0;

  /// Last update transaction this client committed, for session
  /// consistency across fail-over.
  middleware::GlobalTxnId last_update_gid_;
};

/// Entry point, mirroring DriverManager.getConnection().
class Driver {
 public:
  explicit Driver(ReplicaDirectory* directory) : directory_(directory) {}

  Result<std::unique_ptr<Connection>> Connect(ConnectionOptions options = {});

 private:
  ReplicaDirectory* const directory_;
};

}  // namespace sirep::client

#endif  // SIREP_CLIENT_DRIVER_H_
