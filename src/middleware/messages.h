#ifndef SIREP_MIDDLEWARE_MESSAGES_H_
#define SIREP_MIDDLEWARE_MESSAGES_H_

#include <cstdint>
#include <memory>
#include <string>

#include "middleware/global_txn_id.h"
#include "storage/write_set.h"

namespace sirep::middleware {

/// Message type tag used on the group for writeset dissemination.
inline constexpr char kWriteSetMessageType[] = "writeset";

/// The payload multicast in total order when a local transaction asks to
/// commit (paper Fig. 4, I.2.g): the writeset, the sender's certification
/// watermark, and the global transaction id for outcome tracking.
struct WriteSetMessage {
  GlobalTxnId gid;
  /// `lastvalidated_tid` at the origin replica when the message was sent:
  /// global validation only needs to check writesets validated after this
  /// point (everything before was covered by local validation).
  uint64_t cert = 0;
  std::shared_ptr<const storage::WriteSet> ws;
};

/// Message type tag for replicated DDL.
inline constexpr char kDdlMessageType[] = "ddl";

/// DDL (CREATE TABLE / CREATE INDEX) is replicated by shipping the
/// statement text in total order; every replica executes it at the same
/// position relative to all writesets, so schema changes land before any
/// writeset that references them.
struct DdlMessage {
  GlobalTxnId gid;
  std::string sql;
};

}  // namespace sirep::middleware

#endif  // SIREP_MIDDLEWARE_MESSAGES_H_
