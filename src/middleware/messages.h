#ifndef SIREP_MIDDLEWARE_MESSAGES_H_
#define SIREP_MIDDLEWARE_MESSAGES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "gcs/group.h"
#include "middleware/global_txn_id.h"
#include "obs/trace.h"
#include "storage/write_set.h"

namespace sirep::middleware {

/// Message type tag used on the group for writeset dissemination.
inline constexpr char kWriteSetMessageType[] = "writeset";

/// The payload multicast in total order when a local transaction asks to
/// commit (paper Fig. 4, I.2.g): the writeset, the sender's certification
/// watermark, and the global transaction id for outcome tracking.
struct WriteSetMessage {
  GlobalTxnId gid;
  /// `lastvalidated_tid` at the origin replica when the message was sent:
  /// global validation only needs to check writesets validated after this
  /// point (everything before was covered by local validation).
  uint64_t cert = 0;
  std::shared_ptr<const storage::WriteSet> ws;
  /// Distributed trace context of the originating transaction, so every
  /// replica can record its validate/apply/commit spans under the
  /// origin's trace id. Empty (trace_id == 0) when decoded from a
  /// version-1 message.
  obs::TraceContext trace;
  /// Partition-map epoch the sender tagged the message under (0 when the
  /// sender ran without a partition map / decoded from version <= 2).
  uint64_t epoch = 0;
  /// Bitmask of the partitions the writeset touches; 0 means "untagged"
  /// and is treated as full-replication semantics everywhere.
  uint64_t partition_mask = 0;
  /// True for the lightweight header variant shipped to non-holders: no
  /// row images, only `digests` — enough to reach the identical conflict
  /// verdict and advance the hole tracker, never enough to apply.
  bool header_only = false;
  /// Per-tuple FNV-1a digests in writeset order (present only on the
  /// header variant; holders recompute them from `ws`).
  std::vector<uint64_t> digests;
};

/// Message type tag for replicated DDL.
inline constexpr char kDdlMessageType[] = "ddl";

/// DDL (CREATE TABLE / CREATE INDEX) is replicated by shipping the
/// statement text in total order; every replica executes it at the same
/// position relative to all writesets, so schema changes land before any
/// writeset that references them.
struct DdlMessage {
  GlobalTxnId gid;
  std::string sql;
};

/// Wire encodings for the middleware's multicast payloads, layered on the
/// sql/serde.h primitives (little-endian, length-prefixed, versioned;
/// kInvalidArgument on truncation — see DESIGN.md "Wire format &
/// transport"). WriteSetMessage:
///
///   u8   version   kMessageWireVersion
///   u32  gid.replica
///   u64  gid.seq
///   u64  cert
///   -- version >= 2 only (distributed trace context) --
///   u64  trace.trace_id        0 = no context
///   u32  trace.origin_replica
///   u64  trace.origin_mono_ns
///   u64  trace.origin_wall_ns
///   -- version >= 3 only (partial replication routing) --
///   u64  epoch            partition-map epoch (0 = untagged)
///   u64  partition_mask   touched partitions (0 = untagged)
///   u8   flags            bit 0: header_only
///   -- version >= 3, header_only variant --
///   u32  digest_count
///   u64  digest[i]        per-tuple FNV-1a digests, writeset order
///   -- full variant (all versions) --
///   ...  writeset  (storage::EncodeWriteSet)
///
/// DdlMessage: u8 version, u32 gid.replica, u64 gid.seq, string sql.
///
/// Version 2 added the writeset TraceContext; version 3 added the
/// partition routing tag and the header-only digest variant. Encoders
/// always write the current version; decoders accept versions 1 and 2,
/// whose writesets decode with an empty context / untagged mask.
inline constexpr uint8_t kMessageWireVersion = 3;

void EncodeWriteSetMessage(const WriteSetMessage& msg, std::string* out);
Status DecodeWriteSetMessage(const std::string& in, WriteSetMessage* out);

void EncodeDdlMessage(const DdlMessage& msg, std::string* out);
Status DecodeDdlMessage(const std::string& in, DdlMessage* out);

/// Registers the writeset + DDL codecs on `group` so byte-shipping
/// transports serialize them instead of falling back to the payload
/// stash. Idempotent; every replica calls it on Start().
void RegisterMessageCodecs(gcs::Group* group);

}  // namespace sirep::middleware

#endif  // SIREP_MIDDLEWARE_MESSAGES_H_
