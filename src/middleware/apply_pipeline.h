#ifndef SIREP_MIDDLEWARE_APPLY_PIPELINE_H_
#define SIREP_MIDDLEWARE_APPLY_PIPELINE_H_

#include <functional>
#include <memory>

#include "middleware/tocommit_queue.h"
#include "obs/metrics.h"

namespace sirep::middleware {

/// The remote-apply half of step III, extracted from SrcaRepReplica so
/// the serial (pre-pipeline) path stays selectable for A/B benching and
/// bisection. The replica validates writesets in delivery order and asks
/// the ToCommitQueue which entries have no conflicting predecessor
/// (Adjustment 2); every entry handed to Dispatch() is therefore
/// pairwise non-conflicting with every other in-flight entry — the
/// pipeline is free to run them on any worker in any order without
/// affecting the database state. 1-copy-SI visibility order is not the
/// pipeline's job: the HoleTracker (Adjustment 3) gates local begins and
/// the stable prefix, and the ToCommitQueue withholds conflicting
/// successors until their predecessor commits.
///
/// Implementations:
///  * width 1 — a single worker applying in strict dispatch order: the
///    behavior of the original single-applier replica, byte for byte.
///  * width N — one dispatch queue per worker, routed by the writeset's
///    first tuple hash (keeps writers of a hot key on one worker, warm),
///    with work stealing so a worker blocked on a database lock held by
///    a local transaction never strands other queues' entries (the pool
///    must not lose width to hidden blocking, paper §4.2).
///
/// Shutdown() drains queued entries through `apply` before returning —
/// the replica's shutdown flag makes those drained applies fall through
/// to their hole-discard path, exactly as the previous thread pool did.
class ApplyPipeline {
 public:
  /// Applies + commits one validated remote writeset (bound to
  /// SrcaRepReplica::ApplyRemote). Must be callable concurrently.
  using ApplyFn = std::function<void(ToCommitEntry)>;

  virtual ~ApplyPipeline() = default;

  /// Hands one dispatchable entry to a worker. Never blocks on the
  /// apply itself; drops the entry when shut down.
  virtual void Dispatch(ToCommitEntry entry) = 0;

  /// Drains outstanding entries and joins the workers. Idempotent.
  virtual void Shutdown() = 0;

  /// Number of worker threads.
  virtual size_t width() const = 0;

  /// Builds a serial (threads <= 1) or sharded pipeline. `registry`, if
  /// non-null, receives per-shard "mw.apply.shard<i>.queue_depth" gauges.
  static std::unique_ptr<ApplyPipeline> Create(size_t threads,
                                               ApplyFn apply,
                                               obs::MetricsRegistry* registry);

  /// SIREP_APPLY_THREADS, when set to a positive integer, overrides the
  /// configured width (the ctest/CI hook for pinning both pipeline
  /// modes); otherwise returns `configured`, floored at 1.
  static size_t ThreadsFromEnv(size_t configured);
};

}  // namespace sirep::middleware

#endif  // SIREP_MIDDLEWARE_APPLY_PIPELINE_H_
