#ifndef SIREP_MIDDLEWARE_HOLE_TRACKER_H_
#define SIREP_MIDDLEWARE_HOLE_TRACKER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace sirep::middleware {

/// Implements Adjustment 3 of the paper (§4.3.3): synchronizing the start
/// of local transactions with the (possibly out-of-validation-order)
/// commit order, so that indirectly induced conflicts always follow the
/// validation order and 1-copy-SI is preserved.
///
/// A **hole** exists at a replica when some transaction validated at
/// position t committed while a transaction validated earlier (t' < t)
/// has not yet committed here. The rules:
///
///  * a local transaction may only *start* when there are no holes
///    (RunStart blocks);
///  * while local transactions are waiting to start, a *remote*
///    transaction whose commit would create a new hole (an
///    earlier-validated transaction is still outstanding) is not
///    dispatched (GateOpen); local commits always proceed.
///
/// Crucially — and this is the paper's own hidden-deadlock argument —
/// the remote gate is applied *before* the writeset application starts,
/// while the remote transaction holds no locks yet: "This does not lead
/// to hidden deadlocks since there are only remote transactions delayed
/// in tocommit_queue which have not yet started and acquired locks."
/// Gating at commit time instead (after locks are acquired) can deadlock
/// through a running local transaction.
///
/// With `enabled == false` the tracker implements SRCA-Opt: it keeps the
/// statistics (so the holes-frequency experiment can run on both modes)
/// but never blocks or gates, giving up 1-copy-SI as §4.3.2 describes.
class HoleTracker {
 public:
  explicit HoleTracker(bool enabled) : enabled_(enabled) {}

  struct Stats {
    uint64_t starts = 0;
    uint64_t delayed_starts = 0;  ///< starts that found holes
    uint64_t commits = 0;
    uint64_t delayed_commits = 0;  ///< remote dispatches the gate deferred
  };

  /// Registers a transaction that passed global validation at this
  /// replica (it *will* commit here, creating a potential hole boundary).
  void NoteValidated(uint64_t tid) {
    std::lock_guard<std::mutex> lock(mu_);
    outstanding_.insert(tid);
  }

  /// Runs `begin_fn` (the database begin) once there are no holes. The
  /// callable runs under the tracker mutex, making the no-holes condition
  /// atomic with the snapshot acquisition.
  template <typename Fn>
  auto RunStart(Fn&& begin_fn) {
    bool waited = false;
    auto lock = obs::AcquireProfiled(mu_, lock_stats_);
    ++stats_.starts;
    if (HasHolesLocked() && !cancelled_) {
      ++stats_.delayed_starts;
      if (enabled_) {
        ++waiting_starts_;
        const uint64_t wait_start = obs::MonotonicNanos();
        cv_.wait(lock, [&] { return cancelled_ || !HasHolesLocked(); });
        if (wait_hist_ != nullptr) {
          wait_hist_->Observe(
              obs::NanosToUs(obs::MonotonicNanos() - wait_start));
        }
        --waiting_starts_;
        waited = true;
      }
    }
    auto result = begin_fn();
    lock.unlock();
    // A start leaving the wait set may open remote dispatch gates.
    if (waited) NotifyChange();
    return result;
  }

  /// Dispatch gate for validated transactions: true when committing
  /// `tid` is currently acceptable. Local transactions always pass
  /// (hidden-deadlock freedom); remote ones are held back while a local
  /// start is waiting and an earlier-validated transaction is still
  /// outstanding. The caller re-checks on every change notification.
  bool GateOpen(uint64_t tid, bool is_local) const {
    if (!enabled_) return true;
    auto lock = obs::AcquireProfiled(mu_, lock_stats_);
    return cancelled_ || waiting_starts_ == 0 || is_local ||
           !WouldCreateNewHoleLocked(tid);
  }

  /// Statistics: a remote dispatch was deferred by the gate (call once
  /// per transaction).
  void CountDeferredCommit() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.delayed_commits;
  }

  /// Runs `commit_fn` (the database commit) and marks `tid` committed,
  /// atomically with the hole bookkeeping. No gating happens here — the
  /// gate was applied at dispatch time.
  template <typename Fn>
  auto RecordCommit(uint64_t tid, Fn&& commit_fn) {
    auto lock = obs::AcquireProfiled(mu_, lock_stats_);
    ++stats_.commits;
    auto result = commit_fn();
    outstanding_.erase(tid);
    if (tid > max_committed_) max_committed_ = tid;
    cv_.notify_all();
    lock.unlock();
    NotifyChange();
    return result;
  }

  /// Registers a callback invoked (outside the internal mutex) whenever
  /// gates may have opened: a commit, a discard, or a waiting start
  /// finishing. The replica re-runs its dispatch scan on it.
  void SetChangeListener(std::function<void()> listener) {
    std::lock_guard<std::mutex> lock(mu_);
    change_listener_ = std::move(listener);
  }

  /// Observes the duration of every blocked RunStart (microseconds) into
  /// `hist`. Set once at replica construction, before any transaction.
  void SetWaitHistogram(obs::Histogram* hist) {
    std::lock_guard<std::mutex> lock(mu_);
    wait_hist_ = hist;
  }

  /// Contention accounting for the tracker mutex on its hottest entry
  /// points (RunStart / GateOpen / RecordCommit). Set once at replica
  /// construction, before any transaction.
  void SetLockStats(const obs::LockStats& stats) { lock_stats_ = stats; }

  /// Permanently releases all waiters and opens all gates: the replica
  /// crashed or is shutting down, so no start may block on commits that
  /// will never happen. Irreversible.
  void Cancel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled_ = true;
      cv_.notify_all();
    }
    NotifyChange();
  }

  /// Adopts a committed prefix from a recovery state transfer: every
  /// validated tid <= `tid` is committed at this replica (the recoverer
  /// replayed the donor's log suffix outside RecordCommit), so
  /// StablePrefix() must reflect it — a crash right after recovery then
  /// restarts incrementally instead of forcing a full copy. Never moves
  /// the prefix backwards; the outstanding set is untouched (recovery
  /// completes with nothing validated-but-uncommitted).
  void AdoptCommittedPrefix(uint64_t tid) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (tid > max_committed_) max_committed_ = tid;
      cv_.notify_all();
    }
    NotifyChange();
  }

  /// Drops a validated transaction that will never commit here (replica
  /// shutting down / crashed mid-pipeline) so waiters are not stranded.
  void Discard(uint64_t tid) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      outstanding_.erase(tid);
      cv_.notify_all();
    }
    NotifyChange();
  }

  bool HasHoles() const {
    std::lock_guard<std::mutex> lock(mu_);
    return HasHolesLocked();
  }

  /// Validated-but-uncommitted transactions currently tracked (the
  /// potential-hole set); sampled as a gauge on every delivery.
  size_t OutstandingCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return outstanding_.size();
  }

  /// Largest tid T such that every validated tid <= T has committed at
  /// this replica — the durable prefix a restarted replica can recover
  /// from (re-applying anything after it is idempotent).
  uint64_t StablePrefix() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (outstanding_.empty()) return max_committed_;
    return *outstanding_.begin() - 1;
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  bool enabled() const { return enabled_; }

 private:
  bool HasHolesLocked() const {
    return !outstanding_.empty() && *outstanding_.begin() < max_committed_;
  }

  /// Committing `tid` creates a new hole iff an earlier-validated
  /// transaction is still outstanding.
  bool WouldCreateNewHoleLocked(uint64_t tid) const {
    auto it = outstanding_.begin();
    if (it == outstanding_.end()) return false;
    return *it < tid;
  }

  void NotifyChange() {
    std::function<void()> listener;
    {
      std::lock_guard<std::mutex> lock(mu_);
      listener = change_listener_;
    }
    if (listener) listener();
  }

  const bool enabled_;
  std::function<void()> change_listener_;
  obs::Histogram* wait_hist_ = nullptr;
  obs::LockStats lock_stats_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::set<uint64_t> outstanding_;
  uint64_t max_committed_ = 0;
  int waiting_starts_ = 0;
  bool cancelled_ = false;
  Stats stats_;
};

}  // namespace sirep::middleware

#endif  // SIREP_MIDDLEWARE_HOLE_TRACKER_H_
