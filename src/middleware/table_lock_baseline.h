#ifndef SIREP_MIDDLEWARE_TABLE_LOCK_BASELINE_H_
#define SIREP_MIDDLEWARE_TABLE_LOCK_BASELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "gcs/group.h"
#include "middleware/table_locks.h"
#include "storage/write_set.h"

namespace sirep::middleware {

/// A pre-declared transaction for the baseline protocol: the paper's
/// reference [20] requires programs to run inside the middleware and to
/// declare the tables they access in advance — exactly the restrictions
/// SI-Rep removes.
struct DeclaredTxn {
  std::vector<std::string> tables;  ///< every table the program touches
  bool read_only = false;
  /// The transaction program, executed at exactly one replica.
  std::function<Status(engine::Database*, const storage::TransactionPtr&)>
      program;
};

/// Baseline replica control from [20] (Jiménez-Peris et al., ICDCS 2002),
/// reimplemented for the Fig. 7 comparison:
///
///  * the client submits the whole transaction as one request;
///  * update requests are multicast in total order; every replica enqueues
///    table-level exclusive locks in delivery order (identical schedule
///    everywhere, deadlock-free);
///  * the origin replica executes the program — on the submitting client's
///    thread — once its locks are granted, extracts the writeset,
///    multicasts it (FIFO), commits locally and answers the client;
///  * remote replicas apply writesets on a dedicated applier thread as
///    soon as an entry has both its locks and its writeset;
///  * read-only requests take local shared table locks and run locally.
///
/// Two messages per update transaction, one client/middleware interaction
/// per transaction — but table-granularity locking, which is what makes it
/// saturate before SI-Rep under contention (Fig. 7).
class TableLockReplica : public gcs::GroupListener {
 public:
  struct Stats {
    uint64_t committed = 0;
    uint64_t read_only = 0;
    uint64_t remote_applied = 0;
    uint64_t contended_lock_requests = 0;
  };

  TableLockReplica(engine::Database* db, gcs::Group* group);
  ~TableLockReplica() override;

  TableLockReplica(const TableLockReplica&) = delete;
  TableLockReplica& operator=(const TableLockReplica&) = delete;

  Status Start();
  gcs::MemberId member_id() const { return member_id_; }

  /// Executes a declared transaction submitted at this replica; blocks
  /// until it committed locally. A failing program aborts everywhere (a
  /// null-writeset marker releases the remote locks).
  Status Submit(std::shared_ptr<const DeclaredTxn> txn);

  void Shutdown();
  Stats stats() const;

  // GroupListener
  void OnDeliver(const gcs::Message& message) override;
  void OnViewChange(const gcs::View& view) override;

 private:
  struct RequestMsg {
    uint64_t req_id;
    gcs::MemberId origin;
    std::shared_ptr<const DeclaredTxn> txn;
  };
  struct WriteSetMsg {
    uint64_t req_id;
    /// nullptr => the program aborted at the origin; release locks only.
    std::shared_ptr<const storage::WriteSet> ws;
  };

  struct PendingRequest {
    RequestMsg request;
    bool delivered = false;  ///< request message arrived; ticket is valid
    TableLockManager::TicketId ticket = 0;
    bool have_ws = false;
    std::shared_ptr<const storage::WriteSet> ws;
    bool done = false;   ///< local (origin) completion
    Status outcome;
  };

  /// Origin-side execution, on the submitting client's thread.
  Status RunOrigin(uint64_t req_id,
                   const std::shared_ptr<PendingRequest>& entry);

  /// Applies remote writesets whose locks are granted. One pass returns
  /// true if it made progress.
  bool ApplyReadyRemotes();
  void ApplierLoop();

  engine::Database* const db_;
  gcs::Group* const group_;
  gcs::MemberId member_id_ = gcs::kInvalidMember;
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> next_req_{0};

  TableLockManager locks_;
  std::thread applier_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, std::shared_ptr<PendingRequest>> pending_;
  uint64_t work_epoch_ = 0;  ///< bumped whenever the applier should rescan

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace sirep::middleware

#endif  // SIREP_MIDDLEWARE_TABLE_LOCK_BASELINE_H_
