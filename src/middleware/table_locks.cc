#include "middleware/table_locks.h"

#include <algorithm>

namespace sirep::middleware {

TableLockManager::TicketId TableLockManager::Request(
    const std::vector<std::string>& tables, TableLockMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  const TicketId id = ++next_ticket_;
  modes_[id] = mode;
  auto& mine = tickets_[id];
  for (const auto& table : tables) {
    // Deduplicate so Release removes each queue entry exactly once.
    if (std::find(mine.begin(), mine.end(), table) != mine.end()) continue;
    mine.push_back(table);
    queues_[table].push_back(Waiter{id, mode});
  }
  if (!GrantedLocked(id)) ++contended_;
  return id;
}

bool TableLockManager::GrantedLocked(TicketId ticket) const {
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) return false;
  const TableLockMode my_mode = modes_.at(ticket);
  for (const auto& table : it->second) {
    const auto& queue = queues_.at(table);
    for (const auto& waiter : queue) {
      if (waiter.id == ticket) break;  // everything ahead was compatible
      if (my_mode == TableLockMode::kExclusive ||
          waiter.mode == TableLockMode::kExclusive) {
        return false;
      }
    }
  }
  return true;
}

void TableLockManager::Wait(TicketId ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return GrantedLocked(ticket); });
}

bool TableLockManager::IsGranted(TicketId ticket) const {
  std::lock_guard<std::mutex> lock(mu_);
  return GrantedLocked(ticket);
}

void TableLockManager::Release(TicketId ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) return;
  for (const auto& table : it->second) {
    auto& queue = queues_[table];
    queue.erase(std::remove_if(queue.begin(), queue.end(),
                               [&](const Waiter& w) { return w.id == ticket; }),
                queue.end());
    if (queue.empty()) queues_.erase(table);
  }
  tickets_.erase(it);
  modes_.erase(ticket);
  cv_.notify_all();
}

uint64_t TableLockManager::contended_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return contended_;
}

}  // namespace sirep::middleware
