#ifndef SIREP_MIDDLEWARE_GLOBAL_TXN_ID_H_
#define SIREP_MIDDLEWARE_GLOBAL_TXN_ID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace sirep::middleware {

/// Globally unique transaction identifier assigned by the local middleware
/// replica when a transaction starts (paper §5.4). It travels with the
/// writeset so every replica can record the transaction's outcome, which
/// is what lets a failed-over client resolve an in-doubt commit.
struct GlobalTxnId {
  uint32_t replica = 0;  ///< middleware replica that owns the transaction
  uint64_t seq = 0;      ///< per-replica sequence number (1-based)

  bool valid() const { return seq != 0; }

  bool operator==(const GlobalTxnId& other) const {
    return replica == other.replica && seq == other.seq;
  }

  std::string ToString() const {
    return "T" + std::to_string(replica) + "." + std::to_string(seq);
  }
};

struct GlobalTxnIdHash {
  size_t operator()(const GlobalTxnId& id) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(id.replica) << 48) ^
                                 id.seq);
  }
};

}  // namespace sirep::middleware

#endif  // SIREP_MIDDLEWARE_GLOBAL_TXN_ID_H_
