#ifndef SIREP_MIDDLEWARE_TOCOMMIT_QUEUE_H_
#define SIREP_MIDDLEWARE_TOCOMMIT_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "middleware/global_txn_id.h"
#include "storage/write_set.h"

namespace sirep::middleware {

/// One entry of a replica's `tocommit_queue`: a validated transaction
/// waiting to be applied (if remote) and committed at this replica.
struct ToCommitEntry {
  uint64_t tid = 0;  ///< global validation id
  GlobalTxnId gid;
  bool local = false;  ///< local at this replica?
  std::shared_ptr<const storage::WriteSet> ws;
  bool dispatched = false;     ///< already handed to an applier (internal)
  bool gate_deferred = false;  ///< hole gate deferral already counted
};

/// The per-replica `tocommit_queue` of the paper (Fig. 1 II / Fig. 4 III),
/// with the conflict queries the three algorithm variants need:
///
///  * SRCA applies strictly in order (front of queue);
///  * Adjustment 1 validates a finishing local transaction against the
///    *remote* entries still queued (ConflictsWithRemote);
///  * Adjustment 2 dispatches any entry with no conflicting predecessor
///    still in the queue (NextDispatchable).
///
/// Thread-safe.
class ToCommitQueue {
 public:
  void Append(ToCommitEntry entry) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back(std::move(entry));
  }

  /// Local validation (Adjustment 1 / Fig. 4 I.2.d): does `ws` intersect
  /// the writeset of any *remote* transaction still queued?
  bool ConflictsWithRemote(const storage::WriteSet& ws) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : entries_) {
      if (!entry.local && entry.ws != nullptr && entry.ws->Intersects(ws)) {
        return true;
      }
    }
    return false;
  }

  /// Marks and returns the queued, not-yet-dispatched entries that have no
  /// conflicting entry ordered before them (Adjustment 2's eligibility
  /// rule) and whose hole gate is open (Adjustment 3; `gate_open` may be
  /// null to skip gating). Local entries are committed by the client
  /// thread and are dispatched there, so this only returns remote
  /// entries. `deferred_by_gate`, if non-null, counts entries newly held
  /// back by the gate (for the holes statistics).
  std::vector<ToCommitEntry> TakeDispatchableRemotes(
      const std::function<bool(uint64_t tid)>& gate_open = nullptr,
      size_t* deferred_by_gate = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ToCommitEntry> ready;
    for (size_t i = 0; i < entries_.size(); ++i) {
      ToCommitEntry& entry = entries_[i];
      if (entry.local || entry.dispatched) continue;
      bool blocked = false;
      for (size_t j = 0; j < i; ++j) {
        if (entries_[j].ws != nullptr && entry.ws != nullptr &&
            entries_[j].ws->Intersects(*entry.ws)) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;
      if (gate_open != nullptr && !gate_open(entry.tid)) {
        if (!entry.gate_deferred) {
          entry.gate_deferred = true;
          if (deferred_by_gate != nullptr) ++*deferred_by_gate;
        }
        continue;
      }
      entry.dispatched = true;
      ready.push_back(entry);
    }
    return ready;
  }

  /// Removes a committed (or discarded) transaction.
  void Remove(uint64_t tid) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->tid == tid) {
        entries_.erase(it);
        return;
      }
    }
  }

  /// tid of the front entry, or 0 if empty (SRCA's strict in-order apply).
  uint64_t FrontTid() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.empty() ? 0 : entries_.front().tid;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::deque<ToCommitEntry> entries_;
};

}  // namespace sirep::middleware

#endif  // SIREP_MIDDLEWARE_TOCOMMIT_QUEUE_H_
