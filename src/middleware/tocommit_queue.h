#ifndef SIREP_MIDDLEWARE_TOCOMMIT_QUEUE_H_
#define SIREP_MIDDLEWARE_TOCOMMIT_QUEUE_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "middleware/global_txn_id.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "storage/write_set.h"

namespace sirep::middleware {

/// One entry of a replica's `tocommit_queue`: a validated transaction
/// waiting to be applied (if remote) and committed at this replica.
struct ToCommitEntry {
  uint64_t tid = 0;  ///< global validation id
  GlobalTxnId gid;
  bool local = false;  ///< local at this replica?
  std::shared_ptr<const storage::WriteSet> ws;
  bool dispatched = false;     ///< already handed to an applier (internal)
  bool gate_deferred = false;  ///< hole gate deferral already counted
  /// Delivery time at this replica (MonotonicNanos), for remote-apply lag.
  uint64_t delivered_ns = 0;
  /// Origin-tagged distributed trace for remote entries (null when the
  /// origin sent no TraceContext); the applier records its apply/commit
  /// spans into it and flushes it at commit.
  std::shared_ptr<obs::TxnTrace> trace;
};

/// The per-replica `tocommit_queue` of the paper (Fig. 1 II / Fig. 4 III),
/// with the conflict queries the three algorithm variants need:
///
///  * SRCA applies strictly in order (front of queue);
///  * Adjustment 1 validates a finishing local transaction against the
///    *remote* entries still queued (ConflictsWithRemote);
///  * Adjustment 2 dispatches any entry with no conflicting predecessor
///    still in the queue (TakeDispatchableRemotes).
///
/// Internally the queue is indexed by tuple so every operation is
/// O(writeset size), not O(queue length): each touched tuple keeps a
/// FIFO of the entries writing it, an entry is dispatchable exactly when
/// it is at the front of *all* its tuples' FIFOs, and a per-entry
/// blocker count tracks how many FIFOs it is not yet front of. The
/// naive formulation (scan all earlier entries per candidate, re-run on
/// every delivery) was O(n^2) per delivery and livelocked recovery:
/// under a hot-key write workload the backlog on the recovering
/// replica's peers grew faster than the quadratic scans could drain it.
///
/// Thread-safe.
class ToCommitQueue {
 public:
  void Append(ToCommitEntry entry) {
    auto lock = obs::AcquireProfiled(mu_, lock_stats_);
    const uint64_t seq = next_seq_++;
    seq_of_tid_[entry.tid] = seq;
    Node& node = entries_.emplace(seq, Node{std::move(entry), 0}).first->second;
    if (node.entry.ws != nullptr) {
      for (const auto& we : node.entry.ws->entries()) {
        auto& fifo = tuple_queues_[we.tuple];
        fifo.push_back(seq);
        if (fifo.size() > 1) ++node.blockers;
        if (!node.entry.local) ++remote_pending_[we.tuple];
      }
    }
    if (Dispatchable(node)) ready_.push_back(seq);
  }

  /// Local validation (Adjustment 1 / Fig. 4 I.2.d): does `ws` intersect
  /// the writeset of any *remote* transaction still queued?
  bool ConflictsWithRemote(const storage::WriteSet& ws) const {
    auto lock = obs::AcquireProfiled(mu_, lock_stats_);
    for (const auto& we : ws.entries()) {
      if (remote_pending_.count(we.tuple) > 0) return true;
    }
    return false;
  }

  /// Marks and returns the queued, not-yet-dispatched entries that have no
  /// conflicting entry ordered before them (Adjustment 2's eligibility
  /// rule) and whose hole gate is open (Adjustment 3; `gate_open` may be
  /// null to skip gating). Local entries are committed by the client
  /// thread and are dispatched there, so this only returns remote
  /// entries. `deferred_by_gate`, if non-null, counts entries newly held
  /// back by the gate (for the holes statistics).
  std::vector<ToCommitEntry> TakeDispatchableRemotes(
      const std::function<bool(uint64_t tid)>& gate_open = nullptr,
      size_t* deferred_by_gate = nullptr) {
    auto lock = obs::AcquireProfiled(mu_, lock_stats_);
    std::sort(ready_.begin(), ready_.end());
    std::vector<ToCommitEntry> taken;
    std::vector<uint64_t> retained;
    for (uint64_t seq : ready_) {
      auto it = entries_.find(seq);
      if (it == entries_.end()) continue;  // removed while ready
      ToCommitEntry& entry = it->second.entry;
      if (entry.dispatched) continue;
      if (gate_open != nullptr && !gate_open(entry.tid)) {
        if (!entry.gate_deferred) {
          entry.gate_deferred = true;
          if (deferred_by_gate != nullptr) ++*deferred_by_gate;
        }
        retained.push_back(seq);
        continue;
      }
      entry.dispatched = true;
      taken.push_back(entry);
    }
    ready_ = std::move(retained);
    return taken;
  }

  /// Removes a committed (or discarded) transaction. Successors that
  /// reach the front of all their tuple FIFOs become dispatchable.
  void Remove(uint64_t tid) {
    auto lock = obs::AcquireProfiled(mu_, lock_stats_);
    auto sit = seq_of_tid_.find(tid);
    if (sit == seq_of_tid_.end()) return;
    const uint64_t seq = sit->second;
    seq_of_tid_.erase(sit);
    auto it = entries_.find(seq);
    Node node = std::move(it->second);
    entries_.erase(it);
    if (node.entry.ws == nullptr) return;
    for (const auto& we : node.entry.ws->entries()) {
      auto qit = tuple_queues_.find(we.tuple);
      auto& fifo = qit->second;
      if (fifo.front() == seq) {
        fifo.pop_front();
        // The new front (if any) loses one blocker; removal from the
        // middle leaves everyone's frontness unchanged.
        if (!fifo.empty()) {
          Node& successor = entries_.at(fifo.front());
          if (--successor.blockers == 0 && Dispatchable(successor)) {
            ready_.push_back(fifo.front());
          }
        }
      } else {
        fifo.erase(std::find(fifo.begin(), fifo.end(), seq));
      }
      if (fifo.empty()) tuple_queues_.erase(qit);
      if (!node.entry.local) {
        auto rit = remote_pending_.find(we.tuple);
        if (--rit->second == 0) remote_pending_.erase(rit);
      }
    }
    if (entries_.empty()) empty_cv_.notify_all();
  }

  /// Blocks until the queue is empty or `giveup()` returns true (e.g.
  /// the replica crashed and the queue will never drain). The predicate
  /// is re-checked whenever the queue empties or Poke() fires — no
  /// polling.
  void WaitUntilEmpty(const std::function<bool()>& giveup) {
    std::unique_lock<std::mutex> lock(mu_);
    empty_cv_.wait(lock, [&] {
      return entries_.empty() || (giveup != nullptr && giveup());
    });
  }

  /// Contention accounting for the queue mutex on its hottest entry
  /// points. Set once at replica construction, before any transaction.
  void SetLockStats(const obs::LockStats& stats) { lock_stats_ = stats; }

  /// Wakes WaitUntilEmpty() waiters to re-evaluate their giveup
  /// predicate (call on crash/shutdown).
  void Poke() {
    std::lock_guard<std::mutex> lock(mu_);
    empty_cv_.notify_all();
  }

  /// tid of the front entry, or 0 if empty (SRCA's strict in-order apply).
  uint64_t FrontTid() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.empty() ? 0 : entries_.begin()->second.entry.tid;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  struct Node {
    ToCommitEntry entry;
    /// Number of this entry's tuples whose FIFO it is not yet front of.
    size_t blockers = 0;
  };

  static bool Dispatchable(const Node& node) {
    return node.blockers == 0 && !node.entry.local && !node.entry.dispatched;
  }

  mutable std::mutex mu_;
  obs::LockStats lock_stats_;
  std::condition_variable empty_cv_;
  uint64_t next_seq_ = 0;
  /// Entries in arrival (= validation) order, keyed by insertion seq.
  std::map<uint64_t, Node> entries_;
  std::unordered_map<uint64_t, uint64_t> seq_of_tid_;
  /// Per-tuple FIFO of the seqs of queued entries writing that tuple.
  std::unordered_map<storage::TupleId, std::deque<uint64_t>,
                     storage::TupleIdHash>
      tuple_queues_;
  /// Per-tuple count of queued *remote* entries writing it.
  std::unordered_map<storage::TupleId, size_t, storage::TupleIdHash>
      remote_pending_;
  /// Seqs of entries with blockers == 0, remote, not yet dispatched.
  std::vector<uint64_t> ready_;
};

}  // namespace sirep::middleware

#endif  // SIREP_MIDDLEWARE_TOCOMMIT_QUEUE_H_
