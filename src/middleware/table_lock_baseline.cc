#include "middleware/table_lock_baseline.h"

#include <vector>

#include "common/logging.h"

namespace sirep::middleware {

namespace {
constexpr char kRequestType[] = "tl_request";
constexpr char kWriteSetType[] = "tl_writeset";
}  // namespace

TableLockReplica::TableLockReplica(engine::Database* db, gcs::Group* group)
    : db_(db), group_(group) {
  applier_ = std::thread([this] { ApplierLoop(); });
}

TableLockReplica::~TableLockReplica() { Shutdown(); }

Status TableLockReplica::Start() {
  member_id_ = group_->Join(this);
  if (member_id_ == gcs::kInvalidMember) {
    return Status::Unavailable("group is shut down");
  }
  return Status::OK();
}

Status TableLockReplica::Submit(std::shared_ptr<const DeclaredTxn> txn) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::Unavailable("replica shut down");
  }
  if (txn->read_only) {
    // Read-only: local shared table locks, local execution, no messages.
    auto ticket = locks_.Request(txn->tables, TableLockMode::kShared);
    locks_.Wait(ticket);
    auto db_txn = db_->Begin();
    Status st = txn->program(db_, db_txn);
    if (st.ok()) {
      st = db_->Commit(db_txn);
    } else {
      db_->Abort(db_txn);
    }
    locks_.Release(ticket);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++work_epoch_;
      cv_.notify_all();
    }
    if (st.ok()) {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.read_only;
      ++stats_.committed;
    }
    return st;
  }

  const uint64_t req_id =
      (static_cast<uint64_t>(member_id_) << 40) |
      (next_req_.fetch_add(1, std::memory_order_relaxed) + 1);
  auto entry = std::make_shared<PendingRequest>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_[req_id] = entry;
  }
  auto payload = std::make_shared<const RequestMsg>(
      RequestMsg{req_id, member_id_, txn});
  Status mc = group_->Multicast(member_id_, kRequestType, payload);
  if (!mc.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(req_id);
    return mc;
  }
  // Wait for our own request to be delivered (it carries the lock
  // ticket), then run the transaction on this thread.
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return entry->delivered || shutdown_.load(std::memory_order_acquire);
    });
    if (!entry->delivered) {
      pending_.erase(req_id);
      return Status::Unavailable("replica shut down");
    }
  }
  Status st = RunOrigin(req_id, entry);
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(req_id);
  }
  return st;
}

Status TableLockReplica::RunOrigin(
    uint64_t req_id, const std::shared_ptr<PendingRequest>& entry) {
  locks_.Wait(entry->ticket);

  auto db_txn = db_->Begin();
  Status st = entry->request.txn->program(db_, db_txn);
  std::shared_ptr<const storage::WriteSet> ws;
  if (st.ok()) {
    ws = db_->ExtractWriteSet(db_txn);
    st = db_->Commit(db_txn);
  } else {
    db_->Abort(db_txn);
  }
  // Second message: the writeset (FIFO suffices; total order is
  // stronger). On failure a null writeset tells remotes to release.
  auto payload = std::make_shared<const WriteSetMsg>(
      WriteSetMsg{req_id, st.ok() ? ws : nullptr});
  group_->Multicast(member_id_, kWriteSetType, payload);

  locks_.Release(entry->ticket);
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry->done = true;
    entry->outcome = st;
    ++work_epoch_;
    cv_.notify_all();
  }
  if (st.ok()) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.committed;
  }
  return st;
}

void TableLockReplica::OnDeliver(const gcs::Message& message) {
  if (shutdown_.load(std::memory_order_acquire)) return;
  if (message.type == kRequestType) {
    const auto* msg = message.As<RequestMsg>();
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = pending_[msg->req_id];
    if (slot == nullptr) slot = std::make_shared<PendingRequest>();
    slot->request = *msg;
    // Enqueue the table locks *on the delivery thread*: every replica
    // enqueues in the same (total) order, which is what makes the
    // table-lock schedule identical everywhere and deadlock-free.
    slot->ticket =
        locks_.Request(msg->txn->tables, TableLockMode::kExclusive);
    slot->delivered = true;
    ++work_epoch_;
    cv_.notify_all();
  } else if (message.type == kWriteSetType) {
    const auto* msg = message.As<WriteSetMsg>();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(msg->req_id);
    if (it == pending_.end()) return;  // we are the origin; already done
    it->second->have_ws = true;
    it->second->ws = msg->ws;
    ++work_epoch_;
    cv_.notify_all();
  }
}

bool TableLockReplica::ApplyReadyRemotes() {
  // Snapshot the ready entries, then apply without holding mu_.
  std::vector<std::pair<uint64_t, std::shared_ptr<PendingRequest>>> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [req_id, entry] : pending_) {
      if (!entry->delivered || entry->done) continue;
      if (entry->request.origin == member_id_) continue;  // origin side
      if (!entry->have_ws) continue;
      if (!locks_.IsGranted(entry->ticket)) continue;
      ready.emplace_back(req_id, entry);
    }
  }
  for (auto& [req_id, entry] : ready) {
    if (entry->ws != nullptr && !entry->ws->empty()) {
      // With exclusive table locks held the apply cannot conflict; the
      // loop is defensive.
      while (!shutdown_.load(std::memory_order_acquire)) {
        auto db_txn = db_->Begin();
        Status st = db_->ApplyWriteSet(db_txn, *entry->ws);
        if (st.ok()) st = db_->Commit(db_txn);
        if (st.ok()) {
          std::lock_guard<std::mutex> slock(stats_mu_);
          ++stats_.committed;
          ++stats_.remote_applied;
          break;
        }
        db_->Abort(db_txn);
        if (st.code() != StatusCode::kDeadlock &&
            st.code() != StatusCode::kConflict) {
          SIREP_ELOG << "table-lock baseline apply failed: " << st.ToString();
          break;
        }
        std::this_thread::yield();
      }
    }
    locks_.Release(entry->ticket);
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(req_id);
    ++work_epoch_;
    cv_.notify_all();
  }
  return !ready.empty();
}

void TableLockReplica::ApplierLoop() {
  uint64_t seen_epoch = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return work_epoch_ != seen_epoch ||
               shutdown_.load(std::memory_order_acquire);
      });
      seen_epoch = work_epoch_;
    }
    while (ApplyReadyRemotes()) {
    }
  }
}

void TableLockReplica::OnViewChange(const gcs::View& view) { (void)view; }

void TableLockReplica::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++work_epoch_;
    cv_.notify_all();
  }
  if (applier_.joinable()) applier_.join();
}

TableLockReplica::Stats TableLockReplica::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  Stats out = stats_;
  out.contended_lock_requests = locks_.contended_requests();
  return out;
}

}  // namespace sirep::middleware
