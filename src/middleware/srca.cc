#include "middleware/srca.h"

#include <atomic>

#include "common/logging.h"

namespace sirep::middleware {

SrcaMiddleware::SrcaMiddleware(std::vector<engine::Database*> replicas)
    : ws_list_(1 << 20) {
  replicas_.reserve(replicas.size());
  for (engine::Database* db : replicas) {
    auto replica = std::make_unique<Replica>();
    replica->db = db;
    replicas_.push_back(std::move(replica));
  }
  for (size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->committer = std::thread([this, i] { CommitterLoop(i); });
  }
}

SrcaMiddleware::~SrcaMiddleware() { Shutdown(); }

void SrcaMiddleware::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;
  for (auto& replica : replicas_) {
    {
      std::lock_guard<std::mutex> lock(replica->queue_mu);
    }
    replica->queue_cv.notify_all();
  }
  for (auto& replica : replicas_) {
    if (replica->committer.joinable()) replica->committer.join();
  }
}

Result<SrcaMiddleware::TxnHandle> SrcaMiddleware::Begin(size_t replica) {
  if (replicas_.empty()) return Status::Unavailable("no replicas");
  if (replica == kAnyReplica) {
    replica = next_replica_.fetch_add(1, std::memory_order_relaxed) %
              replicas_.size();
  }
  if (replica >= replicas_.size()) {
    return Status::InvalidArgument("no replica " + std::to_string(replica));
  }
  Replica& r = *replicas_[replica];
  TxnHandle handle;
  handle.client_txn = next_client_txn_.fetch_add(1) + 1;
  handle.replica = replica;
  {
    // Fig. 1, I.1.b-e: the begin is atomic with commits at this replica,
    // so `cert` exactly captures which transactions are concurrent.
    std::lock_guard<std::mutex> dblock(r.dbmutex);
    handle.cert = r.lastcommitted_tid;
    handle.db_txn = r.db->Begin();
  }
  return handle;
}

Result<engine::QueryResult> SrcaMiddleware::Execute(
    const TxnHandle& txn, const std::string& sql,
    const std::vector<sql::Value>& params) {
  if (txn.db_txn == nullptr) {
    return Status::InvalidArgument("invalid transaction");
  }
  return replicas_[txn.replica]->db->Execute(txn.db_txn, sql, params);
}

Status SrcaMiddleware::Rollback(const TxnHandle& txn) {
  if (txn.db_txn == nullptr) {
    return Status::InvalidArgument("invalid transaction");
  }
  replicas_[txn.replica]->db->Abort(txn.db_txn);
  return Status::OK();
}

Status SrcaMiddleware::Commit(TxnHandle& txn) {
  if (txn.db_txn == nullptr) {
    return Status::InvalidArgument("invalid transaction");
  }
  Replica& local = *replicas_[txn.replica];

  // I.3.a: pre-commit writeset retrieval.
  auto ws = local.db->ExtractWriteSet(txn.db_txn);

  // I.3.b: nothing written — commit locally, nobody else needs to know.
  if (ws->empty()) {
    Status st = local.db->Commit(txn.db_txn);
    if (st.ok()) {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.committed;
      ++stats_.empty_ws_commits;
    }
    return st;
  }

  QueueEntry entry;
  {
    // I.3.c-e: atomic validation phase.
    std::lock_guard<std::mutex> wslock(wsmutex_);
    if (ws_list_.ConflictsAfter(txn.cert, *ws)) {
      local.db->Abort(txn.db_txn);
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.validation_aborts;
      return Status::Conflict("validation failed");
    }
    entry.tid = ++next_tid_;
    entry.local_replica = txn.replica;
    entry.local_txn = txn.db_txn;
    entry.ws = ws;
    entry.signal =
        std::make_shared<std::pair<std::mutex, std::condition_variable>>();
    entry.outcome = std::make_shared<Status>();
    entry.done = std::make_shared<bool>(false);
    ws_list_.Append(entry.tid, ws);
    for (auto& replica : replicas_) {
      {
        std::lock_guard<std::mutex> qlock(replica->queue_mu);
        replica->tocommit_queue.push_back(entry);
      }
      replica->queue_cv.notify_all();
    }
  }

  // Step II runs on the committer threads; wait for the local one.
  {
    std::unique_lock<std::mutex> lock(entry.signal->first);
    entry.signal->second.wait(lock, [&] { return *entry.done; });
  }
  if (entry.outcome->ok()) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.committed;
  }
  return *entry.outcome;
}

void SrcaMiddleware::CommitterLoop(size_t replica_index) {
  Replica& r = *replicas_[replica_index];
  while (true) {
    QueueEntry entry;
    {
      std::unique_lock<std::mutex> lock(r.queue_mu);
      r.queue_cv.wait(lock, [&] {
        return shutdown_.load() || !r.tocommit_queue.empty();
      });
      if (shutdown_.load()) return;
      entry = r.tocommit_queue.front();
    }

    const bool is_local = entry.local_replica == replica_index;
    Status st;
    if (is_local) {
      // II.2-5: commit under dbmutex so concurrent begins order cleanly.
      std::lock_guard<std::mutex> dblock(r.dbmutex);
      st = r.db->Commit(entry.local_txn);
      r.lastcommitted_tid = entry.tid;
    } else {
      // II.1: apply the writeset in a fresh transaction, retrying on
      // deadlock with local transactions (paper §4.2).
      while (true) {
        auto apply_txn = r.db->Begin();
        st = r.db->ApplyWriteSet(apply_txn, *entry.ws);
        if (st.ok()) {
          std::lock_guard<std::mutex> dblock(r.dbmutex);
          st = r.db->Commit(apply_txn);
          if (st.ok()) r.lastcommitted_tid = entry.tid;
          break;
        }
        r.db->Abort(apply_txn);
        if (st.code() == StatusCode::kDeadlock ||
            st.code() == StatusCode::kConflict) {
          if (shutdown_.load()) return;
          std::this_thread::yield();
          continue;
        }
        break;  // unretryable
      }
    }
    if (!st.ok()) {
      SIREP_ELOG << "SRCA committer " << replica_index
                 << " failed to commit tid " << entry.tid << ": "
                 << st.ToString();
    }

    {
      std::lock_guard<std::mutex> lock(r.queue_mu);
      r.tocommit_queue.pop_front();
    }
    r.queue_cv.notify_all();

    if (is_local) {
      // II.6: return to client.
      std::lock_guard<std::mutex> lock(entry.signal->first);
      *entry.outcome = st;
      *entry.done = true;
      entry.signal->second.notify_all();
    }
  }
}

SrcaMiddleware::Stats SrcaMiddleware::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace sirep::middleware
