#ifndef SIREP_MIDDLEWARE_REPLICA_MW_H_
#define SIREP_MIDDLEWARE_REPLICA_MW_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/partition_map.h"
#include "common/status.h"
#include "engine/database.h"
#include "engine/query_result.h"
#include "gcs/group.h"
#include "middleware/apply_pipeline.h"
#include "middleware/global_txn_id.h"
#include "middleware/hole_tracker.h"
#include "middleware/messages.h"
#include "middleware/sharded_ws_index.h"
#include "middleware/tocommit_queue.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sirep::middleware {

/// Which replica-control variant to run (paper §4.3.3 / §6.3).
enum class ReplicaMode {
  /// Full SRCA-Rep: adjustments 1-3, provides 1-copy-SI.
  kSrcaRep,
  /// SRCA-Opt: adjustments 1-2 only. Starts/commits never synchronize, so
  /// commit orders may diverge across replicas under indirect conflicts —
  /// faster under update-intensive load, but only per-replica SI.
  kSrcaOpt,
};

struct ReplicaOptions {
  ReplicaMode mode = ReplicaMode::kSrcaRep;
  /// Validated writesets retained for online recovery donation (paper
  /// §5.4: "the middleware probably has to log writesets"). 0 disables
  /// the log; such a replica cannot act as a recovery donor.
  size_t ws_log_capacity = 1 << 20;
  /// Join in recovery mode: buffer deliveries and reject clients until
  /// Recover() completes. Used when restarting a crashed replica or
  /// adding a new one while the cluster keeps processing transactions.
  bool start_recovering = false;
  /// Cold-start seed after a full-cluster outage: join live immediately
  /// and adopt this tid as the already-validated prefix (the database
  /// under this replica holds every commit up to it). Online recovery
  /// needs a live donor, so when every replica is down the one holding
  /// the longest stable prefix — which, by in-order apply, contains
  /// every acknowledged commit — restarts with this set; everyone else
  /// then recovers from it normally (its empty writeset log forces a
  /// fresh full copy). 0 disables. Mutually exclusive with
  /// `start_recovering`.
  uint64_t bootstrap_prefix = 0;
  /// Width of the remote-apply pipeline (see ApplyPipeline): 1 selects
  /// the strict serial path, >1 a sharded worker pool applying
  /// non-conflicting writesets in parallel. Should be > 1 or blocked
  /// applies (waiting on local transactions' locks) serialize unrelated
  /// applies; local commits are never run here (the committing client's
  /// thread performs them), so the hidden-deadlock freedom of
  /// Adjustment 2 does not depend on this width. The SIREP_APPLY_THREADS
  /// environment variable, when set, overrides this value.
  size_t applier_threads = 8;
  /// Sliding window of retained validated writesets (see ShardedWsIndex).
  size_t ws_list_window = 65536;
  /// Hash-range shards of the validation index; probes and appends over
  /// disjoint shards never contend. Purely a concurrency knob — the
  /// validation verdicts are shard-count independent.
  size_t validation_shards = 16;
  /// Base deadline for a whole Recover() run. The effective deadline
  /// grows with the bytes actually received so a large full-copy
  /// transfer does not spuriously time out (see Recover()). The
  /// SIREP_RECOVERY_TIMEOUT_MS environment variable, when set,
  /// overrides this value.
  std::chrono::milliseconds recovery_timeout{30000};
  /// Donor silence longer than this counts as a donor fault: the
  /// recoverer abandons the transfer and re-requests from the next
  /// donor, resuming at its cursor. SIREP_RECOVERY_CHUNK_TIMEOUT_MS
  /// overrides.
  std::chrono::milliseconds recovery_chunk_timeout{2000};
  /// Rows (or log entries) per recovery chunk — the streaming unit of
  /// state transfer and the resume granularity within a table.
  /// SIREP_RECOVERY_CHUNK_ROWS overrides.
  size_t recovery_chunk_rows = 512;
  /// Recovery attempts (initial + retries across donors / re-anchors)
  /// before Recover() gives up with a retryable error.
  size_t recovery_max_attempts = 8;
  /// Buffered post-marker deliveries above this high-water mark trigger
  /// backpressure: the buffer is dropped and the transfer re-anchored at
  /// a fresh marker instead of growing without bound.
  /// SIREP_RECOVERY_BUFFER_HWM overrides.
  size_t recovery_buffer_high_water = 4096;
  /// Partial replication (null = full replication everywhere). All
  /// replicas of a cluster share one map (it models the cluster's
  /// partition-assignment config); `partition_slot` is this replica's
  /// stable slot in it, which determines the partitions it holds. A
  /// replica holding a partition applies its writesets; non-holders
  /// certify against writeset digests alone and keep only bookkeeping.
  std::shared_ptr<cluster::PartitionMap> partition_map;
  size_t partition_slot = 0;
};

/// Validation/commit outcome of a transaction as known at this replica.
enum class TxnOutcome { kUnknown, kCommitted, kAborted };

/// One SI-Rep middleware replica M^k (paper Fig. 3c / Fig. 4): runs in
/// front of exactly one database replica, executes local transactions
/// against it, multicasts writesets in total order, validates all
/// writesets in delivery order, and applies/commits them subject to the
/// conflict-ordering and hole rules.
///
/// Clients do not use this class directly; client::Connection (the
/// JDBC-like driver) talks to it and handles fail-over.
class SrcaRepReplica : public gcs::GroupListener {
 public:
  /// A client transaction local to this replica.
  struct TxnHandle {
    GlobalTxnId gid;
    storage::TransactionPtr db_txn;
    /// Commit-path stage trace, carried from BeginTxn through commit.
    std::shared_ptr<obs::TxnTrace> trace;
    bool valid() const { return gid.valid() && db_txn != nullptr; }
  };

  /// Legacy aggregate view of the replica's counters; the values now
  /// live in metrics() under the "mw." prefix and this struct is
  /// populated from them (kept so existing tests and benches compile).
  struct Stats {
    uint64_t committed = 0;
    uint64_t empty_ws_commits = 0;   ///< read-only fast path
    uint64_t local_val_aborts = 0;   ///< failed Fig.4 I.2.d
    uint64_t global_val_aborts = 0;  ///< failed Fig.4 II.2 (local txns)
    uint64_t remote_discards = 0;    ///< failed II.2 (remote txns)
    uint64_t apply_retries = 0;      ///< deadlock/conflict retries in III
    HoleTracker::Stats holes;
  };

  SrcaRepReplica(engine::Database* db, gcs::Group* group,
                 ReplicaOptions options = {});
  ~SrcaRepReplica() override;

  SrcaRepReplica(const SrcaRepReplica&) = delete;
  SrcaRepReplica& operator=(const SrcaRepReplica&) = delete;

  /// Joins the group. Must be called before any transaction.
  Status Start();

  gcs::MemberId member_id() const {
    return member_id_.load(std::memory_order_acquire);
  }
  engine::Database* db() const { return db_; }
  /// Effective options after environment overrides (SIREP_RECOVERY_*,
  /// see ReplicaOptions).
  const ReplicaOptions& options() const { return options_; }

  // ---- session API ----

  /// Starts a local transaction. Under SRCA-Rep this waits until the
  /// commit order has no holes (Adjustment 3; the paper issues a dummy
  /// statement to force an early, synchronized begin — we have an explicit
  /// begin instead).
  Result<TxnHandle> BeginTxn();

  /// Executes a statement of the transaction at the local DB replica.
  /// A transaction-failure status means the transaction was aborted
  /// inside the database (conflict/deadlock) — restart it.
  Result<engine::QueryResult> Execute(const TxnHandle& txn,
                                      const std::string& sql,
                                      const std::vector<sql::Value>& params =
                                          {});

  /// Runs the commit protocol: writeset extraction, local validation,
  /// total-order multicast, global validation, local commit. Blocks until
  /// the outcome is decided. kConflict => validation failed (transaction
  /// aborted); kUnavailable => this replica crashed mid-protocol (the
  /// driver runs in-doubt resolution elsewhere). `had_writes`, if
  /// non-null, reports whether a writeset was disseminated (false for the
  /// read-only fast path — such transactions exist only here and cannot
  /// be inquired about at other replicas).
  Status CommitTxn(const TxnHandle& txn, bool* had_writes = nullptr);

  /// Aborts a transaction that has not entered the commit protocol.
  Status RollbackTxn(const TxnHandle& txn);

  // ---- fail-over support (paper §5.4) ----

  /// Looks up the outcome of `gid`. If the outcome is not yet known, waits
  /// until either the writeset message arrives or the current view no
  /// longer contains `crashed_origin` — by uniform reliable delivery, one
  /// of the two must happen. When the outcome is kCommitted, additionally
  /// waits until the writeset is committed at *this* replica so the
  /// inquiring client will read its own writes here.
  TxnOutcome InquireOutcome(const GlobalTxnId& gid,
                            gcs::MemberId crashed_origin);

  // ---- fault injection ----

  /// Simulates the crash of this middleware/DB pair: leaves the group,
  /// fails all in-flight commits with kUnavailable, rejects future calls.
  void Crash();

  bool IsAlive() const { return !crashed_.load(std::memory_order_acquire); }

  /// Graceful stop (test teardown). Not a crash: no view change blame.
  void Shutdown();

  // ---- online recovery (extension; paper §5.4 / conclusion) ----

  /// True when live (not crashed, not still recovering): the discovery
  /// service only hands clients replicas for which this holds.
  bool IsAcceptingClients() const {
    return IsAlive() && !shutdown_.load(std::memory_order_acquire) &&
           accepting_.load(std::memory_order_acquire);
  }

  /// Catches this replica up while the rest of the cluster keeps
  /// committing ("online recovery"):
  ///  1. multicasts a recovery marker in total order;
  ///  2. the chosen donor snapshots its validation state exactly at the
  ///     marker and *streams* the payload (full-copy table dumps and/or
  ///     the writeset-log suffix after `from_tid`) in bounded chunks;
  ///  3. this replica applies chunks as they arrive, adopts the
  ///     validation state at the final chunk, drains the messages
  ///     buffered past the marker, and goes live.
  /// The transfer is resumable: if the donor crashes or stalls
  /// mid-stream, the request is re-multicast carrying a cursor (applied
  /// log prefix, finished tables) and any surviving replica takes over
  /// as donor without restarting from scratch. A `timeout` <= 0 selects
  /// options().recovery_timeout; either way the effective deadline
  /// scales up with the bytes received so large transfers are not cut
  /// short. Failure returns a retryable status (kUnavailable /
  /// kTimedOut) — never a hang — so callers can back off and re-enter.
  /// `from_tid` is the stable commit prefix of a restarting replica
  /// (StableCommitPrefix() of its previous incarnation), or 0 for a
  /// brand-new node whose schema has been created. Requires the replica
  /// to have been constructed with `start_recovering = true`.
  /// `allow_partial` (partial replication, whole-group outage): accept a
  /// donor that holds none/some of this replica's partitions — it serves
  /// bookkeeping (validation state + log) while this replica keeps its
  /// own rows for the unserved partitions. Only safe when this replica
  /// holds the longest stable prefix of its partition group, which the
  /// caller (cluster::Cluster::RestartReplica) establishes.
  Status Recover(uint64_t from_tid,
                 std::chrono::milliseconds timeout =
                     std::chrono::milliseconds(0),
                 bool allow_partial = false);

  /// Durable prefix a restarted incarnation can recover from: every
  /// validated tid <= this value has committed at this replica, and
  /// re-applying later writesets is idempotent.
  uint64_t StableCommitPrefix() const { return holes_.StablePrefix(); }

  /// Liveness/role summary for the /healthz endpoint.
  struct Health {
    std::string role;  ///< "live" | "recovering" | "shutdown" | "crashed"
    std::string mode;  ///< "srca-rep" | "srca-opt"
    gcs::MemberId member_id = gcs::kInvalidMember;
    uint64_t view_id = 0;
    size_t view_members = 0;
    uint64_t stable_prefix = 0;
    size_t tocommit_depth = 0;
    /// Partitions this replica holds; -1 under full replication (all).
    int64_t held_partitions = -1;
  };
  Health GetHealth() const;

  /// GetHealth() as a JSON object — the /healthz response body.
  std::string HealthJson() const;

  Stats stats() const;

  /// This replica's metrics registry: "mw.*" counters and the
  /// commit-path stage histograms ("mw.commit.stage.<stage>_us").
  obs::MetricsRegistry& metrics() { return registry_; }
  const obs::MetricsRegistry& metrics() const { return registry_; }

  /// This replica's black box: view changes, validation aborts (with
  /// the first conflicting key), tocommit high-water marks, crashes.
  /// Registered with obs::FlightRecorder::DumpAllText() for its
  /// lifetime.
  obs::FlightRecorder& flight_recorder() { return flight_; }
  const obs::FlightRecorder& flight_recorder() const { return flight_; }

  /// Validated transactions not yet committed at this replica (test and
  /// quiescence helper).
  size_t PendingQueueSize() const { return tocommit_queue_.size(); }

  /// Blocks until the tocommit queue drains (every validated writeset
  /// committed here), returning immediately if this replica crashed or
  /// shut down — its queue will never drain. Condition-variable based;
  /// see cluster::Cluster::Quiesce().
  void WaitForQueueDrain() {
    tocommit_queue_.WaitUntilEmpty([this] {
      return shutdown_.load(std::memory_order_acquire) || !IsAlive();
    });
  }

  /// Load metric for load-balanced discovery (paper conclusion:
  /// "load-balancing issues"): active local transactions plus the
  /// backlog of validated-but-uncommitted writesets.
  size_t CurrentLoad() const {
    std::lock_guard<std::mutex> lock(active_mu_);
    return active_txns_.size() + tocommit_queue_.size();
  }

  // ---- GroupListener (GCS delivery thread) ----
  void OnDeliver(const gcs::Message& message) override;
  void OnViewChange(const gcs::View& view) override;

 private:
  /// Result of global validation for a pending local commit.
  struct ValidationResult {
    enum class Kind { kValidated, kFailed, kCrashed } kind = Kind::kFailed;
    uint64_t tid = 0;
  };

  struct PendingLocal {
    storage::TransactionPtr db_txn;
    /// Shared with the committing client's TxnHandle so the delivery
    /// thread can close the multicast span and record validation time.
    std::shared_ptr<obs::TxnTrace> trace;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    ValidationResult result;
  };

  struct LogEntry {
    uint64_t tid = 0;
    GlobalTxnId gid;
    /// Null for DDL entries *and* for header-only entries a partial
    /// replica validated without holding the payload's partitions.
    std::shared_ptr<const storage::WriteSet> ws;
    std::string ddl;  ///< set for DDL entries
    /// Per-tuple certification digests and the partition mask (partial
    /// replication). Populated for every writeset entry so a donated log
    /// reproduces identical validation state at the recoverer even when
    /// ws is null.
    std::vector<uint64_t> digests;
    uint64_t partition_mask = 0;
  };

  /// One table's committed contents in a full-state transfer. The schema
  /// rides along so a recoverer that never saw the replicated CREATE
  /// TABLE can create it.
  struct TableDump {
    std::string table;
    sql::Schema schema;
    std::vector<sql::Row> rows;
  };

  /// Resume point of a chunked state transfer, multicast back to the
  /// group when the recoverer re-requests after a donor fault so the
  /// next donor continues instead of restarting. Covers both transfer
  /// phases: `applied_tid` for log replay, `tables_done` +
  /// `full_copy_base` for an in-progress full copy. Resume granularity
  /// for the copy is a whole table — row positions within a table are
  /// donor-snapshot-specific and not comparable across donors, finished
  /// tables are (idempotent full-row writesets reconcile the rest).
  struct RecoveryCursor {
    uint64_t applied_tid = 0;  ///< every log tid <= this is applied here
    bool full_copy_started = false;
    uint64_t full_copy_base = 0;  ///< stable prefix of the copy's donor
    std::vector<std::string> tables_done;  ///< fully received + swept
  };

  /// One bounded unit of the recovery stream, tagged with the transfer
  /// id so a chunk from an abandoned attempt is discarded instead of
  /// corrupting the next one. At most one section (meta / table rows /
  /// log entries) is populated per chunk.
  struct RecoveryChunk {
    Status status;  ///< non-OK chunk aborts this donation
    uint64_t transfer_id = 0;
    uint32_t index = 0;        ///< donor-side sequence within the transfer
    bool final_chunk = false;  ///< transfer complete after this chunk

    // Meta section (first chunk of every donation): the validation state
    // snapshotted at the marker, and the shape of what follows.
    bool has_meta = false;
    uint64_t lastvalidated = 0;
    std::vector<WsWindowEntry> ws_window;
    /// Partitions whose rows this donation actually carries (~0 when the
    /// donor covers everything the requester asked for). Rows outside it
    /// come from log bookkeeping only; the requester must not delete-sweep
    /// them.
    uint64_t served_mask = ~0ull;
    bool full_copy = false;  ///< table dumps follow before the log
    /// The cursor's partial copy is unusable (this donor's log does not
    /// reach its base): recoverer must drop tables_done and start over.
    bool full_copy_restart = false;
    uint64_t full_copy_base = 0;

    // Table-rows section (full copy only).
    std::string table;
    sql::Schema schema;
    bool table_begin = false;     ///< first chunk of this table
    bool table_complete = false;  ///< last chunk: run the delete-sweep
    std::vector<sql::Row> rows;

    // Log-suffix section.
    std::vector<LogEntry> log;

    size_t approx_bytes = 0;  ///< payload estimate (metrics + deadline)
  };

  /// Bounded chunk queue between the donor's streamer thread and the
  /// recoverer. Like the request it rides the in-process stash, so it
  /// works on every transport (all replicas share the process).
  struct RecoveryChannel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<RecoveryChunk> chunks;
    size_t capacity = 4;     ///< producer backpressure bound
    bool closed = false;     ///< donor finished, refused, or died
    bool abandoned = false;  ///< recoverer moved on; streamer must quit
  };
  struct RecoveryRequest {
    gcs::MemberId requester = gcs::kInvalidMember;
    gcs::MemberId donor = gcs::kInvalidMember;
    uint64_t from_tid = 0;
    uint64_t transfer_id = 0;
    /// Partitions the requester needs rows for (its held mask; 0 = all).
    /// A donor that holds none of them refuses; one that holds a subset
    /// serves it only when `allow_partial` (whole-group-outage
    /// bookkeeping recovery — the requester keeps its own rows).
    uint64_t needed_mask = 0;
    bool allow_partial = false;
    RecoveryCursor cursor;
    std::shared_ptr<RecoveryChannel> channel;
  };

  /// Donor-side donation plan, snapshotted under wsmutex_ at the marker
  /// point; a streamer thread materializes it into chunks off the
  /// delivery thread (the dump transaction pins the marker-consistent
  /// MVCC snapshot, so lazy table scans still observe marker state).
  struct DonorPlan {
    uint64_t transfer_id = 0;
    uint64_t lastvalidated = 0;
    std::vector<WsWindowEntry> ws_window;
    uint64_t served_mask = ~0ull;  ///< row filter for the table dumps
    std::vector<LogEntry> log_suffix;
    bool full_copy = false;
    bool full_copy_restart = false;
    uint64_t full_copy_base = 0;
    std::vector<std::string> tables;  ///< tables still to dump
    storage::TransactionPtr dump_txn;
    std::shared_ptr<RecoveryChannel> channel;
  };

  /// Recoverer-side transfer state surviving donor switches.
  struct RecoveryProgress {
    RecoveryCursor cursor;
    bool have_meta = false;
    uint64_t lastvalidated = 0;
    std::vector<WsWindowEntry> ws_window;
    uint64_t served_mask = ~0ull;  ///< from the current donor's meta
    /// Log entries received so far, keyed by tid (identical across
    /// donors by the total order, so accumulating over switches is
    /// safe); becomes the adopted ws_log_.
    std::map<uint64_t, LogEntry> adopted_log;
    // Import state of the table currently streaming in.
    bool table_active = false;
    std::string table;
    std::set<sql::Key> leftover_keys;  ///< local keys the dump lacks so far
  };

  void RecordOutcome(const GlobalTxnId& gid, bool committed);
  void MarkLocallyCommitted(const GlobalTxnId& gid);

  /// Steps II/III trigger for one delivered writeset message (the body of
  /// OnDeliver in live mode; also used when draining the recovery
  /// buffer).
  void ProcessWriteSet(const gcs::Message& message);

  /// Executes a replicated DDL statement at its total-order position.
  void ProcessDdl(const gcs::Message& message);

  /// Client-side DDL protocol: multicast + wait for local execution.
  Status ReplicateDdl(const std::string& sql);

  /// Donor/requester handling of a recovery marker.
  void HandleRecoveryRequest(const gcs::Message& message);

  /// Donor streamer-thread body: materializes `plan` into bounded
  /// chunks on the channel, honoring backpressure, abandonment, and the
  /// mw.recovery.* failpoints.
  void StreamRecoveryChunks(std::shared_ptr<DonorPlan> plan);

  /// Recoverer side: applies one received chunk (meta adoption, table
  /// rows as idempotent upserts + delete-sweep, log-suffix replay) and
  /// advances the cursor.
  Status ApplyRecoveryChunk(const RecoveryChunk& chunk,
                            RecoveryProgress* progress);

  /// Replays one donated log entry (writeset or DDL) into the local
  /// database; idempotent against what any previous incarnation or
  /// donor already applied.
  Status ApplyRecoveryLogEntry(const LogEntry& entry);

  /// Joins finished and in-flight donor streamer threads.
  void JoinStreamers();

  /// Dispatches every queue entry that became eligible (Adjustment 2).
  void ScheduleAppliers();

  /// Applies + commits one remote writeset, retrying on deadlock.
  void ApplyRemote(ToCommitEntry entry);

  engine::Database* const db_;
  gcs::Group* const group_;
  const ReplicaOptions options_;
  // Atomic: written once by Start() after Join() returns, but read by
  // the delivery thread (OnFrame/OnViewChange) from the moment Join()
  // spawns it.
  std::atomic<gcs::MemberId> member_id_{gcs::kInvalidMember};

  std::atomic<bool> crashed_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> accepting_{true};
  std::atomic<uint64_t> next_local_seq_{0};

  // Recovery buffering: while kBuffering, delivered writesets after the
  // marker are queued here and replayed by Recover()'s thread; the flip
  // to kLive happens under buffer_mu_ once the buffer drains. The fence
  // only arms for the marker of the *current* transfer attempt
  // (current_transfer_id_) — a marker from an abandoned attempt
  // delivered late must not re-arm it, or pre-marker messages of the
  // live attempt would be double-validated after adoption. When the
  // buffer crosses recovery_buffer_high_water while spills are enabled,
  // it is dropped wholesale (fence cleared, buffer_spilled_ set) and
  // the recoverer re-anchors the transfer at a fresh marker.
  enum class DeliveryMode { kLive, kBuffering };
  std::mutex buffer_mu_;
  std::condition_variable buffer_cv_;
  DeliveryMode delivery_mode_ = DeliveryMode::kLive;
  bool fence_seen_ = false;
  uint64_t current_transfer_id_ = 0;
  bool buffer_spilled_ = false;
  bool spill_enabled_ = true;
  /// Effective high-water mark of buffered_. Seeded from
  /// options().recovery_buffer_high_water at each Recover() entry and
  /// doubled on every spill, so re-anchoring converges even when live
  /// deliveries outpace the transfer (escalating backpressure).
  size_t buffer_hwm_ = 1;
  std::vector<gcs::Message> buffered_;

  /// Transfer-id generator (recoverer side; unique per member via the
  /// member-id high bits).
  std::atomic<uint64_t> transfer_seq_{0};

  /// Donor streamer threads, joined on Shutdown()/destruction.
  std::mutex streamers_mu_;
  std::vector<std::thread> streamers_;

  // Fig. 4 state. wsmutex_ protects lastvalidated_tid_ and ws_index_,
  // and serializes validation (steps I.2.c-f and II). ws_index_'s own
  // per-shard locks additionally allow lock-free-of-wsmutex_ readers
  // (gauges) and shard-parallel probes.
  std::mutex wsmutex_;
  uint64_t lastvalidated_tid_ = 0;
  ShardedWsIndex ws_index_;
  std::deque<LogEntry> ws_log_;  // guarded by wsmutex_

  ToCommitQueue tocommit_queue_;
  HoleTracker holes_;
  /// Remote-apply worker pool (serial when width 1); entries handed to
  /// it are pairwise non-conflicting by the ToCommitQueue's dispatch
  /// rule, so hole_tracker ordering is the only visibility constraint.
  std::unique_ptr<ApplyPipeline> pipeline_;
  /// Remote applies currently inside ApplyRemote, sampled into the
  /// kApplyParallelism stage histogram at each apply start.
  std::atomic<int64_t> applies_inflight_{0};

  std::mutex pending_mu_;
  std::unordered_map<GlobalTxnId, std::shared_ptr<PendingLocal>,
                     GlobalTxnIdHash>
      pending_;

  struct PendingDdl {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status outcome;
  };
  std::mutex pending_ddl_mu_;
  std::unordered_map<GlobalTxnId, std::shared_ptr<PendingDdl>,
                     GlobalTxnIdHash>
      pending_ddl_;

  mutable std::mutex active_mu_;
  std::unordered_set<GlobalTxnId, GlobalTxnIdHash> active_txns_;

  struct OutcomeEntry {
    bool committed = false;
    bool locally_committed = false;
  };
  mutable std::mutex outcomes_mu_;
  std::condition_variable outcomes_cv_;
  std::unordered_map<GlobalTxnId, OutcomeEntry, GlobalTxnIdHash> outcomes_;
  gcs::View view_;

  // Observability: counters and stage histograms live in registry_;
  // the pointers below are resolved once in the constructor and are the
  // only handles the hot path touches (lock-free recording).
  obs::MetricsRegistry registry_;
  obs::StageHistograms stage_hists_;
  obs::Counter* c_committed_ = nullptr;
  obs::Counter* c_empty_ws_commits_ = nullptr;
  obs::Counter* c_local_val_aborts_ = nullptr;
  obs::Counter* c_global_val_aborts_ = nullptr;
  obs::Counter* c_remote_discards_ = nullptr;
  obs::Counter* c_apply_retries_ = nullptr;
  obs::Gauge* g_tocommit_depth_ = nullptr;
  obs::Gauge* g_ws_list_size_ = nullptr;
  obs::Gauge* g_holes_outstanding_ = nullptr;
  obs::Gauge* g_clock_offset_ns_ = nullptr;
  // Recovery-stage instrumentation ("mw.recovery.*"): donor side
  // (chunks/bytes sent), recoverer side (chunks/bytes received, retries,
  // donor switches, buffer spills, live buffered-message depth).
  obs::Counter* c_rec_chunks_sent_ = nullptr;
  obs::Counter* c_rec_bytes_sent_ = nullptr;
  obs::Counter* c_rec_chunks_received_ = nullptr;
  obs::Counter* c_rec_bytes_received_ = nullptr;
  obs::Counter* c_rec_retries_ = nullptr;
  obs::Counter* c_rec_donor_switches_ = nullptr;
  obs::Counter* c_rec_buffer_spills_ = nullptr;
  obs::Gauge* g_rec_buffered_msgs_ = nullptr;
  // Partial replication ("mw.partial.*"): header-only certifications
  // committed without a payload, sub-writeset applies at partially-held
  // replicas, commit attempts rejected because this replica holds none
  // of the writeset's partitions, payloads the GCS stripped on our
  // behalf, and the number of partitions this replica holds.
  obs::Counter* c_partial_header_commits_ = nullptr;
  obs::Counter* c_partial_filtered_applies_ = nullptr;
  obs::Counter* c_partial_misroutes_ = nullptr;
  obs::Counter* c_partial_stripped_sends_ = nullptr;
  obs::Gauge* g_partial_held_ = nullptr;

  /// Per-replica black box (see flight_recorder()).
  obs::FlightRecorder flight_{1024};
  /// High-water mark of the tocommit queue depth; crossings are recorded
  /// as kQueueHighWater flight events (doubling steps only, so a deep
  /// backlog does not flood the ring).
  std::atomic<uint64_t> queue_high_water_{0};
  /// Minimum observed (local arrival - origin send) over all traced
  /// remote writesets: the NTP-style lower bound used as this replica's
  /// clock-offset estimate for kDeliverySkew. INT64_MAX until the first
  /// traced delivery.
  std::atomic<int64_t> clock_offset_ns_{
      std::numeric_limits<int64_t>::max()};
};

}  // namespace sirep::middleware

#endif  // SIREP_MIDDLEWARE_REPLICA_MW_H_
