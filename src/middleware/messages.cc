#include "middleware/messages.h"

#include "sql/serde.h"

namespace sirep::middleware {

namespace {

Status DecodeHeader(const std::string& in, size_t* pos, GlobalTxnId* gid,
                    uint8_t* version_out) {
  if (*pos >= in.size()) {
    return Status::InvalidArgument("truncated message: missing version");
  }
  const uint8_t version = static_cast<uint8_t>(in[(*pos)++]);
  if (version < 1 || version > kMessageWireVersion) {
    return Status::InvalidArgument("unsupported message version " +
                                   std::to_string(version));
  }
  *version_out = version;
  SIREP_RETURN_IF_ERROR(sql::DecodeU32(in, pos, &gid->replica));
  SIREP_RETURN_IF_ERROR(sql::DecodeU64(in, pos, &gid->seq));
  return Status::OK();
}

}  // namespace

void EncodeWriteSetMessage(const WriteSetMessage& msg, std::string* out) {
  out->push_back(static_cast<char>(kMessageWireVersion));
  sql::EncodeU32(msg.gid.replica, out);
  sql::EncodeU64(msg.gid.seq, out);
  sql::EncodeU64(msg.cert, out);
  sql::EncodeU64(msg.trace.trace_id, out);
  sql::EncodeU32(msg.trace.origin_replica, out);
  sql::EncodeU64(msg.trace.origin_mono_ns, out);
  sql::EncodeU64(msg.trace.origin_wall_ns, out);
  sql::EncodeU64(msg.epoch, out);
  sql::EncodeU64(msg.partition_mask, out);
  out->push_back(static_cast<char>(msg.header_only ? 1 : 0));
  if (msg.header_only) {
    sql::EncodeU32(static_cast<uint32_t>(msg.digests.size()), out);
    for (const uint64_t digest : msg.digests) sql::EncodeU64(digest, out);
    return;
  }
  static const storage::WriteSet kEmpty;
  storage::EncodeWriteSet(msg.ws != nullptr ? *msg.ws : kEmpty, out);
}

Status DecodeWriteSetMessage(const std::string& in, WriteSetMessage* out) {
  size_t pos = 0;
  uint8_t version = 0;
  SIREP_RETURN_IF_ERROR(DecodeHeader(in, &pos, &out->gid, &version));
  SIREP_RETURN_IF_ERROR(sql::DecodeU64(in, &pos, &out->cert));
  out->trace = obs::TraceContext{};
  if (version >= 2) {
    SIREP_RETURN_IF_ERROR(sql::DecodeU64(in, &pos, &out->trace.trace_id));
    SIREP_RETURN_IF_ERROR(
        sql::DecodeU32(in, &pos, &out->trace.origin_replica));
    SIREP_RETURN_IF_ERROR(
        sql::DecodeU64(in, &pos, &out->trace.origin_mono_ns));
    SIREP_RETURN_IF_ERROR(
        sql::DecodeU64(in, &pos, &out->trace.origin_wall_ns));
  }
  out->epoch = 0;
  out->partition_mask = 0;
  out->header_only = false;
  out->digests.clear();
  if (version >= 3) {
    SIREP_RETURN_IF_ERROR(sql::DecodeU64(in, &pos, &out->epoch));
    SIREP_RETURN_IF_ERROR(sql::DecodeU64(in, &pos, &out->partition_mask));
    if (pos >= in.size()) {
      return Status::InvalidArgument("truncated message: missing flags");
    }
    const uint8_t flags = static_cast<uint8_t>(in[pos++]);
    if ((flags & ~uint8_t{1}) != 0) {
      return Status::InvalidArgument("unsupported writeset message flags");
    }
    out->header_only = (flags & 1) != 0;
  }
  if (out->header_only) {
    uint32_t count = 0;
    SIREP_RETURN_IF_ERROR(sql::DecodeU32(in, &pos, &count));
    if (static_cast<size_t>(count) * 8 > in.size() - pos) {
      return Status::InvalidArgument("digest count exceeds message size");
    }
    out->digests.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t digest = 0;
      SIREP_RETURN_IF_ERROR(sql::DecodeU64(in, &pos, &digest));
      out->digests.push_back(digest);
    }
    out->ws = nullptr;
    if (pos != in.size()) {
      return Status::InvalidArgument("trailing bytes after writeset message");
    }
    return Status::OK();
  }
  auto ws = std::make_shared<storage::WriteSet>();
  SIREP_RETURN_IF_ERROR(storage::DecodeWriteSet(in, &pos, ws.get()));
  if (pos != in.size()) {
    return Status::InvalidArgument("trailing bytes after writeset message");
  }
  out->ws = std::move(ws);
  return Status::OK();
}

void EncodeDdlMessage(const DdlMessage& msg, std::string* out) {
  out->push_back(static_cast<char>(kMessageWireVersion));
  sql::EncodeU32(msg.gid.replica, out);
  sql::EncodeU64(msg.gid.seq, out);
  sql::EncodeString(msg.sql, out);
}

Status DecodeDdlMessage(const std::string& in, DdlMessage* out) {
  size_t pos = 0;
  uint8_t version = 0;
  SIREP_RETURN_IF_ERROR(DecodeHeader(in, &pos, &out->gid, &version));
  SIREP_RETURN_IF_ERROR(sql::DecodeString(in, &pos, &out->sql));
  if (pos != in.size()) {
    return Status::InvalidArgument("trailing bytes after ddl message");
  }
  return Status::OK();
}

void RegisterMessageCodecs(gcs::Group* group) {
  gcs::PayloadCodec writeset_codec;
  writeset_codec.encode = [](const void* payload, std::string* out) {
    EncodeWriteSetMessage(*static_cast<const WriteSetMessage*>(payload), out);
  };
  writeset_codec.decode =
      [](const std::string& in) -> Result<std::shared_ptr<const void>> {
    auto msg = std::make_shared<WriteSetMessage>();
    SIREP_RETURN_IF_ERROR(DecodeWriteSetMessage(in, msg.get()));
    return std::shared_ptr<const void>(std::move(msg));
  };
  group->RegisterCodec(kWriteSetMessageType, std::move(writeset_codec));

  gcs::PayloadCodec ddl_codec;
  ddl_codec.encode = [](const void* payload, std::string* out) {
    EncodeDdlMessage(*static_cast<const DdlMessage*>(payload), out);
  };
  ddl_codec.decode =
      [](const std::string& in) -> Result<std::shared_ptr<const void>> {
    auto msg = std::make_shared<DdlMessage>();
    SIREP_RETURN_IF_ERROR(DecodeDdlMessage(in, msg.get()));
    return std::shared_ptr<const void>(std::move(msg));
  };
  group->RegisterCodec(kDdlMessageType, std::move(ddl_codec));
}

}  // namespace sirep::middleware
