#ifndef SIREP_MIDDLEWARE_TABLE_LOCKS_H_
#define SIREP_MIDDLEWARE_TABLE_LOCKS_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sirep::middleware {

enum class TableLockMode { kShared, kExclusive };

/// Table-granularity lock manager used by the baseline protocol of the
/// paper's reference [20] (Jiménez-Peris et al., ICDCS 2002). Lock
/// *requests* covering all of a transaction's declared tables are enqueued
/// atomically; a request is granted once every incompatible predecessor
/// (per table) has released. Because update requests are enqueued in
/// total-order delivery sequence — the same sequence at every replica —
/// and each request enqueues at all its tables atomically, the wait-for
/// relation follows a single global order and is deadlock-free.
class TableLockManager {
 public:
  using TicketId = uint64_t;

  /// Atomically enqueues a request for all `tables` in `mode`. Returns a
  /// ticket to wait on.
  TicketId Request(const std::vector<std::string>& tables,
                   TableLockMode mode);

  /// Blocks until the ticket's locks are all granted.
  void Wait(TicketId ticket);

  /// True once granted (non-blocking probe, for tests).
  bool IsGranted(TicketId ticket) const;

  /// Releases the ticket's locks and wakes waiters.
  void Release(TicketId ticket);

  /// Number of requests that had to wait (lock contention statistic —
  /// the reason the baseline saturates early in Fig. 7).
  uint64_t contended_requests() const;

 private:
  struct Waiter {
    TicketId id;
    TableLockMode mode;
  };

  /// True if every predecessor of `ticket` in every queue it sits in is
  /// compatible. Caller holds mu_.
  bool GrantedLocked(TicketId ticket) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::vector<Waiter>> queues_;
  std::map<TicketId, std::vector<std::string>> tickets_;
  std::map<TicketId, TableLockMode> modes_;
  TicketId next_ticket_ = 0;
  uint64_t contended_ = 0;
};

}  // namespace sirep::middleware

#endif  // SIREP_MIDDLEWARE_TABLE_LOCKS_H_
