#ifndef SIREP_MIDDLEWARE_WS_LIST_H_
#define SIREP_MIDDLEWARE_WS_LIST_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "storage/write_set.h"

namespace sirep::middleware {

/// The list of validated writesets (`ws_list` in the paper's Fig. 1 and
/// Fig. 4), ordered by validation id (tid). Validation of transaction Ti
/// checks whether any Tj with Ti.cert < Tj.tid has a writeset overlapping
/// Ti's.
///
/// Not internally synchronized: the caller serializes access under its
/// `wsmutex`, exactly as in the paper's pseudo-code.
///
/// Entries are pruned by a sliding window to bound memory. Because a
/// validation request's cert normally lags current tids by at most the
/// in-flight multicast depth (a few hundred), a generous window never
/// affects results; if a cert ever falls below the window the caller must
/// abort conservatively (see MinRetainedTid()).
///
/// This is the literal O(window-suffix x writeset) formulation, kept for
/// the reference SRCA middleware and as the oracle in differential
/// tests; SrcaRepReplica's hot path uses the decision-equivalent
/// ShardedWsIndex (sharded_ws_index.h), whose probes are O(writeset).
class WsList {
 public:
  explicit WsList(size_t max_entries = 65536) : max_entries_(max_entries) {}

  void Append(uint64_t tid, std::shared_ptr<const storage::WriteSet> ws) {
    entries_.push_back(Entry{tid, std::move(ws)});
    while (entries_.size() > max_entries_) entries_.pop_front();
  }

  /// True iff some validated Tj with tid > cert conflicts with `ws`.
  /// `first_conflict`, if non-null, receives one conflicting tuple (the
  /// flight recorder tags abort verdicts with it).
  bool ConflictsAfter(uint64_t cert, const storage::WriteSet& ws,
                      storage::TupleId* first_conflict = nullptr) const {
    // Entries are tid-ordered; binary-search the first tid > cert.
    size_t lo = 0, hi = entries_.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (entries_[mid].tid > cert) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    for (size_t i = lo; i < entries_.size(); ++i) {
      for (const auto& we : ws.entries()) {
        if (entries_[i].ws->Contains(we.tuple)) {
          if (first_conflict != nullptr) *first_conflict = we.tuple;
          return true;
        }
      }
    }
    return false;
  }

  /// Oldest tid still retained; a validation with cert < MinRetainedTid()-1
  /// cannot be decided exactly and must abort conservatively.
  uint64_t MinRetainedTid() const {
    return entries_.empty() ? 0 : entries_.front().tid;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// State transfer for online recovery: export the retained window...
  std::vector<std::pair<uint64_t, std::shared_ptr<const storage::WriteSet>>>
  Snapshot() const {
    std::vector<std::pair<uint64_t, std::shared_ptr<const storage::WriteSet>>>
        out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.emplace_back(e.tid, e.ws);
    return out;
  }

  /// ...and adopt a donor's window verbatim (replaces current content),
  /// so the recovering replica's validation decisions match the donor's.
  void Load(
      const std::vector<
          std::pair<uint64_t, std::shared_ptr<const storage::WriteSet>>>&
          snapshot) {
    entries_.clear();
    for (const auto& [tid, ws] : snapshot) Append(tid, ws);
  }

 private:
  struct Entry {
    uint64_t tid;
    std::shared_ptr<const storage::WriteSet> ws;
  };
  size_t max_entries_;
  std::deque<Entry> entries_;
};

}  // namespace sirep::middleware

#endif  // SIREP_MIDDLEWARE_WS_LIST_H_
