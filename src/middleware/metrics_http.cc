#include "middleware/metrics_http.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/logging.h"
#include "gcs/socket_util.h"

namespace sirep::middleware {

namespace {

constexpr size_t kMaxRequestBytes = 8192;

std::string StatusLine(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.0 200 OK\r\n";
    case 404:
      return "HTTP/1.0 404 Not Found\r\n";
    default:
      return "HTTP/1.0 400 Bad Request\r\n";
  }
}

std::string MakeResponse(int code, const std::string& content_type,
                         const std::string& body) {
  std::string out = StatusLine(code);
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void MetricsHttpServer::AddEndpoint(const std::string& path,
                                    const std::string& content_type,
                                    Handler handler) {
  endpoints_[path] = Endpoint{content_type, std::move(handler)};
}

Status MetricsHttpServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("metrics server already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("metrics server: cannot open socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    // The requested port can be transiently unbindable — most commonly a
    // predecessor incarnation's socket lingering in TIME_WAIT across a
    // replica restart (SO_REUSEADDR covers TIME_WAIT but not a listener
    // that has not fully closed yet, nor an unrelated squatter). Fall
    // back to an ephemeral port rather than failing the restart: the
    // caller reads the actual port from port() either way.
    if (port != 0) {
      SIREP_WLOG << "metrics server: cannot bind 127.0.0.1:" << port
                 << "; retrying on an ephemeral port";
      addr.sin_port = 0;
      if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        port = 0;
      }
    }
    if (port != 0) {
      ::close(fd);
      return Status::Internal("metrics server: cannot bind 127.0.0.1:" +
                              std::to_string(port));
    }
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::Internal("metrics server: listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return Status::Internal("metrics server: getsockname failed");
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  SIREP_DLOG << "metrics server listening on 127.0.0.1:" << port_;
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Wake the accept loop out of poll/accept.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void MetricsHttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int n = ::poll(&pfd, 1, 100);
    if (n <= 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    gcs::net::ConfigureSocket(conn, std::chrono::milliseconds(2000));
    ServeConnection(conn);
    ::close(conn);
  }
}

void MetricsHttpServer::ServeConnection(int fd) {
  // Read until the end of the request head (or a bounded prefix of it —
  // only the request line matters here).
  std::string request;
  char chunk[2048];
  while (request.find("\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
        continue;
      return;
    }
    request.append(chunk, static_cast<size_t>(n));
  }
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;
  const std::string line = request.substr(0, line_end);
  // "GET <path> HTTP/1.x"
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.substr(0, sp1) != "GET") {
    gcs::net::WriteAll(fd, MakeResponse(400, "text/plain", "bad request\n"));
    return;
  }
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  auto it = endpoints_.find(path);
  if (it == endpoints_.end()) {
    gcs::net::WriteAll(fd, MakeResponse(404, "text/plain", "not found\n"));
    return;
  }
  gcs::net::WriteAll(
      fd, MakeResponse(200, it->second.content_type, it->second.handler()));
}

}  // namespace sirep::middleware
