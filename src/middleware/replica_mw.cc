#include "middleware/replica_mw.h"

#include <algorithm>
#include <set>
#include <thread>

#include "common/failpoint.h"
#include "common/logging.h"

namespace sirep::middleware {

SrcaRepReplica::SrcaRepReplica(engine::Database* db, gcs::Group* group,
                               ReplicaOptions options)
    : db_(db),
      group_(group),
      options_(options),
      ws_index_(options.ws_list_window, options.validation_shards),
      holes_(options.mode == ReplicaMode::kSrcaRep) {
  stage_hists_ = obs::StageHistograms::FromRegistry(&registry_);
  // The pipeline's workers only run entries handed to Dispatch(), and
  // nothing dispatches before Start() joins the group — constructing it
  // here (before the gauges below resolve) is safe.
  pipeline_ = ApplyPipeline::Create(
      ApplyPipeline::ThreadsFromEnv(options_.applier_threads),
      [this](ToCommitEntry entry) { ApplyRemote(std::move(entry)); },
      &registry_);
  c_committed_ = registry_.GetCounter("mw.committed");
  c_empty_ws_commits_ = registry_.GetCounter("mw.empty_ws_commits");
  c_local_val_aborts_ = registry_.GetCounter("mw.local_val_aborts");
  c_global_val_aborts_ = registry_.GetCounter("mw.global_val_aborts");
  c_remote_discards_ = registry_.GetCounter("mw.remote_discards");
  c_apply_retries_ = registry_.GetCounter("mw.apply_retries");
  g_tocommit_depth_ = registry_.GetGauge("mw.tocommit.queue_depth");
  g_ws_list_size_ = registry_.GetGauge("mw.wslist.size");
  g_holes_outstanding_ = registry_.GetGauge("mw.holes.outstanding");
  g_clock_offset_ns_ = registry_.GetGauge("mw.clock.offset_estimate_ns");
  holes_.SetWaitHistogram(
      registry_.GetLatencyHistogram("mw.begin.hole_wait_us"));
  if (options_.start_recovering) {
    delivery_mode_ = DeliveryMode::kBuffering;
    accepting_.store(false, std::memory_order_release);
  }
}

SrcaRepReplica::~SrcaRepReplica() { Shutdown(); }

Status SrcaRepReplica::Start() {
  // Byte-shipping transports (TCP sequencer) need these to serialize our
  // payloads; on the in-process transport they are simply never invoked.
  RegisterMessageCodecs(group_);
  // Install the hole-gate listener BEFORE joining: Join() spawns the
  // delivery thread, which may start applying frames (and touching the
  // gate) immediately.
  // Re-run the dispatch scan whenever the hole gate may have opened
  // (a commit, a discard, or a waiting start proceeding).
  holes_.SetChangeListener([this] { ScheduleAppliers(); });
  const gcs::MemberId id = group_->Join(this);
  if (id == gcs::kInvalidMember) {
    return Status::Unavailable("group is shut down");
  }
  // Atomic store: the delivery thread is already running and reads the
  // member id on every frame/view. Until this store lands it sees
  // kInvalidMember, which is benign — nothing in the stream can carry
  // our id before we have multicast anything.
  member_id_.store(id, std::memory_order_release);
  return Status::OK();
}

Result<SrcaRepReplica::TxnHandle> SrcaRepReplica::BeginTxn() {
  if (!IsAlive()) return Status::Unavailable("replica crashed");
  if (!IsAcceptingClients()) {
    return Status::Unavailable("replica is recovering");
  }
  TxnHandle handle;
  handle.gid.replica = member_id();
  handle.gid.seq = next_local_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  handle.trace = std::make_shared<obs::TxnTrace>();
  if (SIREP_LOG_ENABLED(LogLevel::kDebug)) {
    handle.trace->SetId(handle.gid.ToString());
  }
  // Adjustment 3: a local transaction only starts when the commit order
  // has no holes; the begin is atomic with that check.
  handle.db_txn = holes_.RunStart([&] { return db_->Begin(); });
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    active_txns_.insert(handle.gid);
  }
  return handle;
}

Result<engine::QueryResult> SrcaRepReplica::Execute(
    const TxnHandle& txn, const std::string& sql,
    const std::vector<sql::Value>& params) {
  if (!IsAlive()) return Status::Unavailable("replica crashed");
  if (!txn.valid()) return Status::InvalidArgument("invalid transaction");
  // DDL replicates through the total order so every replica's schema
  // changes at the same logical position (it is not transactional: like
  // the paper's PostgreSQL setup, schema changes take effect immediately
  // and are not rolled back with the surrounding transaction).
  auto parsed = db_->Prepare(sql);
  if (!parsed.ok()) return parsed.status();
  const auto kind = parsed.value()->kind;
  if (kind == sql::StatementKind::kCreateTable ||
      kind == sql::StatementKind::kCreateIndex) {
    SIREP_RETURN_IF_ERROR(ReplicateDdl(sql));
    return engine::QueryResult{};
  }
  if (txn.trace != nullptr) txn.trace->Begin(obs::Stage::kExecute);
  auto result = db_->Execute(txn.db_txn, sql, params);
  if (txn.trace != nullptr) txn.trace->End(obs::Stage::kExecute);
  return result;
}

Status SrcaRepReplica::ReplicateDdl(const std::string& sql) {
  GlobalTxnId gid;
  gid.replica = member_id();
  gid.seq = next_local_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto pending = std::make_shared<PendingDdl>();
  {
    std::lock_guard<std::mutex> lock(pending_ddl_mu_);
    pending_ddl_[gid] = pending;
  }
  auto payload =
      std::make_shared<const DdlMessage>(DdlMessage{gid, sql});
  Status mc = group_->Multicast(member_id(), kDdlMessageType, payload);
  if (!mc.ok()) {
    std::lock_guard<std::mutex> lock(pending_ddl_mu_);
    pending_ddl_.erase(gid);
    return mc;
  }
  std::unique_lock<std::mutex> lock(pending->mu);
  pending->cv.wait(lock, [&] {
    return pending->done || !IsAlive() ||
           shutdown_.load(std::memory_order_acquire);
  });
  return pending->done ? pending->outcome
                       : Status::Unavailable("replica crashed during DDL");
}

void SrcaRepReplica::ProcessDdl(const gcs::Message& message) {
  const auto* msg = message.As<DdlMessage>();
  Status outcome;
  {
    // Serialized with validation under wsmutex: the DDL takes effect at a
    // single, identical position in every replica's schedule, and gets a
    // tid slot so recovery replay preserves the interleaving.
    std::lock_guard<std::mutex> lock(wsmutex_);
    auto r = db_->ExecuteAutoCommit(msg->sql);
    outcome = r.ok() ? Status::OK() : r.status();
    const uint64_t tid = ++lastvalidated_tid_;
    holes_.NoteValidated(tid);
    holes_.RecordCommit(tid, [] { return 0; });
    if (options_.ws_log_capacity > 0 && outcome.ok()) {
      LogEntry entry;
      entry.tid = tid;
      entry.gid = msg->gid;
      entry.ddl = msg->sql;
      ws_log_.push_back(std::move(entry));
      while (ws_log_.size() > options_.ws_log_capacity) ws_log_.pop_front();
    }
  }
  if (msg->gid.replica == member_id()) {
    std::shared_ptr<PendingDdl> pending;
    {
      std::lock_guard<std::mutex> lock(pending_ddl_mu_);
      auto it = pending_ddl_.find(msg->gid);
      if (it != pending_ddl_.end()) {
        pending = it->second;
        pending_ddl_.erase(it);
      }
    }
    if (pending != nullptr) {
      std::lock_guard<std::mutex> lock(pending->mu);
      pending->done = true;
      pending->outcome = outcome;
      pending->cv.notify_all();
    }
  }
}

Status SrcaRepReplica::RollbackTxn(const TxnHandle& txn) {
  if (!txn.valid()) return Status::InvalidArgument("invalid transaction");
  db_->Abort(txn.db_txn);
  std::lock_guard<std::mutex> lock(active_mu_);
  active_txns_.erase(txn.gid);
  return Status::OK();
}

Status SrcaRepReplica::CommitTxn(const TxnHandle& txn, bool* had_writes) {
  if (!IsAlive()) return Status::Unavailable("replica crashed");
  if (!txn.valid()) return Status::InvalidArgument("invalid transaction");
  // Whatever the outcome, the transaction stops being "active" now.
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    active_txns_.erase(txn.gid);
  }

  // Deterministic crash injection at every commit sub-stage (the
  // "mw.commit.crash.*" failpoints, paper §5.4 case 3): the replica
  // performs its crash action and the client sees kUnavailable, which
  // drives the driver's in-doubt resolution against a survivor.
  if (SIREP_FAILPOINT_HIT("mw.commit.crash.before_extract").fired) {
    Crash();
    return Status::Unavailable("injected crash before writeset extraction");
  }

  obs::TxnTrace* const trace = txn.trace.get();

  // Fig. 4, I.2.a: retrieve the writeset before committing.
  if (trace != nullptr) trace->Begin(obs::Stage::kExtract);
  auto ws = db_->ExtractWriteSet(txn.db_txn);
  if (trace != nullptr) trace->End(obs::Stage::kExtract);
  if (had_writes != nullptr) *had_writes = !ws->empty();

  // I.2.c: read-only (or write-free) transactions commit right away —
  // under SI they never conflict and other replicas need not hear of them.
  if (ws->empty()) {
    if (trace != nullptr) trace->Begin(obs::Stage::kCommit);
    Status st = db_->Commit(txn.db_txn);
    if (trace != nullptr) trace->End(obs::Stage::kCommit);
    if (st.ok()) {
      RecordOutcome(txn.gid, /*committed=*/true);
      MarkLocallyCommitted(txn.gid);
      c_committed_->Increment();
      c_empty_ws_commits_->Increment();
      if (trace != nullptr) trace->Flush(stage_hists_);
    }
    return st;
  }

  auto pending = std::make_shared<PendingLocal>();
  pending->db_txn = txn.db_txn;
  pending->trace = txn.trace;
  uint64_t cert = 0;
  if (trace != nullptr) trace->Begin(obs::Stage::kLocalValidate);
  {
    // I.2.d: local validation — against *remote* transactions still in
    // this replica's tocommit queue (Adjustment 1: conflicts with
    // anything else were already caught inside the database).
    std::lock_guard<std::mutex> lock(wsmutex_);
    if (tocommit_queue_.ConflictsWithRemote(*ws)) {
      db_->Abort(txn.db_txn);
      RecordOutcome(txn.gid, /*committed=*/false);
      c_local_val_aborts_->Increment();
      flight_.Record(obs::FlightEventType::kValidation, member_id(),
                     txn.gid.seq, txn.gid.replica, "local: remote in queue");
      return Status::Conflict("local validation failed for " +
                              txn.gid.ToString());
    }
    // I.2.e: remember how far validation had progressed; the receivers
    // only need to check writesets validated after this point.
    cert = lastvalidated_tid_;
    std::lock_guard<std::mutex> plock(pending_mu_);
    pending_[txn.gid] = pending;
  }
  if (trace != nullptr) trace->End(obs::Stage::kLocalValidate);

  // §5.4 case 3a: crash after local validation, before the writeset
  // reaches the group. No survivor ever sees it, so in-doubt resolution
  // must report the transaction lost. Crash() marks our own pending
  // entry kCrashed and removes it from pending_.
  if (SIREP_FAILPOINT_HIT("mw.commit.crash.before_multicast").fired) {
    Crash();
    return Status::Unavailable("injected crash before multicast of " +
                               txn.gid.ToString());
  }

  // I.2.g: disseminate in total order. The multicast span is closed by
  // the delivery thread (ProcessWriteSet) at the message's arrival.
  // The TraceContext rides both the frame and the payload so every
  // replica records its spans under this transaction's trace id and can
  // measure delivery skew / staleness against the origin's clocks.
  obs::TraceContext ctx;
  ctx.trace_id =
      (static_cast<uint64_t>(txn.gid.replica) + 1) << 40 | txn.gid.seq;
  ctx.origin_replica = txn.gid.replica;
  ctx.origin_mono_ns = obs::MonotonicNanos();
  ctx.origin_wall_ns = obs::TraceContext::WallNanos();
  if (trace != nullptr) {
    trace->SetContext(ctx);
    trace->Begin(obs::Stage::kMulticast);
  }
  auto payload = std::make_shared<const WriteSetMessage>(
      WriteSetMessage{txn.gid, cert, ws, ctx});
  Status mc =
      group_->Multicast(member_id(), kWriteSetMessageType, payload, ctx);
  if (!mc.ok()) {
    {
      std::lock_guard<std::mutex> plock(pending_mu_);
      pending_.erase(txn.gid);
    }
    db_->Abort(txn.db_txn);
    return mc;
  }

  // §5.4 case 3b: crash after the multicast was accepted into the total
  // order. Uniform reliable delivery guarantees every survivor delivers
  // (and commits) the writeset, so in-doubt resolution on a survivor
  // reports kCommitted even though this replica dies before hearing the
  // verdict. The normal wait below then observes the kCrashed result.
  if (SIREP_FAILPOINT_HIT("mw.commit.crash.after_multicast").fired) {
    Crash();
  }

  // Wait for global validation (step II on the delivery thread).
  ValidationResult result;
  {
    std::unique_lock<std::mutex> lock(pending->mu);
    pending->cv.wait(lock, [&] { return pending->done; });
    result = pending->result;
  }

  switch (result.kind) {
    case ValidationResult::Kind::kFailed:
      // The delivery thread already aborted the DB transaction.
      return Status::Conflict("global validation failed for " +
                              txn.gid.ToString());
    case ValidationResult::Kind::kCrashed:
      return Status::Unavailable("replica crashed during commit of " +
                                 txn.gid.ToString());
    case ValidationResult::Kind::kValidated:
      break;
  }

  // §5.4 case 3b, latest possible instant: globally validated everywhere
  // but crashed before the local database commit. Survivors committed it;
  // the client's resolver must still find kCommitted.
  if (SIREP_FAILPOINT_HIT("mw.commit.crash.before_local_commit").fired) {
    Crash();
    return Status::Unavailable("injected crash before local commit of " +
                               txn.gid.ToString());
  }

  // Step III for a local transaction: validation guarantees no
  // conflicting transaction sits before us in the queue, so we commit
  // immediately (Adjustment 2); the hole gate never applies to local
  // transactions, but the commit is recorded atomically with the hole
  // bookkeeping.
  if (trace != nullptr) trace->Begin(obs::Stage::kCommit);
  uint64_t wal_ticket = 0;
  Status st = holes_.RecordCommit(
      result.tid, [&] { return db_->Commit(txn.db_txn, &wal_ticket); });
  // Group-commit durability wait, outside the hole mutex so concurrent
  // committers share one flush; the client is only acked after this.
  if (st.ok()) st = db_->WaitWalDurable(wal_ticket);
  if (trace != nullptr) trace->End(obs::Stage::kCommit);
  tocommit_queue_.Remove(result.tid);
  MarkLocallyCommitted(txn.gid);
  ScheduleAppliers();
  if (st.ok()) {
    c_committed_->Increment();
    if (trace != nullptr) trace->Flush(stage_hists_);
  }
  return st;
}

namespace {
constexpr char kRecoveryRequestType[] = "recovery_request";
}  // namespace

void SrcaRepReplica::OnDeliver(const gcs::Message& message) {
  if (shutdown_.load(std::memory_order_acquire)) return;
  if (message.type == kRecoveryRequestType) {
    HandleRecoveryRequest(message);
    return;
  }
  if (message.type != kWriteSetMessageType &&
      message.type != kDdlMessageType) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(buffer_mu_);
    if (delivery_mode_ == DeliveryMode::kBuffering) {
      // Before our own recovery marker the donor's package covers the
      // message; after it, we replay it ourselves once caught up.
      if (fence_seen_) buffered_.push_back(message);
      return;
    }
  }
  if (message.type == kDdlMessageType) {
    ProcessDdl(message);
  } else {
    ProcessWriteSet(message);
  }
}

void SrcaRepReplica::ProcessWriteSet(const gcs::Message& message) {
  // "mw.validate" is a delay-only hook: stretches the validation stage
  // on the delivery thread so chaos schedules can pile up the tocommit
  // queue and widen crash windows (error verdicts are ignored —
  // validation decisions must stay identical across replicas).
  SIREP_FAILPOINT_HIT("mw.validate");
  const auto* msg = message.As<WriteSetMessage>();
  const bool is_local = msg->gid.replica == member_id();
  const uint64_t arrival_ns = obs::MonotonicNanos();
  // Prefer the payload-level context (it survives codec round-trips);
  // the frame-level copy covers payloads that never carried one.
  const obs::TraceContext& ctx =
      msg->trace.valid() ? msg->trace : message.trace;

  // Origin-tagged trace for a traced *remote* writeset: the spans this
  // replica records (validate, apply, commit, the cross-replica lags)
  // all land under the originating transaction's trace id.
  std::shared_ptr<obs::TxnTrace> rtrace;
  if (!is_local && ctx.valid()) {
    // NTP-style clock-offset lower bound: the minimum observed
    // (arrival - origin send) across all traced deliveries.
    const int64_t delta =
        static_cast<int64_t>(arrival_ns) -
        static_cast<int64_t>(ctx.origin_mono_ns);
    int64_t prev = clock_offset_ns_.load(std::memory_order_relaxed);
    while (delta < prev && !clock_offset_ns_.compare_exchange_weak(
                               prev, delta, std::memory_order_relaxed)) {
    }
    const int64_t offset = std::min(prev, delta);
    g_clock_offset_ns_->Set(offset);
    rtrace = std::make_shared<obs::TxnTrace>();
    rtrace->SetId(ctx.ToString());
    rtrace->SetContext(ctx);
    // Zero for the delivery that set the offset bound itself: every
    // traced delivery contributes a sample so the histogram's count
    // (and p50) reflects all of them, not just the laggards.
    rtrace->Add(obs::Stage::kDeliverySkew,
                delta > offset ? static_cast<uint64_t>(delta - offset)
                               : 0);
  }

  bool conflict;
  uint64_t tid = 0;
  storage::TupleId conflict_key;
  size_t ws_list_size = 0;
  {
    // Step II: global validation, in delivery order (the total order makes
    // every replica take the same decision here).
    std::lock_guard<std::mutex> lock(wsmutex_);
    if (!ws_index_.empty() && msg->cert + 1 < ws_index_.MinRetainedTid()) {
      // The cert predates our retained window (an extremely lagged
      // sender). We cannot check exactly — abort conservatively. All
      // replicas share the window size and delivery order, so they all
      // take this branch identically.
      SIREP_WLOG << "ws_list window underrun for " << msg->gid.ToString()
                 << " (cert " << msg->cert << " < min retained "
                 << ws_index_.MinRetainedTid() << ")";
      conflict = true;
    } else {
      conflict = ws_index_.ConflictsAfter(msg->cert, *msg->ws, &conflict_key);
    }
    if (!conflict) {
      tid = ++lastvalidated_tid_;
      ws_index_.Append(tid, msg->ws);
      if (options_.ws_log_capacity > 0) {
        ws_log_.push_back(LogEntry{tid, msg->gid, msg->ws});
        while (ws_log_.size() > options_.ws_log_capacity) {
          ws_log_.pop_front();
        }
      }
      holes_.NoteValidated(tid);
      if (rtrace != nullptr) {
        // Last write before publication: Append hands the trace to an
        // applier thread (the queue's lock orders that handoff), so the
        // validation span must land before the entry becomes visible.
        rtrace->Add(obs::Stage::kGlobalValidate,
                    obs::MonotonicNanos() - arrival_ns);
      }
      ToCommitEntry entry;
      entry.tid = tid;
      entry.gid = msg->gid;
      entry.local = is_local;
      entry.ws = msg->ws;
      // Local entries are committed by the waiting client thread.
      entry.dispatched = is_local;
      entry.delivered_ns = arrival_ns;
      entry.trace = rtrace;
      tocommit_queue_.Append(std::move(entry));
    }
    ws_list_size = ws_index_.size();
  }
  const uint64_t validate_ns = obs::MonotonicNanos() - arrival_ns;

  // Pipeline-depth gauges, sampled on every delivery (the fig5/fig8
  // saturation signals: queue backlog, validation window, hole set).
  const uint64_t depth = tocommit_queue_.size();
  g_tocommit_depth_->Set(static_cast<int64_t>(depth));
  g_ws_list_size_->Set(static_cast<int64_t>(ws_list_size));
  g_holes_outstanding_->Set(
      static_cast<int64_t>(holes_.OutstandingCount()));
  uint64_t hw = queue_high_water_.load(std::memory_order_relaxed);
  while (depth > hw && !queue_high_water_.compare_exchange_weak(
                           hw, depth, std::memory_order_relaxed)) {
  }
  if (depth > hw && depth >= 16 && depth >= 2 * hw) {
    flight_.Record(obs::FlightEventType::kQueueHighWater, member_id(),
                   depth, hw, "mw.tocommit");
  }
  if (conflict) {
    flight_.Record(obs::FlightEventType::kValidation, member_id(),
                   msg->gid.seq, msg->gid.replica,
                   conflict_key.table.empty() ? "cert window underrun"
                                              : conflict_key.ToString());
  }

  RecordOutcome(msg->gid, /*committed=*/!conflict);

  if (is_local) {
    std::shared_ptr<PendingLocal> pending;
    {
      std::lock_guard<std::mutex> plock(pending_mu_);
      auto it = pending_.find(msg->gid);
      if (it != pending_.end()) {
        pending = it->second;
        pending_.erase(it);
      }
    }
    if (pending != nullptr) {
      if (pending->trace != nullptr) {
        // The sender's multicast span ends when the message reached this
        // (= its own) replica; validation time is charged separately.
        // Safe without atomics: the client thread stopped touching the
        // trace before the group enqueue that delivered this message,
        // and only resumes after pending->cv signals done.
        pending->trace->EndAt(obs::Stage::kMulticast, arrival_ns);
        pending->trace->Add(obs::Stage::kGlobalValidate, validate_ns);
        // Sequencer/batching wait: group enqueue at the origin until
        // total-order delivery back at the origin (same clock, so no
        // skew correction needed).
        if (message.enqueue_ns != 0 && arrival_ns > message.enqueue_ns) {
          pending->trace->Add(obs::Stage::kSequencerQueue,
                              arrival_ns - message.enqueue_ns);
        }
      }
      if (conflict) {
        db_->Abort(pending->db_txn);
        c_global_val_aborts_->Increment();
      }
      std::lock_guard<std::mutex> lock(pending->mu);
      pending->done = true;
      pending->result.kind = conflict ? ValidationResult::Kind::kFailed
                                      : ValidationResult::Kind::kValidated;
      pending->result.tid = tid;
      pending->cv.notify_all();
    }
    // else: the client gave up (crash path) — nothing to do.
  } else {
    if (rtrace == nullptr) {
      // Untraced remote writeset (v1 wire, or an untracing origin): its
      // validation cost goes straight into the stage histogram.
      stage_hists_.stage[static_cast<int>(obs::Stage::kGlobalValidate)]
          ->Observe(obs::NanosToUs(validate_ns));
    }
    if (conflict) {
      c_remote_discards_->Increment();
      // A discarded writeset never reaches ApplyRemote, so the trace was
      // never shared with an applier: record the validation span and
      // flush what we have (delivery skew + validation) now.
      if (rtrace != nullptr) {
        rtrace->Add(obs::Stage::kGlobalValidate, validate_ns);
        rtrace->Flush(stage_hists_);
      }
    } else {
      ScheduleAppliers();
    }
  }
}

void SrcaRepReplica::ScheduleAppliers() {
  if (shutdown_.load(std::memory_order_acquire) || !IsAlive()) return;
  // Adjustment 3's gate is applied here, *before* the remote transaction
  // begins and acquires locks (paper §4.3.3's hidden-deadlock argument).
  size_t deferred = 0;
  auto ready = tocommit_queue_.TakeDispatchableRemotes(
      [this](uint64_t tid) { return holes_.GateOpen(tid, false); },
      &deferred);
  g_tocommit_depth_->Set(static_cast<int64_t>(tocommit_queue_.size()));
  for (size_t i = 0; i < deferred; ++i) holes_.CountDeferredCommit();
  for (auto& entry : ready) {
    pipeline_->Dispatch(std::move(entry));
  }
}

void SrcaRepReplica::ApplyRemote(ToCommitEntry entry) {
  // Step III for a remote transaction: apply the writeset, then commit.
  // Deadlocks with local transactions are possible (paper §4.2) — the
  // database aborts one side; if it was us, retry until success. A
  // version-check conflict can only be transient here (the conflicting
  // local transaction is guaranteed to fail validation and abort).
  //
  // kApplyParallelism samples the number of concurrent ApplyRemote
  // calls at each apply start — a direct histogram observation, not a
  // TxnTrace span (Flush would misinterpret the count as nanoseconds).
  const int64_t inflight =
      applies_inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  stage_hists_.stage[static_cast<int>(obs::Stage::kApplyParallelism)]
      ->Observe(static_cast<double>(inflight));
  struct InflightGuard {
    std::atomic<int64_t>* counter;
    ~InflightGuard() { counter->fetch_sub(1, std::memory_order_relaxed); }
  } inflight_guard{&applies_inflight_};
  obs::TxnTrace* const rtrace = entry.trace.get();
  while (!shutdown_.load(std::memory_order_acquire) && IsAlive()) {
    auto txn = db_->Begin();
    // "mw.apply" injects transient failures (e.g. 1in(4,error(deadlock)))
    // through the same retry loop a real deadlock with a local
    // transaction exercises.
    Status st = failpoint::AnyArmed() ? failpoint::EvalStatus("mw.apply")
                                      : Status::OK();
    if (st.ok()) {
      // With an origin-tagged trace, apply/commit spans accumulate there
      // (flushed once at commit, retries included); without one they go
      // straight into the stage histograms, one observation per attempt.
      if (rtrace != nullptr) rtrace->Begin(obs::Stage::kApply);
      obs::ScopedLatency apply_timer(
          rtrace != nullptr
              ? nullptr
              : stage_hists_.stage[static_cast<int>(obs::Stage::kApply)]);
      st = db_->ApplyWriteSet(txn, *entry.ws);
      apply_timer.Stop();
      if (rtrace != nullptr) rtrace->End(obs::Stage::kApply);
    }
    if (st.ok()) {
      if (rtrace != nullptr) rtrace->Begin(obs::Stage::kCommit);
      obs::ScopedLatency commit_timer(
          rtrace != nullptr
              ? nullptr
              : stage_hists_.stage[static_cast<int>(obs::Stage::kCommit)]);
      uint64_t wal_ticket = 0;
      st = holes_.RecordCommit(entry.tid,
                               [&] { return db_->Commit(txn, &wal_ticket); });
      // Durability wait outside the hole mutex: parallel appliers pile
      // their records into one group flush instead of serializing on it.
      if (st.ok()) st = db_->WaitWalDurable(wal_ticket);
      commit_timer.Stop();
      if (rtrace != nullptr) rtrace->End(obs::Stage::kCommit);
      if (st.ok()) {
        tocommit_queue_.Remove(entry.tid);
        MarkLocallyCommitted(entry.gid);
        c_committed_->Increment();
        if (rtrace != nullptr) {
          const uint64_t now = obs::MonotonicNanos();
          // Delivery here -> committed here: tocommit queueing + apply.
          if (entry.delivered_ns != 0 && now > entry.delivered_ns) {
            rtrace->Add(obs::Stage::kRemoteApplyLag,
                        now - entry.delivered_ns);
          }
          // Origin multicast send -> visible at this replica (raw
          // cross-clock difference; the clock-offset gauge lets readers
          // correct it on clock-skewed deployments).
          const auto& octx = rtrace->context();
          if (octx.origin_mono_ns != 0 && now > octx.origin_mono_ns) {
            rtrace->Add(obs::Stage::kSnapshotStaleness,
                        now - octx.origin_mono_ns);
          }
          rtrace->Flush(stage_hists_);
        }
        ScheduleAppliers();
        return;
      }
    }
    db_->Abort(txn);
    if (st.code() == StatusCode::kDeadlock ||
        st.code() == StatusCode::kConflict ||
        st.code() == StatusCode::kAborted) {
      c_apply_retries_->Increment();
      std::this_thread::yield();
      continue;
    }
    SIREP_ELOG << "unretryable writeset apply failure for "
               << entry.gid.ToString() << ": " << st.ToString();
    holes_.Discard(entry.tid);
    tocommit_queue_.Remove(entry.tid);
    return;
  }
  // Crashed/shutting down: release bookkeeping so nothing waits forever.
  holes_.Discard(entry.tid);
}

void SrcaRepReplica::HandleRecoveryRequest(const gcs::Message& message) {
  const auto* req = message.As<RecoveryRequest>();
  if (req->requester == member_id()) {
    // Our own marker: everything delivered from here on is ours to
    // replay; everything before is covered by the donor's package.
    std::lock_guard<std::mutex> lock(buffer_mu_);
    fence_seen_ = true;
    return;
  }
  if (req->donor != member_id() || req->channel == nullptr) return;

  // Donor side: snapshot the validation state exactly at the marker
  // point of the total order (we are on the delivery thread, so every
  // earlier message has been fully validated).
  RecoveryPackage package;
  if (!IsAcceptingClients()) {
    // A replica that is itself recovering (or shutting down) has stale
    // state and must not donate.
    package.status = Status::Unavailable("chosen donor is not live");
    {
      std::lock_guard<std::mutex> lock(req->channel->mu);
      req->channel->package = std::move(package);
      req->channel->ready = true;
    }
    req->channel->cv.notify_all();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(wsmutex_);
    package.lastvalidated = lastvalidated_tid_;
    package.ws_window = ws_index_.Snapshot();
    if (options_.ws_log_capacity == 0) {
      package.status =
          Status::NotSupported("this replica keeps no writeset log");
    } else if (!ws_log_.empty() && req->from_tid + 1 < ws_log_.front().tid) {
      // The log no longer reaches back to the recoverer's prefix: fall
      // back to a full-state transfer (the paper's "complete database
      // copy", done online at the marker). The copy includes every
      // commit up to our stable prefix; the log tail covers the
      // validated-but-uncommitted remainder (idempotent to re-apply).
      const uint64_t stable = holes_.StablePrefix();
      if (stable + 1 < ws_log_.front().tid) {
        package.status = Status::Internal(
            "writeset log smaller than the commit pipeline; increase "
            "ws_log_capacity");
      } else {
        package.status = Status::OK();
        package.has_full_copy = true;
        auto dump_txn = db_->Begin();
        for (const auto& table : db_->engine().TableNames()) {
          TableDump dump;
          dump.table = table;
          dump.schema = db_->engine().GetTable(table)->schema();
          Status scan = db_->engine().Scan(
              dump_txn, table,
              [&](const sql::Key&, const sql::Row& row) {
                dump.rows.push_back(row);
              });
          if (!scan.ok()) {
            package.status = scan;
            break;
          }
          package.full_copy.push_back(std::move(dump));
        }
        db_->Abort(dump_txn);
        for (const auto& entry : ws_log_) {
          if (entry.tid > stable) package.log_suffix.push_back(entry);
        }
      }
    } else {
      package.status = Status::OK();
      for (const auto& entry : ws_log_) {
        if (entry.tid > req->from_tid) package.log_suffix.push_back(entry);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(req->channel->mu);
    req->channel->package = std::move(package);
    req->channel->ready = true;
  }
  req->channel->cv.notify_all();
}

Status SrcaRepReplica::Recover(uint64_t from_tid,
                               std::chrono::milliseconds timeout) {
  if (!IsAlive()) return Status::Unavailable("replica crashed");
  {
    std::lock_guard<std::mutex> lock(buffer_mu_);
    if (delivery_mode_ != DeliveryMode::kBuffering) {
      return Status::InvalidArgument(
          "Recover() requires start_recovering = true");
    }
  }

  // Try each live member as donor until one that is fully live answers.
  // Before every attempt the fence and buffer reset: only the messages
  // after the *successful* marker may be replayed from the buffer, or
  // they would be double-counted against the donor's package.
  RecoveryPackage package;
  package.status = Status::Unavailable("no donor available for recovery");
  for (gcs::MemberId donor : group_->CurrentView().members) {
    if (donor == member_id()) continue;
    {
      std::lock_guard<std::mutex> lock(buffer_mu_);
      fence_seen_ = false;
      buffered_.clear();
    }
    auto channel = std::make_shared<RecoveryChannel>();
    auto payload = std::make_shared<const RecoveryRequest>(
        RecoveryRequest{member_id(), donor, from_tid, channel});
    Status mc = group_->Multicast(member_id(), kRecoveryRequestType, payload);
    if (!mc.ok()) return mc;
    {
      std::unique_lock<std::mutex> lock(channel->mu);
      if (!channel->cv.wait_for(lock, timeout,
                                [&] { return channel->ready; })) {
        return Status::TimedOut("recovery donor did not respond");
      }
      package = std::move(channel->package);
    }
    if (package.status.ok() ||
        package.status.code() != StatusCode::kUnavailable) {
      break;  // success, or a hard error worth reporting
    }
  }
  SIREP_RETURN_IF_ERROR(package.status);
  SIREP_ILOG << "replica " << member_id() << " recovering: "
             << (package.has_full_copy ? "full copy + " : "")
             << package.log_suffix.size() << " writesets to replay, "
             << "resuming validation at tid " << package.lastvalidated;

  // Phase 0 (full-copy fallback): synchronize our committed state with
  // the donor's dump — overwrite every dumped row, delete everything the
  // donor no longer has.
  if (package.has_full_copy) {
    for (const auto& dump : package.full_copy) {
      storage::MvccTable* table = db_->engine().GetTable(dump.table);
      if (table == nullptr) {
        // The table was created via replicated DDL we never saw: create
        // it from the shipped schema.
        SIREP_RETURN_IF_ERROR(
            db_->engine().CreateTable(dump.table, dump.schema));
        table = db_->engine().GetTable(dump.table);
      }
      storage::WriteSet sync;
      auto view_txn = db_->Begin();
      std::set<sql::Key> local_keys;
      Status scan = db_->engine().Scan(
          view_txn, dump.table,
          [&](const sql::Key& key, const sql::Row&) {
            local_keys.insert(key);
          });
      db_->Abort(view_txn);
      if (!scan.ok()) return scan;
      for (const auto& row : dump.rows) {
        const sql::Key key = table->schema().KeyOf(row);
        local_keys.erase(key);
        sync.Record({dump.table, key}, storage::WriteOp::kUpdate, row);
      }
      for (const auto& key : local_keys) {
        sync.Record({dump.table, key}, storage::WriteOp::kDelete, {});
      }
      if (sync.empty()) continue;
      auto txn = db_->Begin();
      Status st = db_->ApplyWriteSet(txn, sync);
      if (st.ok()) st = db_->Commit(txn);
      if (!st.ok()) {
        db_->Abort(txn);
        return Status::Internal("full-copy import failed for table '" +
                                dump.table + "': " + st.ToString());
      }
    }
  }

  // Phase 1: replay the missed writesets into our database. Nobody else
  // touches this DB (no clients, no appliers), and re-applying writesets
  // our previous incarnation already committed is idempotent.
  for (const auto& entry : package.log_suffix) {
    if (entry.ws == nullptr) {
      // Replicated DDL at this position. AlreadyExists is fine (a
      // restarted replica's schema survived the crash).
      auto r = db_->ExecuteAutoCommit(entry.ddl);
      if (!r.ok() && r.status().code() != StatusCode::kAlreadyExists) {
        return Status::Internal("recovery DDL replay failed: " +
                                r.status().ToString());
      }
      continue;
    }
    while (true) {
      auto txn = db_->Begin();
      Status st = db_->ApplyWriteSet(txn, *entry.ws);
      if (st.ok()) st = db_->Commit(txn);
      if (st.ok()) break;
      db_->Abort(txn);
      if (!st.IsTransactionFailure()) {
        return Status::Internal("recovery replay failed at tid " +
                                std::to_string(entry.tid) + ": " +
                                st.ToString());
      }
    }
    RecordOutcome(entry.gid, /*committed=*/true);
    MarkLocallyCommitted(entry.gid);
  }

  // Phase 2: adopt the donor's validation state so our future decisions
  // match every other replica's.
  {
    std::lock_guard<std::mutex> lock(wsmutex_);
    lastvalidated_tid_ = package.lastvalidated;
    ws_index_.Load(package.ws_window);
    ws_log_.assign(package.log_suffix.begin(), package.log_suffix.end());
  }

  // Phase 3: drain the buffered post-marker messages through normal
  // validation. First a few passes without blocking delivery (bulk of
  // the backlog); then a final pass holding buffer_mu_, during which the
  // delivery thread briefly blocks — that makes the flip to live
  // atomic and bounds the drain even under heavy concurrent traffic.
  for (int pass = 0; pass < 16; ++pass) {
    std::vector<gcs::Message> batch;
    {
      std::lock_guard<std::mutex> lock(buffer_mu_);
      if (buffered_.size() < 64) break;
      batch.swap(buffered_);
    }
    for (const auto& message : batch) {
      if (message.type == kDdlMessageType) {
        ProcessDdl(message);
      } else {
        ProcessWriteSet(message);
      }
    }
  }
  {
    std::unique_lock<std::mutex> lock(buffer_mu_);
    while (!buffered_.empty()) {
      std::vector<gcs::Message> batch;
      batch.swap(buffered_);
      // Intentionally processed under buffer_mu_: new deliveries wait.
      for (const auto& message : batch) {
        if (message.type == kDdlMessageType) {
          ProcessDdl(message);
        } else {
          ProcessWriteSet(message);
        }
      }
    }
    delivery_mode_ = DeliveryMode::kLive;
  }
  accepting_.store(true, std::memory_order_release);
  SIREP_ILOG << "replica " << member_id() << " recovery complete";
  return Status::OK();
}

void SrcaRepReplica::RecordOutcome(const GlobalTxnId& gid, bool committed) {
  std::lock_guard<std::mutex> lock(outcomes_mu_);
  auto& entry = outcomes_[gid];
  entry.committed = committed;
  if (!committed) entry.locally_committed = true;  // nothing to wait for
  outcomes_cv_.notify_all();
}

void SrcaRepReplica::MarkLocallyCommitted(const GlobalTxnId& gid) {
  std::lock_guard<std::mutex> lock(outcomes_mu_);
  auto& entry = outcomes_[gid];
  entry.committed = true;
  entry.locally_committed = true;
  outcomes_cv_.notify_all();
}

TxnOutcome SrcaRepReplica::InquireOutcome(const GlobalTxnId& gid,
                                          gcs::MemberId crashed_origin) {
  std::unique_lock<std::mutex> lock(outcomes_mu_);
  // Paper §5.4: either the writeset (and hence the outcome) arrives, or
  // the view change reporting the origin's crash does — uniform reliable
  // delivery guarantees no third possibility.
  outcomes_cv_.wait(lock, [&] {
    if (shutdown_.load(std::memory_order_acquire) || !IsAlive()) return true;
    if (outcomes_.count(gid)) return true;
    return view_.view_id != 0 && !view_.Contains(crashed_origin);
  });
  auto it = outcomes_.find(gid);
  if (it == outcomes_.end()) return TxnOutcome::kUnknown;
  if (!it->second.committed) return TxnOutcome::kAborted;
  // Wait for the writeset to be committed *here* so the client sees its
  // own writes after fail-over.
  outcomes_cv_.wait(lock, [&] {
    if (shutdown_.load(std::memory_order_acquire) || !IsAlive()) return true;
    auto jt = outcomes_.find(gid);
    return jt != outcomes_.end() && jt->second.locally_committed;
  });
  return TxnOutcome::kCommitted;
}

void SrcaRepReplica::OnViewChange(const gcs::View& view) {
  bool expelled = false;
  {
    std::lock_guard<std::mutex> lock(outcomes_mu_);
    view_ = view;
    expelled = member_id() != gcs::kInvalidMember && view.view_id != 0 &&
               !view.Contains(member_id());
    outcomes_cv_.notify_all();
  }
  flight_.Record(obs::FlightEventType::kViewChange, member_id(),
                 view.view_id, view.members.size(),
                 expelled ? "expelled self" : "installed");
  // A view that excludes *us* means the group expelled this replica (a
  // TCP transport self-expulsion after losing the sequencer connection):
  // crash ourselves rather than keep serving clients as a zombie with a
  // stale total order. Crash() is idempotent and must run outside
  // outcomes_mu_ (it notifies outcomes_cv_ under the same mutex).
  if (expelled && IsAlive()) {
    SIREP_WLOG << "replica " << member_id() << " expelled from view "
               << view.view_id << "; crashing self";
    Crash();
  }
}

void SrcaRepReplica::Crash() {
  bool expected = false;
  if (!crashed_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return;
  }
  flight_.Record(obs::FlightEventType::kCrash, member_id(), 0, 0,
                 "middleware crash");
  group_->Crash(member_id());
  // Release clients blocked waiting for holes to close — those commits
  // will never happen now — and quiescence waiters watching our queue.
  holes_.Cancel();
  tocommit_queue_.Poke();
  // Fail every in-flight local commit: their clients will run in-doubt
  // resolution against another replica.
  std::unordered_map<GlobalTxnId, std::shared_ptr<PendingLocal>,
                     GlobalTxnIdHash>
      pending;
  {
    std::lock_guard<std::mutex> plock(pending_mu_);
    pending.swap(pending_);
  }
  for (auto& [gid, p] : pending) {
    std::lock_guard<std::mutex> lock(p->mu);
    if (!p->done) {
      p->done = true;
      p->result.kind = ValidationResult::Kind::kCrashed;
      p->cv.notify_all();
    }
  }
  {
    std::lock_guard<std::mutex> plock(pending_ddl_mu_);
    for (auto& [gid, p] : pending_ddl_) {
      std::lock_guard<std::mutex> lock(p->mu);
      p->cv.notify_all();  // waiters re-check IsAlive and bail out
    }
  }
  {
    std::lock_guard<std::mutex> lock(outcomes_mu_);
    outcomes_cv_.notify_all();
  }
  SIREP_ILOG << "middleware replica " << member_id() << " crashed";
}

void SrcaRepReplica::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;
  }
  holes_.SetChangeListener(nullptr);
  holes_.Cancel();
  tocommit_queue_.Poke();
  pipeline_->Shutdown();
  {
    std::lock_guard<std::mutex> lock(outcomes_mu_);
    outcomes_cv_.notify_all();
  }
}

SrcaRepReplica::Stats SrcaRepReplica::stats() const {
  Stats out;
  out.committed = c_committed_->Value();
  out.empty_ws_commits = c_empty_ws_commits_->Value();
  out.local_val_aborts = c_local_val_aborts_->Value();
  out.global_val_aborts = c_global_val_aborts_->Value();
  out.remote_discards = c_remote_discards_->Value();
  out.apply_retries = c_apply_retries_->Value();
  out.holes = holes_.stats();
  return out;
}

}  // namespace sirep::middleware
