#include "middleware/replica_mw.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <thread>

#include "common/failpoint.h"
#include "common/logging.h"

namespace sirep::middleware {

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<uint64_t>(parsed);
}

/// Applies the SIREP_RECOVERY_* environment overrides (see
/// ReplicaOptions) once at construction.
ReplicaOptions ResolveRecoveryEnv(ReplicaOptions options) {
  options.recovery_timeout = std::chrono::milliseconds(EnvU64(
      "SIREP_RECOVERY_TIMEOUT_MS",
      static_cast<uint64_t>(options.recovery_timeout.count())));
  options.recovery_chunk_timeout = std::chrono::milliseconds(EnvU64(
      "SIREP_RECOVERY_CHUNK_TIMEOUT_MS",
      static_cast<uint64_t>(options.recovery_chunk_timeout.count())));
  options.recovery_chunk_rows = static_cast<size_t>(
      EnvU64("SIREP_RECOVERY_CHUNK_ROWS", options.recovery_chunk_rows));
  if (options.recovery_chunk_rows == 0) options.recovery_chunk_rows = 1;
  options.recovery_buffer_high_water = static_cast<size_t>(EnvU64(
      "SIREP_RECOVERY_BUFFER_HWM", options.recovery_buffer_high_water));
  if (options.recovery_buffer_high_water == 0) {
    options.recovery_buffer_high_water = 1;
  }
  return options;
}

/// Deadline-scaling floor: the effective recovery deadline grows by the
/// time the received bytes would take at this (very conservative) rate,
/// so a transfer is never killed merely for being large.
constexpr uint64_t kRecoveryMinBytesPerMs = 512;

}  // namespace

SrcaRepReplica::SrcaRepReplica(engine::Database* db, gcs::Group* group,
                               ReplicaOptions options)
    : db_(db),
      group_(group),
      options_(ResolveRecoveryEnv(options)),
      ws_index_(options.ws_list_window, options.validation_shards),
      holes_(options.mode == ReplicaMode::kSrcaRep) {
  stage_hists_ = obs::StageHistograms::FromRegistry(&registry_);
  // The pipeline's workers only run entries handed to Dispatch(), and
  // nothing dispatches before Start() joins the group — constructing it
  // here (before the gauges below resolve) is safe.
  pipeline_ = ApplyPipeline::Create(
      ApplyPipeline::ThreadsFromEnv(options_.applier_threads),
      [this](ToCommitEntry entry) { ApplyRemote(std::move(entry)); },
      &registry_);
  c_committed_ = registry_.GetCounter("mw.committed");
  c_empty_ws_commits_ = registry_.GetCounter("mw.empty_ws_commits");
  c_local_val_aborts_ = registry_.GetCounter("mw.local_val_aborts");
  c_global_val_aborts_ = registry_.GetCounter("mw.global_val_aborts");
  c_remote_discards_ = registry_.GetCounter("mw.remote_discards");
  c_apply_retries_ = registry_.GetCounter("mw.apply_retries");
  g_tocommit_depth_ = registry_.GetGauge("mw.tocommit.queue_depth");
  g_ws_list_size_ = registry_.GetGauge("mw.wslist.size");
  g_holes_outstanding_ = registry_.GetGauge("mw.holes.outstanding");
  g_clock_offset_ns_ = registry_.GetGauge("mw.clock.offset_estimate_ns");
  c_rec_chunks_sent_ = registry_.GetCounter("mw.recovery.chunks_sent");
  c_rec_bytes_sent_ = registry_.GetCounter("mw.recovery.bytes_sent");
  c_rec_chunks_received_ =
      registry_.GetCounter("mw.recovery.chunks_received");
  c_rec_bytes_received_ = registry_.GetCounter("mw.recovery.bytes_received");
  c_rec_retries_ = registry_.GetCounter("mw.recovery.retries");
  c_rec_donor_switches_ = registry_.GetCounter("mw.recovery.donor_switches");
  c_rec_buffer_spills_ = registry_.GetCounter("mw.recovery.buffer_spills");
  g_rec_buffered_msgs_ = registry_.GetGauge("mw.recovery.buffered_msgs");
  c_partial_header_commits_ =
      registry_.GetCounter("mw.partial.header_commits");
  c_partial_filtered_applies_ =
      registry_.GetCounter("mw.partial.filtered_applies");
  c_partial_misroutes_ = registry_.GetCounter("mw.partial.misroutes");
  c_partial_stripped_sends_ =
      registry_.GetCounter("mw.partial.stripped_sends");
  g_partial_held_ = registry_.GetGauge("mw.partial.held_partitions");
  if (options_.partition_map != nullptr) {
    uint64_t held = options_.partition_map->HeldMask(options_.partition_slot);
    int64_t count = 0;
    for (; held != 0; held &= held - 1) ++count;
    g_partial_held_->Set(count);
  }
  holes_.SetWaitHistogram(
      registry_.GetLatencyHistogram("mw.begin.hole_wait_us"));
  // Contention accounting for the three hottest middleware locks; the
  // metrics land in this registry, so they surface on /metrics, in
  // DumpMetrics() and in the bench artifacts' contention section.
  holes_.SetLockStats(obs::LockStats::FromRegistry(&registry_, "mw.lock.holes"));
  tocommit_queue_.SetLockStats(
      obs::LockStats::FromRegistry(&registry_, "mw.lock.tocommit"));
  ws_index_.SetLockStats(
      obs::LockStats::FromRegistry(&registry_, "mw.lock.wsindex"));
  if (options_.start_recovering) {
    delivery_mode_ = DeliveryMode::kBuffering;
    accepting_.store(false, std::memory_order_release);
  }
}

SrcaRepReplica::~SrcaRepReplica() {
  Shutdown();
  // Shutdown() already joined the streamers it saw; catch any spawned
  // in the race window before the delivery thread observed shutdown_.
  JoinStreamers();
}

Status SrcaRepReplica::Start() {
  // Byte-shipping transports (TCP sequencer) need these to serialize our
  // payloads; on the in-process transport they are simply never invoked.
  RegisterMessageCodecs(group_);
  // Install the hole-gate listener BEFORE joining: Join() spawns the
  // delivery thread, which may start applying frames (and touching the
  // gate) immediately.
  // Re-run the dispatch scan whenever the hole gate may have opened
  // (a commit, a discard, or a waiting start proceeding).
  holes_.SetChangeListener([this] { ScheduleAppliers(); });
  if (options_.bootstrap_prefix > 0) {
    if (options_.start_recovering) {
      return Status::InvalidArgument(
          "bootstrap_prefix and start_recovering are mutually exclusive");
    }
    // Cold start over a surviving database: the data is already here, so
    // validation bookkeeping resumes at the adopted prefix. The writeset
    // log stays empty — as a donor we can only offer full copies until
    // new deliveries refill it, which the donor floor logic handles.
    std::lock_guard<std::mutex> lock(wsmutex_);
    lastvalidated_tid_ = options_.bootstrap_prefix;
    holes_.AdoptCommittedPrefix(options_.bootstrap_prefix);
  }
  const gcs::MemberId id = group_->Join(this);
  if (id == gcs::kInvalidMember) {
    return Status::Unavailable("group is shut down");
  }
  // Atomic store: the delivery thread is already running and reads the
  // member id on every frame/view. Until this store lands it sees
  // kInvalidMember, which is benign — nothing in the stream can carry
  // our id before we have multicast anything.
  member_id_.store(id, std::memory_order_release);
  // Publish our slot binding only when starting live: senders strip
  // payloads from bound members, and a recovering incarnation must keep
  // receiving full payloads while it buffers (Recover() binds at the
  // end of a successful catch-up).
  if (options_.partition_map != nullptr && !options_.start_recovering) {
    options_.partition_map->BindSlot(options_.partition_slot, id);
  }
  return Status::OK();
}

Result<SrcaRepReplica::TxnHandle> SrcaRepReplica::BeginTxn() {
  if (!IsAlive()) return Status::Unavailable("replica crashed");
  if (!IsAcceptingClients()) {
    return Status::Unavailable("replica is recovering");
  }
  TxnHandle handle;
  handle.gid.replica = member_id();
  handle.gid.seq = next_local_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  handle.trace = std::make_shared<obs::TxnTrace>();
  if (SIREP_LOG_ENABLED(LogLevel::kDebug)) {
    handle.trace->SetId(handle.gid.ToString());
  }
  // Adjustment 3: a local transaction only starts when the commit order
  // has no holes; the begin is atomic with that check.
  handle.db_txn = holes_.RunStart([&] { return db_->Begin(); });
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    active_txns_.insert(handle.gid);
  }
  return handle;
}

Result<engine::QueryResult> SrcaRepReplica::Execute(
    const TxnHandle& txn, const std::string& sql,
    const std::vector<sql::Value>& params) {
  if (!IsAlive()) return Status::Unavailable("replica crashed");
  if (!txn.valid()) return Status::InvalidArgument("invalid transaction");
  // DDL replicates through the total order so every replica's schema
  // changes at the same logical position (it is not transactional: like
  // the paper's PostgreSQL setup, schema changes take effect immediately
  // and are not rolled back with the surrounding transaction).
  auto parsed = db_->Prepare(sql);
  if (!parsed.ok()) return parsed.status();
  const auto kind = parsed.value()->kind;
  if (kind == sql::StatementKind::kCreateTable ||
      kind == sql::StatementKind::kCreateIndex) {
    SIREP_RETURN_IF_ERROR(ReplicateDdl(sql));
    return engine::QueryResult{};
  }
  if (txn.trace != nullptr) txn.trace->Begin(obs::Stage::kExecute);
  auto result = db_->Execute(txn.db_txn, sql, params);
  if (txn.trace != nullptr) txn.trace->End(obs::Stage::kExecute);
  return result;
}

Status SrcaRepReplica::ReplicateDdl(const std::string& sql) {
  GlobalTxnId gid;
  gid.replica = member_id();
  gid.seq = next_local_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto pending = std::make_shared<PendingDdl>();
  {
    std::lock_guard<std::mutex> lock(pending_ddl_mu_);
    pending_ddl_[gid] = pending;
  }
  auto payload =
      std::make_shared<const DdlMessage>(DdlMessage{gid, sql});
  Status mc = group_->Multicast(member_id(), kDdlMessageType, payload);
  if (!mc.ok()) {
    std::lock_guard<std::mutex> lock(pending_ddl_mu_);
    pending_ddl_.erase(gid);
    return mc;
  }
  std::unique_lock<std::mutex> lock(pending->mu);
  pending->cv.wait(lock, [&] {
    return pending->done || !IsAlive() ||
           shutdown_.load(std::memory_order_acquire);
  });
  return pending->done ? pending->outcome
                       : Status::Unavailable("replica crashed during DDL");
}

void SrcaRepReplica::ProcessDdl(const gcs::Message& message) {
  const auto* msg = message.As<DdlMessage>();
  Status outcome;
  {
    // Serialized with validation under wsmutex: the DDL takes effect at a
    // single, identical position in every replica's schedule, and gets a
    // tid slot so recovery replay preserves the interleaving.
    std::lock_guard<std::mutex> lock(wsmutex_);
    auto r = db_->ExecuteAutoCommit(msg->sql);
    outcome = r.ok() ? Status::OK() : r.status();
    const uint64_t tid = ++lastvalidated_tid_;
    holes_.NoteValidated(tid);
    holes_.RecordCommit(tid, [] { return 0; });
    if (options_.ws_log_capacity > 0 && outcome.ok()) {
      LogEntry entry;
      entry.tid = tid;
      entry.gid = msg->gid;
      entry.ddl = msg->sql;
      ws_log_.push_back(std::move(entry));
      while (ws_log_.size() > options_.ws_log_capacity) ws_log_.pop_front();
    }
  }
  if (msg->gid.replica == member_id()) {
    std::shared_ptr<PendingDdl> pending;
    {
      std::lock_guard<std::mutex> lock(pending_ddl_mu_);
      auto it = pending_ddl_.find(msg->gid);
      if (it != pending_ddl_.end()) {
        pending = it->second;
        pending_ddl_.erase(it);
      }
    }
    if (pending != nullptr) {
      std::lock_guard<std::mutex> lock(pending->mu);
      pending->done = true;
      pending->outcome = outcome;
      pending->cv.notify_all();
    }
  }
}

Status SrcaRepReplica::RollbackTxn(const TxnHandle& txn) {
  if (!txn.valid()) return Status::InvalidArgument("invalid transaction");
  db_->Abort(txn.db_txn);
  std::lock_guard<std::mutex> lock(active_mu_);
  active_txns_.erase(txn.gid);
  return Status::OK();
}

Status SrcaRepReplica::CommitTxn(const TxnHandle& txn, bool* had_writes) {
  obs::Profiler::Section section("mw.commit_txn");
  if (!IsAlive()) return Status::Unavailable("replica crashed");
  if (!txn.valid()) return Status::InvalidArgument("invalid transaction");
  // Whatever the outcome, the transaction stops being "active" now.
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    active_txns_.erase(txn.gid);
  }

  // Deterministic crash injection at every commit sub-stage (the
  // "mw.commit.crash.*" failpoints, paper §5.4 case 3): the replica
  // performs its crash action and the client sees kUnavailable, which
  // drives the driver's in-doubt resolution against a survivor.
  if (SIREP_FAILPOINT_HIT("mw.commit.crash.before_extract").fired) {
    Crash();
    return Status::Unavailable("injected crash before writeset extraction");
  }

  obs::TxnTrace* const trace = txn.trace.get();

  // Fig. 4, I.2.a: retrieve the writeset before committing.
  if (trace != nullptr) trace->Begin(obs::Stage::kExtract);
  auto ws = db_->ExtractWriteSet(txn.db_txn);
  if (trace != nullptr) trace->End(obs::Stage::kExtract);
  if (had_writes != nullptr) *had_writes = !ws->empty();

  // I.2.c: read-only (or write-free) transactions commit right away —
  // under SI they never conflict and other replicas need not hear of them.
  if (ws->empty()) {
    if (trace != nullptr) trace->Begin(obs::Stage::kCommit);
    Status st = db_->Commit(txn.db_txn);
    if (trace != nullptr) trace->End(obs::Stage::kCommit);
    if (st.ok()) {
      RecordOutcome(txn.gid, /*committed=*/true);
      MarkLocallyCommitted(txn.gid);
      c_committed_->Increment();
      c_empty_ws_commits_->Increment();
      if (trace != nullptr) trace->Flush(stage_hists_);
    }
    return st;
  }

  // Partial replication: tag the writeset with its partition mask (and
  // compute the per-tuple digests the header-only twin will carry). A
  // transaction that wrote a partition this replica does not hold was
  // misrouted by the client — abort it *before* dissemination. The abort
  // is always safe (nothing was multicast, nothing applied); committing
  // would be unsound, since no holder of those partitions executed the
  // reads and this replica's rows for them are stale.
  const cluster::PartitionMap* const pmap = options_.partition_map.get();
  uint64_t partition_mask = 0;
  std::vector<uint64_t> digests;
  if (pmap != nullptr && pmap->partial()) {
    partition_mask = pmap->MaskOf(*ws, &digests);
    if (!pmap->HoldsAll(options_.partition_slot, partition_mask)) {
      db_->Abort(txn.db_txn);
      RecordOutcome(txn.gid, /*committed=*/false);
      c_partial_misroutes_->Increment();
      flight_.Record(obs::FlightEventType::kValidation, member_id(),
                     txn.gid.seq, txn.gid.replica, "misroute: not a holder");
      return Status::InvalidArgument(
          "transaction " + txn.gid.ToString() +
          " writes partitions this replica does not hold; route it to a "
          "holder of its partition group");
    }
  }

  auto pending = std::make_shared<PendingLocal>();
  pending->db_txn = txn.db_txn;
  pending->trace = txn.trace;
  uint64_t cert = 0;
  if (trace != nullptr) trace->Begin(obs::Stage::kLocalValidate);
  {
    // I.2.d: local validation — against *remote* transactions still in
    // this replica's tocommit queue (Adjustment 1: conflicts with
    // anything else were already caught inside the database).
    std::lock_guard<std::mutex> lock(wsmutex_);
    if (tocommit_queue_.ConflictsWithRemote(*ws)) {
      db_->Abort(txn.db_txn);
      RecordOutcome(txn.gid, /*committed=*/false);
      c_local_val_aborts_->Increment();
      flight_.Record(obs::FlightEventType::kValidation, member_id(),
                     txn.gid.seq, txn.gid.replica, "local: remote in queue");
      return Status::Conflict("local validation failed for " +
                              txn.gid.ToString());
    }
    // I.2.e: remember how far validation had progressed; the receivers
    // only need to check writesets validated after this point.
    cert = lastvalidated_tid_;
    std::lock_guard<std::mutex> plock(pending_mu_);
    pending_[txn.gid] = pending;
  }
  if (trace != nullptr) trace->End(obs::Stage::kLocalValidate);

  // §5.4 case 3a: crash after local validation, before the writeset
  // reaches the group. No survivor ever sees it, so in-doubt resolution
  // must report the transaction lost. Crash() marks our own pending
  // entry kCrashed and removes it from pending_.
  if (SIREP_FAILPOINT_HIT("mw.commit.crash.before_multicast").fired) {
    Crash();
    return Status::Unavailable("injected crash before multicast of " +
                               txn.gid.ToString());
  }

  // I.2.g: disseminate in total order. The multicast span is closed by
  // the delivery thread (ProcessWriteSet) at the message's arrival.
  // The TraceContext rides both the frame and the payload so every
  // replica records its spans under this transaction's trace id and can
  // measure delivery skew / staleness against the origin's clocks.
  obs::TraceContext ctx;
  ctx.trace_id =
      (static_cast<uint64_t>(txn.gid.replica) + 1) << 40 | txn.gid.seq;
  ctx.origin_replica = txn.gid.replica;
  ctx.origin_mono_ns = obs::MonotonicNanos();
  ctx.origin_wall_ns = obs::TraceContext::WallNanos();
  if (trace != nullptr) {
    trace->SetContext(ctx);
    trace->Begin(obs::Stage::kMulticast);
  }
  WriteSetMessage full;
  full.gid = txn.gid;
  full.cert = cert;
  full.ws = ws;
  full.trace = ctx;
  if (pmap != nullptr) {
    full.epoch = pmap->epoch();
    full.partition_mask = partition_mask;
  }
  auto payload = std::make_shared<const WriteSetMessage>(std::move(full));
  // Route: members holding none of the touched partitions get the
  // header-only twin (digests, no rows). Best-effort — an empty strip
  // set, batching, or an unbound member all degrade to full payloads.
  gcs::MulticastRoute route;
  if (pmap != nullptr && pmap->partial() && partition_mask != 0) {
    uint64_t strip = pmap->StripMembers(partition_mask);
    // Never strip ourselves: the origin must see its own full payload.
    if (member_id() <= cluster::PartitionMap::kMaxStrippableMember) {
      strip &= ~(uint64_t{1} << member_id());
    }
    if (strip != 0) {
      WriteSetMessage header;
      header.gid = txn.gid;
      header.cert = cert;
      header.trace = ctx;
      header.epoch = pmap->epoch();
      header.partition_mask = partition_mask;
      header.header_only = true;
      header.digests = digests;
      route.strip_members = strip;
      route.header_payload =
          std::make_shared<const WriteSetMessage>(std::move(header));
      c_partial_stripped_sends_->Increment();
    }
  }
  Status mc = group_->Multicast(member_id(), kWriteSetMessageType, payload,
                                ctx, std::move(route));
  if (!mc.ok()) {
    {
      std::lock_guard<std::mutex> plock(pending_mu_);
      pending_.erase(txn.gid);
    }
    db_->Abort(txn.db_txn);
    return mc;
  }

  // §5.4 case 3b: crash after the multicast was accepted into the total
  // order. Uniform reliable delivery guarantees every survivor delivers
  // (and commits) the writeset, so in-doubt resolution on a survivor
  // reports kCommitted even though this replica dies before hearing the
  // verdict. The normal wait below then observes the kCrashed result.
  if (SIREP_FAILPOINT_HIT("mw.commit.crash.after_multicast").fired) {
    Crash();
  }

  // Wait for global validation (step II on the delivery thread).
  ValidationResult result;
  {
    std::unique_lock<std::mutex> lock(pending->mu);
    pending->cv.wait(lock, [&] { return pending->done; });
    result = pending->result;
  }

  switch (result.kind) {
    case ValidationResult::Kind::kFailed:
      // The delivery thread already aborted the DB transaction.
      return Status::Conflict("global validation failed for " +
                              txn.gid.ToString());
    case ValidationResult::Kind::kCrashed:
      return Status::Unavailable("replica crashed during commit of " +
                                 txn.gid.ToString());
    case ValidationResult::Kind::kValidated:
      break;
  }

  // §5.4 case 3b, latest possible instant: globally validated everywhere
  // but crashed before the local database commit. Survivors committed it;
  // the client's resolver must still find kCommitted.
  if (SIREP_FAILPOINT_HIT("mw.commit.crash.before_local_commit").fired) {
    Crash();
    return Status::Unavailable("injected crash before local commit of " +
                               txn.gid.ToString());
  }

  // Step III for a local transaction: validation guarantees no
  // conflicting transaction sits before us in the queue, so we commit
  // immediately (Adjustment 2); the hole gate never applies to local
  // transactions, but the commit is recorded atomically with the hole
  // bookkeeping.
  if (trace != nullptr) trace->Begin(obs::Stage::kCommit);
  uint64_t wal_ticket = 0;
  Status st = holes_.RecordCommit(
      result.tid, [&] { return db_->Commit(txn.db_txn, &wal_ticket); });
  // Group-commit durability wait, outside the hole mutex so concurrent
  // committers share one flush; the client is only acked after this.
  if (st.ok()) st = db_->WaitWalDurable(wal_ticket);
  if (trace != nullptr) trace->End(obs::Stage::kCommit);
  tocommit_queue_.Remove(result.tid);
  MarkLocallyCommitted(txn.gid);
  ScheduleAppliers();
  if (st.ok()) {
    c_committed_->Increment();
    if (trace != nullptr) trace->Flush(stage_hists_);
  }
  return st;
}

namespace {
constexpr char kRecoveryRequestType[] = "recovery_request";
}  // namespace

void SrcaRepReplica::OnDeliver(const gcs::Message& message) {
  if (shutdown_.load(std::memory_order_acquire)) return;
  if (message.type == kRecoveryRequestType) {
    HandleRecoveryRequest(message);
    return;
  }
  if (message.type != kWriteSetMessageType &&
      message.type != kDdlMessageType) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(buffer_mu_);
    if (delivery_mode_ == DeliveryMode::kBuffering) {
      // Before our own recovery marker the donor's stream covers the
      // message; after it, we replay it ourselves once caught up.
      if (fence_seen_) {
        buffered_.push_back(message);
        const size_t depth = buffered_.size();
        g_rec_buffered_msgs_->Set(static_cast<int64_t>(depth));
        if (spill_enabled_ && depth >= buffer_hwm_) {
          // Backpressure: instead of growing without bound under heavy
          // live traffic, drop the buffer and the fence wholesale. The
          // recoverer observes buffer_spilled_ and re-anchors at a
          // fresh marker whose donation covers everything dropped here
          // — nothing is lost, only the transfer tail is repeated.
          // Each spill doubles the allowance for the next attempt:
          // under sustained delivery pressure a fixed mark could spill
          // every re-anchor forever, so the bound escalates until one
          // transfer outruns the live stream (memory stays bounded —
          // the mark at most doubles per attempt, and attempts are
          // capped).
          buffered_.clear();
          fence_seen_ = false;
          buffer_spilled_ = true;
          buffer_hwm_ *= 2;
          c_rec_buffer_spills_->Increment();
          g_rec_buffered_msgs_->Set(0);
          flight_.Record(obs::FlightEventType::kQueueHighWater,
                         member_id(), depth, buffer_hwm_,
                         "mw.recovery.buffer");
          flight_.Record(obs::FlightEventType::kRecovery, member_id(),
                         current_transfer_id_, depth, "buffer_spill");
          buffer_cv_.notify_all();
        }
      }
      return;
    }
  }
  if (message.type == kDdlMessageType) {
    ProcessDdl(message);
  } else {
    ProcessWriteSet(message);
  }
}

void SrcaRepReplica::ProcessWriteSet(const gcs::Message& message) {
  obs::Profiler::Section section("mw.process_writeset");
  // "mw.validate" is a delay-only hook: stretches the validation stage
  // on the delivery thread so chaos schedules can pile up the tocommit
  // queue and widen crash windows (error verdicts are ignored —
  // validation decisions must stay identical across replicas).
  SIREP_FAILPOINT_HIT("mw.validate");
  const auto* msg = message.As<WriteSetMessage>();
  const bool is_local = msg->gid.replica == member_id();
  const uint64_t arrival_ns = obs::MonotonicNanos();
  // Prefer the payload-level context (it survives codec round-trips);
  // the frame-level copy covers payloads that never carried one.
  const obs::TraceContext& ctx =
      msg->trace.valid() ? msg->trace : message.trace;

  // Origin-tagged trace for a traced *remote* writeset: the spans this
  // replica records (validate, apply, commit, the cross-replica lags)
  // all land under the originating transaction's trace id.
  std::shared_ptr<obs::TxnTrace> rtrace;
  if (!is_local && ctx.valid()) {
    // NTP-style clock-offset lower bound: the minimum observed
    // (arrival - origin send) across all traced deliveries.
    const int64_t delta =
        static_cast<int64_t>(arrival_ns) -
        static_cast<int64_t>(ctx.origin_mono_ns);
    int64_t prev = clock_offset_ns_.load(std::memory_order_relaxed);
    while (delta < prev && !clock_offset_ns_.compare_exchange_weak(
                               prev, delta, std::memory_order_relaxed)) {
    }
    const int64_t offset = std::min(prev, delta);
    g_clock_offset_ns_->Set(offset);
    rtrace = std::make_shared<obs::TxnTrace>();
    rtrace->SetId(ctx.ToString());
    rtrace->SetContext(ctx);
    // Zero for the delivery that set the offset bound itself: every
    // traced delivery contributes a sample so the histogram's count
    // (and p50) reflects all of them, not just the laggards.
    rtrace->Add(obs::Stage::kDeliverySkew,
                delta > offset ? static_cast<uint64_t>(delta - offset)
                               : 0);
  }

  // Partial replication: decide up front whether this replica applies
  // the writeset or only certifies it. The decision keys on the
  // partition mask against our held set — not on payload presence:
  // batching (and epoch-conservative senders) may deliver full payloads
  // to non-holders, and those must still take the bookkeeping path so
  // non-held rows stay untouched (the misroute-abort safety argument
  // depends on them being stale, never deleted, never updated).
  const cluster::PartitionMap* const pmap = options_.partition_map.get();
  const bool have_payload = msg->ws != nullptr;
  bool holds_any = true;
  bool holds_all = true;
  uint64_t held_mask = ~uint64_t{0};
  if (pmap != nullptr && pmap->partial() && msg->partition_mask != 0 &&
      msg->epoch == pmap->epoch()) {
    // An epoch-mismatched mask was computed under a different layout and
    // is not trusted: the defaults above mean full-payload semantics
    // (apply whatever rows arrived). Extra rows at a "non-holder" are
    // harmless — exactly the stale copies non-held rows are allowed to
    // be; skipping an apply we actually hold would be the unsafe
    // direction.
    held_mask = pmap->HeldMask(options_.partition_slot);
    holds_any = (msg->partition_mask & held_mask) != 0;
    holds_all = (msg->partition_mask & ~held_mask) == 0;
  }
  if (!have_payload && holds_any && pmap != nullptr &&
      msg->epoch == pmap->epoch()) {
    // We hold a partition of this writeset but the sender stripped our
    // payload: the shared routing directory and our held mask disagree,
    // which only a mid-flight Resize() race can produce. We can certify
    // but not apply — continuing would silently diverge this replica's
    // rows from its co-holders', so crash instead (recovery re-seeds
    // us; non-holders advanced past this message unharmed).
    SIREP_ELOG << "replica " << member_id()
               << " received header-only writeset " << msg->gid.ToString()
               << " for held partitions (mask " << msg->partition_mask
               << ", held " << held_mask << "); crashing self";
    Crash();
    return;
  }
  const bool apply_here = have_payload && holds_any;

  bool conflict;
  uint64_t tid = 0;
  storage::TupleId conflict_key;
  uint64_t conflict_digest = 0;
  size_t ws_list_size = 0;
  {
    // Step II: global validation, in delivery order (the total order makes
    // every replica take the same decision here).
    std::lock_guard<std::mutex> lock(wsmutex_);
    if (!ws_index_.empty() && msg->cert + 1 < ws_index_.MinRetainedTid()) {
      // The cert predates our retained window (an extremely lagged
      // sender). We cannot check exactly — abort conservatively. All
      // replicas share the window size and delivery order, so they all
      // take this branch identically.
      SIREP_WLOG << "ws_list window underrun for " << msg->gid.ToString()
                 << " (cert " << msg->cert << " < min retained "
                 << ws_index_.MinRetainedTid() << ")";
      conflict = true;
    } else if (have_payload) {
      conflict = ws_index_.ConflictsAfter(msg->cert, *msg->ws, &conflict_key);
    } else {
      // Header-only variant: the digest probe is decision-equivalent to
      // the tuple probe (the index keys on digests either way), so
      // holders and non-holders reach the same verdict.
      conflict = ws_index_.ConflictsAfterDigests(msg->cert, msg->digests,
                                                 &conflict_digest);
    }
    if (!conflict) {
      tid = ++lastvalidated_tid_;
      // Every replica appends the digests of every validated message —
      // windows, MinRetainedTid and future verdicts stay identical
      // cluster-wide whether or not the rows are here.
      std::vector<uint64_t> digests = have_payload
                                          ? ShardedWsIndex::DigestsOf(*msg->ws)
                                          : msg->digests;
      ws_index_.AppendDigests(tid, digests, msg->ws);
      if (options_.ws_log_capacity > 0) {
        LogEntry log_entry;
        log_entry.tid = tid;
        log_entry.gid = msg->gid;
        log_entry.ws = msg->ws;  // null for header-only entries
        log_entry.digests = std::move(digests);
        log_entry.partition_mask = msg->partition_mask;
        ws_log_.push_back(std::move(log_entry));
        while (ws_log_.size() > options_.ws_log_capacity) {
          ws_log_.pop_front();
        }
      }
      holes_.NoteValidated(tid);
      if (rtrace != nullptr) {
        // Last write before publication: Append hands the trace to an
        // applier thread (the queue's lock orders that handoff), so the
        // validation span must land before the entry becomes visible.
        rtrace->Add(obs::Stage::kGlobalValidate,
                    obs::MonotonicNanos() - arrival_ns);
      }
      if (is_local || apply_here) {
        ToCommitEntry entry;
        entry.tid = tid;
        entry.gid = msg->gid;
        entry.local = is_local;
        entry.ws = msg->ws;
        if (!is_local && !holds_all) {
          // Partially held (a cross-group writeset from a full-mask
          // origin): apply only the sub-writeset that lands in our
          // partitions. The rest belongs to other groups and must stay
          // untouched here.
          auto filtered = std::make_shared<storage::WriteSet>();
          for (const auto& we : msg->ws->entries()) {
            const uint64_t digest =
                cluster::PartitionMap::TupleDigest(we.tuple);
            const size_t partition = pmap->PartitionOfDigest(digest);
            if ((held_mask >> partition) & 1) {
              filtered->Record(we.tuple, we.op, we.after);
            }
          }
          entry.ws = std::move(filtered);
          c_partial_filtered_applies_->Increment();
        }
        // Local entries are committed by the waiting client thread.
        entry.dispatched = is_local;
        entry.delivered_ns = arrival_ns;
        entry.trace = rtrace;
        tocommit_queue_.Append(std::move(entry));
      } else {
        // Non-holder: certification done, nothing to apply. Commit the
        // tid slot instantly (mirrors ProcessDdl) so the hole tracker
        // and stable prefix advance exactly as at holders.
        holes_.RecordCommit(tid, [] { return 0; });
      }
    }
    ws_list_size = ws_index_.size();
  }
  const uint64_t validate_ns = obs::MonotonicNanos() - arrival_ns;

  // Pipeline-depth gauges, sampled on every delivery (the fig5/fig8
  // saturation signals: queue backlog, validation window, hole set).
  const uint64_t depth = tocommit_queue_.size();
  g_tocommit_depth_->Set(static_cast<int64_t>(depth));
  g_ws_list_size_->Set(static_cast<int64_t>(ws_list_size));
  g_holes_outstanding_->Set(
      static_cast<int64_t>(holes_.OutstandingCount()));
  uint64_t hw = queue_high_water_.load(std::memory_order_relaxed);
  while (depth > hw && !queue_high_water_.compare_exchange_weak(
                           hw, depth, std::memory_order_relaxed)) {
  }
  if (depth > hw && depth >= 16 && depth >= 2 * hw) {
    flight_.Record(obs::FlightEventType::kQueueHighWater, member_id(),
                   depth, hw, "mw.tocommit");
  }
  if (conflict) {
    flight_.Record(obs::FlightEventType::kValidation, member_id(),
                   msg->gid.seq, msg->gid.replica,
                   !conflict_key.table.empty()
                       ? conflict_key.ToString()
                       : conflict_digest != 0
                             ? "digest " + std::to_string(conflict_digest)
                             : "cert window underrun");
  }

  RecordOutcome(msg->gid, /*committed=*/!conflict);

  if (is_local) {
    std::shared_ptr<PendingLocal> pending;
    {
      std::lock_guard<std::mutex> plock(pending_mu_);
      auto it = pending_.find(msg->gid);
      if (it != pending_.end()) {
        pending = it->second;
        pending_.erase(it);
      }
    }
    if (pending != nullptr) {
      if (pending->trace != nullptr) {
        // The sender's multicast span ends when the message reached this
        // (= its own) replica; validation time is charged separately.
        // Safe without atomics: the client thread stopped touching the
        // trace before the group enqueue that delivered this message,
        // and only resumes after pending->cv signals done.
        pending->trace->EndAt(obs::Stage::kMulticast, arrival_ns);
        pending->trace->Add(obs::Stage::kGlobalValidate, validate_ns);
        // Sequencer/batching wait: group enqueue at the origin until
        // total-order delivery back at the origin (same clock, so no
        // skew correction needed).
        if (message.enqueue_ns != 0 && arrival_ns > message.enqueue_ns) {
          pending->trace->Add(obs::Stage::kSequencerQueue,
                              arrival_ns - message.enqueue_ns);
        }
      }
      if (conflict) {
        db_->Abort(pending->db_txn);
        c_global_val_aborts_->Increment();
      }
      std::lock_guard<std::mutex> lock(pending->mu);
      pending->done = true;
      pending->result.kind = conflict ? ValidationResult::Kind::kFailed
                                      : ValidationResult::Kind::kValidated;
      pending->result.tid = tid;
      pending->cv.notify_all();
    }
    // else: the client gave up (crash path) — nothing to do.
  } else {
    if (rtrace == nullptr) {
      // Untraced remote writeset (v1 wire, or an untracing origin): its
      // validation cost goes straight into the stage histogram.
      stage_hists_.stage[static_cast<int>(obs::Stage::kGlobalValidate)]
          ->Observe(obs::NanosToUs(validate_ns));
    }
    if (conflict) {
      c_remote_discards_->Increment();
      // A discarded writeset never reaches ApplyRemote, so the trace was
      // never shared with an applier: record the validation span and
      // flush what we have (delivery skew + validation) now.
      if (rtrace != nullptr) {
        rtrace->Add(obs::Stage::kGlobalValidate, validate_ns);
        rtrace->Flush(stage_hists_);
      }
    } else if (apply_here) {
      ScheduleAppliers();
    } else {
      // Non-holder bookkeeping commit: the tid slot was closed under
      // wsmutex_ (which already re-ran the dispatch scan via the hole
      // listener); finish the outcome record so fail-over inquiries
      // terminate here too.
      MarkLocallyCommitted(msg->gid);
      c_partial_header_commits_->Increment();
      if (rtrace != nullptr) rtrace->Flush(stage_hists_);
    }
  }
}

void SrcaRepReplica::ScheduleAppliers() {
  if (shutdown_.load(std::memory_order_acquire) || !IsAlive()) return;
  // Adjustment 3's gate is applied here, *before* the remote transaction
  // begins and acquires locks (paper §4.3.3's hidden-deadlock argument).
  size_t deferred = 0;
  auto ready = tocommit_queue_.TakeDispatchableRemotes(
      [this](uint64_t tid) { return holes_.GateOpen(tid, false); },
      &deferred);
  g_tocommit_depth_->Set(static_cast<int64_t>(tocommit_queue_.size()));
  for (size_t i = 0; i < deferred; ++i) holes_.CountDeferredCommit();
  for (auto& entry : ready) {
    pipeline_->Dispatch(std::move(entry));
  }
}

void SrcaRepReplica::ApplyRemote(ToCommitEntry entry) {
  obs::Profiler::Section section("mw.apply_remote");
  // Step III for a remote transaction: apply the writeset, then commit.
  // Deadlocks with local transactions are possible (paper §4.2) — the
  // database aborts one side; if it was us, retry until success. A
  // version-check conflict can only be transient here (the conflicting
  // local transaction is guaranteed to fail validation and abort).
  //
  // kApplyParallelism samples the number of concurrent ApplyRemote
  // calls at each apply start — a direct histogram observation, not a
  // TxnTrace span (Flush would misinterpret the count as nanoseconds).
  const int64_t inflight =
      applies_inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  stage_hists_.stage[static_cast<int>(obs::Stage::kApplyParallelism)]
      ->Observe(static_cast<double>(inflight));
  struct InflightGuard {
    std::atomic<int64_t>* counter;
    ~InflightGuard() { counter->fetch_sub(1, std::memory_order_relaxed); }
  } inflight_guard{&applies_inflight_};
  obs::TxnTrace* const rtrace = entry.trace.get();
  while (!shutdown_.load(std::memory_order_acquire) && IsAlive()) {
    auto txn = db_->Begin();
    // "mw.apply" injects transient failures (e.g. 1in(4,error(deadlock)))
    // through the same retry loop a real deadlock with a local
    // transaction exercises.
    Status st = failpoint::AnyArmed() ? failpoint::EvalStatus("mw.apply")
                                      : Status::OK();
    if (st.ok()) {
      // With an origin-tagged trace, apply/commit spans accumulate there
      // (flushed once at commit, retries included); without one they go
      // straight into the stage histograms, one observation per attempt.
      if (rtrace != nullptr) rtrace->Begin(obs::Stage::kApply);
      obs::ScopedLatency apply_timer(
          rtrace != nullptr
              ? nullptr
              : stage_hists_.stage[static_cast<int>(obs::Stage::kApply)]);
      st = db_->ApplyWriteSet(txn, *entry.ws);
      apply_timer.Stop();
      if (rtrace != nullptr) rtrace->End(obs::Stage::kApply);
    }
    if (st.ok()) {
      if (rtrace != nullptr) rtrace->Begin(obs::Stage::kCommit);
      obs::ScopedLatency commit_timer(
          rtrace != nullptr
              ? nullptr
              : stage_hists_.stage[static_cast<int>(obs::Stage::kCommit)]);
      uint64_t wal_ticket = 0;
      st = holes_.RecordCommit(entry.tid,
                               [&] { return db_->Commit(txn, &wal_ticket); });
      // Durability wait outside the hole mutex: parallel appliers pile
      // their records into one group flush instead of serializing on it.
      if (st.ok()) st = db_->WaitWalDurable(wal_ticket);
      commit_timer.Stop();
      if (rtrace != nullptr) rtrace->End(obs::Stage::kCommit);
      if (st.ok()) {
        tocommit_queue_.Remove(entry.tid);
        MarkLocallyCommitted(entry.gid);
        c_committed_->Increment();
        if (rtrace != nullptr) {
          const uint64_t now = obs::MonotonicNanos();
          // Delivery here -> committed here: tocommit queueing + apply.
          if (entry.delivered_ns != 0 && now > entry.delivered_ns) {
            rtrace->Add(obs::Stage::kRemoteApplyLag,
                        now - entry.delivered_ns);
          }
          // Origin multicast send -> visible at this replica (raw
          // cross-clock difference; the clock-offset gauge lets readers
          // correct it on clock-skewed deployments).
          const auto& octx = rtrace->context();
          if (octx.origin_mono_ns != 0 && now > octx.origin_mono_ns) {
            rtrace->Add(obs::Stage::kSnapshotStaleness,
                        now - octx.origin_mono_ns);
          }
          rtrace->Flush(stage_hists_);
        }
        ScheduleAppliers();
        return;
      }
    }
    db_->Abort(txn);
    if (st.code() == StatusCode::kDeadlock ||
        st.code() == StatusCode::kConflict ||
        st.code() == StatusCode::kAborted) {
      c_apply_retries_->Increment();
      std::this_thread::yield();
      continue;
    }
    SIREP_ELOG << "unretryable writeset apply failure for "
               << entry.gid.ToString() << ": " << st.ToString();
    holes_.Discard(entry.tid);
    tocommit_queue_.Remove(entry.tid);
    return;
  }
  // Crashed/shutting down: release bookkeeping so nothing waits forever.
  holes_.Discard(entry.tid);
}

void SrcaRepReplica::HandleRecoveryRequest(const gcs::Message& message) {
  const auto* req = message.As<RecoveryRequest>();
  if (req->requester == member_id()) {
    // Our own marker: everything delivered from here on is ours to
    // replay; everything before is covered by the donor's stream. Only
    // the current attempt's marker arms the fence — a marker from an
    // abandoned attempt delivered late must not, or pre-marker messages
    // of the live attempt would be double-validated after adoption.
    std::lock_guard<std::mutex> lock(buffer_mu_);
    if (req->transfer_id == current_transfer_id_) {
      fence_seen_ = true;
      buffer_cv_.notify_all();
    }
    return;
  }
  if (req->donor != member_id() || req->channel == nullptr) return;

  const auto refuse = [&](Status status) {
    RecoveryChunk chunk;
    chunk.status = std::move(status);
    chunk.transfer_id = req->transfer_id;
    {
      std::lock_guard<std::mutex> lock(req->channel->mu);
      req->channel->chunks.push_back(std::move(chunk));
      req->channel->closed = true;
    }
    req->channel->cv.notify_all();
  };
  if (!IsAcceptingClients()) {
    // A replica that is itself recovering (or shutting down) has stale
    // state and must not donate.
    refuse(Status::Unavailable("chosen donor is not live"));
    return;
  }
  if (options_.ws_log_capacity == 0) {
    refuse(Status::NotSupported("this replica keeps no writeset log"));
    return;
  }
  // Partial replication: a donor can only re-seed rows it holds. When it
  // does not cover everything the requester needs, it refuses — unless
  // the requester explicitly accepts a partial (bookkeeping-only)
  // donation, which cluster::Cluster only authorizes for the
  // longest-prefix member of a whole-down group (its own rows are
  // already complete for the unserved partitions).
  uint64_t served_mask = ~uint64_t{0};
  if (options_.partition_map != nullptr &&
      options_.partition_map->partial()) {
    const cluster::PartitionMap& map = *options_.partition_map;
    const uint64_t donor_held = map.HeldMask(options_.partition_slot);
    const uint64_t needed =
        req->needed_mask != 0
            ? req->needed_mask
            : cluster::PartitionMap::FullMask(map.num_partitions());
    if ((needed & ~donor_held) != 0 && !req->allow_partial) {
      refuse(Status::Unavailable(
          "chosen donor does not hold the requester's partitions"));
      return;
    }
    served_mask = donor_held & needed;
  }

  // Donor side: snapshot the donation plan exactly at the marker point
  // of the total order (we are on the delivery thread, so every earlier
  // message has been fully validated). Chunk materialization happens on
  // a streamer thread; the dump transaction pins the marker-consistent
  // MVCC snapshot, so its lazy table scans still observe marker state.
  auto plan = std::make_shared<DonorPlan>();
  plan->transfer_id = req->transfer_id;
  plan->channel = req->channel;
  plan->served_mask = served_mask;
  {
    std::lock_guard<std::mutex> lock(wsmutex_);
    plan->lastvalidated = lastvalidated_tid_;
    plan->ws_window = ws_index_.Snapshot();
    // The tid floor our log must reach back to. While the requester has
    // a full copy in flight we must keep serving that copy's base: its
    // finished tables are consistent only against that base, whoever
    // dumped them.
    const uint64_t floor =
        req->cursor.full_copy_started
            ? req->cursor.full_copy_base
            : std::max(req->from_tid, req->cursor.applied_tid);
    // An empty log covers nothing: it "reaches" the floor only when
    // there is nothing after the floor to send at all. (A bootstrapped
    // replica has lastvalidated > 0 with an empty log, so the old
    // `empty == reaches-everything` shortcut would silently skip the
    // suffix and diverge the requester.)
    const bool reaches = ws_log_.empty()
                             ? floor >= lastvalidated_tid_
                             : floor + 1 >= ws_log_.front().tid;
    if (reaches && req->cursor.full_copy_started) {
      // Resume the previous donor's copy: same base, remaining tables;
      // idempotent full-row replay of (base, now] reconciles whatever
      // the earlier snapshot and ours disagree on.
      plan->full_copy = true;
      plan->full_copy_base = req->cursor.full_copy_base;
    } else if (reaches) {
      // Incremental catch-up: the log suffix alone suffices.
    } else {
      // The log no longer reaches back to the requester's floor: fall
      // back to a fresh full-state transfer (the paper's "complete
      // database copy", done online at the marker). The copy includes
      // every commit up to our stable prefix; the log tail covers the
      // validated-but-uncommitted remainder (idempotent to re-apply).
      const uint64_t stable = holes_.StablePrefix();
      const bool log_covers_tail = ws_log_.empty()
                                       ? stable >= lastvalidated_tid_
                                       : stable + 1 >= ws_log_.front().tid;
      if (!log_covers_tail) {
        refuse(Status::Internal(
            "writeset log smaller than the commit pipeline; increase "
            "ws_log_capacity"));
        return;
      }
      plan->full_copy = true;
      plan->full_copy_restart = req->cursor.full_copy_started;
      plan->full_copy_base = stable;
    }
    const uint64_t log_floor =
        plan->full_copy
            ? plan->full_copy_base
            : std::max(req->from_tid, req->cursor.applied_tid);
    for (const auto& entry : ws_log_) {
      if (entry.tid > log_floor) plan->log_suffix.push_back(entry);
    }
    if (plan->full_copy) {
      std::set<std::string> done(req->cursor.tables_done.begin(),
                                 req->cursor.tables_done.end());
      if (plan->full_copy_restart) done.clear();
      for (const auto& table : db_->engine().TableNames()) {
        if (done.count(table) == 0) plan->tables.push_back(table);
      }
      plan->dump_txn = db_->Begin();
    }
  }
  flight_.Record(obs::FlightEventType::kRecovery, member_id(),
                 plan->transfer_id, req->requester, "donate");
  {
    std::lock_guard<std::mutex> lock(streamers_mu_);
    if (shutdown_.load(std::memory_order_acquire)) {
      if (plan->dump_txn != nullptr) db_->Abort(plan->dump_txn);
      refuse(Status::Unavailable("donor shutting down"));
      return;
    }
    streamers_.emplace_back(
        [this, plan] { StreamRecoveryChunks(std::move(plan)); });
  }
}

void SrcaRepReplica::StreamRecoveryChunks(std::shared_ptr<DonorPlan> plan) {
  const auto channel = plan->channel;
  // Abort the dump snapshot whichever way this thread exits.
  struct DumpGuard {
    engine::Database* db;
    storage::TransactionPtr txn;
    ~DumpGuard() {
      if (txn != nullptr) db->Abort(txn);
    }
  } dump_guard{db_, plan->dump_txn};

  const auto close = [&] {
    {
      std::lock_guard<std::mutex> lock(channel->mu);
      channel->closed = true;
    }
    channel->cv.notify_all();
  };
  uint32_t index = 0;
  bool silent_stop = false;
  // Pushes one chunk, honoring the queue bound and the recoverer's
  // abandonment; returning false stops the stream.
  const auto send = [&](RecoveryChunk chunk) -> bool {
    // "mw.recovery.stall" stretches the inter-chunk gap (delay-only
    // hook); "mw.recovery.chunk_drop" loses this chunk and everything
    // after it *without* closing the channel, so the recoverer must
    // detect the stall through its per-chunk deadline.
    SIREP_FAILPOINT_HIT("mw.recovery.stall");
    if (SIREP_FAILPOINT_HIT("mw.recovery.chunk_drop").fired) {
      silent_stop = true;
      return false;
    }
    chunk.transfer_id = plan->transfer_id;
    chunk.index = index++;
    const size_t bytes = chunk.approx_bytes;
    {
      std::unique_lock<std::mutex> lock(channel->mu);
      while (channel->chunks.size() >= channel->capacity &&
             !channel->abandoned) {
        if (shutdown_.load(std::memory_order_acquire) || !IsAlive()) {
          return false;
        }
        channel->cv.wait_for(lock, std::chrono::milliseconds(50));
      }
      if (channel->abandoned) return false;
      channel->chunks.push_back(std::move(chunk));
    }
    channel->cv.notify_all();
    c_rec_chunks_sent_->Increment();
    c_rec_bytes_sent_->Add(bytes);
    // Crash *after* the chunk is out: the recoverer observes a genuine
    // partial transfer and must fail over to another donor.
    if (SIREP_FAILPOINT_HIT("mw.recovery.donor_crash_mid_transfer").fired) {
      close();
      Crash();
      silent_stop = true;  // channel already closed
      return false;
    }
    return true;
  };

  bool ok;
  {
    RecoveryChunk meta;
    meta.has_meta = true;
    meta.lastvalidated = plan->lastvalidated;
    meta.ws_window = std::move(plan->ws_window);
    meta.served_mask = plan->served_mask;
    meta.full_copy = plan->full_copy;
    meta.full_copy_restart = plan->full_copy_restart;
    meta.full_copy_base = plan->full_copy_base;
    meta.approx_bytes = 64 + meta.ws_window.size() * 128;
    ok = send(std::move(meta));
  }
  // Table dumps (full copy), one table at a time: streamer memory is
  // bounded by the largest table, not the whole database.
  for (size_t t = 0; ok && t < plan->tables.size(); ++t) {
    const std::string& table = plan->tables[t];
    storage::MvccTable* mvcc = db_->engine().GetTable(table);
    if (mvcc == nullptr) continue;
    const sql::Schema schema = mvcc->schema();
    std::vector<sql::Row> rows;
    // Partial donation: dump only the rows of the served partitions.
    // The donor's rows for other partitions are stale non-held copies
    // and must never be presented as authoritative.
    const cluster::PartitionMap* const pmap = options_.partition_map.get();
    const bool filter_rows = plan->served_mask != ~uint64_t{0} &&
                             pmap != nullptr;
    Status scan = db_->engine().Scan(
        plan->dump_txn, table,
        [&](const sql::Key& key, const sql::Row& row) {
          if (filter_rows) {
            const size_t partition = pmap->PartitionOf({table, key});
            if (((plan->served_mask >> partition) & 1) == 0) return;
          }
          rows.push_back(row);
        });
    if (!scan.ok()) {
      RecoveryChunk failed;
      failed.status = scan;
      failed.transfer_id = plan->transfer_id;
      {
        // Error chunks bypass the capacity bound (at most one extra
        // entry) so a failing scan is always reported.
        std::lock_guard<std::mutex> lock(channel->mu);
        channel->chunks.push_back(std::move(failed));
      }
      channel->cv.notify_all();
      ok = false;
      break;
    }
    size_t offset = 0;
    bool first = true;
    do {
      const size_t n =
          std::min(options_.recovery_chunk_rows, rows.size() - offset);
      RecoveryChunk chunk;
      chunk.table = table;
      chunk.schema = schema;
      chunk.table_begin = first;
      chunk.table_complete = offset + n == rows.size();
      chunk.rows.assign(rows.begin() + static_cast<long>(offset),
                        rows.begin() + static_cast<long>(offset + n));
      chunk.approx_bytes = 32 + chunk.rows.size() * 64;
      first = false;
      offset += n;
      ok = send(std::move(chunk));
    } while (ok && offset < rows.size());
  }
  // Log suffix.
  for (size_t offset = 0; ok && offset < plan->log_suffix.size();
       offset += options_.recovery_chunk_rows) {
    const size_t n = std::min(options_.recovery_chunk_rows,
                              plan->log_suffix.size() - offset);
    RecoveryChunk chunk;
    chunk.log.assign(plan->log_suffix.begin() + static_cast<long>(offset),
                     plan->log_suffix.begin() + static_cast<long>(offset + n));
    chunk.approx_bytes = chunk.log.size() * 160;
    ok = send(std::move(chunk));
  }
  if (ok) {
    RecoveryChunk fin;
    fin.final_chunk = true;
    ok = send(std::move(fin));
  }
  if (!silent_stop) close();
}

Status SrcaRepReplica::ApplyRecoveryLogEntry(const LogEntry& entry) {
  if (!entry.ddl.empty()) {
    // Replicated DDL at this position. AlreadyExists is fine (a
    // restarted replica's schema survived the crash, or an earlier
    // donor's chunks already shipped it).
    auto r = db_->ExecuteAutoCommit(entry.ddl);
    if (!r.ok() && r.status().code() != StatusCode::kAlreadyExists) {
      return Status::Internal("recovery DDL replay failed: " +
                              r.status().ToString());
    }
    return Status::OK();
  }
  // A null writeset on a non-DDL entry is a header-only certification
  // the donor itself never held rows for: replaying it is pure
  // bookkeeping (the outcome records below), exactly as it was at every
  // non-holder when the message was live.
  std::shared_ptr<const storage::WriteSet> to_apply = entry.ws;
  const cluster::PartitionMap* const pmap = options_.partition_map.get();
  if (to_apply != nullptr && pmap != nullptr && pmap->partial() &&
      entry.partition_mask != 0) {
    // Replay only our held sub-writeset, mirroring the live apply
    // decision — a full-payload entry in a donor's log may span
    // partitions this replica does not hold.
    const uint64_t held = pmap->HeldMask(options_.partition_slot);
    if ((entry.partition_mask & held) == 0) {
      to_apply = nullptr;
    } else if ((entry.partition_mask & ~held) != 0) {
      auto filtered = std::make_shared<storage::WriteSet>();
      for (const auto& we : to_apply->entries()) {
        const size_t partition = pmap->PartitionOf(we.tuple);
        if ((held >> partition) & 1) filtered->Record(we.tuple, we.op, we.after);
      }
      to_apply = filtered->empty() ? nullptr : std::move(filtered);
    }
  }
  while (to_apply != nullptr) {
    auto txn = db_->Begin();
    Status st = db_->ApplyWriteSet(txn, *to_apply);
    if (st.ok()) st = db_->Commit(txn);
    if (st.ok()) break;
    db_->Abort(txn);
    if (!st.IsTransactionFailure()) {
      return Status::Internal("recovery replay failed at tid " +
                              std::to_string(entry.tid) + ": " +
                              st.ToString());
    }
  }
  RecordOutcome(entry.gid, /*committed=*/true);
  MarkLocallyCommitted(entry.gid);
  return Status::OK();
}

Status SrcaRepReplica::ApplyRecoveryChunk(const RecoveryChunk& chunk,
                                          RecoveryProgress* progress) {
  if (chunk.has_meta) {
    progress->have_meta = true;
    progress->lastvalidated = chunk.lastvalidated;
    progress->ws_window = chunk.ws_window;
    progress->served_mask = chunk.served_mask;
    if (chunk.full_copy) {
      if (chunk.full_copy_restart ||
          (progress->cursor.full_copy_started &&
           progress->cursor.full_copy_base != chunk.full_copy_base)) {
        // This donor could not resume the previous copy: its dump uses
        // a new base, so partially transferred tables and adopted log
        // entries against the old base are discarded. The database
        // rows themselves need no undo — the new dump plus the
        // delete-sweep overwrites them.
        progress->cursor.tables_done.clear();
        progress->adopted_log.clear();
      }
      progress->cursor.full_copy_started = true;
      progress->cursor.full_copy_base = chunk.full_copy_base;
    }
    progress->table_active = false;
    return Status::OK();
  }
  if (chunk.final_chunk) return Status::OK();

  if (!chunk.table.empty()) {
    // Full-copy table rows: overwrite every dumped row; at
    // table_complete delete everything local the donor no longer has.
    storage::MvccTable* table = db_->engine().GetTable(chunk.table);
    if (chunk.table_begin) {
      if (table == nullptr) {
        // The table was created via replicated DDL we never saw: create
        // it from the shipped schema.
        SIREP_RETURN_IF_ERROR(
            db_->engine().CreateTable(chunk.table, chunk.schema));
        table = db_->engine().GetTable(chunk.table);
      }
      progress->table_active = true;
      progress->table = chunk.table;
      progress->leftover_keys.clear();
      auto view_txn = db_->Begin();
      Status scan = db_->engine().Scan(
          view_txn, chunk.table,
          [&](const sql::Key& key, const sql::Row&) {
            progress->leftover_keys.insert(key);
          });
      db_->Abort(view_txn);
      if (!scan.ok()) return scan;
    }
    if (table == nullptr || !progress->table_active ||
        progress->table != chunk.table) {
      return Status::Internal("recovery table chunk out of order for '" +
                              chunk.table + "'");
    }
    storage::WriteSet sync;
    for (const auto& row : chunk.rows) {
      const sql::Key key = table->schema().KeyOf(row);
      progress->leftover_keys.erase(key);
      sync.Record({chunk.table, key}, storage::WriteOp::kUpdate, row);
    }
    if (chunk.table_complete) {
      // Delete-sweep, restricted to the partitions this donation served:
      // local rows of unserved partitions were deliberately absent from
      // the dump, and non-held rows (kept stale by design — the
      // misroute-abort guard depends on them existing) must survive
      // every recovery untouched.
      const cluster::PartitionMap* const pmap =
          options_.partition_map.get();
      const bool filter_sweep = progress->served_mask != ~uint64_t{0};
      for (const auto& key : progress->leftover_keys) {
        if (filter_sweep) {
          if (pmap == nullptr) continue;  // cannot attribute: keep the row
          const size_t partition = pmap->PartitionOf({chunk.table, key});
          if (((progress->served_mask >> partition) & 1) == 0) continue;
        }
        sync.Record({chunk.table, key}, storage::WriteOp::kDelete, {});
      }
    }
    if (!sync.empty()) {
      auto txn = db_->Begin();
      Status st = db_->ApplyWriteSet(txn, sync);
      if (st.ok()) st = db_->Commit(txn);
      if (!st.ok()) {
        db_->Abort(txn);
        return Status::Internal("full-copy import failed for table '" +
                                chunk.table + "': " + st.ToString());
      }
    }
    if (chunk.table_complete) {
      progress->table_active = false;
      progress->leftover_keys.clear();
      progress->cursor.tables_done.push_back(chunk.table);
    }
    return Status::OK();
  }

  // Log-suffix entries: apply the ones we have not applied yet (nobody
  // else touches this DB — no clients, no appliers — and re-applying
  // writesets a previous incarnation committed is idempotent), record
  // all of them for ws_log_ adoption.
  for (const auto& entry : chunk.log) {
    if (entry.tid > progress->cursor.applied_tid) {
      SIREP_RETURN_IF_ERROR(ApplyRecoveryLogEntry(entry));
      progress->cursor.applied_tid = entry.tid;
    }
    progress->adopted_log[entry.tid] = entry;
  }
  return Status::OK();
}

Status SrcaRepReplica::Recover(uint64_t from_tid,
                               std::chrono::milliseconds timeout,
                               bool allow_partial) {
  if (!IsAlive()) return Status::Unavailable("replica crashed");
  {
    std::lock_guard<std::mutex> lock(buffer_mu_);
    if (delivery_mode_ != DeliveryMode::kBuffering) {
      return Status::InvalidArgument(
          "Recover() requires start_recovering = true");
    }
    buffer_hwm_ = options_.recovery_buffer_high_water;
  }
  if (timeout.count() <= 0) timeout = options_.recovery_timeout;

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  uint64_t total_bytes = 0;
  // The effective deadline stretches with the bytes received: a
  // transfer still making progress is never killed for being large.
  const auto deadline = [&] {
    return start + timeout +
           std::chrono::milliseconds(total_bytes / kRecoveryMinBytesPerMs);
  };

  RecoveryProgress progress;
  progress.cursor.applied_tid = from_tid;

  // Deterministic per-replica jitter for the retry backoff (xorshift;
  // recovery runs on one thread, no shared RNG needed).
  uint64_t jitter_state = 0x9e3779b97f4a7c15ull ^
                          (static_cast<uint64_t>(member_id()) << 32) ^
                          (from_tid + 1);
  const auto next_jitter = [&](uint64_t bound_ms) -> uint64_t {
    jitter_state ^= jitter_state << 13;
    jitter_state ^= jitter_state >> 7;
    jitter_state ^= jitter_state << 17;
    return bound_ms == 0 ? 0 : jitter_state % bound_ms;
  };

  Status last_error =
      Status::Unavailable("no donor available for recovery");
  size_t donor_idx = 0;
  std::chrono::milliseconds backoff(5);
  gcs::MemberId prev_donor = gcs::kInvalidMember;
  bool prev_donor_started = false;

  for (size_t attempt = 0; attempt < options_.recovery_max_attempts;
       ++attempt) {
    if (!IsAlive()) return Status::Unavailable("replica crashed");
    if (shutdown_.load(std::memory_order_acquire)) {
      return Status::Unavailable("replica shutting down");
    }
    if (attempt > 0) {
      c_rec_retries_->Increment();
      std::this_thread::sleep_for(
          backoff +
          std::chrono::milliseconds(
              next_jitter(static_cast<uint64_t>(backoff.count()))));
      backoff = std::min(backoff * 2, std::chrono::milliseconds(200));
      if (Clock::now() > deadline()) {
        return Status::TimedOut(
            "recovery deadline exceeded after " + std::to_string(attempt) +
            " attempts; last error: " + last_error.ToString());
      }
    }

    // Donor election: rotate over the other live members of the
    // current view; the index only advances on a donor fault, so a
    // buffer-spill re-anchor keeps its (healthy) donor. Under partial
    // replication, members covering our held partitions (our group
    // peers) come first; non-covering members are candidates only when
    // the caller authorized a partial (bookkeeping-only) donation.
    const cluster::PartitionMap* const pmap = options_.partition_map.get();
    const uint64_t needed_mask =
        (pmap != nullptr && pmap->partial())
            ? pmap->HeldMask(options_.partition_slot)
            : 0;
    std::vector<uint32_t> covering;
    if (needed_mask != 0) covering = pmap->CoveringMembers(needed_mask);
    std::vector<gcs::MemberId> candidates;
    std::vector<gcs::MemberId> partial_donors;
    for (gcs::MemberId member : group_->CurrentView().members) {
      if (member == member_id() || !group_->IsAlive(member)) continue;
      if (needed_mask == 0 ||
          std::find(covering.begin(), covering.end(), member) !=
              covering.end()) {
        candidates.push_back(member);
      } else if (allow_partial) {
        partial_donors.push_back(member);
      }
    }
    candidates.insert(candidates.end(), partial_donors.begin(),
                      partial_donors.end());
    if (candidates.empty()) {
      last_error = Status::Unavailable(
          needed_mask != 0
              ? "no live donor covers this replica's partitions"
              : "no donor available for recovery");
      continue;
    }
    const gcs::MemberId donor = candidates[donor_idx % candidates.size()];
    const uint64_t transfer_id =
        (static_cast<uint64_t>(member_id()) + 1) << 32 |
        (transfer_seq_.fetch_add(1, std::memory_order_relaxed) + 1);

    // Arm the fence for this attempt only: marker, buffer, and spill
    // state of any abandoned attempt are dead from here on. The
    // high-water mark is NOT reset — spills escalate it across attempts
    // (see OnDeliver) so re-anchoring converges under sustained load.
    {
      std::lock_guard<std::mutex> lock(buffer_mu_);
      fence_seen_ = false;
      buffered_.clear();
      buffer_spilled_ = false;
      spill_enabled_ = true;
      current_transfer_id_ = transfer_id;
      g_rec_buffered_msgs_->Set(0);
    }

    auto channel = std::make_shared<RecoveryChannel>();
    RecoveryRequest request;
    request.requester = member_id();
    request.donor = donor;
    request.from_tid = from_tid;
    request.transfer_id = transfer_id;
    request.needed_mask = needed_mask;
    request.allow_partial = allow_partial;
    request.cursor = progress.cursor;
    request.channel = channel;
    auto payload =
        std::make_shared<const RecoveryRequest>(std::move(request));
    Status mc =
        group_->Multicast(member_id(), kRecoveryRequestType, payload);
    if (!mc.ok()) return mc;
    if (prev_donor != gcs::kInvalidMember && donor != prev_donor &&
        prev_donor_started) {
      c_rec_donor_switches_->Increment();
      flight_.Record(obs::FlightEventType::kRecovery, member_id(),
                     transfer_id, donor, "donor_switch");
    } else {
      flight_.Record(obs::FlightEventType::kRecovery, member_id(),
                     transfer_id, donor, "request");
    }
    prev_donor = donor;
    prev_donor_started = false;

    bool donor_fault = false;
    bool transfer_done = false;
    bool re_anchor = false;
    auto last_chunk_time = Clock::now();
    while (!transfer_done && !donor_fault && !re_anchor) {
      RecoveryChunk chunk;
      bool got = false;
      bool closed = false;
      {
        std::unique_lock<std::mutex> lock(channel->mu);
        channel->cv.wait_for(lock, std::chrono::milliseconds(25), [&] {
          return !channel->chunks.empty() || channel->closed;
        });
        if (!channel->chunks.empty()) {
          chunk = std::move(channel->chunks.front());
          channel->chunks.pop_front();
          got = true;
        } else {
          closed = channel->closed;
        }
      }
      if (got) channel->cv.notify_all();  // free a producer slot
      if (!got) {
        if (!IsAlive()) return Status::Unavailable("replica crashed");
        if (shutdown_.load(std::memory_order_acquire)) {
          return Status::Unavailable("replica shutting down");
        }
        const auto now = Clock::now();
        if (closed) {
          last_error = Status::Unavailable("donor closed mid-transfer");
          donor_fault = true;
        } else if (!group_->IsAlive(donor)) {
          // View-change fast path: no need to wait out the chunk
          // deadline when the group already expelled the donor.
          last_error = Status::Unavailable("donor crashed mid-transfer");
          donor_fault = true;
        } else if (now - last_chunk_time >
                   options_.recovery_chunk_timeout) {
          last_error = Status::TimedOut("donor stalled mid-transfer");
          donor_fault = true;
        } else if (now > deadline()) {
          return Status::TimedOut("recovery deadline exceeded");
        }
        continue;
      }
      last_chunk_time = Clock::now();
      if (chunk.transfer_id != transfer_id) continue;  // stale attempt
      if (!chunk.status.ok()) {
        last_error = chunk.status;
        const StatusCode code = chunk.status.code();
        if (code != StatusCode::kUnavailable &&
            code != StatusCode::kNotSupported &&
            code != StatusCode::kTimedOut) {
          return chunk.status;  // hard error: config or replay failure
        }
        donor_fault = true;
        continue;
      }
      prev_donor_started = true;
      total_bytes += chunk.approx_bytes;
      c_rec_chunks_received_->Increment();
      c_rec_bytes_received_->Add(static_cast<uint64_t>(chunk.approx_bytes));
      SIREP_RETURN_IF_ERROR(ApplyRecoveryChunk(chunk, &progress));
      // A buffer spill invalidated this marker: re-anchor at a fresh
      // one. The cursor keeps everything already applied, so the retry
      // transfers only the tail.
      {
        std::lock_guard<std::mutex> lock(buffer_mu_);
        if (buffer_spilled_) {
          last_error =
              Status::Unavailable("recovery buffer spilled; re-anchoring");
          re_anchor = true;
          continue;
        }
      }
      if (chunk.final_chunk) {
        if (!progress.have_meta) {
          last_error = Status::Unavailable("donor stream missing meta");
          donor_fault = true;
          continue;
        }
        transfer_done = true;
      }
    }
    if (!transfer_done) {
      // Tell a still-running streamer to quit, then rotate donors on a
      // fault (a re-anchor keeps the same, healthy donor).
      {
        std::lock_guard<std::mutex> lock(channel->mu);
        channel->abandoned = true;
      }
      channel->cv.notify_all();
      if (donor_fault) ++donor_idx;
      continue;
    }

    // Final chunk received. Wait for our own marker: the donor
    // snapshotted at its delivery of the request, and our delivery
    // thread may still be catching up to that position in the total
    // order — adopting before the fence is armed would double-validate
    // the pre-marker messages it is about to buffer. Then atomically
    // confirm no spill raced the transfer tail and disable further
    // spills for the drain.
    bool fence_ok = false;
    {
      std::unique_lock<std::mutex> lock(buffer_mu_);
      buffer_cv_.wait_until(lock, deadline(), [&] {
        return fence_seen_ || buffer_spilled_ ||
               shutdown_.load(std::memory_order_acquire) || !IsAlive();
      });
      if (buffer_spilled_) {
        last_error =
            Status::Unavailable("recovery buffer spilled; re-anchoring");
      } else if (fence_seen_) {
        spill_enabled_ = false;
        fence_ok = true;
      }
    }
    if (!IsAlive()) return Status::Unavailable("replica crashed");
    if (shutdown_.load(std::memory_order_acquire)) {
      return Status::Unavailable("replica shutting down");
    }
    if (!fence_ok) {
      if (Clock::now() > deadline()) {
        return Status::TimedOut("recovery marker never delivered");
      }
      continue;  // spilled: re-anchor with the same donor
    }

    SIREP_ILOG << "replica " << member_id() << " recovered via transfer "
               << transfer_id << ": " << progress.adopted_log.size()
               << " log entries, " << progress.cursor.tables_done.size()
               << " tables copied, resuming validation at tid "
               << progress.lastvalidated;

    // Phase 2: adopt the donor's validation state so our future
    // decisions match every other replica's, and teach the hole
    // tracker the committed prefix so a later restart of *this*
    // replica recovers incrementally instead of forcing a full copy.
    {
      std::lock_guard<std::mutex> lock(wsmutex_);
      lastvalidated_tid_ = progress.lastvalidated;
      ws_index_.Load(progress.ws_window);
      ws_log_.clear();
      for (auto& [tid, entry] : progress.adopted_log) {
        ws_log_.push_back(std::move(entry));
      }
      while (ws_log_.size() > options_.ws_log_capacity) {
        ws_log_.pop_front();
      }
    }
    holes_.AdoptCommittedPrefix(progress.lastvalidated);
    flight_.Record(obs::FlightEventType::kRecovery, member_id(),
                   transfer_id, progress.lastvalidated, "cutover");

    // Phase 3: drain the buffered post-marker messages through normal
    // validation. First a few passes without blocking delivery (bulk
    // of the backlog); then a final pass holding buffer_mu_, during
    // which the delivery thread briefly blocks — that makes the flip
    // to live atomic and bounds the drain even under heavy concurrent
    // traffic.
    for (int pass = 0; pass < 16; ++pass) {
      std::vector<gcs::Message> batch;
      {
        std::lock_guard<std::mutex> lock(buffer_mu_);
        if (buffered_.size() < 64) break;
        batch.swap(buffered_);
      }
      for (const auto& buffered_message : batch) {
        if (buffered_message.type == kDdlMessageType) {
          ProcessDdl(buffered_message);
        } else {
          ProcessWriteSet(buffered_message);
        }
      }
    }
    {
      std::unique_lock<std::mutex> lock(buffer_mu_);
      while (!buffered_.empty()) {
        std::vector<gcs::Message> batch;
        batch.swap(buffered_);
        // Intentionally processed under buffer_mu_: new deliveries wait.
        for (const auto& buffered_message : batch) {
          if (buffered_message.type == kDdlMessageType) {
            ProcessDdl(buffered_message);
          } else {
            ProcessWriteSet(buffered_message);
          }
        }
      }
      delivery_mode_ = DeliveryMode::kLive;
      g_rec_buffered_msgs_->Set(0);
    }
    accepting_.store(true, std::memory_order_release);
    // Live now: publish the slot binding so senders may start shipping
    // us header-only frames for partitions we do not hold.
    if (options_.partition_map != nullptr) {
      options_.partition_map->BindSlot(options_.partition_slot,
                                       member_id());
    }
    flight_.Record(obs::FlightEventType::kRecovery, member_id(),
                   transfer_id, progress.lastvalidated, "complete");
    SIREP_ILOG << "replica " << member_id() << " recovery complete";
    return Status::OK();
  }
  // Attempts exhausted: by construction last_error is retryable
  // (kUnavailable or kTimedOut) — the caller can back off and re-enter.
  return last_error;
}

void SrcaRepReplica::JoinStreamers() {
  std::vector<std::thread> streamers;
  {
    std::lock_guard<std::mutex> lock(streamers_mu_);
    streamers.swap(streamers_);
  }
  for (auto& streamer : streamers) {
    if (streamer.joinable()) streamer.join();
  }
}

void SrcaRepReplica::RecordOutcome(const GlobalTxnId& gid, bool committed) {
  std::lock_guard<std::mutex> lock(outcomes_mu_);
  auto& entry = outcomes_[gid];
  entry.committed = committed;
  if (!committed) entry.locally_committed = true;  // nothing to wait for
  outcomes_cv_.notify_all();
}

void SrcaRepReplica::MarkLocallyCommitted(const GlobalTxnId& gid) {
  std::lock_guard<std::mutex> lock(outcomes_mu_);
  auto& entry = outcomes_[gid];
  entry.committed = true;
  entry.locally_committed = true;
  outcomes_cv_.notify_all();
}

TxnOutcome SrcaRepReplica::InquireOutcome(const GlobalTxnId& gid,
                                          gcs::MemberId crashed_origin) {
  std::unique_lock<std::mutex> lock(outcomes_mu_);
  // Paper §5.4: either the writeset (and hence the outcome) arrives, or
  // the view change reporting the origin's crash does — uniform reliable
  // delivery guarantees no third possibility.
  outcomes_cv_.wait(lock, [&] {
    if (shutdown_.load(std::memory_order_acquire) || !IsAlive()) return true;
    if (outcomes_.count(gid)) return true;
    return view_.view_id != 0 && !view_.Contains(crashed_origin);
  });
  auto it = outcomes_.find(gid);
  if (it == outcomes_.end()) return TxnOutcome::kUnknown;
  if (!it->second.committed) return TxnOutcome::kAborted;
  // Wait for the writeset to be committed *here* so the client sees its
  // own writes after fail-over.
  outcomes_cv_.wait(lock, [&] {
    if (shutdown_.load(std::memory_order_acquire) || !IsAlive()) return true;
    auto jt = outcomes_.find(gid);
    return jt != outcomes_.end() && jt->second.locally_committed;
  });
  return TxnOutcome::kCommitted;
}

void SrcaRepReplica::OnViewChange(const gcs::View& view) {
  bool expelled = false;
  {
    std::lock_guard<std::mutex> lock(outcomes_mu_);
    view_ = view;
    expelled = member_id() != gcs::kInvalidMember && view.view_id != 0 &&
               !view.Contains(member_id());
    outcomes_cv_.notify_all();
  }
  flight_.Record(obs::FlightEventType::kViewChange, member_id(),
                 view.view_id, view.members.size(),
                 expelled ? "expelled self" : "installed");
  // A view that excludes *us* means the group expelled this replica (a
  // TCP transport self-expulsion after losing the sequencer connection):
  // crash ourselves rather than keep serving clients as a zombie with a
  // stale total order. Crash() is idempotent and must run outside
  // outcomes_mu_ (it notifies outcomes_cv_ under the same mutex).
  if (expelled && IsAlive()) {
    SIREP_WLOG << "replica " << member_id() << " expelled from view "
               << view.view_id << "; crashing self";
    Crash();
  }
}

void SrcaRepReplica::Crash() {
  bool expected = false;
  if (!crashed_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return;
  }
  flight_.Record(obs::FlightEventType::kCrash, member_id(), 0, 0,
                 "middleware crash");
  // Retract the routing binding first: a dead member must not keep
  // influencing strip sets or covering-donor election.
  if (options_.partition_map != nullptr &&
      member_id() != gcs::kInvalidMember) {
    options_.partition_map->UnbindMember(member_id());
  }
  group_->Crash(member_id());
  // Release clients blocked waiting for holes to close — those commits
  // will never happen now — and quiescence waiters watching our queue,
  // plus a Recover() caller waiting on its marker fence.
  holes_.Cancel();
  tocommit_queue_.Poke();
  buffer_cv_.notify_all();
  // Fail every in-flight local commit: their clients will run in-doubt
  // resolution against another replica.
  std::unordered_map<GlobalTxnId, std::shared_ptr<PendingLocal>,
                     GlobalTxnIdHash>
      pending;
  {
    std::lock_guard<std::mutex> plock(pending_mu_);
    pending.swap(pending_);
  }
  for (auto& [gid, p] : pending) {
    std::lock_guard<std::mutex> lock(p->mu);
    if (!p->done) {
      p->done = true;
      p->result.kind = ValidationResult::Kind::kCrashed;
      p->cv.notify_all();
    }
  }
  {
    std::lock_guard<std::mutex> plock(pending_ddl_mu_);
    for (auto& [gid, p] : pending_ddl_) {
      std::lock_guard<std::mutex> lock(p->mu);
      p->cv.notify_all();  // waiters re-check IsAlive and bail out
    }
  }
  {
    std::lock_guard<std::mutex> lock(outcomes_mu_);
    outcomes_cv_.notify_all();
  }
  SIREP_ILOG << "middleware replica " << member_id() << " crashed";
}

void SrcaRepReplica::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;
  }
  if (options_.partition_map != nullptr &&
      member_id() != gcs::kInvalidMember) {
    options_.partition_map->UnbindMember(member_id());
  }
  holes_.SetChangeListener(nullptr);
  holes_.Cancel();
  tocommit_queue_.Poke();
  pipeline_->Shutdown();
  {
    std::lock_guard<std::mutex> lock(outcomes_mu_);
    outcomes_cv_.notify_all();
  }
  // Release a Recover() caller waiting on the fence, then collect any
  // donor streamer threads (they observe shutdown_ within one wait
  // slice).
  buffer_cv_.notify_all();
  JoinStreamers();
}

SrcaRepReplica::Stats SrcaRepReplica::stats() const {
  Stats out;
  out.committed = c_committed_->Value();
  out.empty_ws_commits = c_empty_ws_commits_->Value();
  out.local_val_aborts = c_local_val_aborts_->Value();
  out.global_val_aborts = c_global_val_aborts_->Value();
  out.remote_discards = c_remote_discards_->Value();
  out.apply_retries = c_apply_retries_->Value();
  out.holes = holes_.stats();
  return out;
}

SrcaRepReplica::Health SrcaRepReplica::GetHealth() const {
  Health h;
  if (!IsAlive()) {
    h.role = "crashed";
  } else if (shutdown_.load(std::memory_order_acquire)) {
    h.role = "shutdown";
  } else if (!accepting_.load(std::memory_order_acquire)) {
    h.role = "recovering";
  } else {
    h.role = "live";
  }
  h.mode = options_.mode == ReplicaMode::kSrcaRep ? "srca-rep" : "srca-opt";
  h.member_id = member_id();
  {
    std::lock_guard<std::mutex> lock(outcomes_mu_);
    h.view_id = view_.view_id;
    h.view_members = view_.members.size();
  }
  h.stable_prefix = StableCommitPrefix();
  h.tocommit_depth = tocommit_queue_.size();
  if (options_.partition_map != nullptr) {
    uint64_t held = options_.partition_map->HeldMask(options_.partition_slot);
    int64_t count = 0;
    for (; held != 0; held &= held - 1) ++count;
    h.held_partitions = count;
  }
  return h;
}

std::string SrcaRepReplica::HealthJson() const {
  const Health h = GetHealth();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"role\":\"%s\",\"mode\":\"%s\",\"member_id\":%u,"
                "\"view_id\":%llu,\"view_members\":%zu,"
                "\"stable_prefix\":%llu,\"tocommit_depth\":%zu,"
                "\"held_partitions\":%lld}",
                h.role.c_str(), h.mode.c_str(), h.member_id,
                static_cast<unsigned long long>(h.view_id), h.view_members,
                static_cast<unsigned long long>(h.stable_prefix),
                h.tocommit_depth, static_cast<long long>(h.held_partitions));
  return buf;
}

}  // namespace sirep::middleware
