#ifndef SIREP_MIDDLEWARE_METRICS_HTTP_H_
#define SIREP_MIDDLEWARE_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/status.h"

namespace sirep::middleware {

/// Minimal per-middleware HTTP/1.0 listener for observability
/// exposition: GET /metrics (Prometheus text) and GET /flightrecorder
/// (human-readable black box), each backed by a caller-supplied
/// handler evaluated per request. Built on the same loopback socket
/// plumbing as the TCP sequencer transport (gcs/socket_util.h).
///
/// Scope: a scrape endpoint, not a web server — loopback only, one
/// serial accept loop, one request per connection, GET only. That is
/// exactly what `curl`/Prometheus need and keeps the surface small.
class MetricsHttpServer {
 public:
  /// Returns the response body for one request.
  using Handler = std::function<std::string()>;

  MetricsHttpServer() = default;
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Registers `handler` for GET `path` (e.g. "/metrics"). Call before
  /// Start().
  void AddEndpoint(const std::string& path, const std::string& content_type,
                   Handler handler);

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, see
  /// port()) and starts the accept loop thread.
  Status Start(uint16_t port = 0);

  /// The bound port; 0 until Start() succeeds.
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Stops the accept loop and closes the listen socket. Idempotent.
  void Stop();

 private:
  struct Endpoint {
    std::string content_type;
    Handler handler;
  };

  void AcceptLoop();
  void ServeConnection(int fd);

  std::map<std::string, Endpoint> endpoints_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
};

}  // namespace sirep::middleware

#endif  // SIREP_MIDDLEWARE_METRICS_HTTP_H_
