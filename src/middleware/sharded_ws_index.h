#ifndef SIREP_MIDDLEWARE_SHARDED_WS_INDEX_H_
#define SIREP_MIDDLEWARE_SHARDED_WS_INDEX_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/partition_map.h"
#include "obs/profiler.h"
#include "storage/types.h"
#include "storage/write_set.h"

namespace sirep::middleware {

/// One retained certification-window entry: the validation tid, the
/// per-tuple digests (always present — they are what certification
/// actually keys on), and the row images (null when this replica only
/// ever saw the header-only variant of the message). Recovery snapshots
/// ship these verbatim so the recovering replica's verdicts match the
/// donor's bit for bit.
struct WsWindowEntry {
  uint64_t tid = 0;
  std::shared_ptr<const storage::WriteSet> ws;
  std::vector<uint64_t> digests;
};

/// Drop-in replacement for WsList (the paper's `ws_list`) that turns the
/// certification probe from an O(window-suffix x writeset) scan into an
/// O(writeset) hash lookup, sharded by digest range so probes and
/// appends touching disjoint shards never contend.
///
/// The insight: validation of Ti only asks "does any Tj with tid >
/// Ti.cert write a tuple Ti writes?". Appends are tid-monotone, so the
/// per-tuple *last* writer tid answers that exactly — if the newest
/// writer of a tuple is <= cert, every older writer is too. The index
/// keeps, per shard, a map digest -> last-writer tid; a window deque of
/// WsWindowEntry drives pruning, MinRetainedTid() and recovery
/// snapshots, exactly mirroring WsList's sliding window.
///
/// **Why digests, not tuples.** Under partial replication a non-holder
/// receives only the 64-bit FNV-1a digest of each written tuple
/// (cluster::PartitionMap::TupleDigest), never the tuple itself. Keying
/// the index on digests lets holders (which hash their full tuples) and
/// non-holders (which replay shipped digests) run the *same* probe over
/// the *same* keys — the cluster-wide verdict identity that 1-copy-SI
/// certification requires. A digest collision between distinct tuples
/// can only manufacture a conflict that is not there, i.e. a spurious
/// abort — always safe under SI, and vanishingly rare at 64 bits.
///
/// Decision-equivalence with WsList (relied on by recovery and by the
/// cross-replica determinism argument): for any append sequence and any
/// (cert, ws) probe, ConflictsAfter() returns the same verdict as
/// WsList::ConflictsAfter — see middleware_unit_test's differential
/// tests, including the prune/snapshot/load boundary sweep around
/// MinRetainedTid.
///
/// Threading: appends and window pruning are serialized by the caller
/// (the replica's wsmutex / single delivery thread, as in the paper's
/// pseudo-code). The per-shard mutexes make concurrent read-only probes
/// (and the per-shard size gauges) safe against an in-flight append, and
/// are the hook for concurrent certification of non-overlapping
/// writesets: two probes over disjoint shards proceed fully in parallel.
class ShardedWsIndex {
 public:
  explicit ShardedWsIndex(size_t max_entries = 65536, size_t num_shards = 16)
      : max_entries_(max_entries),
        shards_(num_shards == 0 ? 1 : num_shards) {}

  ShardedWsIndex(const ShardedWsIndex&) = delete;
  ShardedWsIndex& operator=(const ShardedWsIndex&) = delete;

  static std::vector<uint64_t> DigestsOf(const storage::WriteSet& ws) {
    std::vector<uint64_t> digests;
    digests.reserve(ws.entries().size());
    for (const auto& we : ws.entries()) {
      digests.push_back(cluster::PartitionMap::TupleDigest(we.tuple));
    }
    return digests;
  }

  void Append(uint64_t tid, std::shared_ptr<const storage::WriteSet> ws) {
    std::vector<uint64_t> digests = DigestsOf(*ws);
    AppendDigests(tid, std::move(digests), std::move(ws));
  }

  /// The header-only form: every replica — holder or not — appends the
  /// digests of every validated message, so windows, MinRetainedTid and
  /// verdicts stay identical cluster-wide. `ws` may be null.
  void AppendDigests(uint64_t tid, std::vector<uint64_t> digests,
                     std::shared_ptr<const storage::WriteSet> ws) {
    for (const uint64_t digest : digests) {
      Shard& shard = ShardFor(digest);
      auto lock = obs::AcquireProfiled(shard.mu, lock_stats_);
      shard.last_writer[digest] = tid;
    }
    window_.push_back(WsWindowEntry{tid, std::move(ws), std::move(digests)});
    while (window_.size() > max_entries_) {
      const WsWindowEntry& evicted = window_.front();
      for (const uint64_t digest : evicted.digests) {
        Shard& shard = ShardFor(digest);
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.last_writer.find(digest);
        // Only drop the map entry if no younger writeset in the window
        // overwrote it; a stale smaller tid can never be present because
        // appends are tid-monotone.
        if (it != shard.last_writer.end() && it->second == evicted.tid) {
          shard.last_writer.erase(it);
        }
      }
      window_.pop_front();
    }
  }

  /// True iff some validated Tj with tid > cert conflicts with `ws`.
  /// `first_conflict`, if non-null, receives one conflicting tuple (the
  /// flight recorder tags abort verdicts with it).
  bool ConflictsAfter(uint64_t cert, const storage::WriteSet& ws,
                      storage::TupleId* first_conflict = nullptr) const {
    for (const auto& we : ws.entries()) {
      if (LastWriterAfter(cluster::PartitionMap::TupleDigest(we.tuple),
                          cert)) {
        if (first_conflict != nullptr) *first_conflict = we.tuple;
        return true;
      }
    }
    return false;
  }

  /// The non-holder probe: identical verdict from digests alone.
  /// `first_conflict`, if non-null, receives the conflicting digest.
  bool ConflictsAfterDigests(uint64_t cert,
                             const std::vector<uint64_t>& digests,
                             uint64_t* first_conflict = nullptr) const {
    for (const uint64_t digest : digests) {
      if (LastWriterAfter(digest, cert)) {
        if (first_conflict != nullptr) *first_conflict = digest;
        return true;
      }
    }
    return false;
  }

  /// Oldest tid still retained; a validation with cert < MinRetainedTid()-1
  /// cannot be decided exactly and must abort conservatively.
  uint64_t MinRetainedTid() const {
    return window_.empty() ? 0 : window_.front().tid;
  }

  size_t size() const { return window_.size(); }
  bool empty() const { return window_.empty(); }

  size_t num_shards() const { return shards_.size(); }

  /// Contention accounting shared by all shard mutexes (one logical
  /// lock with 16 stripes; per-stripe split adds nothing a regression
  /// hunt needs). Set once at replica construction.
  void SetLockStats(const obs::LockStats& stats) { lock_stats_ = stats; }

  /// Distinct digests currently indexed in `shard` (per-shard gauges).
  size_t ShardSize(size_t shard) const {
    const Shard& s = shards_[shard % shards_.size()];
    std::lock_guard<std::mutex> lock(s.mu);
    return s.last_writer.size();
  }

  /// State transfer for online recovery: export the retained window...
  std::vector<WsWindowEntry> Snapshot() const {
    return std::vector<WsWindowEntry>(window_.begin(), window_.end());
  }

  /// ...and adopt a donor's window verbatim (replaces current content),
  /// so the recovering replica's validation decisions match the donor's.
  /// Re-appending entry by entry re-runs the normal prune, so a snapshot
  /// wider than this index's own window converges to the same retained
  /// suffix (and the same MinRetainedTid) a live replica would hold.
  void Load(const std::vector<WsWindowEntry>& snapshot) {
    window_.clear();
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.last_writer.clear();
    }
    for (const auto& entry : snapshot) {
      AppendDigests(entry.tid, entry.digests, entry.ws);
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, uint64_t> last_writer;
  };

  bool LastWriterAfter(uint64_t digest, uint64_t cert) const {
    const Shard& shard = ShardFor(digest);
    auto lock = obs::AcquireProfiled(shard.mu, lock_stats_);
    auto it = shard.last_writer.find(digest);
    return it != shard.last_writer.end() && it->second > cert;
  }

  Shard& ShardFor(uint64_t digest) {
    return shards_[digest % shards_.size()];
  }
  const Shard& ShardFor(uint64_t digest) const {
    return shards_[digest % shards_.size()];
  }

  size_t max_entries_;
  obs::LockStats lock_stats_;
  /// Sliding window in tid order; mutated only by the (single) appender.
  std::deque<WsWindowEntry> window_;
  /// Fixed shard array — never resized, so ShardFor stays stable.
  std::vector<Shard> shards_;
};

}  // namespace sirep::middleware

#endif  // SIREP_MIDDLEWARE_SHARDED_WS_INDEX_H_
