#ifndef SIREP_MIDDLEWARE_SHARDED_WS_INDEX_H_
#define SIREP_MIDDLEWARE_SHARDED_WS_INDEX_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/types.h"
#include "storage/write_set.h"

namespace sirep::middleware {

/// Drop-in replacement for WsList (the paper's `ws_list`) that turns the
/// certification probe from an O(window-suffix x writeset) scan into an
/// O(writeset) hash lookup, sharded by tuple-key hash range so probes and
/// appends touching disjoint shards never contend.
///
/// The insight: validation of Ti only asks "does any Tj with tid >
/// Ti.cert write a tuple Ti writes?". Appends are tid-monotone, so the
/// per-tuple *last* writer tid answers that exactly — if the newest
/// writer of a tuple is <= cert, every older writer is too. The index
/// therefore keeps, per shard, a map tuple -> last-writer tid; a window
/// deque of (tid, writeset) entries drives pruning, MinRetainedTid() and
/// recovery snapshots, exactly mirroring WsList's sliding window.
///
/// Decision-equivalence with WsList (relied on by recovery and by the
/// cross-replica determinism argument): for any append sequence and any
/// (cert, ws) probe, ConflictsAfter() returns the same verdict as
/// WsList::ConflictsAfter — see middleware_unit_test's differential test.
///
/// Threading: appends and window pruning are serialized by the caller
/// (the replica's wsmutex / single delivery thread, as in the paper's
/// pseudo-code). The per-shard mutexes make concurrent read-only probes
/// (and the per-shard size gauges) safe against an in-flight append, and
/// are the hook for concurrent certification of non-overlapping
/// writesets: two probes over disjoint shards proceed fully in parallel.
class ShardedWsIndex {
 public:
  explicit ShardedWsIndex(size_t max_entries = 65536, size_t num_shards = 16)
      : max_entries_(max_entries),
        shards_(num_shards == 0 ? 1 : num_shards) {}

  ShardedWsIndex(const ShardedWsIndex&) = delete;
  ShardedWsIndex& operator=(const ShardedWsIndex&) = delete;

  void Append(uint64_t tid, std::shared_ptr<const storage::WriteSet> ws) {
    for (const auto& we : ws->entries()) {
      Shard& shard = ShardFor(we.tuple);
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.last_writer[we.tuple] = tid;
    }
    window_.push_back(Entry{tid, std::move(ws)});
    while (window_.size() > max_entries_) {
      const Entry& evicted = window_.front();
      for (const auto& we : evicted.ws->entries()) {
        Shard& shard = ShardFor(we.tuple);
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.last_writer.find(we.tuple);
        // Only drop the map entry if no younger writeset in the window
        // overwrote it; a stale smaller tid can never be present because
        // appends are tid-monotone.
        if (it != shard.last_writer.end() && it->second == evicted.tid) {
          shard.last_writer.erase(it);
        }
      }
      window_.pop_front();
    }
  }

  /// True iff some validated Tj with tid > cert conflicts with `ws`.
  /// `first_conflict`, if non-null, receives one conflicting tuple (the
  /// flight recorder tags abort verdicts with it).
  bool ConflictsAfter(uint64_t cert, const storage::WriteSet& ws,
                      storage::TupleId* first_conflict = nullptr) const {
    for (const auto& we : ws.entries()) {
      const Shard& shard = ShardFor(we.tuple);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.last_writer.find(we.tuple);
      if (it != shard.last_writer.end() && it->second > cert) {
        if (first_conflict != nullptr) *first_conflict = we.tuple;
        return true;
      }
    }
    return false;
  }

  /// Oldest tid still retained; a validation with cert < MinRetainedTid()-1
  /// cannot be decided exactly and must abort conservatively.
  uint64_t MinRetainedTid() const {
    return window_.empty() ? 0 : window_.front().tid;
  }

  size_t size() const { return window_.size(); }
  bool empty() const { return window_.empty(); }

  size_t num_shards() const { return shards_.size(); }

  /// Distinct tuples currently indexed in `shard` (per-shard gauges).
  size_t ShardSize(size_t shard) const {
    const Shard& s = shards_[shard % shards_.size()];
    std::lock_guard<std::mutex> lock(s.mu);
    return s.last_writer.size();
  }

  /// State transfer for online recovery: export the retained window...
  std::vector<std::pair<uint64_t, std::shared_ptr<const storage::WriteSet>>>
  Snapshot() const {
    std::vector<std::pair<uint64_t, std::shared_ptr<const storage::WriteSet>>>
        out;
    out.reserve(window_.size());
    for (const auto& e : window_) out.emplace_back(e.tid, e.ws);
    return out;
  }

  /// ...and adopt a donor's window verbatim (replaces current content),
  /// so the recovering replica's validation decisions match the donor's.
  void Load(
      const std::vector<
          std::pair<uint64_t, std::shared_ptr<const storage::WriteSet>>>&
          snapshot) {
    window_.clear();
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.last_writer.clear();
    }
    for (const auto& [tid, ws] : snapshot) Append(tid, ws);
  }

 private:
  struct Entry {
    uint64_t tid;
    std::shared_ptr<const storage::WriteSet> ws;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<storage::TupleId, uint64_t, storage::TupleIdHash>
        last_writer;
  };

  Shard& ShardFor(const storage::TupleId& tuple) {
    return shards_[storage::TupleIdHash()(tuple) % shards_.size()];
  }
  const Shard& ShardFor(const storage::TupleId& tuple) const {
    return shards_[storage::TupleIdHash()(tuple) % shards_.size()];
  }

  size_t max_entries_;
  /// Sliding window in tid order; mutated only by the (single) appender.
  std::deque<Entry> window_;
  /// Fixed shard array — never resized, so ShardFor stays stable.
  std::vector<Shard> shards_;
};

}  // namespace sirep::middleware

#endif  // SIREP_MIDDLEWARE_SHARDED_WS_INDEX_H_
