#include "middleware/apply_pipeline.h"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/profiler.h"
#include "storage/types.h"

namespace sirep::middleware {

namespace {

/// Strict dispatch-order FIFO on one worker: the original single-applier
/// replica, kept as its own class so `SIREP_APPLY_THREADS=1` is a true
/// serial baseline rather than a degenerate parameterization.
class SerialApplyPipeline : public ApplyPipeline {
 public:
  SerialApplyPipeline(ApplyFn apply, obs::MetricsRegistry* registry)
      : apply_(std::move(apply)),
        depth_(registry == nullptr
                   ? nullptr
                   : registry->GetGauge("mw.apply.shard0.queue_depth")),
        worker_([this] { Loop(); }) {}

  ~SerialApplyPipeline() override { Shutdown(); }

  void Dispatch(ToCommitEntry entry) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      queue_.push_back(std::move(entry));
      if (depth_ != nullptr) {
        depth_->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    cv_.notify_one();
  }

  void Shutdown() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    if (worker_.joinable()) worker_.join();
  }

  size_t width() const override { return 1; }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shut down and drained
      ToCommitEntry entry = std::move(queue_.front());
      queue_.pop_front();
      if (depth_ != nullptr) {
        depth_->Set(static_cast<int64_t>(queue_.size()));
      }
      lock.unlock();
      {
        obs::Profiler::Section section("mw.pipeline.apply");
        apply_(std::move(entry));
      }
      lock.lock();
    }
  }

  ApplyFn apply_;
  obs::Gauge* const depth_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ToCommitEntry> queue_;
  bool shutdown_ = false;
  std::thread worker_;
};

/// One dispatch queue per worker, routed by tuple hash, with work
/// stealing. Entries are pairwise non-conflicting (see the interface
/// contract), so any worker may run any entry; routing only provides
/// cache affinity for hot tuples, and stealing guarantees a worker
/// blocked inside the database (lock held by a local transaction) never
/// strands another queue.
class ShardedApplyPipeline : public ApplyPipeline {
 public:
  ShardedApplyPipeline(size_t width, ApplyFn apply,
                       obs::MetricsRegistry* registry)
      : apply_(std::move(apply)), queues_(width), depth_(width, nullptr) {
    if (registry != nullptr) {
      for (size_t i = 0; i < width; ++i) {
        depth_[i] = registry->GetGauge("mw.apply.shard" + std::to_string(i) +
                                       ".queue_depth");
      }
    }
    workers_.reserve(width);
    for (size_t i = 0; i < width; ++i) {
      workers_.emplace_back([this, i] { Loop(i); });
    }
  }

  ~ShardedApplyPipeline() override { Shutdown(); }

  void Dispatch(ToCommitEntry entry) override {
    const size_t q = Route(entry);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      queues_[q].push_back(std::move(entry));
      if (depth_[q] != nullptr) {
        depth_[q]->Set(static_cast<int64_t>(queues_[q].size()));
      }
    }
    // Any idle worker may steal the entry, so wake them all; dispatch
    // rates are bounded by the delivery thread, not by this notify.
    cv_.notify_all();
  }

  void Shutdown() override {
    std::vector<std::thread> workers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
      workers.swap(workers_);
    }
    cv_.notify_all();
    for (auto& w : workers) {
      if (w.joinable()) w.join();
    }
  }

  size_t width() const override { return queues_.size(); }

 private:
  size_t Route(const ToCommitEntry& entry) const {
    if (entry.ws != nullptr && !entry.ws->entries().empty()) {
      return storage::TupleIdHash()(entry.ws->entries().front().tuple) %
             queues_.size();
    }
    return static_cast<size_t>(entry.tid) % queues_.size();
  }

  /// Own queue first (affinity), then steal left-to-right from the next.
  bool FindWork(size_t self, size_t* victim) const {
    for (size_t k = 0; k < queues_.size(); ++k) {
      const size_t q = (self + k) % queues_.size();
      if (!queues_[q].empty()) {
        *victim = q;
        return true;
      }
    }
    return false;
  }

  void Loop(size_t self) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      size_t victim = 0;
      cv_.wait(lock, [&] { return shutdown_ || FindWork(self, &victim); });
      if (!FindWork(self, &victim)) return;  // shut down and drained
      ToCommitEntry entry = std::move(queues_[victim].front());
      queues_[victim].pop_front();
      if (depth_[victim] != nullptr) {
        depth_[victim]->Set(static_cast<int64_t>(queues_[victim].size()));
      }
      lock.unlock();
      {
        obs::Profiler::Section section("mw.pipeline.apply");
        apply_(std::move(entry));
      }
      lock.lock();
    }
  }

  ApplyFn apply_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<ToCommitEntry>> queues_;
  std::vector<obs::Gauge*> depth_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace

std::unique_ptr<ApplyPipeline> ApplyPipeline::Create(
    size_t threads, ApplyFn apply, obs::MetricsRegistry* registry) {
  if (threads <= 1) {
    return std::make_unique<SerialApplyPipeline>(std::move(apply), registry);
  }
  return std::make_unique<ShardedApplyPipeline>(threads, std::move(apply),
                                                registry);
}

size_t ApplyPipeline::ThreadsFromEnv(size_t configured) {
  const char* env = std::getenv("SIREP_APPLY_THREADS");
  if (env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return configured == 0 ? 1 : configured;
}

}  // namespace sirep::middleware
