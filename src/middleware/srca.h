#ifndef SIREP_MIDDLEWARE_SRCA_H_
#define SIREP_MIDDLEWARE_SRCA_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "engine/query_result.h"
#include "middleware/ws_list.h"
#include "storage/write_set.h"

namespace sirep::middleware {

/// SRCA — the Simple Replica Control Algorithm of the paper's Fig. 1:
/// a *centralized* middleware in front of N database replicas.
///
/// Faithful to the figure:
///  * one `dbmutex` per replica makes begin atomic with commits, so
///    `Ti.cert = lastcommitted_tid_k` identifies exactly the transactions
///    concurrent to Ti;
///  * validation is a single atomic phase under `wsmutex` against
///    `ws_list`;
///  * each replica has a `tocommit_queue` processed **strictly in
///    validation order by one committer thread** (step II).
///
/// Because writesets apply serially, SRCA exhibits the "hidden deadlock"
/// of §4.2 when run over a real first-updater-wins database like ours —
/// that is by design (a test demonstrates it); SrcaRepReplica is the
/// production algorithm. SRCA is retained as the reference model for the
/// 1-copy-SI proofs and for differential testing.
class SrcaMiddleware {
 public:
  struct TxnHandle {
    uint64_t client_txn = 0;  ///< middleware-assigned id
    size_t replica = 0;       ///< local replica index
    storage::TransactionPtr db_txn;
    uint64_t cert = 0;
  };

  struct Stats {
    uint64_t committed = 0;
    uint64_t validation_aborts = 0;
    uint64_t empty_ws_commits = 0;
  };

  explicit SrcaMiddleware(std::vector<engine::Database*> replicas);
  ~SrcaMiddleware();

  SrcaMiddleware(const SrcaMiddleware&) = delete;
  SrcaMiddleware& operator=(const SrcaMiddleware&) = delete;

  /// Begins a transaction local at `replica` (Fig. 1, I.1). Pass
  /// `kAnyReplica` for round-robin assignment.
  static constexpr size_t kAnyReplica = ~size_t{0};
  Result<TxnHandle> Begin(size_t replica = kAnyReplica);

  /// Fig. 1, I.2: forward to the local replica.
  Result<engine::QueryResult> Execute(const TxnHandle& txn,
                                      const std::string& sql,
                                      const std::vector<sql::Value>& params =
                                          {});

  /// Fig. 1, I.3: extract writeset, validate, enqueue everywhere, wait
  /// for the local commit. kConflict => validation failed.
  Status Commit(TxnHandle& txn);

  Status Rollback(const TxnHandle& txn);

  size_t num_replicas() const { return replicas_.size(); }
  Stats stats() const;

  void Shutdown();

 private:
  struct QueueEntry {
    uint64_t tid = 0;
    size_t local_replica = 0;
    storage::TransactionPtr local_txn;  ///< only meaningful at local replica
    std::shared_ptr<const storage::WriteSet> ws;
    /// Client notification for the local replica's commit.
    std::shared_ptr<std::pair<std::mutex, std::condition_variable>> signal;
    std::shared_ptr<Status> outcome;
    std::shared_ptr<bool> done;
  };

  struct Replica {
    engine::Database* db = nullptr;
    std::mutex dbmutex;
    uint64_t lastcommitted_tid = 0;
    std::mutex queue_mu;
    std::condition_variable queue_cv;
    std::deque<QueueEntry> tocommit_queue;
    std::thread committer;
  };

  void CommitterLoop(size_t replica_index);

  std::vector<std::unique_ptr<Replica>> replicas_;
  std::atomic<bool> shutdown_{false};
  std::atomic<size_t> next_replica_{0};
  std::atomic<uint64_t> next_client_txn_{0};

  std::mutex wsmutex_;
  uint64_t next_tid_ = 0;
  WsList ws_list_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace sirep::middleware

#endif  // SIREP_MIDDLEWARE_SRCA_H_
