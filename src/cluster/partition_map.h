#ifndef SIREP_CLUSTER_PARTITION_MAP_H_
#define SIREP_CLUSTER_PARTITION_MAP_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "storage/types.h"
#include "storage/write_set.h"

namespace sirep::cluster {

/// Hash partitioning of the keyspace over (table, primary key), with each
/// partition owned by a *replica group* — a disjoint subset of
/// `replication_factor` cluster slots. The map is the single source of
/// truth for three different layers:
///
///  * the middleware tags every writeset with the bitmask of partitions
///    it touches (`MaskOf`) and refuses to execute transactions whose
///    partitions it does not hold (`HoldsAll`);
///  * the GCS sender strips payloads from members that hold none of a
///    writeset's partitions (`StripMembers`) — those members certify
///    against the digest header alone;
///  * recovery elects donors that cover the requester's held partitions
///    (`CoveringMembers`), which under the group model is exactly the
///    requester's group peers.
///
/// **Group model.** Slots are divided into `num_groups =
/// max(1, num_slots / replication_factor)` contiguous groups (the last
/// group absorbs any remainder), and partition `p` is owned by every
/// slot of group `p % num_groups`. Disjoint groups make every group
/// peer a *fully covering* recovery donor — the alternative (rotating
/// overlapped holder sets) leaves no single replica able to re-seed a
/// restarted holder, which is the genuine-partial-replication recovery
/// trap. The cost is that a cross-group transaction has no replica
/// holding all its data and must be routed partition-wise by the
/// client; cross-partition transactions *within* a group commit
/// normally (the executing replica holds everything it read).
///
/// **Digest space.** A tuple's partition is derived from a 64-bit
/// FNV-1a digest of table + 0x1f + key, the same digest the header-only
/// certification path ships instead of row images — so holders
/// (hashing full tuples) and non-holders (hashing nothing, replaying
/// shipped digests) reach bit-identical conflict verdicts.
///
/// Partition count is capped at 64 so a partition set is a plain
/// `uint64_t` mask. `epoch` is bumped by every `Resize` so in-flight
/// messages tagged under an older layout are detectable.
///
/// The slot->member directory (`BindSlot`) models the membership view a
/// deployment would keep in its configuration service; here all
/// replicas share the one in-process map object. Members bind their
/// slot only once live (a recovering incarnation stays unbound and so
/// keeps receiving full payloads until its catch-up completes).
///
/// Thread-safe; the hot read paths (`partial`, layout queries) are
/// lock-free on immutable-after-construction state except during
/// `Resize`, which swaps the layout under the directory mutex.
class PartitionMap {
 public:
  static constexpr size_t kMaxPartitions = 64;
  /// Member ids beyond the mask width can never be stripped (they
  /// always receive full payloads) — safe, merely unoptimized.
  static constexpr uint32_t kMaxStrippableMember = 63;

  PartitionMap(size_t num_slots, size_t num_partitions,
               size_t replication_factor)
      : num_slots_(std::max<size_t>(num_slots, 1)) {
    Layout l;
    l.partitions =
        std::min(std::max<size_t>(num_partitions, 1), kMaxPartitions);
    l.rf = replication_factor;
    l.groups = GroupsFor(num_slots_, replication_factor);
    StoreLayout(l);
  }

  /// Builds a map from `SIREP_PARTITIONS` / `SIREP_REPLICATION_FACTOR`,
  /// or returns null when neither is set (full replication, no map).
  static std::shared_ptr<PartitionMap> FromEnv(size_t num_slots) {
    const uint64_t partitions = EnvU64("SIREP_PARTITIONS", 0);
    const uint64_t rf = EnvU64("SIREP_REPLICATION_FACTOR", 0);
    if (partitions == 0 && rf == 0) return nullptr;
    return std::make_shared<PartitionMap>(
        num_slots, partitions == 0 ? size_t{16} : partitions, rf);
  }

  /// FNV-1a 64 over table bytes, a 0x1f separator, then the printable
  /// key — deterministic across replicas and processes (never uses
  /// std::hash, whose value is implementation-defined).
  static uint64_t TupleDigest(const storage::TupleId& tuple) {
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const std::string& s) {
      for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
      }
    };
    mix(tuple.table);
    h ^= 0x1f;
    h *= 1099511628211ull;
    mix(tuple.key.ToString());
    return h;
  }

  size_t num_slots() const { return num_slots_; }
  size_t num_partitions() const { return LoadLayout().partitions; }
  size_t replication_factor() const { return LoadLayout().rf; }
  size_t num_groups() const { return LoadLayout().groups; }
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// True when payload routing is actually selective: more than one
  /// group exists. rf == 0 or rf >= num_slots degenerates to full
  /// replication and every partial-path branch is skipped.
  bool partial() const { return LoadLayout().groups > 1; }

  size_t PartitionOfDigest(uint64_t digest) const {
    return digest % LoadLayout().partitions;
  }
  size_t PartitionOf(const storage::TupleId& tuple) const {
    return PartitionOfDigest(TupleDigest(tuple));
  }

  size_t GroupOfPartition(size_t partition) const {
    return partition % LoadLayout().groups;
  }
  /// Contiguous groups of rf slots; the last group absorbs the
  /// remainder when num_slots % rf != 0. Slots beyond num_slots (added
  /// after the map was laid out) belong to no group and hold everything
  /// — see HeldMask.
  size_t GroupOfSlot(size_t slot) const {
    const Layout l = LoadLayout();
    if (l.rf == 0) return 0;
    return std::min(slot / l.rf, l.groups - 1);
  }

  /// Bitmask of the partitions `slot` holds. Slots outside the laid-out
  /// range (AddReplica beyond the founding set) hold the full mask:
  /// they are never payload-stripped, and recovery refuses them under
  /// partial replication (no covering donor exists) — elastic scale-out
  /// of the partition layout itself is future work.
  uint64_t HeldMask(size_t slot) const {
    const Layout l = LoadLayout();
    if (l.groups <= 1 || slot >= num_slots_) return FullMask(l.partitions);
    const size_t group = GroupOfSlot(slot);
    uint64_t mask = 0;
    for (size_t p = 0; p < l.partitions; ++p) {
      if (p % l.groups == group) mask |= uint64_t{1} << p;
    }
    return mask;
  }

  bool Holds(size_t slot, size_t partition) const {
    return (HeldMask(slot) >> partition) & 1;
  }
  bool HoldsAll(size_t slot, uint64_t partition_mask) const {
    return (partition_mask & ~HeldMask(slot)) == 0;
  }
  bool HoldsAny(size_t slot, uint64_t partition_mask) const {
    return (partition_mask & HeldMask(slot)) != 0;
  }

  /// Partition mask of a writeset; optionally also emits the per-entry
  /// digests in writeset order — the exact list a header-only frame
  /// ships, and the list every replica feeds its validation index.
  uint64_t MaskOf(const storage::WriteSet& ws,
                  std::vector<uint64_t>* digests = nullptr) const {
    uint64_t mask = 0;
    if (digests != nullptr) digests->reserve(ws.entries().size());
    for (const auto& entry : ws.entries()) {
      const uint64_t digest = TupleDigest(entry.tuple);
      mask |= uint64_t{1} << PartitionOfDigest(digest);
      if (digests != nullptr) digests->push_back(digest);
    }
    return mask;
  }

  /// Re-partitions the keyspace and bumps the epoch. Masks computed
  /// under the old layout stay detectable via the epoch carried in
  /// every writeset message; receivers treat a mismatched epoch
  /// conservatively (full-payload semantics where possible).
  void Resize(size_t new_partitions) {
    std::lock_guard<std::mutex> lock(mu_);
    Layout l = LoadLayout();
    l.partitions = std::min(std::max<size_t>(new_partitions, 1),
                            kMaxPartitions);
    StoreLayout(l);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  // --- slot <-> member directory -------------------------------------

  /// Publishes `member` as the live incarnation of `slot`, replacing
  /// any previous binding of either side. Call only once the member is
  /// live (recovered): senders start stripping payloads the moment a
  /// binding exists.
  void BindSlot(size_t slot, uint32_t member) {
    std::lock_guard<std::mutex> lock(mu_);
    auto old = slot_to_member_.find(slot);
    if (old != slot_to_member_.end()) member_to_slot_.erase(old->second);
    slot_to_member_[slot] = member;
    member_to_slot_[member] = slot;
  }

  /// Retracts a dead incarnation's binding (crash/shutdown). A stale
  /// binding is harmless — stripping payloads from a dead member wastes
  /// nothing — but retracting keeps CoveringMembers accurate.
  void UnbindMember(uint32_t member) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = member_to_slot_.find(member);
    if (it == member_to_slot_.end()) return;
    auto sit = slot_to_member_.find(it->second);
    if (sit != slot_to_member_.end() && sit->second == member) {
      slot_to_member_.erase(sit);
    }
    member_to_slot_.erase(it);
  }

  std::optional<size_t> SlotOfMember(uint32_t member) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = member_to_slot_.find(member);
    if (it == member_to_slot_.end()) return std::nullopt;
    return it->second;
  }

  std::optional<uint32_t> MemberOfSlot(size_t slot) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slot_to_member_.find(slot);
    if (it == slot_to_member_.end()) return std::nullopt;
    return it->second;
  }

  /// Member-id bitmask of the *bound* members that hold none of
  /// `partition_mask` — the set a sender may safely ship the header-only
  /// variant to. Unbound members (joiners mid-recovery, fresh
  /// incarnations) are never stripped: an unknown member defaults to
  /// the full payload. Member ids > 63 are likewise never stripped.
  uint64_t StripMembers(uint64_t partition_mask) const {
    if (!partial() || partition_mask == 0) return 0;
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t strip = 0;
    for (const auto& [slot, member] : slot_to_member_) {
      if (member > kMaxStrippableMember) continue;
      if ((HeldMask(slot) & partition_mask) == 0) {
        strip |= uint64_t{1} << member;
      }
    }
    return strip;
  }

  /// Bound members whose held set covers `needed_mask` entirely —
  /// under the group model, the group peers of whoever needs
  /// `needed_mask`. Recovery prefers these as donors.
  std::vector<uint32_t> CoveringMembers(uint64_t needed_mask) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uint32_t> covering;
    for (const auto& [slot, member] : slot_to_member_) {
      if ((needed_mask & ~HeldMask(slot)) == 0) covering.push_back(member);
    }
    return covering;
  }

  static uint64_t FullMask(size_t partitions) {
    return partitions >= 64 ? ~uint64_t{0}
                            : (uint64_t{1} << partitions) - 1;
  }

 private:
  struct Layout {
    size_t partitions = 1;
    size_t rf = 0;
    size_t groups = 1;
  };

  static size_t GroupsFor(size_t num_slots, size_t rf) {
    if (rf == 0 || rf >= num_slots) return 1;
    return std::max<size_t>(num_slots / rf, 1);
  }

  static uint64_t EnvU64(const char* name, uint64_t fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr || *value == '\0') return fallback;
    return std::strtoull(value, nullptr, 10);
  }

  // The layout is three small integers; pack them into one atomic word
  // so readers never lock. partitions/groups <= 64, rf <= slots.
  Layout LoadLayout() const {
    const uint64_t packed = packed_layout_.load(std::memory_order_acquire);
    Layout l;
    l.partitions = packed & 0xffff;
    l.rf = (packed >> 16) & 0xffff;
    l.groups = (packed >> 32) & 0xffff;
    return l;
  }
  void StoreLayout(const Layout& l) {
    packed_layout_.store((uint64_t{l.groups} << 32) |
                             (uint64_t{l.rf & 0xffff} << 16) | l.partitions,
                         std::memory_order_release);
  }

  const size_t num_slots_;
  std::atomic<uint64_t> packed_layout_{(uint64_t{1} << 32) | 1};
  std::atomic<uint64_t> epoch_{1};

  mutable std::mutex mu_;
  std::unordered_map<size_t, uint32_t> slot_to_member_;
  std::unordered_map<uint32_t, size_t> member_to_slot_;
};

}  // namespace sirep::cluster

#endif  // SIREP_CLUSTER_PARTITION_MAP_H_
