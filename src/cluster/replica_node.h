#ifndef SIREP_CLUSTER_REPLICA_NODE_H_
#define SIREP_CLUSTER_REPLICA_NODE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "cluster/cost_model.h"
#include "common/sync.h"
#include "engine/database.h"

namespace sirep::cluster {

/// One emulated machine: a database replica plus a bounded worker
/// capacity. Every statement executed (and every remote writeset applied)
/// at this node first claims a worker slot for its emulated service time,
/// which is what produces realistic queueing under load.
///
/// The middleware replica for this node is created by Cluster (it needs
/// the group); this class owns only the DB-side resources so it can also
/// back the centralized (replication-free) baseline.
class ReplicaNode {
 public:
  ReplicaNode(std::string name, size_t workers, CostModel cost)
      : db_(std::make_unique<engine::Database>(std::move(name))),
        workers_(static_cast<int>(workers)),
        cost_(cost) {
    db_->SetCostHooks(
        [this](const sql::Statement& stmt) {
          Charge(cost_.StatementCost(stmt));
        },
        [this](const storage::WriteSet& ws) { Charge(cost_.ApplyCost(ws)); });
  }

  engine::Database* db() { return db_.get(); }
  const engine::Database* db() const { return db_.get(); }

  /// Turns the cost emulation on/off (off during bulk data loading).
  void SetEmulationEnabled(bool enabled) {
    emulate_.store(enabled && cost_.enabled(), std::memory_order_release);
  }

  const CostModel& cost() const { return cost_; }

  /// Occupies one worker slot for `duration` (no-op when emulation is
  /// off or the duration is zero).
  void Charge(std::chrono::microseconds duration) {
    if (duration.count() <= 0 ||
        !emulate_.load(std::memory_order_acquire)) {
      return;
    }
    workers_.Acquire();
    std::this_thread::sleep_for(duration);
    workers_.Release();
  }

 private:
  std::unique_ptr<engine::Database> db_;
  Semaphore workers_;
  CostModel cost_;
  std::atomic<bool> emulate_{false};
};

}  // namespace sirep::cluster

#endif  // SIREP_CLUSTER_REPLICA_NODE_H_
