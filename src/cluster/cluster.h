#ifndef SIREP_CLUSTER_CLUSTER_H_
#define SIREP_CLUSTER_CLUSTER_H_

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "client/driver.h"
#include "cluster/cost_model.h"
#include "cluster/partition_map.h"
#include "cluster/replica_node.h"
#include "common/status.h"
#include "gcs/group.h"
#include "middleware/metrics_http.h"
#include "middleware/replica_mw.h"

namespace sirep::cluster {

/// How RestartReplica/AddReplica retry a failed online recovery.
/// Recover() itself already fails over across donors; this outer loop
/// covers the cases it cannot — every donor momentarily dead, the
/// joining incarnation expelled mid-recovery — by rebuilding the
/// incarnation and re-entering with exponential backoff.
struct RecoveryRetryPolicy {
  size_t max_attempts = 5;
  std::chrono::milliseconds initial_backoff{10};
  std::chrono::milliseconds max_backoff{400};
  /// Overall cap across all attempts (backoff sleeps included).
  std::chrono::milliseconds deadline{60000};
};

struct ClusterOptions {
  size_t num_replicas = 3;
  middleware::ReplicaOptions replica;
  gcs::GroupOptions gcs;
  /// Worker slots per replica (emulated machine parallelism).
  size_t workers_per_replica = 4;
  /// All-zero by default: no service-time emulation.
  CostModel cost;
  RecoveryRetryPolicy recovery_retry;
  /// Partial replication (see cluster::PartitionMap): the keyspace is
  /// hash-partitioned into `partitions` partitions, each owned by a
  /// disjoint group of `replication_factor` replicas. 0/0 (the default)
  /// keeps full replication unless the SIREP_PARTITIONS /
  /// SIREP_REPLICATION_FACTOR environment variables say otherwise.
  /// replication_factor >= num_replicas also degenerates to full
  /// replication.
  size_t partitions = 0;
  size_t replication_factor = 0;
};

/// Wires up a full SI-Rep deployment in one process (paper Fig. 3c): N
/// (database, middleware) pairs over one group, plus replica discovery
/// for the JDBC-like driver. Also the fault-injection surface: crash any
/// replica and watch clients fail over.
class Cluster : public client::ReplicaDirectory {
 public:
  explicit Cluster(ClusterOptions options = {});
  ~Cluster() override;

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Joins every middleware replica to the group. Call once, first.
  Status Start();

  // ---- schema / data loading (bypasses replication, like restoring the
  // same backup at every replica before opening for business) ----

  /// Runs one autocommitted statement at every replica.
  Status ExecuteEverywhere(const std::string& sql,
                           const std::vector<sql::Value>& params = {});

  /// Runs an arbitrary loader against every replica's database.
  Status LoadEverywhere(
      const std::function<Status(engine::Database*)>& loader);

  /// Enables/disables cost emulation at every node (enable after loading).
  void SetEmulationEnabled(bool enabled);

  // ---- client access ----

  client::Driver& driver() { return driver_; }
  Result<std::unique_ptr<client::Connection>> Connect(
      client::ConnectionOptions options = {}) {
    return driver_.Connect(options);
  }

  // ---- fault injection & introspection ----

  void CrashReplica(size_t index);

  // ---- online recovery (extension) ----

  /// Restarts a previously crashed replica over its surviving database
  /// (simulating a node reboot with its disk intact): a fresh middleware
  /// incarnation joins the group and catches up from the old
  /// incarnation's stable commit prefix while the rest of the cluster
  /// keeps processing transactions.
  Status RestartReplica(size_t index);

  /// Adds a brand-new replica while the cluster runs: `schema_loader`
  /// creates the (empty) schema — writesets address tuples by table name
  /// — and recovery replays the full writeset log. Returns its index.
  Result<size_t> AddReplica(
      const std::function<Status(engine::Database*)>& schema_loader);

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(replicas_mu_);
    return nodes_.size();
  }
  ReplicaNode* node(size_t index) {
    std::shared_lock<std::shared_mutex> lock(replicas_mu_);
    return nodes_[index].get();
  }
  engine::Database* db(size_t index) {
    std::shared_lock<std::shared_mutex> lock(replicas_mu_);
    return nodes_[index]->db();
  }
  middleware::SrcaRepReplica* replica(size_t index) {
    std::shared_lock<std::shared_mutex> lock(replicas_mu_);
    return replicas_[index].get();
  }
  gcs::Group& group() { return *group_; }
  /// The shared partition map (null under full replication). One object
  /// for the whole cluster — it models the deployment's partition
  ///-assignment config service.
  const std::shared_ptr<PartitionMap>& partition_map() const {
    return partition_map_;
  }

  /// Sum of per-replica stats (for benches).
  middleware::SrcaRepReplica::Stats AggregateStats() const;

  /// Merged metrics snapshot across the whole deployment: every
  /// middleware replica's registry ("mw.*"), every storage engine's
  /// ("storage.*", "engine.*"), and the GCS group's ("gcs.*"). Same-name
  /// metrics from different replicas add up (histograms bucket-wise).
  obs::MetricsSnapshot DumpMetrics() const;

  /// Human-readable per-stage commit-latency breakdown (count / mean /
  /// p50 / p95 / p99 per commit-path stage) extracted from `snapshot`'s
  /// "mw.commit.stage.*_us" histograms — the paper's Fig. 7 overhead
  /// table, measured instead of estimated. Includes the cross-replica
  /// stages (sequencer queue, delivery skew, remote apply lag, snapshot
  /// staleness), whose spans were recorded at remote replicas under the
  /// originating transaction's trace id.
  static std::string FormatCommitBreakdown(const obs::MetricsSnapshot& snap);

  /// Concatenated flight-recorder dump: one section per live replica
  /// plus the process-global recorder (WAL, failpoints, harness events).
  std::string DumpFlightRecorders() const;

  /// Starts one loopback HTTP exposition server per replica, each
  /// serving GET /metrics (that replica's registry, Prometheus text),
  /// GET /flightrecorder (its black box), and GET /cluster/metrics (the
  /// merged DumpMetrics() view — the cluster aggregator, available on
  /// every port). Kernel-assigned ports; see MetricsPorts(). Idempotent.
  Status StartMetricsEndpoints();

  /// Bound port of each replica's exposition server (empty until
  /// StartMetricsEndpoints()).
  std::vector<uint16_t> MetricsPorts() const;

  /// Stops the exposition servers (also run at destruction).
  void StopMetricsEndpoints();

  /// Blocks until all multicast traffic has been delivered and all
  /// tocommit queues drained (test helper).
  void Quiesce();

  /// Runs version garbage collection at every replica (PostgreSQL's
  /// VACUUM). Returns total versions freed.
  size_t VacuumAll();

  // client::ReplicaDirectory
  std::vector<middleware::SrcaRepReplica*> Discover() override;

 private:
  /// Builds a recovering middleware incarnation over `db` and drives
  /// Recover(from_tid) to success under options_.recovery_retry:
  /// retryable failures (kUnavailable/kTimedOut) back off and re-enter,
  /// rebuilding the incarnation if it died; hard failures and deadline
  /// exhaustion return the last status with the incarnation crashed.
  Result<std::unique_ptr<middleware::SrcaRepReplica>> RecoverIncarnation(
      engine::Database* db, uint64_t from_tid, size_t slot,
      bool allow_partial = false);

  ClusterOptions options_;
  std::unique_ptr<gcs::Group> group_;
  /// Shared by every replica's ReplicaOptions (slot i = replica i).
  std::shared_ptr<PartitionMap> partition_map_;
  /// Guards nodes_/replicas_ against concurrent structural changes:
  /// RestartReplica swaps a replica slot and AddReplica appends while
  /// client threads run Discover() and tests poke accessors. Readers
  /// take it shared; recording into replica objects needs no lock.
  mutable std::shared_mutex replicas_mu_;
  std::vector<std::unique_ptr<ReplicaNode>> nodes_;
  std::vector<std::unique_ptr<middleware::SrcaRepReplica>> replicas_;
  /// Dead middleware incarnations, parked so raw SrcaRepReplica*
  /// handles held by clients stay valid until the cluster dies.
  std::vector<std::unique_ptr<middleware::SrcaRepReplica>> retired_;
  /// Per-replica exposition servers (StartMetricsEndpoints). Handlers
  /// resolve the replica by index through replica(), so they survive
  /// RestartReplica's incarnation swap.
  std::vector<std::unique_ptr<middleware::MetricsHttpServer>>
      metrics_servers_;
  client::Driver driver_;
};

}  // namespace sirep::cluster

#endif  // SIREP_CLUSTER_CLUSTER_H_
