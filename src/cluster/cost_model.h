#ifndef SIREP_CLUSTER_COST_MODEL_H_
#define SIREP_CLUSTER_COST_MODEL_H_

#include <chrono>
#include <cstdint>

#include "sql/ast.h"
#include "storage/write_set.h"

namespace sirep::cluster {

/// Emulated per-operation resource costs, replacing the paper's physical
/// testbed (Pentium-4 cluster, disk-bound PostgreSQL) with a calibrated
/// sleep-based model: executing a statement occupies one of the replica's
/// worker slots for the statement's service time. Because the sleeps
/// consume no host CPU, ten emulated replicas coexist on one machine while
/// preserving the queueing behaviour that shapes the paper's
/// response-time/throughput curves.
///
/// All zeros (the default) disables emulation — unit/integration tests run
/// at full speed.
struct CostModel {
  std::chrono::microseconds select_service{0};
  std::chrono::microseconds update_service{0};
  std::chrono::microseconds insert_service{0};
  std::chrono::microseconds delete_service{0};
  /// Cost of applying one writeset *entry* at a remote replica, expressed
  /// as a fraction of update_service. The paper measures whole-writeset
  /// application at ~20 % of executing the complete transaction (§6.3).
  double apply_fraction = 0.2;

  bool enabled() const {
    return select_service.count() > 0 || update_service.count() > 0 ||
           insert_service.count() > 0 || delete_service.count() > 0;
  }

  std::chrono::microseconds StatementCost(const sql::Statement& stmt) const {
    switch (stmt.kind) {
      case sql::StatementKind::kSelect:
        return select_service;
      case sql::StatementKind::kUpdate:
        return update_service;
      case sql::StatementKind::kInsert:
        return insert_service;
      case sql::StatementKind::kDelete:
        return delete_service;
      default:
        return std::chrono::microseconds{0};
    }
  }

  std::chrono::microseconds ApplyCost(const storage::WriteSet& ws) const {
    const auto per_entry = std::chrono::microseconds(static_cast<int64_t>(
        static_cast<double>(update_service.count()) * apply_fraction));
    return per_entry * static_cast<int64_t>(ws.size());
  }
};

}  // namespace sirep::cluster

#endif  // SIREP_CLUSTER_COST_MODEL_H_
