#include "cluster/cluster.h"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <sstream>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace sirep::cluster {

Cluster::Cluster(ClusterOptions options)
    : options_(options),
      group_(std::make_unique<gcs::Group>(options.gcs)),
      driver_(this) {
  // One shared partition map for the whole deployment (slot i =
  // replica i); explicit options win over the SIREP_PARTITIONS /
  // SIREP_REPLICATION_FACTOR environment knobs.
  if (options_.partitions != 0 || options_.replication_factor != 0) {
    partition_map_ = std::make_shared<PartitionMap>(
        options_.num_replicas,
        options_.partitions == 0 ? size_t{16} : options_.partitions,
        options_.replication_factor);
  } else {
    partition_map_ = PartitionMap::FromEnv(options_.num_replicas);
  }
  options_.replica.partition_map = partition_map_;
  nodes_.reserve(options_.num_replicas);
  replicas_.reserve(options_.num_replicas);
  for (size_t i = 0; i < options_.num_replicas; ++i) {
    nodes_.push_back(std::make_unique<ReplicaNode>(
        "replica" + std::to_string(i), options_.workers_per_replica,
        options_.cost));
    middleware::ReplicaOptions ropt = options_.replica;
    ropt.partition_slot = i;
    replicas_.push_back(std::make_unique<middleware::SrcaRepReplica>(
        nodes_.back()->db(), group_.get(), ropt));
  }
}

Cluster::~Cluster() {
  StopMetricsEndpoints();
  for (auto& replica : replicas_) replica->Shutdown();
  group_->Shutdown();
}

Status Cluster::Start() {
  for (auto& replica : replicas_) {
    SIREP_RETURN_IF_ERROR(replica->Start());
  }
  return Status::OK();
}

Status Cluster::ExecuteEverywhere(const std::string& sql,
                                  const std::vector<sql::Value>& params) {
  for (auto& node : nodes_) {
    auto result = node->db()->ExecuteAutoCommit(sql, params);
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

Status Cluster::LoadEverywhere(
    const std::function<Status(engine::Database*)>& loader) {
  for (auto& node : nodes_) {
    SIREP_RETURN_IF_ERROR(loader(node->db()));
  }
  return Status::OK();
}

void Cluster::SetEmulationEnabled(bool enabled) {
  for (auto& node : nodes_) node->SetEmulationEnabled(enabled);
}

void Cluster::CrashReplica(size_t index) {
  std::shared_lock<std::shared_mutex> lock(replicas_mu_);
  if (index < replicas_.size()) replicas_[index]->Crash();
}

std::vector<middleware::SrcaRepReplica*> Cluster::Discover() {
  std::shared_lock<std::shared_mutex> lock(replicas_mu_);
  std::vector<middleware::SrcaRepReplica*> out;
  for (auto& replica : replicas_) {
    // Paper §5.4: "replicas that are able to handle additional workload
    // respond" — a recovering replica does not respond to discovery.
    if (replica->IsAcceptingClients()) out.push_back(replica.get());
  }
  return out;
}

namespace {

bool RecoveryRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kTimedOut;
}

}  // namespace

Result<std::unique_ptr<middleware::SrcaRepReplica>>
Cluster::RecoverIncarnation(engine::Database* db, uint64_t from_tid,
                            size_t slot, bool allow_partial) {
  const RecoveryRetryPolicy& policy = options_.recovery_retry;
  const auto deadline = std::chrono::steady_clock::now() + policy.deadline;
  std::chrono::milliseconds backoff = policy.initial_backoff;
  middleware::ReplicaOptions ropt = options_.replica;
  ropt.start_recovering = true;
  ropt.partition_slot = slot;

  std::unique_ptr<middleware::SrcaRepReplica> incarnation;
  Status recovered = Status::Unavailable("recovery never attempted");
  for (size_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, policy.max_backoff);
      if (std::chrono::steady_clock::now() > deadline) break;
    }
    if (incarnation == nullptr || !incarnation->IsAlive()) {
      // First attempt, or the joining incarnation crashed mid-recovery
      // (e.g. expelled by a view change): rebuild it. A crashed
      // incarnation has already detached from the group, so destroying
      // it is safe — it was never published to clients.
      incarnation = std::make_unique<middleware::SrcaRepReplica>(
          db, group_.get(), ropt);
      Status started = incarnation->Start();
      if (!started.ok()) {
        recovered = started;
        incarnation->Crash();
        incarnation.reset();
        if (!RecoveryRetryable(started)) return started;
        continue;
      }
    }
    recovered = incarnation->Recover(from_tid, std::chrono::milliseconds(0),
                                     allow_partial);
    if (recovered.ok()) return incarnation;
    if (!RecoveryRetryable(recovered)) break;
    // Retryable: a live incarnation re-enters Recover() directly (its
    // buffered delivery mode is still armed); a dead one is rebuilt at
    // the top of the loop.
  }
  if (incarnation != nullptr) {
    // The incarnation may have joined the group; detach it before the
    // object dies, or the delivery thread would keep invoking a
    // dangling listener on the next view change.
    incarnation->Crash();
  }
  return recovered;
}

Status Cluster::RestartReplica(size_t index) {
  middleware::SrcaRepReplica* old = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(replicas_mu_);
    if (index >= replicas_.size()) {
      return Status::InvalidArgument("no replica " + std::to_string(index));
    }
    old = replicas_[index].get();
  }
  if (old->IsAlive()) {
    return Status::InvalidArgument("replica " + std::to_string(index) +
                                   " has not crashed");
  }
  const uint64_t from_tid = old->StableCommitPrefix();
  // The database "process" restarts: committed data survives, in-flight
  // transactions of the dead incarnation roll back implicitly.
  nodes_[index]->db()->engine().SimulateRestart();

  // Full-cluster outage: online recovery needs a live donor, and there
  // is none. Commits apply in delivery order and an acknowledgement
  // follows the delegate's local commit, so the replica holding the
  // longest stable prefix contains every acknowledged commit — it alone
  // may cold-start as the new epoch's seed; everyone else keeps failing
  // with a retryable status until it is up, then recovers from it.
  bool any_alive = false;
  uint64_t max_prefix = 0;
  {
    std::shared_lock<std::shared_mutex> lock(replicas_mu_);
    for (const auto& replica : replicas_) {
      if (replica->IsAlive()) any_alive = true;
      max_prefix = std::max(max_prefix, replica->StableCommitPrefix());
    }
  }
  if (!any_alive && from_tid >= max_prefix) {
    middleware::ReplicaOptions ropt = options_.replica;
    ropt.start_recovering = false;
    ropt.partition_slot = index;
    ropt.bootstrap_prefix = from_tid;  // 0 (nothing ever committed) is
                                       // simply a normal live start
    auto seed = std::make_unique<middleware::SrcaRepReplica>(
        nodes_[index]->db(), group_.get(), ropt);
    Status started = seed->Start();
    if (!started.ok()) {
      seed->Crash();
      return started;
    }
    std::unique_lock<std::shared_mutex> lock(replicas_mu_);
    retired_.push_back(std::move(replicas_[index]));
    replicas_[index] = std::move(seed);
    return Status::OK();
  }
  if (!any_alive) {
    return Status::Unavailable(
        "cluster is down and replica " + std::to_string(index) +
        " does not hold the longest stable prefix; cold-start the "
        "longest-prefix replica first");
  }

  // Partial replication, whole-group outage: somebody is alive, but
  // nobody alive covers this replica's partitions (its group peers are
  // all down — live peers always cover, their held masks are
  // identical). Rows for those partitions exist nowhere live, so the
  // group member with the longest stable prefix restarts first,
  // keeping its own rows and taking only bookkeeping (validation
  // state + log) from a non-covering donor; while the group is down the
  // misroute guard aborts every new transaction touching its
  // partitions, so that member's rows are complete. Everyone else waits
  // (retryable) until it is up and recovers from it normally.
  bool allow_partial = false;
  if (partition_map_ != nullptr && partition_map_->partial()) {
    const uint64_t needed = partition_map_->HeldMask(index);
    bool covering_alive = false;
    uint64_t group_max_prefix = 0;
    {
      std::shared_lock<std::shared_mutex> lock(replicas_mu_);
      for (size_t i = 0; i < replicas_.size(); ++i) {
        if (i != index && replicas_[i]->IsAlive() &&
            (needed & ~partition_map_->HeldMask(i)) == 0) {
          covering_alive = true;
        }
        if (partition_map_->HeldMask(i) == needed) {
          group_max_prefix = std::max(group_max_prefix,
                                      replicas_[i]->StableCommitPrefix());
        }
      }
    }
    if (!covering_alive) {
      if (from_tid < group_max_prefix) {
        return Status::Unavailable(
            "partition group of replica " + std::to_string(index) +
            " is down and this replica does not hold its longest stable "
            "prefix; restart the longest-prefix group member first");
      }
      allow_partial = true;
    }
  }

  auto incarnation =
      RecoverIncarnation(nodes_[index]->db(), from_tid, index, allow_partial);
  if (!incarnation.ok()) return incarnation.status();
  {
    // Park (don't destroy) the dead incarnation: clients may still hold
    // raw pointers to it mid-failover.
    std::unique_lock<std::shared_mutex> lock(replicas_mu_);
    retired_.push_back(std::move(replicas_[index]));
    replicas_[index] = std::move(incarnation.value());
  }
  return Status::OK();
}

Result<size_t> Cluster::AddReplica(
    const std::function<Status(engine::Database*)>& schema_loader) {
  // A joiner beyond the founding slot range holds the full partition
  // mask (see PartitionMap::HeldMask): it receives full payloads,
  // recovers from any donor, and never gets stripped.
  const size_t slot = size();
  auto node = std::make_unique<ReplicaNode>(
      "replica" + std::to_string(slot), options_.workers_per_replica,
      options_.cost);
  SIREP_RETURN_IF_ERROR(schema_loader(node->db()));
  // Re-attempts reuse the same database: recovery replay is idempotent,
  // so data a failed attempt already imported is simply overwritten.
  auto replica = RecoverIncarnation(node->db(), /*from_tid=*/0, slot);
  if (!replica.ok()) return replica.status();
  std::unique_lock<std::shared_mutex> lock(replicas_mu_);
  nodes_.push_back(std::move(node));
  replicas_.push_back(std::move(replica.value()));
  return nodes_.size() - 1;
}

size_t Cluster::VacuumAll() {
  size_t freed = 0;
  for (auto& node : nodes_) freed += node->db()->engine().Vacuum();
  return freed;
}

obs::MetricsSnapshot Cluster::DumpMetrics() const {
  obs::MetricsSnapshot merged = group_->metrics().Snapshot();
  std::shared_lock<std::shared_mutex> lock(replicas_mu_);
  for (const auto& replica : replicas_) {
    merged.Merge(replica->metrics().Snapshot());
  }
  for (const auto& node : nodes_) {
    merged.Merge(node->db()->engine().metrics().Snapshot());
  }
  return merged;
}

std::string Cluster::FormatCommitBreakdown(const obs::MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "commit-path stage breakdown (us)\n";
  os << "  " << std::left << std::setw(20) << "stage" << std::right
     << std::setw(10) << "count" << std::setw(12) << "mean"
     << std::setw(12) << "p50" << std::setw(12) << "p95"
     << std::setw(12) << "p99" << "\n";
  os << std::fixed << std::setprecision(1);
  for (int i = 0; i < obs::kNumStages; ++i) {
    if (i == obs::kFirstCrossReplicaStage) {
      os << "  -- cross-replica (spans recorded at remote replicas under "
            "the origin's trace id) --\n";
    }
    const auto stage = static_cast<obs::Stage>(i);
    const auto it = snap.histograms.find(obs::StageMetricName(stage));
    if (it == snap.histograms.end()) continue;
    const auto p = it->second.SummaryPercentiles();
    os << "  " << std::left << std::setw(20) << obs::StageName(stage)
       << std::right << std::setw(10) << p.count << std::setw(12) << p.mean
       << std::setw(12) << p.p50 << std::setw(12) << p.p95 << std::setw(12)
       << p.p99 << "\n";
  }
  return os.str();
}

std::string Cluster::DumpFlightRecorders() const {
  std::ostringstream os;
  {
    std::shared_lock<std::shared_mutex> lock(replicas_mu_);
    for (size_t i = 0; i < replicas_.size(); ++i) {
      os << "## replica " << i << " (member "
         << replicas_[i]->member_id() << ")\n"
         << replicas_[i]->flight_recorder().DumpText();
    }
  }
  os << "## process-global\n" << obs::FlightRecorder::Global().DumpText();
  return os.str();
}

Status Cluster::StartMetricsEndpoints() {
  if (!metrics_servers_.empty()) return Status::OK();
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) {
    auto server = std::make_unique<middleware::MetricsHttpServer>();
    server->AddEndpoint(
        "/metrics", "text/plain; version=0.0.4", [this, i] {
          return replica(i)->metrics().PrometheusText();
        });
    server->AddEndpoint("/metrics.json", "application/json", [this, i] {
      return replica(i)->metrics().SnapshotJson();
    });
    server->AddEndpoint("/healthz", "application/json", [this, i] {
      return replica(i)->HealthJson();
    });
    server->AddEndpoint("/profile", "application/json", [] {
      return obs::Profiler::Global().SnapshotJson();
    });
    server->AddEndpoint("/flightrecorder", "text/plain", [this, i] {
      return replica(i)->flight_recorder().DumpText();
    });
    server->AddEndpoint(
        "/cluster/metrics", "text/plain; version=0.0.4",
        [this] { return DumpMetrics().ToPrometheusText(); });
    SIREP_RETURN_IF_ERROR(server->Start());
    metrics_servers_.push_back(std::move(server));
  }
  return Status::OK();
}

std::vector<uint16_t> Cluster::MetricsPorts() const {
  std::vector<uint16_t> ports;
  ports.reserve(metrics_servers_.size());
  for (const auto& server : metrics_servers_) {
    ports.push_back(server->port());
  }
  return ports;
}

void Cluster::StopMetricsEndpoints() {
  for (auto& server : metrics_servers_) server->Stop();
  metrics_servers_.clear();
}

middleware::SrcaRepReplica::Stats Cluster::AggregateStats() const {
  middleware::SrcaRepReplica::Stats total;
  std::shared_lock<std::shared_mutex> lock(replicas_mu_);
  for (const auto& replica : replicas_) {
    auto s = replica->stats();
    total.committed += s.committed;
    total.empty_ws_commits += s.empty_ws_commits;
    total.local_val_aborts += s.local_val_aborts;
    total.global_val_aborts += s.global_val_aborts;
    total.remote_discards += s.remote_discards;
    total.apply_retries += s.apply_retries;
    total.holes.starts += s.holes.starts;
    total.holes.delayed_starts += s.holes.delayed_starts;
    total.holes.commits += s.holes.commits;
    total.holes.delayed_commits += s.holes.delayed_commits;
  }
  return total;
}

void Cluster::Quiesce() {
  group_->WaitForQuiescence();
  // Then wait for every live replica's tocommit queue to drain (remote
  // applies are asynchronous after delivery). The group is quiescent, so
  // no new deliveries can refill a queue once it empties — waiting on
  // each replica in turn is exact, and the condition-variable wait
  // replaces the old 1 ms poll loop. Pointers are collected under the
  // lock but waited on outside it: replicas_mu_ must stay available to
  // discovery while we block.
  std::vector<middleware::SrcaRepReplica*> replicas;
  {
    std::shared_lock<std::shared_mutex> lock(replicas_mu_);
    replicas.reserve(replicas_.size());
    for (auto& replica : replicas_) replicas.push_back(replica.get());
  }
  for (auto* replica : replicas) replica->WaitForQueueDrain();
}

}  // namespace sirep::cluster
