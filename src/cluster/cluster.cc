#include "cluster/cluster.h"

#include <chrono>
#include <iomanip>
#include <sstream>
#include <thread>

#include "obs/trace.h"

namespace sirep::cluster {

Cluster::Cluster(ClusterOptions options)
    : options_(options),
      group_(std::make_unique<gcs::Group>(options.gcs)),
      driver_(this) {
  nodes_.reserve(options_.num_replicas);
  replicas_.reserve(options_.num_replicas);
  for (size_t i = 0; i < options_.num_replicas; ++i) {
    nodes_.push_back(std::make_unique<ReplicaNode>(
        "replica" + std::to_string(i), options_.workers_per_replica,
        options_.cost));
    replicas_.push_back(std::make_unique<middleware::SrcaRepReplica>(
        nodes_.back()->db(), group_.get(), options_.replica));
  }
}

Cluster::~Cluster() {
  for (auto& replica : replicas_) replica->Shutdown();
  group_->Shutdown();
}

Status Cluster::Start() {
  for (auto& replica : replicas_) {
    SIREP_RETURN_IF_ERROR(replica->Start());
  }
  return Status::OK();
}

Status Cluster::ExecuteEverywhere(const std::string& sql,
                                  const std::vector<sql::Value>& params) {
  for (auto& node : nodes_) {
    auto result = node->db()->ExecuteAutoCommit(sql, params);
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

Status Cluster::LoadEverywhere(
    const std::function<Status(engine::Database*)>& loader) {
  for (auto& node : nodes_) {
    SIREP_RETURN_IF_ERROR(loader(node->db()));
  }
  return Status::OK();
}

void Cluster::SetEmulationEnabled(bool enabled) {
  for (auto& node : nodes_) node->SetEmulationEnabled(enabled);
}

void Cluster::CrashReplica(size_t index) {
  std::shared_lock<std::shared_mutex> lock(replicas_mu_);
  if (index < replicas_.size()) replicas_[index]->Crash();
}

std::vector<middleware::SrcaRepReplica*> Cluster::Discover() {
  std::shared_lock<std::shared_mutex> lock(replicas_mu_);
  std::vector<middleware::SrcaRepReplica*> out;
  for (auto& replica : replicas_) {
    // Paper §5.4: "replicas that are able to handle additional workload
    // respond" — a recovering replica does not respond to discovery.
    if (replica->IsAcceptingClients()) out.push_back(replica.get());
  }
  return out;
}

Status Cluster::RestartReplica(size_t index) {
  middleware::SrcaRepReplica* old = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(replicas_mu_);
    if (index >= replicas_.size()) {
      return Status::InvalidArgument("no replica " + std::to_string(index));
    }
    old = replicas_[index].get();
  }
  if (old->IsAlive()) {
    return Status::InvalidArgument("replica " + std::to_string(index) +
                                   " has not crashed");
  }
  const uint64_t from_tid = old->StableCommitPrefix();
  // The database "process" restarts: committed data survives, in-flight
  // transactions of the dead incarnation roll back implicitly.
  nodes_[index]->db()->engine().SimulateRestart();
  middleware::ReplicaOptions ropt = options_.replica;
  ropt.start_recovering = true;
  auto incarnation = std::make_unique<middleware::SrcaRepReplica>(
      nodes_[index]->db(), group_.get(), ropt);
  SIREP_RETURN_IF_ERROR(incarnation->Start());
  SIREP_RETURN_IF_ERROR(incarnation->Recover(from_tid));
  {
    // Park (don't destroy) the dead incarnation: clients may still hold
    // raw pointers to it mid-failover.
    std::unique_lock<std::shared_mutex> lock(replicas_mu_);
    retired_.push_back(std::move(replicas_[index]));
    replicas_[index] = std::move(incarnation);
  }
  return Status::OK();
}

Result<size_t> Cluster::AddReplica(
    const std::function<Status(engine::Database*)>& schema_loader) {
  auto node = std::make_unique<ReplicaNode>(
      "replica" + std::to_string(size()), options_.workers_per_replica,
      options_.cost);
  SIREP_RETURN_IF_ERROR(schema_loader(node->db()));
  middleware::ReplicaOptions ropt = options_.replica;
  ropt.start_recovering = true;
  auto replica = std::make_unique<middleware::SrcaRepReplica>(
      node->db(), group_.get(), ropt);
  SIREP_RETURN_IF_ERROR(replica->Start());
  SIREP_RETURN_IF_ERROR(replica->Recover(/*from_tid=*/0));
  std::unique_lock<std::shared_mutex> lock(replicas_mu_);
  nodes_.push_back(std::move(node));
  replicas_.push_back(std::move(replica));
  return nodes_.size() - 1;
}

size_t Cluster::VacuumAll() {
  size_t freed = 0;
  for (auto& node : nodes_) freed += node->db()->engine().Vacuum();
  return freed;
}

obs::MetricsSnapshot Cluster::DumpMetrics() const {
  obs::MetricsSnapshot merged = group_->metrics().Snapshot();
  std::shared_lock<std::shared_mutex> lock(replicas_mu_);
  for (const auto& replica : replicas_) {
    merged.Merge(replica->metrics().Snapshot());
  }
  for (const auto& node : nodes_) {
    merged.Merge(node->db()->engine().metrics().Snapshot());
  }
  return merged;
}

std::string Cluster::FormatCommitBreakdown(const obs::MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "commit-path stage breakdown (us)\n";
  os << "  " << std::left << std::setw(16) << "stage" << std::right
     << std::setw(10) << "count" << std::setw(12) << "mean"
     << std::setw(12) << "p95" << "\n";
  os << std::fixed << std::setprecision(1);
  for (int i = 0; i < obs::kNumStages; ++i) {
    const auto stage = static_cast<obs::Stage>(i);
    const auto it = snap.histograms.find(obs::StageMetricName(stage));
    if (it == snap.histograms.end()) continue;
    const obs::HistogramSnapshot& h = it->second;
    os << "  " << std::left << std::setw(16) << obs::StageName(stage)
       << std::right << std::setw(10) << h.count << std::setw(12)
       << h.Mean() << std::setw(12) << h.Quantile(0.95) << "\n";
  }
  return os.str();
}

middleware::SrcaRepReplica::Stats Cluster::AggregateStats() const {
  middleware::SrcaRepReplica::Stats total;
  std::shared_lock<std::shared_mutex> lock(replicas_mu_);
  for (const auto& replica : replicas_) {
    auto s = replica->stats();
    total.committed += s.committed;
    total.empty_ws_commits += s.empty_ws_commits;
    total.local_val_aborts += s.local_val_aborts;
    total.global_val_aborts += s.global_val_aborts;
    total.remote_discards += s.remote_discards;
    total.apply_retries += s.apply_retries;
    total.holes.starts += s.holes.starts;
    total.holes.delayed_starts += s.holes.delayed_starts;
    total.holes.commits += s.holes.commits;
    total.holes.delayed_commits += s.holes.delayed_commits;
  }
  return total;
}

void Cluster::Quiesce() {
  group_->WaitForQuiescence();
  // Then wait for every live replica's tocommit queue to drain (remote
  // applies are asynchronous after delivery). The group is quiescent, so
  // no new deliveries can refill a queue once it empties — waiting on
  // each replica in turn is exact, and the condition-variable wait
  // replaces the old 1 ms poll loop. Pointers are collected under the
  // lock but waited on outside it: replicas_mu_ must stay available to
  // discovery while we block.
  std::vector<middleware::SrcaRepReplica*> replicas;
  {
    std::shared_lock<std::shared_mutex> lock(replicas_mu_);
    replicas.reserve(replicas_.size());
    for (auto& replica : replicas_) replicas.push_back(replica.get());
  }
  for (auto* replica : replicas) replica->WaitForQueueDrain();
}

}  // namespace sirep::cluster
