#ifndef SIREP_COMMON_FAILPOINT_H_
#define SIREP_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sirep::failpoint {

/// Deterministic fault injection for the crash/failover paths (paper
/// §5.4): code threads named failpoints through the places that can
/// really fail (WAL appends, TCP sends, commit sub-stages, remote
/// applies), tests and the chaos harness arm them with per-point
/// policies, and a seeded PRNG makes every probabilistic schedule
/// reproducible from a single seed.
///
/// Disarmed cost is one relaxed atomic load (the SIREP_FAILPOINT macros
/// check AnyArmed() before touching the registry), so failpoints are
/// safe to leave on hot paths in release builds.
///
/// Policies, written as specs (programmatic Arm() or the
/// SIREP_FAILPOINTS environment variable):
///
///   off                    disarm
///   error                  fire kInternal on every evaluation
///   error(<code>)          fire the named status code (unavailable,
///                          timedout, conflict, aborted, internal, ...)
///   delay(<N>us|<N>ms)     sleep inline, then continue (no error)
///   crash                  fire a crash verdict: the call site performs
///                          its component's crash action (e.g. the
///                          middleware replica calls Crash())
///   arg(<N>)               fire with an integer argument the call site
///                          interprets (e.g. torn-write byte count)
///   1in(<N>[,<action>])    fire <action> (default error) with
///                          probability 1/N per evaluation, drawn from
///                          this point's seeded PRNG
///
/// Any spec may carry a `*<count>` suffix: the point disarms itself
/// after firing <count> times (e.g. "error(unavailable)*1" fails
/// exactly the next evaluation). Multiple points are armed at once with
/// a semicolon-separated list: "wal.append=arg(6)*1;gcs.tcp.send=1in(10)".
///
/// Determinism contract: each point's PRNG is derived from the global
/// seed and the point's name, so for a fixed seed the i-th evaluation
/// of a point always takes the same decision, independent of what other
/// points do and of thread interleaving between points.

/// What one evaluation decided. `fired` is true for error/crash/arg
/// verdicts only; delays are applied inside Eval() and report !fired.
struct Hit {
  enum class Kind : uint8_t { kNone, kError, kCrash, kArg };
  bool fired = false;
  Kind kind = Kind::kNone;
  StatusCode code = StatusCode::kInternal;
  int64_t arg = 0;

  /// The injected error as a Status (kCrash maps to kUnavailable, the
  /// code a crashed component's callers see). OK when !fired or kArg.
  Status ToStatus(std::string_view point) const;
};

/// True when at least one failpoint is armed anywhere in the process.
/// Single relaxed atomic load; the macros below gate on it.
bool AnyArmed();

/// Evaluates `name`: counts the hit, applies a delay policy inline,
/// consults the point's PRNG for 1in(N), and returns the verdict.
/// Unarmed points return {fired = false}.
Hit Eval(std::string_view name);

/// Eval() collapsed to a Status (see Hit::ToStatus). kArg verdicts
/// also map to OK — points whose argument matters must use Eval().
Status EvalStatus(std::string_view name);

/// Arms `name` with `spec` (grammar above). Re-arming replaces the
/// policy and re-derives the PRNG from the current global seed; hit and
/// fire counters persist across re-arms until Disarm().
Status Arm(const std::string& name, const std::string& spec);

/// Arms every `name=spec` pair in a semicolon-separated list.
Status ArmFromList(const std::string& list);

/// Arms from the SIREP_FAILPOINTS environment variable (no-op when
/// unset). Called once at first registry use, so env-armed points work
/// without any code change in the binary under test.
Status ArmFromEnv();

void Disarm(const std::string& name);
void DisarmAll();

/// Sets the global seed from which every point's PRNG is derived (at
/// arm time). Re-seeding re-derives the PRNG of already-armed points,
/// so Seed(s) + identical evaluation counts replay identical verdicts.
void Seed(uint64_t seed);

/// Evaluations / fired verdicts of `name` since it was first armed.
uint64_t Hits(const std::string& name);
uint64_t Fires(const std::string& name);

/// Observer invoked after every evaluation of an armed point whose
/// policy took effect — a fired error/crash/arg verdict, or an applied
/// delay (`delayed` true). Installed once by the observability layer to
/// mirror injected faults into the flight recorder; pass nullptr to
/// remove. Runs on the evaluating thread, outside the registry lock,
/// so it must be fast and must not evaluate failpoints itself.
using HitObserver = void (*)(std::string_view name, const Hit& hit,
                             bool delayed);
void SetHitObserver(HitObserver observer);

/// Every point ever armed with its counters, for the chaos harness's
/// end-of-run fault report.
struct PointStats {
  std::string name;
  std::string spec;  ///< currently armed spec, or "off"
  uint64_t hits = 0;
  uint64_t fires = 0;
};
std::vector<PointStats> Snapshot();

/// RAII arming for tests: arms in the constructor, disarms in the
/// destructor. Aborts the test via assert if the spec fails to parse.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, const std::string& spec);
  ~ScopedFailpoint();

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace sirep::failpoint

/// Evaluate a failpoint and propagate its injected error, if any.
/// One relaxed load when nothing is armed.
#define SIREP_FAILPOINT(name)                                     \
  do {                                                            \
    if (::sirep::failpoint::AnyArmed()) {                         \
      ::sirep::Status _fp_st = ::sirep::failpoint::EvalStatus(name); \
      if (!_fp_st.ok()) return _fp_st;                            \
    }                                                             \
  } while (0)

/// Evaluate a failpoint and hand the verdict to the call site (crash
/// actions, torn-write arguments). Yields a default (unfired) Hit when
/// nothing is armed.
#define SIREP_FAILPOINT_HIT(name)              \
  (::sirep::failpoint::AnyArmed()              \
       ? ::sirep::failpoint::Eval(name)        \
       : ::sirep::failpoint::Hit{})

#endif  // SIREP_COMMON_FAILPOINT_H_
