#ifndef SIREP_COMMON_PRNG_H_
#define SIREP_COMMON_PRNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace sirep {

/// Deterministic, seedable PRNG (xoshiro256**). Every randomized component
/// of SI-Rep (workloads, property tests, crash injection) takes an explicit
/// seed so runs are reproducible.
class Prng {
 public:
  explicit Prng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 to expand the seed into the 256-bit state.
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (inter-arrival
  /// times of an open-loop Poisson load generator).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) u = 1e-12;
    return -mean * std::log(u);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

/// Zipf-distributed generator over [0, n): precomputes the CDF once, then
/// samples with a binary search. Used for skewed key access in workloads.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Sample(Prng& prng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace sirep

#endif  // SIREP_COMMON_PRNG_H_
