#include "common/failpoint.h"

#include <cassert>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/prng.h"

namespace sirep::failpoint {

namespace {

/// One parsed action of a spec.
struct Action {
  enum class Kind : uint8_t { kOff, kError, kDelay, kCrash, kArg };
  Kind kind = Kind::kOff;
  StatusCode code = StatusCode::kInternal;
  std::chrono::microseconds delay{0};
  int64_t arg = 0;
};

struct Policy {
  Action action;
  /// 0 = deterministic (fire on every evaluation); otherwise fire with
  /// probability 1/one_in_n drawn from the point's PRNG.
  uint64_t one_in_n = 0;
  /// Remaining activations before self-disarm; ~0 = unlimited.
  uint64_t remaining = ~uint64_t{0};
  std::string spec;  ///< original text, for Snapshot()
};

struct Point {
  Policy policy;
  Prng prng;
  uint64_t hits = 0;
  uint64_t fires = 0;
  bool armed = false;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Point, std::less<>> points;
  uint64_t seed = 0x5149u;  // arbitrary default; tests set their own
};

std::atomic<int> g_armed_count{0};

Status ArmFromEnvImpl(Registry& registry);

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  // First use arms from the environment. The arming goes through the
  // *Impl helpers that take the registry directly — re-entering
  // GetRegistry() from inside this call_once would self-deadlock on
  // env_once (the in-flight invocation never returns).
  static std::once_flag env_once;
  std::call_once(env_once, [] { ArmFromEnvImpl(*registry); });
  return *registry;
}

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string Trimmed(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

Result<StatusCode> ParseCode(std::string_view name) {
  std::string lower;
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "aborted") return StatusCode::kAborted;
  if (lower == "conflict") return StatusCode::kConflict;
  if (lower == "deadlock") return StatusCode::kDeadlock;
  if (lower == "notfound") return StatusCode::kNotFound;
  if (lower == "alreadyexists") return StatusCode::kAlreadyExists;
  if (lower == "invalidargument") return StatusCode::kInvalidArgument;
  if (lower == "unavailable") return StatusCode::kUnavailable;
  if (lower == "transactionlost") return StatusCode::kTransactionLost;
  if (lower == "timedout") return StatusCode::kTimedOut;
  if (lower == "notsupported") return StatusCode::kNotSupported;
  if (lower == "internal") return StatusCode::kInternal;
  return Status::InvalidArgument("unknown status code '" +
                                 std::string(name) + "'");
}

/// Parses `head` / `head(args)` into an Action. `1in` is handled by the
/// caller (it wraps a sub-action).
Status ParseAction(const std::string& text, Action* out) {
  std::string head = text;
  std::string args;
  const size_t paren = text.find('(');
  if (paren != std::string::npos) {
    if (text.back() != ')') {
      return Status::InvalidArgument("unbalanced parentheses in '" + text +
                                     "'");
    }
    head = Trimmed(text.substr(0, paren));
    args = Trimmed(text.substr(paren + 1, text.size() - paren - 2));
  }
  if (head == "off") {
    out->kind = Action::Kind::kOff;
    return Status::OK();
  }
  if (head == "error") {
    out->kind = Action::Kind::kError;
    out->code = StatusCode::kInternal;
    if (!args.empty()) {
      auto code = ParseCode(args);
      if (!code.ok()) return code.status();
      out->code = code.value();
    }
    return Status::OK();
  }
  if (head == "crash") {
    out->kind = Action::Kind::kCrash;
    return Status::OK();
  }
  if (head == "arg") {
    out->kind = Action::Kind::kArg;
    if (args.empty()) {
      return Status::InvalidArgument("arg() requires an integer");
    }
    out->arg = std::strtoll(args.c_str(), nullptr, 10);
    return Status::OK();
  }
  if (head == "delay") {
    out->kind = Action::Kind::kDelay;
    char* end = nullptr;
    const long long n = std::strtoll(args.c_str(), &end, 10);
    const std::string unit = Trimmed(end == nullptr ? "" : end);
    if (args.empty() || n < 0 || (unit != "us" && unit != "ms")) {
      return Status::InvalidArgument(
          "delay() requires '<N>us' or '<N>ms', got '" + args + "'");
    }
    out->delay = unit == "ms" ? std::chrono::microseconds(n * 1000)
                              : std::chrono::microseconds(n);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown failpoint action '" + head + "'");
}

Status ParseSpec(const std::string& raw, Policy* out) {
  std::string text = Trimmed(raw);
  out->spec = text;
  // Optional `*count` suffix.
  const size_t star = text.rfind('*');
  if (star != std::string::npos && text.find(')', star) == std::string::npos) {
    const std::string count = Trimmed(text.substr(star + 1));
    char* end = nullptr;
    const long long n = std::strtoll(count.c_str(), &end, 10);
    if (count.empty() || *end != '\0' || n <= 0) {
      return Status::InvalidArgument("bad '*count' suffix in '" + raw + "'");
    }
    out->remaining = static_cast<uint64_t>(n);
    text = Trimmed(text.substr(0, star));
  }
  if (text.rfind("1in", 0) == 0) {
    const size_t paren = text.find('(');
    if (paren == std::string::npos || text.back() != ')') {
      return Status::InvalidArgument("1in requires '(N[,action])'");
    }
    std::string inner = text.substr(paren + 1, text.size() - paren - 2);
    const size_t comma = inner.find(',');
    const std::string n_text = Trimmed(inner.substr(0, comma));
    char* end = nullptr;
    const long long n = std::strtoll(n_text.c_str(), &end, 10);
    if (n_text.empty() || *end != '\0' || n <= 0) {
      return Status::InvalidArgument("bad N in '" + text + "'");
    }
    out->one_in_n = static_cast<uint64_t>(n);
    if (comma == std::string::npos) {
      out->action.kind = Action::Kind::kError;
      return Status::OK();
    }
    return ParseAction(Trimmed(inner.substr(comma + 1)), &out->action);
  }
  return ParseAction(text, &out->action);
}

Status ArmImpl(Registry& registry, const std::string& name,
               const std::string& spec) {
  Policy policy;
  SIREP_RETURN_IF_ERROR(ParseSpec(spec, &policy));
  std::lock_guard<std::mutex> lock(registry.mu);
  Point& point = registry.points[name];
  const bool was_armed = point.armed;
  const bool now_armed = policy.action.kind != Action::Kind::kOff;
  point.policy = std::move(policy);
  point.armed = now_armed;
  // Derive the point's PRNG from the global seed and its name: the i-th
  // evaluation of this point is then a pure function of (seed, name, i).
  point.prng.Seed(registry.seed ^ Fnv1a(name));
  if (now_armed != was_armed) {
    g_armed_count.fetch_add(now_armed ? 1 : -1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status ArmFromListImpl(Registry& registry, const std::string& list) {
  size_t begin = 0;
  while (begin <= list.size()) {
    size_t end = list.find(';', begin);
    if (end == std::string::npos) end = list.size();
    const std::string pair = Trimmed(list.substr(begin, end - begin));
    begin = end + 1;
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint entry '" + pair +
                                     "' is not name=spec");
    }
    SIREP_RETURN_IF_ERROR(ArmImpl(registry, Trimmed(pair.substr(0, eq)),
                                  Trimmed(pair.substr(eq + 1))));
  }
  return Status::OK();
}

void SeedImpl(Registry& registry, uint64_t seed) {
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.seed = seed;
  for (auto& [name, point] : registry.points) {
    point.prng.Seed(seed ^ Fnv1a(name));
  }
}

Status ArmFromEnvImpl(Registry& registry) {
  const char* env = std::getenv("SIREP_FAILPOINTS");
  if (env == nullptr || *env == '\0') return Status::OK();
  const char* seed_env = std::getenv("SIREP_FAILPOINT_SEED");
  if (seed_env != nullptr && *seed_env != '\0') {
    SeedImpl(registry, std::strtoull(seed_env, nullptr, 10));
  }
  return ArmFromListImpl(registry, env);
}

}  // namespace

Status Hit::ToStatus(std::string_view point) const {
  if (!fired) return Status::OK();
  switch (kind) {
    case Kind::kError:
      return Status(code, "injected failure at " + std::string(point));
    case Kind::kCrash:
      return Status::Unavailable("injected crash at " + std::string(point));
    case Kind::kArg:
    case Kind::kNone:
      return Status::OK();
  }
  return Status::OK();
}

bool AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) > 0;
}

namespace {
std::atomic<HitObserver> g_hit_observer{nullptr};
}  // namespace

void SetHitObserver(HitObserver observer) {
  g_hit_observer.store(observer, std::memory_order_release);
}

Hit Eval(std::string_view name) {
  Registry& registry = GetRegistry();
  std::chrono::microseconds sleep_for{0};
  Hit hit;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.points.find(name);
    if (it == registry.points.end()) return hit;
    Point& point = it->second;
    ++point.hits;
    if (!point.armed || point.policy.action.kind == Action::Kind::kOff) {
      return hit;
    }
    if (point.policy.one_in_n > 0 &&
        point.prng.Uniform(point.policy.one_in_n) != 0) {
      return hit;
    }
    ++point.fires;
    if (point.policy.remaining != ~uint64_t{0} &&
        --point.policy.remaining == 0) {
      point.armed = false;
      point.policy.spec = "off";
      g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
    const Action& action = point.policy.action;
    switch (action.kind) {
      case Action::Kind::kError:
        hit.fired = true;
        hit.kind = Hit::Kind::kError;
        hit.code = action.code;
        break;
      case Action::Kind::kCrash:
        hit.fired = true;
        hit.kind = Hit::Kind::kCrash;
        hit.code = StatusCode::kUnavailable;
        break;
      case Action::Kind::kArg:
        hit.fired = true;
        hit.kind = Hit::Kind::kArg;
        hit.arg = action.arg;
        break;
      case Action::Kind::kDelay:
        sleep_for = action.delay;
        break;
      case Action::Kind::kOff:
        break;
    }
  }
  if (HitObserver observer = g_hit_observer.load(std::memory_order_acquire);
      observer != nullptr && (hit.fired || sleep_for.count() > 0)) {
    observer(name, hit, sleep_for.count() > 0);
  }
  // Sleep outside the registry lock so a delay policy on one point never
  // stalls evaluation (or arming) of others.
  if (sleep_for.count() > 0) std::this_thread::sleep_for(sleep_for);
  return hit;
}

Status EvalStatus(std::string_view name) {
  return Eval(name).ToStatus(name);
}

Status Arm(const std::string& name, const std::string& spec) {
  return ArmImpl(GetRegistry(), name, spec);
}

Status ArmFromList(const std::string& list) {
  return ArmFromListImpl(GetRegistry(), list);
}

Status ArmFromEnv() { return ArmFromEnvImpl(GetRegistry()); }

void Disarm(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (it == registry.points.end()) return;
  if (it->second.armed) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  registry.points.erase(it);
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& [name, point] : registry.points) {
    if (point.armed) g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  registry.points.clear();
}

void Seed(uint64_t seed) { SeedImpl(GetRegistry(), seed); }

uint64_t Hits(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.hits;
}

uint64_t Fires(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.fires;
}

std::vector<PointStats> Snapshot() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<PointStats> out;
  out.reserve(registry.points.size());
  for (const auto& [name, point] : registry.points) {
    out.push_back(PointStats{name, point.armed ? point.policy.spec : "off",
                             point.hits, point.fires});
  }
  return out;
}

ScopedFailpoint::ScopedFailpoint(std::string name, const std::string& spec)
    : name_(std::move(name)) {
  const Status st = Arm(name_, spec);
  assert(st.ok() && "bad failpoint spec");
  (void)st;
}

ScopedFailpoint::~ScopedFailpoint() { Disarm(name_); }

}  // namespace sirep::failpoint
