#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace sirep {

void SampleStats::Add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sum_sq_ += value * value;
}

void SampleStats::Merge(const SampleStats& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

double SampleStats::Mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double SampleStats::Stddev() const {
  const size_t n = samples_.size();
  if (n < 2) return 0.0;
  const double mean = Mean();
  double var = (sum_sq_ - static_cast<double>(n) * mean * mean) /
               static_cast<double>(n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

double SampleStats::Min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::Max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double SampleStats::HalfWidth95() const {
  const size_t n = samples_.size();
  if (n < 2) return std::numeric_limits<double>::infinity();
  // Normal approximation: z_{0.975} = 1.96. Sample counts in our
  // experiments are in the hundreds, where the t-correction is negligible.
  return 1.96 * Stddev() / std::sqrt(static_cast<double>(n));
}

bool SampleStats::ConfidentWithin(double fraction) const {
  const double mean = Mean();
  if (mean == 0.0) return count() >= 2;
  return HalfWidth95() <= fraction * std::abs(mean);
}

std::string SampleStats::Summary() const {
  std::ostringstream os;
  os << "n=" << count() << " mean=" << Mean() << " p95=" << Percentile(95)
     << " min=" << Min() << " max=" << Max();
  return os.str();
}

obs::HistogramSnapshot SampleStats::ToHistogram(
    const std::vector<double>& bounds) const {
  obs::HistogramSnapshot snap;
  snap.bounds = bounds;
  snap.buckets.assign(bounds.size() + 1, 0);
  for (double v : samples_) {
    const size_t idx = static_cast<size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
    ++snap.buckets[idx];
  }
  snap.count = samples_.size();
  snap.sum = sum_;
  snap.min = Min();
  snap.max = Max();
  return snap;
}

}  // namespace sirep
