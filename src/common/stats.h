#ifndef SIREP_COMMON_STATS_H_
#define SIREP_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace sirep {

/// Collects scalar samples (typically response times in milliseconds) and
/// reports summary statistics. The paper runs every experiment "until a
/// 95/5 confidence interval was achieved"; HalfWidth95() exposes the same
/// criterion (95 % confidence half-width as a fraction of the mean).
class SampleStats {
 public:
  void Add(double value);
  void Merge(const SampleStats& other);

  size_t count() const { return samples_.size(); }
  double Mean() const;
  double Stddev() const;
  double Min() const;
  double Max() const;

  /// p in [0, 100], e.g. Percentile(95).
  double Percentile(double p) const;

  /// Half-width of the 95 % confidence interval around the mean, as an
  /// absolute value. Returns +inf for fewer than 2 samples.
  double HalfWidth95() const;

  /// True when the 95 % confidence interval is within `fraction` of the
  /// mean (the paper's 95/5 criterion uses fraction = 0.05).
  bool ConfidentWithin(double fraction) const;

  std::string Summary() const;

  /// Bridges the raw samples into the metrics world: a fixed-bucket
  /// histogram snapshot with the given upper bounds, mergeable into a
  /// MetricsSnapshot alongside registry-sourced histograms.
  obs::HistogramSnapshot ToHistogram(const std::vector<double>& bounds) const;

 private:
  // Kept unsorted; percentile sorts a copy. Sample counts here are small
  // (thousands), so this is simpler than a streaming sketch.
  std::vector<double> samples_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace sirep

#endif  // SIREP_COMMON_STATS_H_
