#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace sirep {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

namespace {
const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  stream_ << "[" << LevelTag(level_) << " " << us / 1000000 << "."
          << us % 1000000 << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace sirep
