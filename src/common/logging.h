#ifndef SIREP_COMMON_LOGGING_H_
#define SIREP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace sirep {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level. Defaults to kWarn so tests/benches stay
/// quiet; examples raise it to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Builds one log line and emits it (thread-safely) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace sirep

#define SIREP_LOG_ENABLED(level) \
  (static_cast<int>(level) >= static_cast<int>(::sirep::GetLogLevel()))

#define SIREP_LOG(level)                                      \
  if (!SIREP_LOG_ENABLED(::sirep::LogLevel::level))           \
    ;                                                         \
  else                                                        \
    ::sirep::internal_logging::LogMessage(                    \
        ::sirep::LogLevel::level, __FILE__, __LINE__)

#define SIREP_DLOG SIREP_LOG(kDebug)
#define SIREP_ILOG SIREP_LOG(kInfo)
#define SIREP_WLOG SIREP_LOG(kWarn)
#define SIREP_ELOG SIREP_LOG(kError)

#endif  // SIREP_COMMON_LOGGING_H_
