#ifndef SIREP_COMMON_SYNC_H_
#define SIREP_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace sirep {

/// Counting semaphore. Used by the cluster harness to model per-replica
/// worker capacity (a statement occupies one slot for its service time).
class Semaphore {
 public:
  explicit Semaphore(int initial = 0) : count_(initial) {}

  void Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ > 0; });
    --count_;
  }

  bool TryAcquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ <= 0) return false;
    --count_;
    return true;
  }

  void Release(int n = 1) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      count_ += n;
    }
    if (n == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

/// One-shot latch: threads block in Wait() until the count reaches zero.
class CountDownLatch {
 public:
  explicit CountDownLatch(int count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  bool WaitFor(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

/// Unbounded MPMC queue with shutdown. Pop() returns nullopt after Close()
/// once drained. Used for GCS delivery queues and middleware work queues.
template <typename T>
class WorkQueue {
 public:
  /// Enqueues an item; returns false if the queue is closed.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks for the next item. Returns nullopt when closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace sirep

#endif  // SIREP_COMMON_SYNC_H_
