#ifndef SIREP_COMMON_STATUS_H_
#define SIREP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace sirep {

/// Error codes used across SI-Rep. Transaction aborts are statuses, not
/// exceptions: the middleware routinely aborts transactions as part of
/// normal operation (validation failure, write/write conflict, deadlock
/// victim), so the abort path must be cheap and explicit.
enum class StatusCode {
  kOk = 0,
  /// The transaction was aborted. `message()` says why (validation
  /// failure, explicit rollback, crash of its local replica, ...).
  kAborted,
  /// A write/write conflict with a committed concurrent transaction was
  /// detected (first-updater-wins version check, or middleware validation).
  kConflict,
  /// The transaction was chosen as a deadlock victim.
  kDeadlock,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  /// No replica is able to serve the request (all crashed, or the group
  /// is shutting down).
  kUnavailable,
  /// A replica crashed while a commit was in flight and the fail-over
  /// target never saw the writeset: the transaction is lost and the client
  /// must restart it (paper §5.4, case 2 / case 3a).
  kTransactionLost,
  kTimedOut,
  kNotSupported,
  kInternal,
};

/// Human-readable name of `code`, e.g. "Conflict".
const char* StatusCodeToString(StatusCode code);

/// Result of an operation: a code plus an optional message. Modeled after
/// the Status idiom of Arrow / RocksDB. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TransactionLost(std::string msg) {
    return Status(StatusCode::kTransactionLost, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for any of the "transaction did not commit" codes. Such statuses
  /// are expected during normal concurrent operation and a client should
  /// retry the transaction.
  bool IsTransactionFailure() const {
    return code_ == StatusCode::kAborted || code_ == StatusCode::kConflict ||
           code_ == StatusCode::kDeadlock ||
           code_ == StatusCode::kTransactionLost;
  }

  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A Status or a value of type T. `value()` may only be called when
/// `ok()`; this is checked with an assertion in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sirep

/// Propagate a non-OK Status from an expression.
#define SIREP_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::sirep::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // SIREP_COMMON_STATUS_H_
