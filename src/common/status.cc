#include "common/status.h"

namespace sirep {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTransactionLost:
      return "TransactionLost";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace sirep
