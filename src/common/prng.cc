#include "common/prng.h"

#include <algorithm>

namespace sirep {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

uint64_t ZipfGenerator::Sample(Prng& prng) const {
  double u = prng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace sirep
