#ifndef SIREP_COMMON_THREAD_POOL_H_
#define SIREP_COMMON_THREAD_POOL_H_

#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace sirep {

/// Fixed-size thread pool. Tasks may block (e.g. on database locks); size
/// the pool accordingly. Submitting after Shutdown() drops the task.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] {
        while (true) {
          auto task = queue_.Pop();
          if (!task.has_value()) return;
          (*task)();
        }
      });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Returns false if the pool is shut down.
  bool Submit(std::function<void()> task) {
    return queue_.Push(std::move(task));
  }

  void Shutdown() {
    queue_.Close();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  size_t size() const { return threads_.size(); }

 private:
  WorkQueue<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
};

}  // namespace sirep

#endif  // SIREP_COMMON_THREAD_POOL_H_
