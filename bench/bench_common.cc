#include "bench_common.h"

#include <cstdlib>

namespace sirep::bench {

bool FastMode() {
  const char* env = std::getenv("SIREP_BENCH_FAST");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

workload::LoadOptions BaseLoadOptions(double offered_tps, size_t clients) {
  workload::LoadOptions options;
  options.offered_tps = offered_tps;
  options.clients = clients;
  if (FastMode()) {
    options.warmup = std::chrono::milliseconds(300);
    options.duration = std::chrono::milliseconds(1200);
  } else {
    options.warmup = std::chrono::milliseconds(1000);
    options.duration = std::chrono::milliseconds(4000);
  }
  return options;
}

workload::LoadMetrics RunOnCluster(cluster::Cluster& cluster,
                                   workload::WorkloadGenerator& generator,
                                   const workload::LoadOptions& options) {
  return workload::RunLoad(
      generator,
      [&](size_t i) -> std::unique_ptr<workload::TxnExecutor> {
        client::ConnectionOptions copts;
        copts.seed = options.seed * 131 + i;
        auto conn = cluster.Connect(copts);
        if (!conn.ok()) return nullptr;
        return std::make_unique<workload::ConnectionExecutor>(
            std::move(conn).value());
      },
      options);
}

workload::LoadMetrics RunCentralized(cluster::ReplicaNode& node,
                                     workload::WorkloadGenerator& generator,
                                     const workload::LoadOptions& options) {
  return workload::RunLoad(
      generator,
      [&](size_t) {
        return std::make_unique<workload::SessionExecutor>(node.db());
      },
      options);
}

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns) {
  std::printf("\n%s\n", title.c_str());
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%-14s", i ? " " : "", columns[i].c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s--------------", i ? " " : "");
  }
  std::printf("\n");
  std::fflush(stdout);
}

void PrintTableRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%-14s", i ? " " : "", cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace sirep::bench
