#include "bench_common.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/profiler.h"

namespace sirep::bench {

bool FastMode() {
  const char* env = std::getenv("SIREP_BENCH_FAST");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

uint64_t BenchSeed() {
  const char* env = std::getenv("SIREP_BENCH_SEED");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env) return static_cast<uint64_t>(parsed);
  }
  return 7;  // LoadOptions' historical default
}

void InitBench(const std::string& name, int* argc, char** argv) {
  // Extract --seed before google-benchmark (gcs_micro, validation_micro)
  // sees argv — it rejects flags it doesn't know.
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--seed") == 0 && i + 1 < *argc) {
      ::setenv("SIREP_BENCH_SEED", argv[++i], /*overwrite=*/1);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      ::setenv("SIREP_BENCH_SEED", arg + 7, /*overwrite=*/1);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
  obs::Profiler::Global().StartSampling(std::chrono::microseconds(2000));
  std::printf("%s: mode=%s seed=%llu\n", name.c_str(),
              FastMode() ? "fast" : "full",
              static_cast<unsigned long long>(BenchSeed()));
  std::fflush(stdout);
}

void FinishReport(BenchReport& report) {
  report.SetSeed(BenchSeed());
  for (const char* knob :
       {"SIREP_APPLY_THREADS", "SIREP_PARTITIONS",
        "SIREP_REPLICATION_FACTOR", "SIREP_METRICS"}) {
    const char* value = std::getenv(knob);
    if (value != nullptr && *value != '\0') report.SetKnob(knob, value);
  }
  obs::Profiler::Global().StopSampling();
  report.AttachProfile();
  Result<std::string> path = report.WriteJsonFile();
  if (path.ok()) {
    std::printf("\nwrote %s\n", path.value().c_str());
  } else {
    std::fprintf(stderr, "bench report write failed: %s\n",
                 path.status().message().c_str());
  }
  std::fflush(stdout);
}

obs::HistogramSnapshot::Percentiles SamplePercentiles(const SampleStats& s) {
  obs::HistogramSnapshot::Percentiles p;
  p.count = s.count();
  if (p.count == 0) return p;
  p.mean = s.Mean();
  p.p50 = s.Percentile(50);
  p.p95 = s.Percentile(95);
  p.p99 = s.Percentile(99);
  return p;
}

workload::LoadOptions BaseLoadOptions(double offered_tps, size_t clients) {
  workload::LoadOptions options;
  options.offered_tps = offered_tps;
  options.clients = clients;
  options.seed = BenchSeed();
  if (FastMode()) {
    options.warmup = std::chrono::milliseconds(300);
    options.duration = std::chrono::milliseconds(1200);
  } else {
    options.warmup = std::chrono::milliseconds(1000);
    options.duration = std::chrono::milliseconds(4000);
  }
  return options;
}

workload::LoadMetrics RunOnCluster(cluster::Cluster& cluster,
                                   workload::WorkloadGenerator& generator,
                                   const workload::LoadOptions& options) {
  return workload::RunLoad(
      generator,
      [&](size_t i) -> std::unique_ptr<workload::TxnExecutor> {
        client::ConnectionOptions copts;
        copts.seed = options.seed * 131 + i;
        auto conn = cluster.Connect(copts);
        if (!conn.ok()) return nullptr;
        return std::make_unique<workload::ConnectionExecutor>(
            std::move(conn).value());
      },
      options);
}

workload::LoadMetrics RunCentralized(cluster::ReplicaNode& node,
                                     workload::WorkloadGenerator& generator,
                                     const workload::LoadOptions& options) {
  return workload::RunLoad(
      generator,
      [&](size_t) {
        return std::make_unique<workload::SessionExecutor>(node.db());
      },
      options);
}

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns) {
  std::printf("\n%s\n", title.c_str());
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%-14s", i ? " " : "", columns[i].c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s--------------", i ? " " : "");
  }
  std::printf("\n");
  std::fflush(stdout);
}

void PrintTableRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%-14s", i ? " " : "", cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace sirep::bench
