#ifndef SIREP_BENCH_BENCH_COMMON_H_
#define SIREP_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/report.h"
#include "cluster/cluster.h"
#include "cluster/replica_node.h"
#include "workload/runner.h"
#include "workload/workload.h"

namespace sirep::bench {

/// True when SIREP_BENCH_FAST is set: shorter measurement windows and
/// fewer sweep points, for CI-style smoke runs. Full runs (the default)
/// use the durations documented in EXPERIMENTS.md.
bool FastMode();

/// The suite-wide workload seed: `--seed N` (via InitBench), else
/// $SIREP_BENCH_SEED, else 7. Every per-client / per-thread RNG in a
/// bench derives from this one value (BaseLoadOptions plants it in
/// LoadOptions::seed), so a bench run is reproducible from the seed
/// printed in its header and recorded in its BENCH_*.json.
uint64_t BenchSeed();

/// Shared bench startup: parses `--seed N` / `--seed=N` out of argv
/// (removing them, so google-benchmark's own flag parsing in the micro
/// benches doesn't reject them), re-exports the seed as
/// SIREP_BENCH_SEED, starts the sampling profiler, and prints the run
/// header (name, mode, seed). Call first thing in main().
void InitBench(const std::string& name, int* argc, char** argv);

/// Shared bench teardown for the telemetry artifact: stamps the seed,
/// mode and environment knobs (apply threads, partitions, replication
/// factor) into `report`, attaches the profiler snapshot, writes
/// BENCH_<name>.json and prints its path. The human-readable tables a
/// bench already printed are untouched — the artifact rides along.
void FinishReport(BenchReport& report);

/// Percentile summary of a SampleStats series (bridges workload
/// response-time samples into a report's percentile section).
obs::HistogramSnapshot::Percentiles SamplePercentiles(const SampleStats& s);

/// Per-point measurement window derived from the mode; the workload
/// seed is BenchSeed().
workload::LoadOptions BaseLoadOptions(double offered_tps, size_t clients);

/// Runs one load point on a replicated cluster through the JDBC-like
/// driver (one connection per client, round-robin across replicas by
/// seed).
workload::LoadMetrics RunOnCluster(cluster::Cluster& cluster,
                                   workload::WorkloadGenerator& generator,
                                   const workload::LoadOptions& options);

/// Runs one load point against a single emulated node without any
/// replication — the paper's "centralized system" baseline.
workload::LoadMetrics RunCentralized(cluster::ReplicaNode& node,
                                     workload::WorkloadGenerator& generator,
                                     const workload::LoadOptions& options);

/// Table output helpers (fixed-width, grep-friendly).
void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);
std::string Fmt(double value, int precision = 1);

}  // namespace sirep::bench

#endif  // SIREP_BENCH_BENCH_COMMON_H_
