#ifndef SIREP_BENCH_BENCH_COMMON_H_
#define SIREP_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/replica_node.h"
#include "workload/runner.h"
#include "workload/workload.h"

namespace sirep::bench {

/// True when SIREP_BENCH_FAST is set: shorter measurement windows and
/// fewer sweep points, for CI-style smoke runs. Full runs (the default)
/// use the durations documented in EXPERIMENTS.md.
bool FastMode();

/// Per-point measurement window derived from the mode.
workload::LoadOptions BaseLoadOptions(double offered_tps, size_t clients);

/// Runs one load point on a replicated cluster through the JDBC-like
/// driver (one connection per client, round-robin across replicas by
/// seed).
workload::LoadMetrics RunOnCluster(cluster::Cluster& cluster,
                                   workload::WorkloadGenerator& generator,
                                   const workload::LoadOptions& options);

/// Runs one load point against a single emulated node without any
/// replication — the paper's "centralized system" baseline.
workload::LoadMetrics RunCentralized(cluster::ReplicaNode& node,
                                     workload::WorkloadGenerator& generator,
                                     const workload::LoadOptions& options);

/// Table output helpers (fixed-width, grep-friendly).
void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);
std::string Fmt(double value, int precision = 1);

}  // namespace sirep::bench

#endif  // SIREP_BENCH_BENCH_COMMON_H_
