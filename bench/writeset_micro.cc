// Claim reproduction (paper §6.3): "Applying writesets takes only around
// 20% of the time it takes to execute the entire transaction" — the
// reason replication relieves load even for 100 %-update workloads.
//
// Google-benchmark microbenchmarks comparing, without any emulated cost:
//   * full SQL execution of a 10-update transaction (parse cached, but
//     predicate evaluation, visibility checks, row construction), vs
//   * applying the extracted writeset (lock + version check + install).
// Also: writeset extraction itself, and intersection tests.

#include <benchmark/benchmark.h>

#include "engine/database.h"
#include "workload/simple_workloads.h"

using namespace sirep;
using sql::Value;

namespace {

std::unique_ptr<engine::Database> MakeLoadedDb() {
  auto db = std::make_unique<engine::Database>();
  workload::UpdateIntensiveWorkload workload;
  if (!workload.Load(db.get()).ok()) std::abort();
  return db;
}

void BM_ExecuteUpdateTxn(benchmark::State& state) {
  auto db = MakeLoadedDb();
  workload::UpdateIntensiveWorkload workload;
  Prng prng(7);
  for (auto _ : state) {
    auto txn_spec = workload.Next(prng);
    auto txn = db->Begin();
    for (const auto& [sql, params] : txn_spec.statements) {
      auto r = db->Execute(txn, sql, params);
      if (!r.ok()) {
        db->Abort(txn);
        state.SkipWithError("execute failed");
        return;
      }
    }
    if (!db->Commit(txn).ok()) {
      state.SkipWithError("commit failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecuteUpdateTxn);

void BM_ApplyWriteSet(benchmark::State& state) {
  auto source = MakeLoadedDb();
  auto target = MakeLoadedDb();
  workload::UpdateIntensiveWorkload workload;
  Prng prng(7);
  // Pre-extract a pool of writesets from the source replica.
  std::vector<std::shared_ptr<const storage::WriteSet>> writesets;
  for (int i = 0; i < 64; ++i) {
    auto spec = workload.Next(prng);
    auto txn = source->Begin();
    for (const auto& [sql, params] : spec.statements) {
      if (!source->Execute(txn, sql, params).ok()) std::abort();
    }
    writesets.push_back(source->ExtractWriteSet(txn));
    if (!source->Commit(txn).ok()) std::abort();
  }
  size_t i = 0;
  for (auto _ : state) {
    auto txn = target->Begin();
    if (!target->ApplyWriteSet(txn, *writesets[i % writesets.size()]).ok() ||
        !target->Commit(txn).ok()) {
      state.SkipWithError("apply failed");
      return;
    }
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ApplyWriteSet);

void BM_ExtractWriteSet(benchmark::State& state) {
  auto db = MakeLoadedDb();
  workload::UpdateIntensiveWorkload workload;
  Prng prng(9);
  auto spec = workload.Next(prng);
  auto txn = db->Begin();
  for (const auto& [sql, params] : spec.statements) {
    if (!db->Execute(txn, sql, params).ok()) std::abort();
  }
  for (auto _ : state) {
    auto ws = db->ExtractWriteSet(txn);
    benchmark::DoNotOptimize(ws);
  }
  db->Abort(txn);
}
BENCHMARK(BM_ExtractWriteSet);

void BM_WriteSetIntersect(benchmark::State& state) {
  const int64_t entries = state.range(0);
  storage::WriteSet a, b;
  for (int64_t i = 0; i < entries; ++i) {
    a.Record({"t", sql::Key{{Value::Int(i)}}}, storage::WriteOp::kUpdate,
             {Value::Int(i)});
    b.Record({"t", sql::Key{{Value::Int(i + entries)}}},  // disjoint
             storage::WriteOp::kUpdate, {Value::Int(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersects(b));
  }
}
BENCHMARK(BM_WriteSetIntersect)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
