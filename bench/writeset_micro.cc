// Claim reproduction (paper §6.3): "Applying writesets takes only around
// 20% of the time it takes to execute the entire transaction" — the
// reason replication relieves load even for 100 %-update workloads.
//
// Google-benchmark microbenchmarks comparing, without any emulated cost:
//   * full SQL execution of a 10-update transaction (parse cached, but
//     predicate evaluation, visibility checks, row construction), vs
//   * applying the extracted writeset (lock + version check + install).
// Also: writeset extraction itself, and intersection tests.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.h"
#include "engine/database.h"
#include "workload/simple_workloads.h"

using namespace sirep;
using sql::Value;

namespace {

std::unique_ptr<engine::Database> MakeLoadedDb() {
  auto db = std::make_unique<engine::Database>();
  workload::UpdateIntensiveWorkload workload;
  if (!workload.Load(db.get()).ok()) std::abort();
  return db;
}

void BM_ExecuteUpdateTxn(benchmark::State& state) {
  auto db = MakeLoadedDb();
  workload::UpdateIntensiveWorkload workload;
  Prng prng(7);
  for (auto _ : state) {
    auto txn_spec = workload.Next(prng);
    auto txn = db->Begin();
    for (const auto& [sql, params] : txn_spec.statements) {
      auto r = db->Execute(txn, sql, params);
      if (!r.ok()) {
        db->Abort(txn);
        state.SkipWithError("execute failed");
        return;
      }
    }
    if (!db->Commit(txn).ok()) {
      state.SkipWithError("commit failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecuteUpdateTxn);

void BM_ApplyWriteSet(benchmark::State& state) {
  auto source = MakeLoadedDb();
  auto target = MakeLoadedDb();
  workload::UpdateIntensiveWorkload workload;
  Prng prng(7);
  // Pre-extract a pool of writesets from the source replica.
  std::vector<std::shared_ptr<const storage::WriteSet>> writesets;
  for (int i = 0; i < 64; ++i) {
    auto spec = workload.Next(prng);
    auto txn = source->Begin();
    for (const auto& [sql, params] : spec.statements) {
      if (!source->Execute(txn, sql, params).ok()) std::abort();
    }
    writesets.push_back(source->ExtractWriteSet(txn));
    if (!source->Commit(txn).ok()) std::abort();
  }
  size_t i = 0;
  for (auto _ : state) {
    auto txn = target->Begin();
    if (!target->ApplyWriteSet(txn, *writesets[i % writesets.size()]).ok() ||
        !target->Commit(txn).ok()) {
      state.SkipWithError("apply failed");
      return;
    }
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ApplyWriteSet);

void BM_ExtractWriteSet(benchmark::State& state) {
  auto db = MakeLoadedDb();
  workload::UpdateIntensiveWorkload workload;
  Prng prng(9);
  auto spec = workload.Next(prng);
  auto txn = db->Begin();
  for (const auto& [sql, params] : spec.statements) {
    if (!db->Execute(txn, sql, params).ok()) std::abort();
  }
  for (auto _ : state) {
    auto ws = db->ExtractWriteSet(txn);
    benchmark::DoNotOptimize(ws);
  }
  db->Abort(txn);
}
BENCHMARK(BM_ExtractWriteSet);

void BM_WriteSetIntersect(benchmark::State& state) {
  const int64_t entries = state.range(0);
  storage::WriteSet a, b;
  for (int64_t i = 0; i < entries; ++i) {
    a.Record({"t", sql::Key{{Value::Int(i)}}}, storage::WriteOp::kUpdate,
             {Value::Int(i)});
    b.Record({"t", sql::Key{{Value::Int(i + entries)}}},  // disjoint
             storage::WriteOp::kUpdate, {Value::Int(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersects(b));
  }
}
BENCHMARK(BM_WriteSetIntersect)->Arg(10)->Arg(100)->Arg(1000);

/// Timed restatement of the §6.3 claim for the telemetry artifact:
/// wall-time per executed transaction vs per applied writeset, and the
/// resulting apply fraction (paper: ~20 %).
void MeasureApplyFraction(bench::BenchReport& report) {
  const int kTxns = bench::FastMode() ? 200 : 1000;
  auto source = MakeLoadedDb();
  auto target = MakeLoadedDb();
  workload::UpdateIntensiveWorkload workload;
  Prng prng(bench::BenchSeed());

  std::vector<std::shared_ptr<const storage::WriteSet>> writesets;
  const auto exec_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kTxns; ++i) {
    auto spec = workload.Next(prng);
    auto txn = source->Begin();
    for (const auto& [sql, params] : spec.statements) {
      if (!source->Execute(txn, sql, params).ok()) std::abort();
    }
    writesets.push_back(source->ExtractWriteSet(txn));
    if (!source->Commit(txn).ok()) std::abort();
  }
  const double exec_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - exec_start)
          .count() /
      kTxns;

  const auto apply_start = std::chrono::steady_clock::now();
  for (const auto& ws : writesets) {
    auto txn = target->Begin();
    if (!target->ApplyWriteSet(txn, *ws).ok() || !target->Commit(txn).ok()) {
      std::abort();
    }
  }
  const double apply_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - apply_start)
          .count() /
      kTxns;

  std::printf("execute %.1f us/txn, apply %.1f us/ws => apply fraction "
              "%.1f%% (paper: ~20%%)\n",
              exec_us, apply_us, 100.0 * apply_us / exec_us);
  report.AddScalar("execute.us_per_txn", exec_us, "us",
                   bench::Direction::kLowerIsBetter);
  report.AddScalar("apply.us_per_ws", apply_us, "us",
                   bench::Direction::kLowerIsBetter);
  report.AddScalar("apply_fraction_pct", 100.0 * apply_us / exec_us, "%",
                   bench::Direction::kInfo);
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("writeset_micro", &argc, argv);
  bench::BenchReport report("writeset_micro");
  MeasureApplyFraction(report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::FinishReport(report);
  return 0;
}
