// GCS microbenchmarks (paper §5.2): "the delay for a uniform reliable
// multicast does not exceed 3 ms in a LAN even for message rates of
// several hundreds of messages per second".
//
// We measure multicast->last-delivery latency of our in-process GCS at
// several message rates, with the emulated LAN delay configured to the
// paper's regime, plus the raw (zero-delay) ordering overhead.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/failpoint.h"
#include "common/stats.h"
#include "engine/database.h"
#include "gcs/group.h"
#include "middleware/apply_pipeline.h"
#include "middleware/messages.h"
#include "middleware/tocommit_queue.h"
#include "sql/value.h"
#include "storage/write_set.h"

using namespace sirep;

namespace {

/// Listener that records the delivery time of each seqno.
class LatencyListener : public gcs::GroupListener {
 public:
  explicit LatencyListener(std::atomic<uint64_t>* delivered)
      : delivered_(delivered) {}
  void OnDeliver(const gcs::Message&) override {
    delivered_->fetch_add(1, std::memory_order_relaxed);
  }
  void OnViewChange(const gcs::View&) override {}

 private:
  std::atomic<uint64_t>* delivered_;
};

void MeasureRate(double rate_per_s, std::chrono::microseconds delay,
                 int members, bench::BenchReport& report) {
  gcs::GroupOptions options;
  options.multicast_delay = delay;
  gcs::Group group(options);
  std::atomic<uint64_t> delivered{0};
  std::vector<std::unique_ptr<LatencyListener>> listeners;
  std::vector<gcs::MemberId> ids;
  for (int i = 0; i < members; ++i) {
    listeners.push_back(std::make_unique<LatencyListener>(&delivered));
    ids.push_back(group.Join(listeners.back().get()));
  }
  group.WaitForQuiescence();

  const int kMessages = 300;
  SampleStats latency_ms;
  const auto interarrival =
      std::chrono::duration<double>(1.0 / rate_per_s);
  auto next = std::chrono::steady_clock::now();
  for (int i = 0; i < kMessages; ++i) {
    std::this_thread::sleep_until(next);
    next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        interarrival);
    const uint64_t before = delivered.load();
    const auto t0 = std::chrono::steady_clock::now();
    if (!group.Multicast(ids[i % members], "m",
                         std::make_shared<const int>(i))
             .ok()) {
      break;
    }
    // Wait until every member delivered this message.
    while (delivered.load() < before + static_cast<uint64_t>(members)) {
      std::this_thread::yield();
    }
    latency_ms.Add(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  }
  std::printf("  %4.0f msg/s, %d members, cfg delay %4.1f ms: "
              "mean %5.2f ms, p95 %5.2f ms, max %5.2f ms\n",
              rate_per_s, members,
              std::chrono::duration<double, std::milli>(delay).count(),
              latency_ms.Mean(), latency_ms.Percentile(95),
              latency_ms.Max());
  // The same distribution as seen by the group's own histogram
  // ("gcs.multicast_us": enqueue -> last stable delivery), extracted
  // from its buckets — what a /metrics scrape reports.
  const auto snap = group.metrics().Snapshot();
  const auto p = snap.Percentiles("gcs.multicast_us");
  std::printf("       registry gcs.multicast_us: n=%llu "
              "p50 %5.2f ms, p95 %5.2f ms, p99 %5.2f ms\n",
              static_cast<unsigned long long>(p.count), p.p50 / 1000.0,
              p.p95 / 1000.0, p.p99 / 1000.0);
  const std::string point = "multicast@" + bench::Fmt(rate_per_s, 0) + "mps";
  report.AddScalar(point + ".mean_ms", latency_ms.Mean(), "ms",
                   bench::Direction::kLowerIsBetter);
  report.AddScalar(point + ".p95_ms", latency_ms.Percentile(95), "ms",
                   bench::Direction::kInfo);
  report.AddPercentiles(point + ".gcs_multicast_us", p, "us");
  // The highest-rate group feeds the artifact's cluster section (the
  // registry a /metrics scrape of this group would report).
  if (rate_per_s >= 500.0) report.AttachClusterMetrics(snap);
}

/// A representative OLTP writeset message: a handful of small rows.
std::shared_ptr<const middleware::WriteSetMessage> SampleWriteSetMessage() {
  auto ws = std::make_shared<storage::WriteSet>();
  for (int64_t i = 0; i < 4; ++i) {
    storage::TupleId tuple;
    tuple.table = "accounts";
    tuple.key.parts = {sql::Value::Int(i)};
    ws->Record(tuple, storage::WriteOp::kUpdate,
               {sql::Value::Int(i), sql::Value::String("holder"),
                sql::Value::Double(100.25)});
  }
  auto msg = std::make_shared<middleware::WriteSetMessage>();
  msg->gid = middleware::GlobalTxnId{1, 1};
  msg->cert = 0;
  msg->ws = ws;
  return msg;
}

/// Writeset batching sweep (ISSUE 2): one sender multicasts kWritesets
/// writeset messages as fast as it can; the group coalesces them into
/// frames of up to `batch` messages. Reported cost is wall time from
/// first multicast to full delivery everywhere, divided by the number of
/// writesets — the per-writeset share of the multicast machinery (frame
/// headers, sequencer round-trips, acks). It should fall monotonically
/// as the batch size grows.
void MeasureBatchSweep(gcs::TransportKind kind, const char* label,
                       const char* key, bench::BenchReport& report) {
  std::printf("Writeset batching sweep, %s transport "
              "(1 sender, 3 members, 4-row writesets):\n", label);
  const int kWritesets = 4096;
  auto payload = SampleWriteSetMessage();
  for (size_t batch : {1, 8, 32, 128}) {
    gcs::GroupOptions options;
    options.transport = kind;
    options.batch_max_count = batch;
    options.batch_max_bytes = 1 << 20;  // flush on count, not bytes
    gcs::Group group(options);
    middleware::RegisterMessageCodecs(&group);
    std::atomic<uint64_t> delivered{0};
    LatencyListener a(&delivered), b(&delivered), c(&delivered);
    const auto sender = group.Join(&a);
    group.Join(&b);
    group.Join(&c);
    group.WaitForQuiescence();

    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kWritesets; ++i) {
      if (!group
               .Multicast(sender, middleware::kWriteSetMessageType, payload)
               .ok()) {
        std::printf("  multicast failed at %d\n", i);
        return;
      }
    }
    group.WaitForQuiescence();
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const uint64_t frames = group.frames_sent();
    std::printf("  batch %3zu: %6.2f us/writeset, %5llu frames "
                "(%5.1f writesets/frame)\n",
                batch, us / kWritesets,
                static_cast<unsigned long long>(frames),
                static_cast<double>(kWritesets) / frames);
    report.AddScalar("batch." + std::string(key) + "@" +
                         std::to_string(batch) + ".us_per_ws",
                     us / kWritesets, "us",
                     bench::Direction::kLowerIsBetter);
  }
  std::printf("\n");
}

/// Remote-apply pipeline sweep: the pure worker-pool mechanics, no GCS.
/// The feed dispatches non-conflicting writesets (distinct tuples) as
/// fast as it can — faster than one worker can apply them at the
/// emulated apply cost — so throughput should scale with width until the
/// dispatch loop itself becomes the limit. This isolates the pipeline
/// from fig7_overhead's full-stack sweep (validation, holes, WAL).
void MeasureApplyPipelineSweep(bench::BenchReport& report) {
  const int kWritesets = bench::FastMode() ? 1024 : 4096;
  const auto kApplyCost = std::chrono::microseconds(200);
  std::printf("Remote-apply pipeline sweep (%d non-conflicting writesets, "
              "%lld us emulated apply):\n",
              kWritesets,
              static_cast<long long>(kApplyCost.count()));
  double serial_us = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    std::atomic<int> applied{0};
    auto pipeline = middleware::ApplyPipeline::Create(
        threads,
        [&](middleware::ToCommitEntry) {
          std::this_thread::sleep_for(kApplyCost);
          applied.fetch_add(1, std::memory_order_relaxed);
        },
        nullptr);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kWritesets; ++i) {
      auto ws = std::make_shared<storage::WriteSet>();
      storage::TupleId tuple;
      tuple.table = "t";
      tuple.key.parts = {sql::Value::Int(i)};  // distinct => spread shards
      ws->Record(tuple, storage::WriteOp::kUpdate, {sql::Value::Int(i)});
      middleware::ToCommitEntry entry;
      entry.tid = static_cast<uint64_t>(i + 1);
      entry.ws = std::move(ws);
      pipeline->Dispatch(std::move(entry));
    }
    pipeline->Shutdown();  // drains, so this times the full batch
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (threads == 1) serial_us = us;
    std::printf("  threads %zu: %6.2f us/writeset (%7.0f applies/s, "
                "speedup %.2fx), applied %d\n",
                threads, us / kWritesets, kWritesets / (us / 1e6),
                serial_us / us, applied.load());
    report.AddScalar("apply_pipeline@" + std::to_string(threads) +
                         "thr.applies_per_s",
                     kWritesets / (us / 1e6), "tps",
                     bench::Direction::kHigherIsBetter);
  }
  std::printf("\n");
}

/// WAL group commit A/B at the storage layer: 8 concurrent committers on
/// disjoint keys, per-commit flush vs leader-elected group flush. The
/// group path is what keeps the WAL off the critical path once the
/// parallel appliers make commits concurrent. The log's flush is an
/// fflush to the page cache (~free), which would hide the effect, so we
/// emulate a storage-device fsync with the wal.fsync delay failpoint —
/// both modes pay the same per-flush cost; group commit wins by doing
/// fewer flushes.
void MeasureWalGroupCommit(bench::BenchReport& report) {
  const int kThreads = 8;
  const int kTxns = bench::FastMode() ? 100 : 400;
  if (!failpoint::ArmFromList("wal.fsync=delay(200us)").ok()) return;
  std::printf("WAL group commit (8 committers x %d autocommit updates, "
              "disjoint keys, 200 us emulated fsync):\n",
              kTxns);
  for (const bool group : {false, true}) {
    const std::string path = "/tmp/sirep_gcs_micro_wal_" +
                             std::to_string(::getpid()) +
                             (group ? "_group" : "_serial") + ".wal";
    engine::Database db;
    if (!db.ExecuteAutoCommit("CREATE TABLE kv (k INT, v INT, "
                              "PRIMARY KEY (k))")
             .ok() ||
        !db.EnableWal(path, group).ok()) {
      return;
    }
    for (int t = 0; t < kThreads; ++t) {
      (void)db.ExecuteAutoCommit("INSERT INTO kv VALUES (?, 0)",
                                 {sql::Value::Int(t)});
    }
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> committers;
    for (int t = 0; t < kThreads; ++t) {
      committers.emplace_back([&db, t, kTxns] {
        for (int i = 0; i < kTxns; ++i) {
          (void)db.ExecuteAutoCommit("UPDATE kv SET v = ? WHERE k = ?",
                                     {sql::Value::Int(i), sql::Value::Int(t)});
        }
      });
    }
    for (auto& c : committers) c.join();
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    const auto gp =
        db.engine().metrics().Snapshot().Percentiles("storage.wal_group_size");
    std::printf("  %-6s: %7.0f commits/s, mean group size %.2f "
                "(%llu flushes)\n",
                group ? "group" : "serial", kThreads * kTxns / s,
                group ? gp.mean : 1.0,
                static_cast<unsigned long long>(
                    group ? gp.count
                          : static_cast<uint64_t>(kThreads) * kTxns));
    report.AddScalar(std::string("wal.") + (group ? "group" : "serial") +
                         ".commits_per_s",
                     kThreads * kTxns / s, "tps",
                     bench::Direction::kHigherIsBetter);
    if (group) {
      report.AddScalar("wal.group.mean_group_size", gp.mean, "txns",
                       bench::Direction::kInfo);
    }
    std::remove(path.c_str());
  }
  failpoint::DisarmAll();
  std::printf("\n");
}

void BM_MulticastOrderingOverhead(benchmark::State& state) {
  // Raw cost of the total-order + enqueue path, no delay, no rate limit.
  gcs::Group group;
  std::atomic<uint64_t> delivered{0};
  LatencyListener a(&delivered), b(&delivered), c(&delivered);
  auto ma = group.Join(&a);
  group.Join(&b);
  group.Join(&c);
  auto payload = std::make_shared<const int>(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.Multicast(ma, "m", payload));
  }
  state.SetItemsProcessed(state.iterations());
  group.WaitForQuiescence();
}
BENCHMARK(BM_MulticastOrderingOverhead);

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("gcs_micro", &argc, argv);
  bench::BenchReport report("gcs_micro");
  std::printf("\nUniform reliable total-order multicast latency "
              "(paper: <= 3 ms at hundreds of msg/s):\n");
  const auto delay = std::chrono::microseconds(1500);  // emulated LAN hop
  for (double rate : {50.0, 200.0, 500.0}) {
    MeasureRate(rate, delay, /*members=*/5, report);
  }
  std::printf("\n");

  MeasureBatchSweep(gcs::TransportKind::kTcp, "TCP sequencer", "tcp", report);
  MeasureBatchSweep(gcs::TransportKind::kInProcess, "in-process", "inproc",
                    report);

  MeasureApplyPipelineSweep(report);
  MeasureWalGroupCommit(report);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::FinishReport(report);
  return 0;
}
