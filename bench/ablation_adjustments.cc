// Ablation over the paper's design choices in Section 4:
//
//  1. **Apply concurrency (Adjustment 2)**: SRCA-Rep with a single
//     applier thread serializes remote writeset application like the
//     basic SRCA of Fig. 1 (local commits still jump the queue, so no
//     hidden deadlock), versus the default concurrent appliers.
//  2. **Hole synchronization (Adjustment 3)**: SRCA-Rep vs SRCA-Opt at
//     the same load — the §6.3 comparison at one operating point, plus
//     the hole statistics behind it.
//
// Expected shape: one applier hurts update response time as soon as
// remote apply volume queues up; SRCA-Opt shaves the start/commit
// synchronization cost visible in delayed starts.

#include "bench_common.h"
#include "workload/simple_workloads.h"

using namespace sirep;
using bench::Fmt;

namespace {

void RunPoint(const char* label, middleware::ReplicaMode mode,
              size_t applier_threads, double load,
              bench::BenchReport& report) {
  cluster::ClusterOptions copt;
  copt.num_replicas = 5;
  copt.workers_per_replica = 2;
  copt.cost.update_service = std::chrono::milliseconds(3);
  copt.cost.select_service = std::chrono::milliseconds(3);
  copt.replica.mode = mode;
  copt.replica.applier_threads = applier_threads;
  copt.gcs.multicast_delay = std::chrono::milliseconds(1);
  cluster::Cluster cluster(copt);
  if (!cluster.Start().ok()) return;
  workload::UpdateIntensiveWorkload::Options wopt;
  wopt.rows_per_table = 1000;
  workload::UpdateIntensiveWorkload workload(wopt);
  if (!cluster
           .LoadEverywhere(
               [&](engine::Database* db) { return workload.Load(db); })
           .ok()) {
    return;
  }
  cluster.SetEmulationEnabled(true);
  auto options = bench::BaseLoadOptions(load, 40);
  auto m = bench::RunOnCluster(cluster, workload, options);
  cluster.Quiesce();
  auto stats = cluster.AggregateStats();
  const double delayed_pct =
      stats.holes.starts == 0
          ? 0.0
          : 100.0 * static_cast<double>(stats.holes.delayed_starts) /
                static_cast<double>(stats.holes.starts);
  bench::PrintTableRow({label, std::to_string(applier_threads),
                        Fmt(load, 0), Fmt(m.update_ms.Mean()),
                        Fmt(m.achieved_tps), Fmt(delayed_pct, 2)});
  const std::string point = std::string(label) + "-" +
                            std::to_string(applier_threads) + "app@" +
                            Fmt(load, 0);
  report.AddScalar(point + ".update_ms", m.update_ms.Mean(), "ms",
                   bench::Direction::kLowerIsBetter);
  report.AddScalar(point + ".tps", m.achieved_tps, "tps",
                   bench::Direction::kHigherIsBetter);
  report.AddScalar(point + ".delayed_starts_pct", delayed_pct, "%",
                   bench::Direction::kInfo);
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("ablation_adjustments", &argc, argv);
  bench::BenchReport report("ablation_adjustments");
  const std::vector<double> loads =
      bench::FastMode() ? std::vector<double>{100}
                        : std::vector<double>{60, 120};

  bench::PrintTableHeader(
      "Ablation: apply concurrency (Adjustment 2) and hole "
      "synchronization (Adjustment 3), update-intensive, 5 replicas",
      {"mode", "appliers", "load_tps", "update_ms", "achieved_tps",
       "delayed_starts%"});

  for (double load : loads) {
    RunPoint("srca-rep", middleware::ReplicaMode::kSrcaRep, 8, load, report);
    RunPoint("srca-rep", middleware::ReplicaMode::kSrcaRep, 1, load, report);
    RunPoint("srca-opt", middleware::ReplicaMode::kSrcaOpt, 8, load, report);
  }
  bench::FinishReport(report);
  return 0;
}
