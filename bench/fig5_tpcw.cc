// Figure 5 reproduction: TPC-W (ordering mix) response times vs offered
// load — 5-replica SI-Rep vs a centralized single server.
//
// Paper shape to reproduce (absolute numbers depend on the testbed):
//  * at light load (~25 tps) the two systems are comparable — the
//    middleware's communication/validation overhead is offset by
//    distributing the queries;
//  * the centralized system saturates around 50 tps;
//  * the 5-replica system sustains ~2x the centralized saturation load
//    with acceptable response times;
//  * read-only transactions are cheaper than updates throughout.

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "workload/tpcw.h"

using namespace sirep;
using bench::Fmt;

namespace {

cluster::CostModel TpcwCost() {
  cluster::CostModel cost;
  // Calibrated so that one emulated node (1 worker) saturates around
  // ~50 tps on the ordering mix, as in the paper's testbed.
  cost.select_service = std::chrono::milliseconds(5);
  cost.update_service = std::chrono::milliseconds(7);
  cost.insert_service = std::chrono::milliseconds(5);
  cost.delete_service = std::chrono::milliseconds(5);
  cost.apply_fraction = 0.2;
  return cost;
}

workload::TpcwOptions SmallTpcw() {
  workload::TpcwOptions options;
  options.num_items = bench::FastMode() ? 200 : 1000;
  options.num_ebs = 40;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("fig5_tpcw", &argc, argv);
  bench::BenchReport report("fig5_tpcw");
  const std::vector<double> loads =
      bench::FastMode() ? std::vector<double>{25, 50, 100}
                        : std::vector<double>{10, 25, 50, 75, 100, 125};

  bench::PrintTableHeader(
      "Figure 5: TPC-W ordering mix, response time (ms) vs load (tps)",
      {"load_tps", "system", "update_ms", "readonly_ms", "achieved_tps",
       "abort_%"});

  // ---- centralized (1 node, no replication, no middleware) ----
  {
    workload::TpcwWorkload tpcw(SmallTpcw());
    cluster::ReplicaNode node("central", /*workers=*/1, TpcwCost());
    if (!tpcw.Load(node.db()).ok()) return 1;
    node.SetEmulationEnabled(true);
    for (double load : loads) {
      auto options = bench::BaseLoadOptions(load, /*clients=*/40);
      auto m = bench::RunCentralized(node, tpcw, options);
      bench::PrintTableRow({Fmt(load, 0), "centralized",
                            Fmt(m.update_ms.Mean()),
                            Fmt(m.readonly_ms.Mean()),
                            Fmt(m.achieved_tps),
                            Fmt(100.0 * m.abort_rate(), 2)});
      const std::string point = "centralized@" + Fmt(load, 0);
      report.AddScalar(point + ".tps", m.achieved_tps, "tps",
                       bench::Direction::kHigherIsBetter);
      report.AddScalar(point + ".update_ms", m.update_ms.Mean(), "ms",
                       bench::Direction::kLowerIsBetter);
    }
  }

  // ---- SI-Rep, 5 replicas ----
  {
    cluster::ClusterOptions copt;
    copt.num_replicas = 5;
    copt.workers_per_replica = 1;
    copt.cost = TpcwCost();
    copt.gcs.multicast_delay = std::chrono::milliseconds(1);
    cluster::Cluster cluster(copt);
    if (!cluster.Start().ok()) return 1;
    workload::TpcwWorkload tpcw(SmallTpcw());
    if (!cluster
             .LoadEverywhere(
                 [&](engine::Database* db) { return tpcw.Load(db); })
             .ok()) {
      return 1;
    }
    cluster.SetEmulationEnabled(true);
    // SIREP_METRICS=1: serve each replica's registry over loopback HTTP
    // while the run is in flight (EXPERIMENTS.md "scraping a run").
    if (std::getenv("SIREP_METRICS") != nullptr &&
        cluster.StartMetricsEndpoints().ok()) {
      std::printf("# metrics endpoints (curl while the run is live):\n");
      for (uint16_t port : cluster.MetricsPorts()) {
        std::printf("#   http://127.0.0.1:%u/metrics  (also "
                    "/flightrecorder, /cluster/metrics)\n", port);
      }
    }
    for (double load : loads) {
      auto options = bench::BaseLoadOptions(load, /*clients=*/40);
      auto m = bench::RunOnCluster(cluster, tpcw, options);
      bench::PrintTableRow({Fmt(load, 0), "si-rep-5",
                            Fmt(m.update_ms.Mean()),
                            Fmt(m.readonly_ms.Mean()),
                            Fmt(m.achieved_tps),
                            Fmt(100.0 * m.abort_rate(), 2)});
      cluster.Quiesce();
      const std::string point = "si-rep-5@" + Fmt(load, 0);
      report.AddScalar(point + ".tps", m.achieved_tps, "tps",
                       bench::Direction::kHigherIsBetter);
      report.AddScalar(point + ".update_ms", m.update_ms.Mean(), "ms",
                       bench::Direction::kLowerIsBetter);
      report.AddScalar(point + ".readonly_ms", m.readonly_ms.Mean(), "ms",
                       bench::Direction::kLowerIsBetter);
      if (load == loads.back()) {
        report.AddPercentiles("si-rep-5.update_ms",
                              bench::SamplePercentiles(m.update_ms), "ms");
        report.AddPercentiles("si-rep-5.readonly_ms",
                              bench::SamplePercentiles(m.readonly_ms), "ms");
      }
    }
    report.AttachClusterMetrics(cluster.DumpMetrics());
  }
  report.SetKnob("replicas", uint64_t{5});
  report.SetKnob("clients", uint64_t{40});
  bench::FinishReport(report);
  return 0;
}
