#ifndef SIREP_BENCH_REPORT_H_
#define SIREP_BENCH_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace sirep::cluster {
class Cluster;
}

namespace sirep::bench {

/// Machine-readable bench telemetry (ISSUE 10). Every bench builds a
/// BenchReport alongside its human-readable tables and writes it as
/// `BENCH_<name>.json`; `bench_runner` collects the files into a suite
/// artifact and `bench_compare` diffs them against committed baselines
/// with per-metric tolerance bands. The JSON is schema-versioned so the
/// comparison tooling can reject artifacts from a different era instead
/// of mis-reading them.
inline constexpr int kBenchSchemaVersion = 1;

/// How bench_compare interprets a drift in this metric.
enum class Direction {
  kHigherIsBetter,  ///< throughput-like: regression = value dropped
  kLowerIsBetter,   ///< latency/abort-like: regression = value rose
  kInfo,            ///< recorded for trend plots, never gates
};

std::string_view DirectionName(Direction direction);

/// One named scalar measurement ("replicated.tps@200", "abort_rate").
struct ScalarMetric {
  double value = 0;
  std::string unit;  ///< "tps", "ms", "ratio", ... (display only)
  Direction direction = Direction::kInfo;
  /// Relative tolerance band for bench_compare: a drift beyond
  /// value*(1 +/- tolerance) in the bad direction is a regression.
  /// < 0 = not set here; the compare run's --tolerance default applies.
  double tolerance = -1.0;
  bool operator==(const ScalarMetric&) const = default;
};

/// Percentile summary of one latency distribution.
struct PercentileRow {
  uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  std::string unit;
  bool operator==(const PercentileRow&) const = default;
};

/// Contention summary of one profiled lock (see obs::LockStats),
/// derived from the attached cluster metrics' "mw.lock.*" families.
struct ContentionRow {
  uint64_t acquires = 0;
  uint64_t contended = 0;
  double wait_p95_us = 0;
  double wait_p99_us = 0;
  bool operator==(const ContentionRow&) const = default;
};

class BenchReport {
 public:
  /// `name` must match the bench binary's name ("fig7_overhead"): it
  /// keys the artifact file name and the baseline lookup. Run metadata
  /// (git sha, build type, transport, host fingerprint, seed, fast
  /// mode) is captured here; wall time is stamped at serialization.
  explicit BenchReport(std::string name);

  const std::string& name() const { return name_; }

  // ---- run metadata ----
  void SetKnob(const std::string& key, std::string value);
  void SetKnob(const std::string& key, uint64_t value);
  void SetSeed(uint64_t seed) { seed_ = seed; }

  // ---- measurements ----
  void AddScalar(const std::string& metric, double value, std::string unit,
                 Direction direction, double tolerance = -1.0);
  void AddPercentiles(const std::string& metric,
                      const obs::HistogramSnapshot::Percentiles& p,
                      std::string unit);

  /// Embeds `snapshot` as the "cluster" section and derives the
  /// "contention" section from its "mw.lock.*" metrics.
  void AttachClusterMetrics(const obs::MetricsSnapshot& snapshot);

  /// Scrapes every replica's /metrics.json endpoint (exercising the
  /// same exposition path monitoring uses), merges the per-replica
  /// registries with the non-middleware metrics from DumpMetrics(), and
  /// attaches the result. Falls back to DumpMetrics() alone when no
  /// endpoint is up or a scrape fails; meta knob "metrics_source"
  /// records which path ran ("http" or "local").
  void AttachClusterScrape(cluster::Cluster& cluster);

  /// Embeds the global sampling profiler's snapshot as the "profile"
  /// section (see obs::Profiler).
  void AttachProfile();

  std::string ToJson() const;

  /// Writes `BENCH_<name>.json` into $SIREP_BENCH_REPORT_DIR (default:
  /// the current directory). Returns the path written.
  Result<std::string> WriteJsonFile() const;

  /// Parses ToJson() output (any schema_version == kBenchSchemaVersion
  /// artifact); rejects other versions and malformed JSON.
  static Result<BenchReport> FromJson(const std::string& json);

  // ---- accessors (compare + tests) ----
  const std::map<std::string, ScalarMetric>& scalars() const {
    return scalars_;
  }
  const std::map<std::string, PercentileRow>& percentiles() const {
    return percentiles_;
  }
  const std::map<std::string, ContentionRow>& contention() const {
    return contention_;
  }
  const std::map<std::string, std::string>& knobs() const { return knobs_; }
  uint64_t seed() const { return seed_; }
  bool fast_mode() const { return fast_mode_; }
  const std::string& git_sha() const { return git_sha_; }
  const std::string& transport() const { return transport_; }
  /// Raw JSON of the embedded sections; empty when never attached.
  const std::string& cluster_json() const { return cluster_json_; }
  const std::string& profile_json() const { return profile_json_; }
  double wall_time_s() const { return wall_time_s_; }

 private:
  std::string name_;
  std::string git_sha_;
  std::string build_type_;
  std::string transport_;
  std::string host_;
  uint64_t seed_ = 0;
  bool fast_mode_ = false;
  uint64_t start_ns_ = 0;      ///< 0 for parsed reports
  double wall_time_s_ = 0;     ///< parsed value; live reports stamp at ToJson
  std::map<std::string, std::string> knobs_;
  std::map<std::string, ScalarMetric> scalars_;
  std::map<std::string, PercentileRow> percentiles_;
  std::map<std::string, ContentionRow> contention_;
  std::string cluster_json_;
  std::string profile_json_;
};

// ---- regression gate ----

struct CompareOptions {
  /// Band applied to baseline metrics that carry no tolerance of their
  /// own. CI smoke runs pass a loose value (measurement windows are
  /// short and runners noisy); local full runs can tighten it.
  double default_tolerance = 0.10;
};

struct CompareResult {
  struct Row {
    std::string bench;
    std::string metric;
    double baseline = 0;
    double current = 0;
    double delta = 0;  ///< relative: (current - baseline) / |baseline|
    double tolerance = 0;
    bool regressed = false;
    std::string note;  ///< "missing in current", "baseline is zero", ...
  };
  std::vector<Row> rows;
  bool regressed = false;
};

/// Diffs every gating (non-kInfo) scalar of `baseline` against
/// `current`. A metric missing from `current` is a regression (a bench
/// silently dropping a measurement must not pass the gate); metrics new
/// in `current` are ignored (adding measurements is always allowed).
CompareResult CompareReports(const BenchReport& baseline,
                             const BenchReport& current,
                             const CompareOptions& options = {});

/// The bench_compare tool's main(): positional args are either two
/// BENCH_*.json files or two directories (every BENCH_*.json in the
/// baseline directory must exist and pass in the current directory).
/// `--tolerance T` sets CompareOptions::default_tolerance. Prints one
/// row per compared metric; exits 0 = pass, 1 = regression, 2 = usage
/// or I/O error.
int RunBenchCompare(int argc, char** argv);

// ---- run-metadata probes (shared with bench_common / bench_runner) ----

/// HEAD commit sha: $SIREP_GIT_SHA if set, else read from the .git of
/// the nearest ancestor directory; "unknown" when neither resolves.
std::string ReadGitSha();
std::string BuildTypeName();
/// "<hostname>/<n>cpu" — enough to spot artifacts from a different box.
std::string HostFingerprint();
/// $SIREP_GCS_TRANSPORT or "inproc" (the default transport).
std::string TransportName();

}  // namespace sirep::bench

#endif  // SIREP_BENCH_REPORT_H_
