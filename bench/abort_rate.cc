// Claim reproduction (paper §6.1): "Although the database is relatively
// small, conflict rates were small, and very few aborts took place (far
// below 1%)" — TPC-W ordering mix on a 5-replica SI-Rep cluster.
//
// Tuple-granularity validation is what keeps this low: conflicts require
// two concurrent transactions to update the *same row* (same cart, same
// item), not merely the same table.

#include "bench_common.h"
#include "workload/tpcw.h"

using namespace sirep;
using bench::Fmt;

int main(int argc, char** argv) {
  bench::InitBench("abort_rate", &argc, argv);
  bench::BenchReport report("abort_rate");
  cluster::ClusterOptions copt;
  copt.num_replicas = 5;
  copt.workers_per_replica = 1;
  copt.cost.select_service = std::chrono::milliseconds(5);
  copt.cost.update_service = std::chrono::milliseconds(7);
  copt.cost.insert_service = std::chrono::milliseconds(5);
  copt.gcs.multicast_delay = std::chrono::milliseconds(1);
  cluster::Cluster cluster(copt);
  if (!cluster.Start().ok()) return 1;

  workload::TpcwOptions wopt;
  wopt.num_items = bench::FastMode() ? 200 : 1000;
  wopt.num_ebs = 40;
  workload::TpcwWorkload tpcw(wopt);
  if (!cluster
           .LoadEverywhere([&](engine::Database* db) { return tpcw.Load(db); })
           .ok()) {
    return 1;
  }
  cluster.SetEmulationEnabled(true);

  bench::PrintTableHeader(
      "Abort rate, TPC-W ordering mix on 5 replicas (paper: far below 1%)",
      {"load_tps", "committed", "aborted", "abort_%", "local_val",
       "global_val"});

  for (double load : {25.0, 50.0, 75.0}) {
    auto options = bench::BaseLoadOptions(load, 40);
    if (!bench::FastMode()) {
      options.duration = std::chrono::milliseconds(6000);
    }
    auto m = bench::RunOnCluster(cluster, tpcw, options);
    auto stats = cluster.AggregateStats();
    bench::PrintTableRow(
        {Fmt(load, 0), std::to_string(m.committed),
         std::to_string(m.aborted), Fmt(100.0 * m.abort_rate(), 3),
         std::to_string(stats.local_val_aborts),
         std::to_string(stats.global_val_aborts)});
    cluster.Quiesce();
    const std::string point = "tpcw@" + Fmt(load, 0);
    report.AddScalar(point + ".tps", m.achieved_tps, "tps",
                     bench::Direction::kHigherIsBetter);
    // The claim under test: abort rate stays far below 1 %.
    report.AddScalar(point + ".abort_pct", 100.0 * m.abort_rate(), "%",
                     bench::Direction::kLowerIsBetter);
    report.AddScalar(point + ".global_val_aborts",
                     static_cast<double>(stats.global_val_aborts), "txns",
                     bench::Direction::kInfo);
  }
  report.AttachClusterMetrics(cluster.DumpMetrics());
  report.SetKnob("replicas", uint64_t{5});
  bench::FinishReport(report);
  return 0;
}
