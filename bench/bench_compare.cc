// Perf-regression gate: diffs BENCH_*.json artifacts against committed
// baselines with per-metric tolerance bands. All logic lives in
// bench::RunBenchCompare so bench_report_test can drive the exact code
// path CI runs (including the exit code).

#include "bench/report.h"

int main(int argc, char** argv) {
  return sirep::bench::RunBenchCompare(argc, argv);
}
