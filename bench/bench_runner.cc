// Unified bench-suite driver (ISSUE 10): runs a configurable suite of
// the bench/ binaries, validates every BENCH_<name>.json artifact they
// emit, merges them into one BENCH_SUITE.json, and (optionally) gates
// against committed baselines — the entry point CI's perf-gate job and
// the scheduled full-suite trajectory run both call.
//
//   bench_runner --suite smoke            # fig7 + gcs_micro + fig_partial,
//                                         # fast windows (CI PR gate)
//   bench_runner --suite full             # every bench, full windows
//   bench_runner --suite smoke --baseline-dir results/baselines
//                --tolerance 0.6          # run + regression gate
//
// Flags: --bindir DIR (bench binaries; default: bench_runner's own
// directory), --out-dir DIR (artifacts; default: cwd, exported to the
// children as SIREP_BENCH_REPORT_DIR), --seed N (re-exported as
// SIREP_BENCH_SEED). Exit: 0 pass, 1 bench failure or regression,
// 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/report.h"

namespace {

namespace fs = std::filesystem;
using sirep::bench::BenchReport;

const std::vector<std::string> kSmokeSuite = {
    "fig7_overhead", "gcs_micro", "fig_partial"};
const std::vector<std::string> kFullSuite = {
    "fig5_tpcw",       "fig6_largedb",    "fig7_overhead",
    "abort_rate",      "holes_rate",      "writeset_micro",
    "validation_micro", "gcs_micro",      "ablation_gcs_delay",
    "ablation_adjustments", "fig_partial"};

std::string ReadFile(const fs::path& path) {
  std::ifstream file(path);
  if (!file) return "";
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string suite = "smoke";
  fs::path bindir = fs::path(argv[0]).parent_path();
  fs::path out_dir = ".";
  std::string baseline_dir;
  std::string tolerance;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_runner: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--suite") {
      suite = value("--suite");
    } else if (arg == "--bindir") {
      bindir = value("--bindir");
    } else if (arg == "--out-dir") {
      out_dir = value("--out-dir");
    } else if (arg == "--baseline-dir") {
      baseline_dir = value("--baseline-dir");
    } else if (arg == "--tolerance") {
      tolerance = value("--tolerance");
    } else if (arg == "--seed") {
      ::setenv("SIREP_BENCH_SEED", value("--seed"), /*overwrite=*/1);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_runner [--suite smoke|full] [--bindir DIR] "
          "[--out-dir DIR]\n                    [--baseline-dir DIR] "
          "[--tolerance T] [--seed N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "bench_runner: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  const std::vector<std::string>* benches = nullptr;
  if (suite == "smoke") {
    benches = &kSmokeSuite;
    // Smoke means CI-sized measurement windows; an explicit
    // SIREP_BENCH_FAST from the caller (either value) wins.
    ::setenv("SIREP_BENCH_FAST", "1", /*overwrite=*/0);
  } else if (suite == "full") {
    benches = &kFullSuite;
  } else {
    std::fprintf(stderr, "bench_runner: unknown suite '%s'\n", suite.c_str());
    return 2;
  }

  std::error_code ec;
  fs::create_directories(out_dir, ec);
  ::setenv("SIREP_BENCH_REPORT_DIR", out_dir.string().c_str(),
           /*overwrite=*/1);

  bool failed = false;
  std::vector<std::pair<std::string, std::string>> artifacts;  // name, json
  for (const std::string& bench : *benches) {
    const fs::path binary = bindir / bench;
    std::printf("==== bench_runner: %s ====\n", binary.c_str());
    std::fflush(stdout);
    const int rc = std::system(binary.string().c_str());
    if (rc != 0) {
      std::fprintf(stderr, "bench_runner: %s exited with %d\n",
                   bench.c_str(), rc);
      failed = true;
      continue;
    }
    const fs::path artifact = out_dir / ("BENCH_" + bench + ".json");
    const std::string json = ReadFile(artifact);
    auto report = BenchReport::FromJson(json);
    if (!report.ok()) {
      std::fprintf(stderr, "bench_runner: %s emitted no valid artifact: %s\n",
                   bench.c_str(), report.status().message().c_str());
      failed = true;
      continue;
    }
    std::printf("bench_runner: validated %s (%zu metrics, %zu percentile "
                "rows)\n",
                artifact.c_str(), report.value().scalars().size(),
                report.value().percentiles().size());
    // Strip the trailing newline WriteJsonFile appends.
    std::string trimmed = json;
    while (!trimmed.empty() &&
           (trimmed.back() == '\n' || trimmed.back() == '\r')) {
      trimmed.pop_back();
    }
    artifacts.emplace_back(bench, std::move(trimmed));
  }

  // Merge the validated artifacts into one suite file for upload.
  std::string merged = "{\"schema_version\":1,\"suite\":\"" + suite + "\"";
  merged += ",\"git_sha\":\"" + sirep::bench::ReadGitSha() + "\"";
  merged += ",\"host\":\"" + sirep::bench::HostFingerprint() + "\"";
  merged += ",\"benches\":{";
  for (size_t i = 0; i < artifacts.size(); ++i) {
    if (i > 0) merged.push_back(',');
    merged += "\"" + artifacts[i].first + "\":" + artifacts[i].second;
  }
  merged += "}}";
  const fs::path suite_path = out_dir / "BENCH_SUITE.json";
  std::ofstream suite_file(suite_path, std::ios::trunc);
  suite_file << merged << "\n";
  suite_file.close();
  std::printf("bench_runner: wrote %s (%zu benches)\n", suite_path.c_str(),
              artifacts.size());

  if (failed) {
    std::fprintf(stderr, "bench_runner: one or more benches failed\n");
    return 1;
  }

  if (!baseline_dir.empty()) {
    std::vector<std::string> cmp_args = {"bench_compare"};
    if (!tolerance.empty()) {
      cmp_args.push_back("--tolerance");
      cmp_args.push_back(tolerance);
    }
    cmp_args.push_back(baseline_dir);
    cmp_args.push_back(out_dir.string());
    std::vector<char*> cmp_argv;
    cmp_argv.reserve(cmp_args.size());
    for (std::string& arg : cmp_args) cmp_argv.push_back(arg.data());
    const int rc = sirep::bench::RunBenchCompare(
        static_cast<int>(cmp_argv.size()), cmp_argv.data());
    if (rc != 0) return rc;
  }
  return 0;
}
