// Chaos harness: a standalone invariant checker (not a perf benchmark).
// Runs seeded client traffic against a replicated cluster while a
// deterministic fault schedule fires — failpoint faults (drops, apply
// deadlocks, validation stalls, socket resets) plus whole-replica
// crash/restart rounds — then verifies the 1-copy-SI invariants:
//
//   * sum(v) over the counter table equals the number of commits the
//     drivers acknowledged, on EVERY replica (exactly-once apply);
//   * all replicas are row-for-row identical (convergence).
//
// The entire schedule derives from --seed, so a failing run is
// replayable bit-for-bit from its command line. Exits non-zero on any
// invariant violation; prints a fault report (failpoint counters +
// driver/GCS fault metrics) either way.
//
// Usage:
//   chaos_harness [--seed=N] [--rounds=N] [--clients=N]
//                 [--duration-ms=N] [--transport=inproc|tcp]
//                 [--failpoints=SPEC_LIST] [--join-under-load]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/failpoint.h"
#include "common/prng.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace sirep {
namespace {

using cluster::Cluster;
using cluster::ClusterOptions;
using sql::Value;

struct HarnessOptions {
  uint64_t seed = 1;
  int rounds = 3;          // crash/restart rounds
  int clients = 4;         // concurrent traffic threads
  int duration_ms = 250;   // traffic window per round
  gcs::TransportKind transport = gcs::TransportKind::kDefault;
  // Grow the cluster by one fresh replica mid-traffic (AddReplica with
  // an empty schema): the joiner must complete a chunked state transfer
  // under live load and then satisfy the same invariants as everyone.
  bool join_under_load = false;
  // Partial replication (cluster::PartitionMap): 0/0 = full
  // replication. With rf < replicas the traffic threads honor the
  // routing contract (each burst targets one partition group at one of
  // its holders) and the invariant check judges each key against its
  // holder set instead of against every replica.
  size_t partitions = 0;
  size_t rf = 0;
  // Default fault schedule: transient multicast drops, transient apply
  // deadlocks, and validation stalls — all recoverable faults that must
  // never cost an acknowledged commit.
  std::string failpoints =
      "gcs.send=1in(40,error(unavailable));"
      "mw.apply=1in(60,error(deadlock));"
      "mw.validate=1in(80,delay(200us))";
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

bool ParseOptions(int argc, char** argv, HarnessOptions* opt) {
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--seed", &v)) {
      opt->seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--rounds", &v)) {
      opt->rounds = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--clients", &v)) {
      opt->clients = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--duration-ms", &v)) {
      opt->duration_ms = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--transport", &v)) {
      if (v == "tcp") {
        opt->transport = gcs::TransportKind::kTcp;
      } else if (v == "inproc") {
        opt->transport = gcs::TransportKind::kInProcess;
      } else {
        std::fprintf(stderr, "unknown transport '%s'\n", v.c_str());
        return false;
      }
    } else if (ParseFlag(argv[i], "--failpoints", &v)) {
      opt->failpoints = v;
    } else if (ParseFlag(argv[i], "--partitions", &v)) {
      opt->partitions = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--rf", &v)) {
      opt->rf = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--join-under-load") == 0) {
      opt->join_under_load = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return false;
    }
  }
  if (opt->join_under_load && opt->rf != 0) {
    // AddReplica joiners sit outside the founding partition layout and
    // have no covering donor under partial replication (documented
    // PartitionMap limitation) — refuse the combination up front.
    std::fprintf(stderr, "--join-under-load is incompatible with --rf\n");
    return false;
  }
  // --join-under-load needs at least one traffic round to join during.
  return opt->rounds >= 0 && opt->clients > 0 && opt->duration_ms > 0 &&
         (!opt->join_under_load || opt->rounds > 0);
}

/// Seeded counter-increment traffic (same shape as tests/chaos_test.cc):
/// short transactions through the JDBC-like driver with periodic
/// reconnects, counting only commits the driver acknowledged.
long long RunTraffic(Cluster& cluster, uint64_t seed, int clients,
                     std::chrono::milliseconds duration) {
  // Under partial replication each burst honors the routing contract:
  // pick a partition group, pin the connection to one of its holder
  // slots, and touch only that group's keys. (Driver fail-over can
  // still land a retry on a non-holder — the middleware's misroute
  // guard aborts it unacknowledged, which is safe for the invariants.)
  const auto map = cluster.partition_map();
  const bool partial = map != nullptr && map->partial();
  std::vector<std::vector<int64_t>> group_keys;
  std::vector<std::vector<size_t>> group_slots;
  if (partial) {
    group_keys.resize(map->num_groups());
    group_slots.resize(map->num_groups());
    for (int64_t k = 0; k < 16; ++k) {
      group_keys[map->GroupOfPartition(
                     map->PartitionOf({"kv", sql::Key{{Value::Int(k)}}}))]
          .push_back(k);
    }
    for (size_t s = 0; s < map->num_slots(); ++s) {
      group_slots[map->GroupOfSlot(s)].push_back(s);
    }
  }
  std::atomic<bool> stop{false};
  std::atomic<long long> committed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Prng prng(seed * 9176 + c);
      while (!stop.load(std::memory_order_relaxed)) {
        client::ConnectionOptions copt;
        copt.seed = prng.Next();
        size_t group = 0;
        if (partial) {
          do {
            group = prng.Uniform(group_keys.size());
          } while (group_keys[group].empty());
          copt.pinned_replica = static_cast<int>(
              group_slots[group][prng.Uniform(group_slots[group].size())]);
        }
        auto conn = cluster.Connect(copt);
        if (!conn.ok()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        auto& connection = *conn.value();
        connection.SetAutoCommit(false);
        for (int t = 0; t < 5 && !stop.load(); ++t) {
          const int64_t k =
              partial ? group_keys[group][prng.Uniform(
                            group_keys[group].size())]
                      : static_cast<int64_t>(prng.Uniform(16));
          auto r = connection.Execute("UPDATE kv SET v = v + 1 WHERE k = ?",
                                      {Value::Int(k)});
          if (!r.ok()) {
            connection.Rollback();
            continue;
          }
          if (connection.Commit().ok()) committed.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(duration);
  stop.store(true);
  for (auto& t : threads) t.join();
  return committed.load();
}

/// Online restart with bounded retry: the fault schedule stays armed
/// during recovery, so the recovery protocol's own multicasts can eat a
/// transient injected drop (or the donor itself can be a crash-
/// failpoint victim). That is a scenario to survive, not a harness
/// failure — retry with exponential backoff plus seeded jitter under an
/// overall deadline until the schedule lets the join through. On final
/// failure, prints every attempt's status so the failing seed's replay
/// starts from the full error history, not just the last code.
bool RestartWithRetry(Cluster& cluster, size_t index, uint64_t seed,
                      bool sweep_on_outage = false,
                      std::chrono::milliseconds deadline_ms =
                          std::chrono::milliseconds(30000)) {
  const auto deadline = std::chrono::steady_clock::now() + deadline_ms;
  Prng jitter(seed * 77003 + index * 131 + 7);
  auto backoff = std::chrono::milliseconds(5);
  std::vector<Status> attempts;
  for (;;) {
    if (cluster.replica(index)->IsAlive()) return true;
    Status last = cluster.RestartReplica(index);
    if (last.ok()) return true;
    attempts.push_back(last);
    if (sweep_on_outage) {
      // A cascading schedule (e.g. donor-crash failpoints felling every
      // recovery donor) can leave the whole cluster down, and a total
      // outage has a mandatory cold-start order: only the replica with
      // the longest stable prefix may seed the new epoch. Sweeping the
      // *other* dead replicas lets whichever one that is come up, after
      // which `index` recovers from it normally. Only enabled at call
      // sites where no medic thread is restarting replicas in parallel
      // (concurrent restarts of the same index are not supported).
      for (size_t r = 0; r < cluster.size(); ++r) {
        if (r != index && !cluster.replica(r)->IsAlive()) {
          (void)cluster.RestartReplica(r);
        }
      }
    }
    const auto sleep =
        backoff + std::chrono::milliseconds(
                      jitter.Uniform(static_cast<uint64_t>(backoff.count())));
    if (std::chrono::steady_clock::now() + sleep > deadline) break;
    std::this_thread::sleep_for(sleep);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(250));
  }
  std::fprintf(stderr,
               "restart of replica %zu kept failing (%zu attempts):\n",
               index, attempts.size());
  for (size_t a = 0; a < attempts.size(); ++a) {
    std::fprintf(stderr, "  attempt %zu: %s\n", a,
                 attempts[a].ToString().c_str());
  }
  return false;
}

/// Partial-replication invariants, judged per key against its holder
/// set: every holder of a key agrees on its value (exactly-once apply
/// within the group), non-holder copies never ran ahead of the holders
/// (they stay at the seeded value by design — a non-holder that
/// *applied* something would be the misroute-safety bug), and the sum
/// over one authoritative copy per key accounts for every acknowledged
/// commit.
///
/// The sum check carries a bounded slack: `indoubt` commits were
/// acknowledged through the driver's crash-time inquiry, which under
/// partial replication attests cluster-wide *certification* (every
/// replica records the outcome, holders or not) but not *durability* of
/// the row images — if a fault schedule kills all rf holders of a group
/// before any of them applied a just-certified writeset, that payload
/// is gone beyond recovery (the fault budget of rf is exceeded; see
/// DESIGN.md §7.9). So: every normally-acknowledged commit must be
/// present exactly, and the total may fall short by at most the
/// in-doubt count. A shortfall beyond it, or any excess, is a real
/// exactly-once violation.
int CheckInvariantsPartial(Cluster& cluster, const cluster::PartitionMap& map,
                           long long committed, long long indoubt) {
  int violations = 0;
  long long total = 0;
  const size_t slots = std::min(cluster.size(), map.num_slots());
  for (int64_t k = 0; k < 16; ++k) {
    const size_t partition =
        map.PartitionOf({"kv", sql::Key{{Value::Int(k)}}});
    long long authoritative = -1;
    for (size_t s = 0; s < slots; ++s) {
      auto res = cluster.db(s)->ExecuteAutoCommit(
          "SELECT v FROM kv WHERE k = " + std::to_string(k));
      const long long v =
          res.ok() && res.value().NumRows() == 1
              ? res.value().rows[0][0].AsInt()
              : -1;
      if (map.Holds(s, partition)) {
        if (authoritative == -1) {
          authoritative = v;
        } else if (v != authoritative) {
          std::fprintf(stderr,
                       "VIOLATION: key %lld holders disagree: replica %zu "
                       "has %lld, expected %lld\n",
                       static_cast<long long>(k), s, v, authoritative);
          ++violations;
        }
      } else if (v != 0) {
        std::fprintf(stderr,
                     "VIOLATION: key %lld applied at non-holder replica "
                     "%zu (v=%lld)\n",
                     static_cast<long long>(k), s, v);
        ++violations;
      }
    }
    if (authoritative < 0) {
      std::fprintf(stderr, "VIOLATION: key %lld has no readable holder\n",
                   static_cast<long long>(k));
      ++violations;
    } else {
      total += authoritative;
    }
  }
  if (total > committed || total < committed - indoubt) {
    std::fprintf(stderr,
                 "VIOLATION: authoritative sum(v)=%lld, drivers "
                 "acknowledged %lld commits (%lld in-doubt)\n",
                 total, committed, indoubt);
    ++violations;
  } else if (total != committed) {
    std::printf(
        "note: %lld of %lld acknowledged commits lost to whole-group "
        "holder outages (within the %lld in-doubt budget)\n",
        committed - total, committed, indoubt);
  }
  return violations;
}

int CheckInvariants(Cluster& cluster, long long committed) {
  if (const auto& map = cluster.partition_map();
      map != nullptr && map->partial()) {
    auto snap = obs::MetricsRegistry::Default().Snapshot();
    const auto it = snap.counters.find("client.indoubt_committed");
    const long long indoubt =
        it == snap.counters.end() ? 0 : static_cast<long long>(it->second);
    return CheckInvariantsPartial(cluster, *map, committed, indoubt);
  }
  int violations = 0;
  for (size_t r = 0; r < cluster.size(); ++r) {
    auto res = cluster.db(r)->ExecuteAutoCommit("SELECT SUM(v) FROM kv");
    const long long sum =
        res.ok() ? res.value().rows[0][0].AsInt() : -1;
    if (sum != committed) {
      std::fprintf(stderr,
                   "VIOLATION: replica %zu sum(v)=%lld, drivers "
                   "acknowledged %lld commits\n",
                   r, sum, committed);
      ++violations;
    }
  }
  auto reference =
      cluster.db(0)->ExecuteAutoCommit("SELECT * FROM kv ORDER BY k");
  if (!reference.ok()) {
    std::fprintf(stderr, "VIOLATION: replica 0 unreadable\n");
    return violations + 1;
  }
  for (size_t r = 1; r < cluster.size(); ++r) {
    auto other =
        cluster.db(r)->ExecuteAutoCommit("SELECT * FROM kv ORDER BY k");
    if (!other.ok() ||
        other.value().rows != reference.value().rows) {
      std::fprintf(stderr,
                   "VIOLATION: replica %zu diverged from replica 0\n", r);
      ++violations;
    }
  }
  return violations;
}

void PrintFaultReport(Cluster& cluster,
                      const std::vector<failpoint::PointStats>& points) {
  std::printf("--- failpoint report ---\n");
  for (const auto& p : points) {
    std::printf("  %-28s spec=%-28s hits=%llu fires=%llu\n",
                p.name.c_str(), p.spec.c_str(),
                static_cast<unsigned long long>(p.hits),
                static_cast<unsigned long long>(p.fires));
  }
  std::printf("--- fault counters ---\n");
  // The driver's retry/failover counters live in the process-default
  // registry, not in any per-replica registry — merge both.
  auto snap = cluster.DumpMetrics();
  snap.Merge(obs::MetricsRegistry::Default().Snapshot());
  for (const auto& [name, value] : snap.counters) {
    // Driver retry/failover behaviour and transport-level faults; the
    // throughput counters are not interesting to a chaos report.
    if (name.rfind("client.", 0) == 0 || name.rfind("gcs.tcp.", 0) == 0 ||
        name.rfind("wal.", 0) == 0) {
      std::printf("  %-36s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
}

/// On any failed run: one kInvariant event into the black box, then the
/// whole observability state — merged metrics (Prometheus text) plus
/// every flight recorder — into a file named after the failing seed, so
/// the bit-for-bit replay starts from the recorded evidence.
void DumpFailureArtifacts(Cluster& cluster, uint64_t seed,
                          const std::string& why) {
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kInvariant, 0,
                                       seed, 0, why);
  const std::string path = "chaos_dump.seed" + std::to_string(seed) + ".txt";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  auto snap = cluster.DumpMetrics();
  snap.Merge(obs::MetricsRegistry::Default().Snapshot());
  out << "# chaos failure: " << why << " (seed=" << seed << ")\n"
      << "# ---- merged metrics ----\n"
      << snap.ToPrometheusText() << "# ---- flight recorders ----\n"
      << cluster.DumpFlightRecorders();
  std::fprintf(stderr, "observability dump written to %s\n", path.c_str());
}

int Run(const HarnessOptions& opt) {
  // Black-box plumbing before any traffic: failpoint verdicts stream
  // into the global flight recorder, and a fatal signal dumps every
  // recorder to a seed-stamped file.
  obs::FlightRecorder::RecordFailpointHits();
  obs::FlightRecorder::InstallCrashHandler("chaos_flightrecorder.seed" +
                                           std::to_string(opt.seed));
  ClusterOptions coptions;
  coptions.num_replicas = 4;
  coptions.gcs.transport = opt.transport;
  coptions.partitions = opt.partitions;
  coptions.replication_factor = opt.rf;
  Cluster cluster(coptions);
  if (!cluster.Start().ok()) {
    std::fprintf(stderr, "cluster start failed\n");
    return 2;
  }
  if (!cluster
           .ExecuteEverywhere(
               "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
           .ok()) {
    std::fprintf(stderr, "schema setup failed\n");
    return 2;
  }
  for (int k = 0; k < 16; ++k) {
    if (!cluster
             .ExecuteEverywhere("INSERT INTO kv VALUES (?, 0)",
                                {Value::Int(k)})
             .ok()) {
      std::fprintf(stderr, "data load failed\n");
      return 2;
    }
  }

  failpoint::Seed(opt.seed);
  if (!opt.failpoints.empty()) {
    const Status st = failpoint::ArmFromList(opt.failpoints);
    if (!st.ok()) {
      std::fprintf(stderr, "bad --failpoints list: %s\n",
                   st.ToString().c_str());
      return 2;
    }
  }

  // Each round: traffic under the fault schedule with one seeded
  // whole-replica crash in the middle, then an online restart. A medic
  // thread sweeps for collateral deaths (crash-failpoints can fell any
  // replica, not just the scheduled victim) so the cluster never bleeds
  // out of donors even with unbounded crash schedules.
  Prng chaos(opt.seed * 40503 + 11);
  long long committed = 0;
  const auto window = std::chrono::milliseconds(opt.duration_ms);
  std::atomic<bool> join_ok{!opt.join_under_load};
  std::thread joiner;
  for (int round = 0; round < opt.rounds; ++round) {
    const size_t victim = chaos.Uniform(cluster.size());
    std::atomic<bool> medic_stop{false};
    std::thread medic([&] {
      while (!medic_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        for (size_t r = 0; r < cluster.size(); ++r) {
          if (r == victim) continue;  // the victim belongs to the killer
          if (!cluster.replica(r)->IsAlive()) {
            // Best-effort: a failure here is retried on the next sweep,
            // and the final restart pass is the backstop.
            (void)cluster.RestartReplica(r);
          }
        }
      }
    });
    if (opt.join_under_load && round == 0) {
      // Grow the cluster mid-traffic: the joiner full-copies the kv
      // table in chunks while the drivers keep committing against it.
      joiner = std::thread([&] {
        std::this_thread::sleep_for(window / 4);
        for (int attempt = 0; attempt < 5; ++attempt) {
          auto added = cluster.AddReplica([](engine::Database* db) {
            return db
                ->ExecuteAutoCommit(
                    "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
                .status();
          });
          if (added.ok()) {
            std::printf("joined replica %zu under load\n", added.value());
            join_ok.store(true);
            return;
          }
          std::fprintf(stderr, "join attempt %d failed: %s\n", attempt,
                       added.status().ToString().c_str());
        }
      });
    }
    std::thread killer([&] {
      std::this_thread::sleep_for(window / 3);
      if (!cluster.replica(victim)->IsAlive()) return;
      cluster.CrashReplica(victim);
      std::this_thread::sleep_for(window / 3);
      if (!RestartWithRetry(cluster, victim, opt.seed)) {
        std::fprintf(stderr, "restart of replica %zu failed\n", victim);
      }
    });
    committed +=
        RunTraffic(cluster, opt.seed * 131 + round, opt.clients, window);
    killer.join();
    medic_stop.store(true);
    medic.join();
    if (!cluster.replica(victim)->IsAlive()) {
      // Crash landed after the killer's liveness check elsewhere (e.g.
      // self-expulsion from an injected reset): restart it now so the
      // convergence check sees a full complement.
      if (!RestartWithRetry(cluster, victim, opt.seed,
                            /*sweep_on_outage=*/true)) {
        std::fprintf(stderr, "late restart of replica %zu failed\n",
                     victim);
        DumpFailureArtifacts(cluster, opt.seed, "late restart failed");
        return 2;
      }
    }
    std::printf("round %d: victim=%zu committed(total)=%lld\n", round,
                victim, committed);
  }
  if (joiner.joinable()) joiner.join();
  if (!join_ok.load()) {
    std::fprintf(stderr, "FAIL: join under load never completed\n");
    DumpFailureArtifacts(cluster, opt.seed, "join under load failed");
    return 1;
  }

  // Snapshot counters before disarming — Disarm() drops them.
  const auto fault_points = failpoint::Snapshot();
  failpoint::DisarmAll();
  // Anything self-expelled by socket-level faults must be brought back
  // before convergence is judged.
  for (size_t r = 0; r < cluster.size(); ++r) {
    if (!RestartWithRetry(cluster, r, opt.seed, /*sweep_on_outage=*/true)) {
      std::fprintf(stderr, "final restart of replica %zu failed\n", r);
      DumpFailureArtifacts(cluster, opt.seed, "final restart failed");
      return 2;
    }
  }
  cluster.Quiesce();

  const int violations = CheckInvariants(cluster, committed);
  PrintFaultReport(cluster, fault_points);
  if (committed == 0) {
    std::fprintf(stderr, "FAIL: no transaction ever committed\n");
    DumpFailureArtifacts(cluster, opt.seed, "no transaction ever committed");
    return 1;
  }
  if (violations != 0) {
    std::fprintf(stderr, "FAIL: %d invariant violation(s), seed=%llu\n",
                 violations, static_cast<unsigned long long>(opt.seed));
    DumpFailureArtifacts(cluster, opt.seed,
                         std::to_string(violations) +
                             " invariant violation(s)");
    return 1;
  }
  std::printf("PASS: %lld commits, invariants hold (seed=%llu)\n",
              committed, static_cast<unsigned long long>(opt.seed));
  return 0;
}

}  // namespace
}  // namespace sirep

int main(int argc, char** argv) {
  sirep::HarnessOptions opt;
  if (!sirep::ParseOptions(argc, argv, &opt)) {
    std::fprintf(stderr,
                 "usage: %s [--seed=N] [--rounds=N] [--clients=N] "
                 "[--duration-ms=N] [--transport=inproc|tcp] "
                 "[--failpoints=LIST] [--join-under-load] "
                 "[--partitions=N] [--rf=N]\n",
                 argv[0]);
    return 2;
  }
  return sirep::Run(opt);
}
