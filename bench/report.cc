#include "bench/report.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "cluster/cluster.h"
#include "obs/profiler.h"

namespace sirep::bench {

namespace {

// ---- JSON writing (same conventions as obs::MetricsSnapshot::ToJson) ----

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[40];
  // %.17g round-trips every finite double.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

// ---- JSON parsing ----
//
// A small recursive-descent parser over a value tree. BenchReport
// artifacts embed whole sub-documents (the cluster metrics snapshot,
// the profiler dump) whose schemas belong to other components, so each
// parsed value also carries its raw source span — the embedded
// sections are re-extracted verbatim instead of being re-modeled here.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;
  std::string raw;  ///< exact source text of this value

  const JsonValue* Find(std::string_view key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double NumberOr(double fallback) const {
    return type == Type::kNumber ? number : fallback;
  }
  std::string StringOr(std::string fallback) const {
    return type == Type::kString ? str : std::move(fallback);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    SIREP_RETURN_IF_ERROR(ParseValue(&value));
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing data after JSON value");
    }
    return value;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    const size_t begin = pos_;
    const char c = text_[pos_];
    Status status;
    switch (c) {
      case '{':
        status = ParseObject(out);
        break;
      case '[':
        status = ParseArray(out);
        break;
      case '"':
        out->type = JsonValue::Type::kString;
        status = ParseString(&out->str);
        break;
      case 't':
      case 'f':
        status = ParseLiteral(c == 't' ? "true" : "false");
        out->type = JsonValue::Type::kBool;
        out->boolean = (c == 't');
        break;
      case 'n':
        status = ParseLiteral("null");
        out->type = JsonValue::Type::kNull;
        break;
      default:
        status = ParseNumber(out);
        break;
    }
    if (!status.ok()) return status;
    out->raw = std::string(text_.substr(begin, pos_ - begin));
    return Status::OK();
  }

  Status ParseLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Status::InvalidArgument("malformed JSON literal");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t begin = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) return Status::InvalidArgument("malformed JSON number");
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(std::string(text_.substr(begin, pos_ - begin)).c_str(),
                              nullptr);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument("truncated JSON escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::InvalidArgument("truncated \\u escape");
            }
            const unsigned code = static_cast<unsigned>(std::strtoul(
                std::string(text_.substr(pos_, 4)).c_str(), nullptr, 16));
            pos_ += 4;
            // Artifacts only escape control characters (< 0x20); emit
            // the low byte and let anything exotic degrade gracefully.
            out->push_back(static_cast<char>(code & 0xff));
            break;
          }
          default:
            return Status::InvalidArgument("unknown JSON escape");
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated JSON string");
    }
    ++pos_;  // closing quote
    return Status::OK();
  }

  Status ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::InvalidArgument("expected JSON object key");
      }
      std::string key;
      SIREP_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Status::InvalidArgument("expected ':' in JSON object");
      }
      ++pos_;
      JsonValue value;
      SIREP_RETURN_IF_ERROR(ParseValue(&value));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated JSON object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Status::InvalidArgument("expected ',' or '}' in JSON object");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      JsonValue value;
      SIREP_RETURN_IF_ERROR(ParseValue(&value));
      out->array.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated JSON array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Status::InvalidArgument("expected ',' or ']' in JSON array");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<Direction> DirectionFromName(std::string_view name) {
  if (name == "higher_is_better") return Direction::kHigherIsBetter;
  if (name == "lower_is_better") return Direction::kLowerIsBetter;
  if (name == "info") return Direction::kInfo;
  return Status::InvalidArgument("unknown metric direction");
}

// ---- loopback HTTP scrape (what `curl` sends; see metrics_http.cc) ----

/// GET `path` from 127.0.0.1:`port`; empty on any failure. Returns the
/// body only (headers stripped).
std::string HttpGetBody(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (response.rfind("HTTP/1.0 200", 0) != 0) return "";
  const size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) return "";
  return response.substr(body + 4);
}

}  // namespace

// ---- run-metadata probes ----

std::string ReadGitSha() {
  if (const char* env = std::getenv("SIREP_GIT_SHA");
      env != nullptr && *env != '\0') {
    return env;
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path dir = fs::current_path(ec);
  if (ec) return "unknown";
  for (int depth = 0; depth < 8 && !dir.empty(); ++depth) {
    const fs::path head_path = dir / ".git" / "HEAD";
    std::ifstream head(head_path);
    if (head) {
      std::string line;
      std::getline(head, line);
      if (line.rfind("ref: ", 0) != 0) return line;  // detached HEAD
      const std::string ref = line.substr(5);
      std::ifstream ref_file(dir / ".git" / ref);
      if (ref_file) {
        std::string sha;
        std::getline(ref_file, sha);
        if (!sha.empty()) return sha;
      }
      // Ref may only exist packed.
      std::ifstream packed(dir / ".git" / "packed-refs");
      std::string entry;
      while (std::getline(packed, entry)) {
        if (entry.size() > ref.size() + 41 &&
            entry.compare(41, std::string::npos, ref) == 0) {
          return entry.substr(0, 40);
        }
      }
      return "unknown";
    }
    const fs::path parent = dir.parent_path();
    if (parent == dir) break;
    dir = parent;
  }
  return "unknown";
}

std::string BuildTypeName() {
#ifdef SIREP_BUILD_TYPE
  return SIREP_BUILD_TYPE;
#else
  return "unknown";
#endif
}

std::string HostFingerprint() {
  char host[256] = "unknown";
  ::gethostname(host, sizeof(host) - 1);
  return std::string(host) + "/" +
         std::to_string(std::thread::hardware_concurrency()) + "cpu";
}

std::string TransportName() {
  const char* env = std::getenv("SIREP_GCS_TRANSPORT");
  return (env != nullptr && *env != '\0') ? env : "inproc";
}

std::string_view DirectionName(Direction direction) {
  switch (direction) {
    case Direction::kHigherIsBetter: return "higher_is_better";
    case Direction::kLowerIsBetter: return "lower_is_better";
    case Direction::kInfo: return "info";
  }
  return "info";
}

// ---- BenchReport ----

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)),
      git_sha_(ReadGitSha()),
      build_type_(BuildTypeName()),
      transport_(TransportName()),
      host_(HostFingerprint()),
      start_ns_(obs::MonotonicNanos()) {
  const char* fast = std::getenv("SIREP_BENCH_FAST");
  fast_mode_ = fast != nullptr && fast[0] != '\0' && fast[0] != '0';
}

void BenchReport::SetKnob(const std::string& key, std::string value) {
  knobs_[key] = std::move(value);
}

void BenchReport::SetKnob(const std::string& key, uint64_t value) {
  knobs_[key] = std::to_string(value);
}

void BenchReport::AddScalar(const std::string& metric, double value,
                            std::string unit, Direction direction,
                            double tolerance) {
  scalars_[metric] =
      ScalarMetric{value, std::move(unit), direction, tolerance};
}

void BenchReport::AddPercentiles(const std::string& metric,
                                 const obs::HistogramSnapshot::Percentiles& p,
                                 std::string unit) {
  percentiles_[metric] =
      PercentileRow{p.count, p.mean, p.p50, p.p95, p.p99, std::move(unit)};
}

void BenchReport::AttachClusterMetrics(const obs::MetricsSnapshot& snapshot) {
  cluster_json_ = snapshot.ToJson();
  // Derive the contention section from the "mw.lock.<name>.*" families
  // the obs::LockStats instrumentation registers.
  contention_.clear();
  constexpr std::string_view kPrefix = "mw.lock.";
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind(kPrefix, 0) != 0) continue;
    const size_t dot = name.rfind('.');
    const std::string lock = name.substr(0, dot);
    const std::string field = name.substr(dot + 1);
    ContentionRow& row = contention_[lock];
    if (field == "acquires") row.acquires = value;
    if (field == "contended") row.contended = value;
  }
  for (auto& [lock, row] : contention_) {
    const auto p = snapshot.Percentiles(lock + ".wait_us");
    row.wait_p95_us = p.p95;
    row.wait_p99_us = p.p99;
  }
}

void BenchReport::AttachClusterScrape(cluster::Cluster& cluster) {
  const std::vector<uint16_t> ports = cluster.MetricsPorts();
  obs::MetricsSnapshot scraped;
  bool scrape_ok = !ports.empty();
  for (const uint16_t port : ports) {
    const std::string body = HttpGetBody(port, "/metrics.json");
    auto parsed = obs::MetricsSnapshot::FromJson(body);
    if (body.empty() || !parsed.ok()) {
      scrape_ok = false;
      break;
    }
    scraped.Merge(std::move(parsed).value());
  }
  obs::MetricsSnapshot merged = cluster.DumpMetrics();
  if (scrape_ok) {
    // The endpoints serve each replica's middleware registry; keep the
    // scraped copies of those and the locally-dumped storage / engine /
    // gcs metrics — merging both copies of "mw.*" would double-count.
    std::erase_if(merged.counters,
                  [](const auto& kv) { return kv.first.rfind("mw.", 0) == 0; });
    std::erase_if(merged.gauges,
                  [](const auto& kv) { return kv.first.rfind("mw.", 0) == 0; });
    std::erase_if(merged.histograms,
                  [](const auto& kv) { return kv.first.rfind("mw.", 0) == 0; });
    merged.Merge(scraped);
  }
  SetKnob("metrics_source", scrape_ok ? "http" : "local");
  AttachClusterMetrics(merged);
}

void BenchReport::AttachProfile() {
  profile_json_ = obs::Profiler::Global().SnapshotJson();
}

std::string BenchReport::ToJson() const {
  const double wall_s =
      start_ns_ != 0
          ? static_cast<double>(obs::MonotonicNanos() - start_ns_) / 1e9
          : wall_time_s_;
  std::string out = "{\"schema_version\":";
  AppendU64(&out, kBenchSchemaVersion);
  out += ",\"name\":";
  AppendJsonString(&out, name_);
  out += ",\"meta\":{\"git_sha\":";
  AppendJsonString(&out, git_sha_);
  out += ",\"build_type\":";
  AppendJsonString(&out, build_type_);
  out += ",\"transport\":";
  AppendJsonString(&out, transport_);
  out += ",\"host\":";
  AppendJsonString(&out, host_);
  out += ",\"seed\":";
  AppendU64(&out, seed_);
  out += ",\"fast_mode\":";
  out += fast_mode_ ? "true" : "false";
  out += ",\"wall_time_s\":";
  AppendDouble(&out, wall_s);
  out += ",\"knobs\":{";
  bool first = true;
  for (const auto& [key, value] : knobs_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, key);
    out.push_back(':');
    AppendJsonString(&out, value);
  }
  out += "}},\"metrics\":{";
  first = true;
  for (const auto& [metric, m] : scalars_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, metric);
    out += ":{\"value\":";
    AppendDouble(&out, m.value);
    out += ",\"unit\":";
    AppendJsonString(&out, m.unit);
    out += ",\"direction\":";
    AppendJsonString(&out, std::string(DirectionName(m.direction)));
    if (m.tolerance >= 0) {
      out += ",\"tolerance\":";
      AppendDouble(&out, m.tolerance);
    }
    out.push_back('}');
  }
  out += "},\"percentiles\":{";
  first = true;
  for (const auto& [metric, p] : percentiles_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, metric);
    out += ":{\"count\":";
    AppendU64(&out, p.count);
    out += ",\"mean\":";
    AppendDouble(&out, p.mean);
    out += ",\"p50\":";
    AppendDouble(&out, p.p50);
    out += ",\"p95\":";
    AppendDouble(&out, p.p95);
    out += ",\"p99\":";
    AppendDouble(&out, p.p99);
    out += ",\"unit\":";
    AppendJsonString(&out, p.unit);
    out.push_back('}');
  }
  out += "},\"contention\":{";
  first = true;
  for (const auto& [lock, row] : contention_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, lock);
    out += ":{\"acquires\":";
    AppendU64(&out, row.acquires);
    out += ",\"contended\":";
    AppendU64(&out, row.contended);
    out += ",\"wait_p95_us\":";
    AppendDouble(&out, row.wait_p95_us);
    out += ",\"wait_p99_us\":";
    AppendDouble(&out, row.wait_p99_us);
    out.push_back('}');
  }
  out.push_back('}');
  if (!cluster_json_.empty()) {
    out += ",\"cluster\":";
    out += cluster_json_;
  }
  if (!profile_json_.empty()) {
    out += ",\"profile\":";
    out += profile_json_;
  }
  out.push_back('}');
  return out;
}

Result<std::string> BenchReport::WriteJsonFile() const {
  const char* dir = std::getenv("SIREP_BENCH_REPORT_DIR");
  std::filesystem::path path =
      (dir != nullptr && *dir != '\0') ? dir : ".";
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  path /= "BENCH_" + name_ + ".json";
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::Internal("cannot open " + path.string() + " for writing");
  }
  file << ToJson() << "\n";
  file.close();
  if (!file) return Status::Internal("write failed: " + path.string());
  return path.string();
}

Result<BenchReport> BenchReport::FromJson(const std::string& json) {
  JsonParser parser(json);
  Result<JsonValue> parsed = parser.Parse();
  SIREP_RETURN_IF_ERROR(parsed.status());
  const JsonValue& root = parsed.value();
  if (root.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("bench report is not a JSON object");
  }
  const JsonValue* version = root.Find("schema_version");
  if (version == nullptr || version->type != JsonValue::Type::kNumber) {
    return Status::InvalidArgument("bench report missing schema_version");
  }
  if (static_cast<int>(version->number) != kBenchSchemaVersion) {
    return Status::InvalidArgument("unsupported bench report schema version");
  }
  const JsonValue* name = root.Find("name");
  if (name == nullptr || name->type != JsonValue::Type::kString) {
    return Status::InvalidArgument("bench report missing name");
  }
  BenchReport report(name->str);
  report.start_ns_ = 0;  // parsed: wall time is a recorded fact
  report.git_sha_.clear();
  report.build_type_.clear();
  report.transport_.clear();
  report.host_.clear();
  report.fast_mode_ = false;

  if (const JsonValue* meta = root.Find("meta"); meta != nullptr) {
    if (const JsonValue* v = meta->Find("git_sha")) {
      report.git_sha_ = v->StringOr("");
    }
    if (const JsonValue* v = meta->Find("build_type")) {
      report.build_type_ = v->StringOr("");
    }
    if (const JsonValue* v = meta->Find("transport")) {
      report.transport_ = v->StringOr("");
    }
    if (const JsonValue* v = meta->Find("host")) {
      report.host_ = v->StringOr("");
    }
    if (const JsonValue* v = meta->Find("seed")) {
      report.seed_ = static_cast<uint64_t>(v->NumberOr(0));
    }
    if (const JsonValue* v = meta->Find("fast_mode")) {
      report.fast_mode_ = v->boolean;
    }
    if (const JsonValue* v = meta->Find("wall_time_s")) {
      report.wall_time_s_ = v->NumberOr(0);
    }
    if (const JsonValue* knobs = meta->Find("knobs");
        knobs != nullptr && knobs->type == JsonValue::Type::kObject) {
      for (const auto& [key, value] : knobs->object) {
        report.knobs_[key] = value.StringOr("");
      }
    }
  }

  if (const JsonValue* metrics = root.Find("metrics");
      metrics != nullptr && metrics->type == JsonValue::Type::kObject) {
    for (const auto& [metric, m] : metrics->object) {
      if (m.type != JsonValue::Type::kObject) {
        return Status::InvalidArgument("malformed metric entry: " + metric);
      }
      ScalarMetric scalar;
      const JsonValue* value = m.Find("value");
      if (value == nullptr || value->type != JsonValue::Type::kNumber) {
        return Status::InvalidArgument("metric missing value: " + metric);
      }
      scalar.value = value->number;
      if (const JsonValue* v = m.Find("unit")) scalar.unit = v->StringOr("");
      if (const JsonValue* v = m.Find("direction")) {
        auto direction = DirectionFromName(v->StringOr(""));
        SIREP_RETURN_IF_ERROR(direction.status());
        scalar.direction = direction.value();
      }
      if (const JsonValue* v = m.Find("tolerance")) {
        scalar.tolerance = v->NumberOr(-1.0);
      }
      report.scalars_[metric] = std::move(scalar);
    }
  }

  if (const JsonValue* percentiles = root.Find("percentiles");
      percentiles != nullptr &&
      percentiles->type == JsonValue::Type::kObject) {
    for (const auto& [metric, p] : percentiles->object) {
      PercentileRow row;
      if (const JsonValue* v = p.Find("count")) {
        row.count = static_cast<uint64_t>(v->NumberOr(0));
      }
      if (const JsonValue* v = p.Find("mean")) row.mean = v->NumberOr(0);
      if (const JsonValue* v = p.Find("p50")) row.p50 = v->NumberOr(0);
      if (const JsonValue* v = p.Find("p95")) row.p95 = v->NumberOr(0);
      if (const JsonValue* v = p.Find("p99")) row.p99 = v->NumberOr(0);
      if (const JsonValue* v = p.Find("unit")) row.unit = v->StringOr("");
      report.percentiles_[metric] = std::move(row);
    }
  }

  if (const JsonValue* contention = root.Find("contention");
      contention != nullptr && contention->type == JsonValue::Type::kObject) {
    for (const auto& [lock, c] : contention->object) {
      ContentionRow row;
      if (const JsonValue* v = c.Find("acquires")) {
        row.acquires = static_cast<uint64_t>(v->NumberOr(0));
      }
      if (const JsonValue* v = c.Find("contended")) {
        row.contended = static_cast<uint64_t>(v->NumberOr(0));
      }
      if (const JsonValue* v = c.Find("wait_p95_us")) {
        row.wait_p95_us = v->NumberOr(0);
      }
      if (const JsonValue* v = c.Find("wait_p99_us")) {
        row.wait_p99_us = v->NumberOr(0);
      }
      report.contention_[lock] = row;
    }
  }

  if (const JsonValue* cluster = root.Find("cluster")) {
    report.cluster_json_ = cluster->raw;
  }
  if (const JsonValue* profile = root.Find("profile")) {
    report.profile_json_ = profile->raw;
  }
  return report;
}

// ---- regression gate ----

CompareResult CompareReports(const BenchReport& baseline,
                             const BenchReport& current,
                             const CompareOptions& options) {
  CompareResult result;
  for (const auto& [metric, base] : baseline.scalars()) {
    if (base.direction == Direction::kInfo) continue;
    CompareResult::Row row;
    row.bench = baseline.name();
    row.metric = metric;
    row.baseline = base.value;
    row.tolerance =
        base.tolerance >= 0 ? base.tolerance : options.default_tolerance;
    const auto it = current.scalars().find(metric);
    if (it == current.scalars().end()) {
      row.regressed = true;
      row.note = "missing in current";
      result.rows.push_back(std::move(row));
      result.regressed = true;
      continue;
    }
    row.current = it->second.value;
    if (base.value == 0) {
      // No relative band exists; a zero baseline gates nothing (it is
      // typically "no aborts observed in a short smoke window").
      row.note = "baseline is zero";
      result.rows.push_back(std::move(row));
      continue;
    }
    row.delta = (row.current - row.baseline) / std::abs(row.baseline);
    if (base.direction == Direction::kHigherIsBetter) {
      row.regressed = row.delta < -row.tolerance;
    } else {
      row.regressed = row.delta > row.tolerance;
    }
    result.regressed = result.regressed || row.regressed;
    result.rows.push_back(std::move(row));
  }
  return result;
}

namespace {

Result<BenchReport> LoadReportFile(const std::filesystem::path& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot read " + path.string());
  std::stringstream buffer;
  buffer << file.rdbuf();
  return BenchReport::FromJson(buffer.str());
}

void PrintCompareRows(const CompareResult& result) {
  for (const auto& row : result.rows) {
    std::printf("%s %-16s %-32s base=%-12.4g cur=%-12.4g delta=%+7.2f%% "
                "tol=%.0f%%%s%s\n",
                row.regressed ? "[REGRESSION]" : "[ OK ]      ",
                row.bench.c_str(), row.metric.c_str(), row.baseline,
                row.current, row.delta * 100.0, row.tolerance * 100.0,
                row.note.empty() ? "" : " # ", row.note.c_str());
  }
}

}  // namespace

int RunBenchCompare(int argc, char** argv) {
  CompareOptions options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      options.default_tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      options.default_tolerance =
          std::strtod(arg.c_str() + strlen("--tolerance="), nullptr);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_compare [--tolerance T] <baseline> <current>\n"
          "  baseline/current: BENCH_*.json files, or directories holding "
          "them\n  exit: 0 pass, 1 regression, 2 usage/IO error\n");
      return 0;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "bench_compare: expected <baseline> <current> "
                 "(files or directories)\n");
    return 2;
  }
  namespace fs = std::filesystem;
  const fs::path baseline_path = positional[0];
  const fs::path current_path = positional[1];

  std::vector<std::pair<fs::path, fs::path>> pairs;
  std::error_code ec;
  if (fs::is_directory(baseline_path, ec)) {
    if (!fs::is_directory(current_path, ec)) {
      std::fprintf(stderr, "bench_compare: %s is not a directory\n",
                   current_path.c_str());
      return 2;
    }
    for (const auto& entry : fs::directory_iterator(baseline_path, ec)) {
      const std::string file = entry.path().filename().string();
      if (file.rfind("BENCH_", 0) == 0 &&
          file.size() > 5 + 5 &&
          file.compare(file.size() - 5, 5, ".json") == 0) {
        pairs.emplace_back(entry.path(), current_path / file);
      }
    }
    if (pairs.empty()) {
      std::fprintf(stderr, "bench_compare: no BENCH_*.json under %s\n",
                   baseline_path.c_str());
      return 2;
    }
  } else {
    pairs.emplace_back(baseline_path, current_path);
  }

  bool regressed = false;
  for (const auto& [base_file, cur_file] : pairs) {
    Result<BenchReport> baseline = LoadReportFile(base_file);
    if (!baseline.ok()) {
      std::fprintf(stderr, "bench_compare: %s: %s\n", base_file.c_str(),
                   baseline.status().message().c_str());
      return 2;
    }
    Result<BenchReport> current = LoadReportFile(cur_file);
    if (!current.ok()) {
      std::printf("[REGRESSION] %-16s artifact missing or unreadable: %s\n",
                  baseline.value().name().c_str(), cur_file.c_str());
      regressed = true;
      continue;
    }
    const CompareResult result =
        CompareReports(baseline.value(), current.value(), options);
    PrintCompareRows(result);
    regressed = regressed || result.regressed;
  }
  std::printf("bench_compare: %s\n",
              regressed ? "REGRESSION detected" : "all metrics within bands");
  return regressed ? 1 : 0;
}

}  // namespace sirep::bench
