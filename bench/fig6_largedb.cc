// Figure 6 reproduction: the "large database" read-intensive workload
// (20 % update transactions of 10 updates, 80 % medium queries) — update
// transaction response time vs load, for 5 and 10 replicas.
//
// Paper shape: highly I/O bound; a 5-replica system handles ~20 tps under
// 200 ms, a 10-replica system ~35 tps — adding replicas buys throughput
// because the query load distributes. (The centralized system manages
// only ~4 tps and is omitted from the figure, as in the paper.)

#include "bench_common.h"
#include "workload/simple_workloads.h"

using namespace sirep;
using bench::Fmt;

namespace {

cluster::CostModel LargeDbCost() {
  cluster::CostModel cost;
  // "Medium" queries dominate: a large select service time models the
  // disk-bound scans of the 1.1 GB database (the paper's centralized
  // system managed only ~4 tps on this workload).
  cost.select_service = std::chrono::milliseconds(200);
  cost.update_service = std::chrono::milliseconds(8);
  cost.apply_fraction = 0.2;
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("fig6_largedb", &argc, argv);
  bench::BenchReport report("fig6_largedb");
  const std::vector<double> loads =
      bench::FastMode() ? std::vector<double>{10, 25, 40}
                        : std::vector<double>{5, 10, 15, 20, 25, 30, 35, 40,
                                              45};

  bench::PrintTableHeader(
      "Figure 6: large DB, update response time (ms) vs load (tps)",
      {"load_tps", "replicas", "update_ms", "readonly_ms", "achieved_tps"});

  for (size_t replicas : {size_t{5}, size_t{10}}) {
    cluster::ClusterOptions copt;
    copt.num_replicas = replicas;
    copt.workers_per_replica = 1;
    copt.cost = LargeDbCost();
    copt.gcs.multicast_delay = std::chrono::milliseconds(1);
    cluster::Cluster cluster(copt);
    if (!cluster.Start().ok()) return 1;

    workload::LargeDbWorkload::Options wopt;
    wopt.rows_per_table = bench::FastMode() ? 200 : 1000;
    workload::LargeDbWorkload workload(wopt);
    if (!cluster
             .LoadEverywhere(
                 [&](engine::Database* db) { return workload.Load(db); })
             .ok()) {
      return 1;
    }
    cluster.SetEmulationEnabled(true);

    for (double load : loads) {
      auto options = bench::BaseLoadOptions(load, /*clients=*/40);
      auto m = bench::RunOnCluster(cluster, workload, options);
      bench::PrintTableRow({Fmt(load, 0), std::to_string(replicas),
                            Fmt(m.update_ms.Mean()),
                            Fmt(m.readonly_ms.Mean()),
                            Fmt(m.achieved_tps)});
      cluster.Quiesce();
      const std::string point =
          std::to_string(replicas) + "replicas@" + Fmt(load, 0);
      report.AddScalar(point + ".tps", m.achieved_tps, "tps",
                       bench::Direction::kHigherIsBetter);
      report.AddScalar(point + ".update_ms", m.update_ms.Mean(), "ms",
                       bench::Direction::kLowerIsBetter);
      if (load == loads.back()) {
        report.AddPercentiles(std::to_string(replicas) +
                                  "replicas.update_ms",
                              bench::SamplePercentiles(m.update_ms), "ms");
      }
    }
  }
  report.SetKnob("clients", uint64_t{40});
  bench::FinishReport(report);
  return 0;
}
