// Validation microbenchmarks + granularity ablation.
//
//  * BM_Validate/{n}: cost of one middleware validation (ConflictsAfter)
//    against a ws_list backlog of n writesets — the paper's "validation
//    is an atomic phase" is only viable because this is microseconds.
//  * The ablation table contrasts conflict probability at tuple vs table
//    granularity for the update-intensive workload: the design reason
//    SI-Rep validates tuples while the baseline [20] locks tables.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "common/prng.h"
#include "middleware/ws_list.h"
#include "workload/simple_workloads.h"

using namespace sirep;
using sql::Value;

namespace {

std::shared_ptr<const storage::WriteSet> RandomWs(Prng& prng,
                                                  int64_t tables,
                                                  int64_t rows,
                                                  int64_t entries) {
  auto ws = std::make_shared<storage::WriteSet>();
  for (int64_t i = 0; i < entries; ++i) {
    const int64_t t = static_cast<int64_t>(prng.Uniform(tables));
    const int64_t k = static_cast<int64_t>(prng.Uniform(rows));
    ws->Record({"ut" + std::to_string(t), sql::Key{{Value::Int(k)}}},
               storage::WriteOp::kUpdate, {Value::Int(k)});
  }
  return ws;
}

void BM_Validate(benchmark::State& state) {
  const int64_t backlog = state.range(0);
  Prng prng(3);
  middleware::WsList list(1 << 20);
  for (int64_t tid = 1; tid <= backlog; ++tid) {
    list.Append(static_cast<uint64_t>(tid), RandomWs(prng, 10, 100, 10));
  }
  auto probe = RandomWs(prng, 10, 100, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.ConflictsAfter(0, *probe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Validate)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_ValidateRecentOnly(benchmark::State& state) {
  // The realistic case: cert lags by only a handful of tids.
  const int64_t backlog = state.range(0);
  Prng prng(3);
  middleware::WsList list(1 << 20);
  for (int64_t tid = 1; tid <= backlog; ++tid) {
    list.Append(static_cast<uint64_t>(tid), RandomWs(prng, 10, 100, 10));
  }
  auto probe = RandomWs(prng, 10, 100, 10);
  const uint64_t cert = static_cast<uint64_t>(backlog) - 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.ConflictsAfter(cert, *probe));
  }
}
BENCHMARK(BM_ValidateRecentOnly)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("validation_micro", &argc, argv);
  bench::BenchReport report("validation_micro");
  // Ablation: tuple- vs table-granularity conflict rates.
  Prng prng(bench::BenchSeed() * 2 + 3);
  constexpr int kPairs = 20000;
  int tuple_conflicts = 0;
  int table_conflicts = 0;
  for (int i = 0; i < kPairs; ++i) {
    auto a = RandomWs(prng, 10, 100, 10);
    auto b = RandomWs(prng, 10, 100, 10);
    if (a->Intersects(*b)) ++tuple_conflicts;
    auto ta = a->Tables();
    auto tb = b->Tables();
    bool table_hit = false;
    for (const auto& x : ta) {
      for (const auto& y : tb) {
        if (x == y) table_hit = true;
      }
    }
    if (table_hit) ++table_conflicts;
  }
  std::printf(
      "\nGranularity ablation (update-intensive: 10 updates over 10 tables "
      "x 100 rows):\n"
      "  tuple-granularity conflict rate: %5.2f%%  (SI-Rep validation)\n"
      "  table-granularity conflict rate: %5.2f%%  (baseline [20] locks)\n"
      "  => table locking serializes ~%.0fx more transaction pairs\n\n",
      100.0 * tuple_conflicts / kPairs, 100.0 * table_conflicts / kPairs,
      static_cast<double>(table_conflicts) /
          std::max(1, tuple_conflicts));

  report.AddScalar("tuple_conflict_pct", 100.0 * tuple_conflicts / kPairs,
                   "%", bench::Direction::kInfo);
  report.AddScalar("table_conflict_pct", 100.0 * table_conflicts / kPairs,
                   "%", bench::Direction::kInfo);

  // Timed validation cost (the atomic-phase viability claim): one
  // ConflictsAfter probe against a 512-writeset backlog.
  {
    Prng vprng(3);
    middleware::WsList list(1 << 20);
    for (int64_t tid = 1; tid <= 512; ++tid) {
      list.Append(static_cast<uint64_t>(tid), RandomWs(vprng, 10, 100, 10));
    }
    auto probe = RandomWs(vprng, 10, 100, 10);
    const int kIters = bench::FastMode() ? 2000 : 20000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(list.ConflictsAfter(0, *probe));
    }
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count() /
                      kIters;
    std::printf("validate vs 512-ws backlog: %.2f us/validation\n\n", us);
    report.AddScalar("validate_backlog512.us", us, "us",
                     bench::Direction::kLowerIsBetter);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::FinishReport(report);
  return 0;
}
