// Validation microbenchmarks + granularity ablation.
//
//  * BM_Validate/{n}: cost of one middleware validation (ConflictsAfter)
//    against a ws_list backlog of n writesets — the paper's "validation
//    is an atomic phase" is only viable because this is microseconds.
//  * The ablation table contrasts conflict probability at tuple vs table
//    granularity for the update-intensive workload: the design reason
//    SI-Rep validates tuples while the baseline [20] locks tables.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/prng.h"
#include "middleware/ws_list.h"
#include "workload/simple_workloads.h"

using namespace sirep;
using sql::Value;

namespace {

std::shared_ptr<const storage::WriteSet> RandomWs(Prng& prng,
                                                  int64_t tables,
                                                  int64_t rows,
                                                  int64_t entries) {
  auto ws = std::make_shared<storage::WriteSet>();
  for (int64_t i = 0; i < entries; ++i) {
    const int64_t t = static_cast<int64_t>(prng.Uniform(tables));
    const int64_t k = static_cast<int64_t>(prng.Uniform(rows));
    ws->Record({"ut" + std::to_string(t), sql::Key{{Value::Int(k)}}},
               storage::WriteOp::kUpdate, {Value::Int(k)});
  }
  return ws;
}

void BM_Validate(benchmark::State& state) {
  const int64_t backlog = state.range(0);
  Prng prng(3);
  middleware::WsList list(1 << 20);
  for (int64_t tid = 1; tid <= backlog; ++tid) {
    list.Append(static_cast<uint64_t>(tid), RandomWs(prng, 10, 100, 10));
  }
  auto probe = RandomWs(prng, 10, 100, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.ConflictsAfter(0, *probe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Validate)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_ValidateRecentOnly(benchmark::State& state) {
  // The realistic case: cert lags by only a handful of tids.
  const int64_t backlog = state.range(0);
  Prng prng(3);
  middleware::WsList list(1 << 20);
  for (int64_t tid = 1; tid <= backlog; ++tid) {
    list.Append(static_cast<uint64_t>(tid), RandomWs(prng, 10, 100, 10));
  }
  auto probe = RandomWs(prng, 10, 100, 10);
  const uint64_t cert = static_cast<uint64_t>(backlog) - 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.ConflictsAfter(cert, *probe));
  }
}
BENCHMARK(BM_ValidateRecentOnly)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  // Ablation: tuple- vs table-granularity conflict rates.
  Prng prng(17);
  constexpr int kPairs = 20000;
  int tuple_conflicts = 0;
  int table_conflicts = 0;
  for (int i = 0; i < kPairs; ++i) {
    auto a = RandomWs(prng, 10, 100, 10);
    auto b = RandomWs(prng, 10, 100, 10);
    if (a->Intersects(*b)) ++tuple_conflicts;
    auto ta = a->Tables();
    auto tb = b->Tables();
    bool table_hit = false;
    for (const auto& x : ta) {
      for (const auto& y : tb) {
        if (x == y) table_hit = true;
      }
    }
    if (table_hit) ++table_conflicts;
  }
  std::printf(
      "\nGranularity ablation (update-intensive: 10 updates over 10 tables "
      "x 100 rows):\n"
      "  tuple-granularity conflict rate: %5.2f%%  (SI-Rep validation)\n"
      "  table-granularity conflict rate: %5.2f%%  (baseline [20] locks)\n"
      "  => table locking serializes ~%.0fx more transaction pairs\n\n",
      100.0 * tuple_conflicts / kPairs, 100.0 * table_conflicts / kPairs,
      static_cast<double>(table_conflicts) /
          std::max(1, tuple_conflicts));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
