// Ablation: sensitivity of SI-Rep's update response time to the group
// communication latency. The paper's premise (§1, §5.2) is that hybrid
// eager/lazy replication is viable because "communication is fast" —
// Spread's uniform reliable multicast stays under ~3 ms in a LAN. This
// sweep shows how much of the commit path the multicast contributes and
// what a slow interconnect (e.g. WAN-ish 10-25 ms) would do to the
// protocol: every update commit pays one in-order delivery before it can
// answer the client, so the delay adds roughly 1:1 to update latency but
// barely moves throughput (validation stays pipelined).

#include "bench_common.h"
#include "workload/simple_workloads.h"

using namespace sirep;
using bench::Fmt;

int main(int argc, char** argv) {
  bench::InitBench("ablation_gcs_delay", &argc, argv);
  bench::BenchReport report("ablation_gcs_delay");
  const std::vector<int> delays_ms =
      bench::FastMode() ? std::vector<int>{0, 3, 10}
                        : std::vector<int>{0, 1, 3, 10, 25};
  const double load = 60;

  bench::PrintTableHeader(
      "Ablation: GCS multicast delay vs response time "
      "(update-intensive, 5 replicas, 60 tps)",
      {"gcs_delay_ms", "update_ms", "achieved_tps", "abort_%"});

  for (int delay : delays_ms) {
    cluster::ClusterOptions copt;
    copt.num_replicas = 5;
    copt.workers_per_replica = 2;
    copt.cost.update_service = std::chrono::milliseconds(3);
    copt.cost.select_service = std::chrono::milliseconds(3);
    copt.gcs.multicast_delay = std::chrono::milliseconds(delay);
    cluster::Cluster cluster(copt);
    if (!cluster.Start().ok()) return 1;
    workload::UpdateIntensiveWorkload::Options wopt;
    wopt.rows_per_table = 1000;
    workload::UpdateIntensiveWorkload workload(wopt);
    if (!cluster
             .LoadEverywhere(
                 [&](engine::Database* db) { return workload.Load(db); })
             .ok()) {
      return 1;
    }
    cluster.SetEmulationEnabled(true);

    auto options = bench::BaseLoadOptions(load, 40);
    auto m = bench::RunOnCluster(cluster, workload, options);
    bench::PrintTableRow({Fmt(delay, 0), Fmt(m.update_ms.Mean()),
                          Fmt(m.achieved_tps),
                          Fmt(100.0 * m.abort_rate(), 2)});
    cluster.Quiesce();
    const std::string point = "delay" + std::to_string(delay) + "ms";
    report.AddScalar(point + ".update_ms", m.update_ms.Mean(), "ms",
                     bench::Direction::kLowerIsBetter);
    report.AddScalar(point + ".tps", m.achieved_tps, "tps",
                     bench::Direction::kHigherIsBetter);
  }
  report.SetKnob("load_tps", uint64_t{60});
  bench::FinishReport(report);
  return 0;
}
