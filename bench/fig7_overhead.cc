// Figure 7 reproduction: update-intensive stress workload (100 % update
// transactions, 10 updates each over 3 of 10 small tables), 5 replicas.
// Compares:
//   * SRCA-Rep  (full 1-copy-SI, start/commit hole synchronization)
//   * SRCA-Opt  (adjustments 1-2 only: no hole synchronization)
//   * centralized (single node, no replication)
//   * protocol of [20] (table-level locks, pre-declared transactions)
//
// Paper shape: SRCA-Rep ≈ SRCA-Opt at low load, SRCA-Opt a bit better at
// high load (no synchronization stalls); the centralized server performs
// best at very low load but saturates first *despite* the workload being
// 100 % updates — remote replicas only apply writesets (~20 % of the
// cost), so replication still relieves each node; the table-lock protocol
// matches SI-Rep's response time at low load but saturates earlier due to
// table-granularity lock contention.

#include <cstdlib>

#include "bench_common.h"
#include "middleware/table_lock_baseline.h"
#include "workload/simple_workloads.h"

using namespace sirep;
using bench::Fmt;

namespace {

cluster::CostModel StressCost() {
  cluster::CostModel cost;
  cost.update_service = std::chrono::milliseconds(3);
  cost.select_service = std::chrono::milliseconds(3);
  cost.apply_fraction = 0.2;
  return cost;
}

workload::UpdateIntensiveWorkload::Options StressOptions() {
  workload::UpdateIntensiveWorkload::Options wopt;
  wopt.rows_per_table = 1000;
  return wopt;
}

void RunReplicatedSeries(const std::vector<double>& loads,
                         middleware::ReplicaMode mode, const char* label,
                         bench::BenchReport& report) {
  cluster::ClusterOptions copt;
  copt.num_replicas = 5;
  copt.workers_per_replica = 2;
  copt.cost = StressCost();
  copt.replica.mode = mode;
  copt.gcs.multicast_delay = std::chrono::milliseconds(1);
  cluster::Cluster cluster(copt);
  if (!cluster.Start().ok()) return;
  workload::UpdateIntensiveWorkload workload(StressOptions());
  if (!cluster
           .LoadEverywhere(
               [&](engine::Database* db) { return workload.Load(db); })
           .ok()) {
    return;
  }
  cluster.SetEmulationEnabled(true);
  for (double load : loads) {
    auto options = bench::BaseLoadOptions(load, /*clients=*/40);
    auto m = bench::RunOnCluster(cluster, workload, options);
    bench::PrintTableRow({Fmt(load, 0), label, Fmt(m.update_ms.Mean()),
                          Fmt(m.achieved_tps),
                          Fmt(100.0 * m.abort_rate(), 2)});
    cluster.Quiesce();
    const std::string point = std::string(label) + "@" + Fmt(load, 0);
    report.AddScalar(point + ".tps", m.achieved_tps, "tps",
                     bench::Direction::kHigherIsBetter);
    report.AddScalar(point + ".update_ms", m.update_ms.Mean(), "ms",
                     bench::Direction::kLowerIsBetter);
    report.AddScalar(point + ".abort_pct", 100.0 * m.abort_rate(), "%",
                     bench::Direction::kInfo);
    if (load == loads.back()) {
      report.AddPercentiles(std::string(label) + ".update_ms",
                            bench::SamplePercentiles(m.update_ms), "ms");
    }
  }
  // Where the paper estimates middleware overhead (Fig. 7 discussion), we
  // can measure it: per-stage commit-path latencies from the registry.
  std::printf("\n[%s] %s\n", label,
              cluster::Cluster::FormatCommitBreakdown(cluster.DumpMetrics())
                  .c_str());
  // The flagship config also feeds the artifact's cluster/contention
  // sections, via the same /metrics.json endpoints monitoring scrapes.
  if (mode == middleware::ReplicaMode::kSrcaRep) {
    if (cluster.StartMetricsEndpoints().ok()) {
      report.AttachClusterScrape(cluster);
      cluster.StopMetricsEndpoints();
    } else {
      report.AttachClusterMetrics(cluster.DumpMetrics());
    }
  }
}

void RunBaselineSeries(const std::vector<double>& loads) {
  // Wire the [20] protocol: 5 (node, table-lock middleware) pairs.
  gcs::GroupOptions gopt;
  gopt.multicast_delay = std::chrono::milliseconds(1);
  gcs::Group group(gopt);
  std::vector<std::unique_ptr<cluster::ReplicaNode>> nodes;
  std::vector<std::unique_ptr<middleware::TableLockReplica>> replicas;
  workload::UpdateIntensiveWorkload workload(StressOptions());
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<cluster::ReplicaNode>(
        "tl" + std::to_string(i), /*workers=*/2, StressCost()));
    if (!workload.Load(nodes.back()->db()).ok()) return;
    replicas.push_back(std::make_unique<middleware::TableLockReplica>(
        nodes.back()->db(), &group));
    if (!replicas.back()->Start().ok()) return;
  }
  for (auto& node : nodes) node->SetEmulationEnabled(true);

  for (double load : loads) {
    auto options = bench::BaseLoadOptions(load, /*clients=*/40);
    auto m = workload::RunLoad(
        workload,
        [&](size_t i) {
          return std::make_unique<workload::BaselineExecutor>(
              replicas[i % replicas.size()].get());
        },
        options);
    bench::PrintTableRow({Fmt(load, 0), "protocol-[20]",
                          Fmt(m.update_ms.Mean()), Fmt(m.achieved_tps),
                          Fmt(100.0 * m.abort_rate(), 2)});
  }
  for (auto& r : replicas) r->Shutdown();
  group.Shutdown();
}

/// Remote-apply pipeline sweep: the same stress workload at one fixed
/// (high) load, with the applier pool pinned to 1/2/4/8 threads via
/// SIREP_APPLY_THREADS. The observable is remote-apply lag
/// (delivery -> committed at the remote replica): with a serial applier
/// the ~20 %-of-execution apply cost times the fan-in from 4 peers
/// saturates one worker and lag balloons; the sharded pipeline spreads
/// non-conflicting applies over the pool, so p95 should fall steeply
/// from 1 to 4 threads and flatten once apply stops being the
/// bottleneck. apply_par_mean is the mean of the apply-parallelism
/// stage histogram (concurrent appliers observed at apply start).
void RunApplyThreadSweep(double load, bench::BenchReport& report) {
  bench::PrintTableHeader(
      "Remote-apply pipeline sweep: srca-rep, 5 replicas, load " +
          Fmt(load, 0) + " tps",
      {"apply_threads", "update_ms", "achieved_tps", "lag_p50_ms",
       "lag_p95_ms", "lag_p99_ms", "apply_par_mean"});
  for (int threads : {1, 2, 4, 8}) {
    ::setenv("SIREP_APPLY_THREADS", std::to_string(threads).c_str(), 1);
    cluster::ClusterOptions copt;
    copt.num_replicas = 5;
    // Enough emulated node capacity that the pipeline width, not the
    // node's worker semaphore, is the variable under test.
    copt.workers_per_replica = 8;
    copt.cost = StressCost();
    copt.replica.mode = middleware::ReplicaMode::kSrcaRep;
    copt.gcs.multicast_delay = std::chrono::milliseconds(1);
    cluster::Cluster cluster(copt);
    if (!cluster.Start().ok()) return;
    workload::UpdateIntensiveWorkload workload(StressOptions());
    if (!cluster
             .LoadEverywhere(
                 [&](engine::Database* db) { return workload.Load(db); })
             .ok()) {
      return;
    }
    cluster.SetEmulationEnabled(true);
    auto options = bench::BaseLoadOptions(load, /*clients=*/40);
    auto m = bench::RunOnCluster(cluster, workload, options);
    cluster.Quiesce();
    const auto snap = cluster.DumpMetrics();
    const auto lag = snap.Percentiles("mw.commit.stage.remote_apply_lag_us");
    const auto par = snap.Percentiles("mw.commit.stage.apply_parallelism");
    bench::PrintTableRow(
        {Fmt(threads, 0), Fmt(m.update_ms.Mean()), Fmt(m.achieved_tps),
         Fmt(lag.p50 / 1000.0, 2), Fmt(lag.p95 / 1000.0, 2),
         Fmt(lag.p99 / 1000.0, 2), Fmt(par.mean, 2)});
    const std::string point =
        "apply_sweep@" + std::to_string(threads) + "thr";
    report.AddScalar(point + ".tps", m.achieved_tps, "tps",
                     bench::Direction::kHigherIsBetter);
    report.AddScalar(point + ".lag_p95_ms", lag.p95 / 1000.0, "ms",
                     bench::Direction::kInfo);
    report.AddPercentiles(point + ".remote_apply_lag_us", lag, "us");
  }
  ::unsetenv("SIREP_APPLY_THREADS");
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("fig7_overhead", &argc, argv);
  bench::BenchReport report("fig7_overhead");
  const std::vector<double> loads =
      bench::FastMode() ? std::vector<double>{50, 125, 200}
                        : std::vector<double>{25, 50, 75, 100, 125, 150, 175,
                                              200};

  bench::PrintTableHeader(
      "Figure 7: update-intensive workload, 5 replicas — response time "
      "(ms) vs load (tps)",
      {"load_tps", "system", "update_ms", "achieved_tps", "abort_%"});

  // centralized single node
  {
    workload::UpdateIntensiveWorkload workload(StressOptions());
    cluster::ReplicaNode node("central", /*workers=*/2, StressCost());
    if (!workload.Load(node.db()).ok()) return 1;
    node.SetEmulationEnabled(true);
    for (double load : loads) {
      auto options = bench::BaseLoadOptions(load, /*clients=*/40);
      auto m = bench::RunCentralized(node, workload, options);
      bench::PrintTableRow({Fmt(load, 0), "centralized",
                            Fmt(m.update_ms.Mean()), Fmt(m.achieved_tps),
                            Fmt(100.0 * m.abort_rate(), 2)});
      const std::string point = "centralized@" + Fmt(load, 0);
      report.AddScalar(point + ".tps", m.achieved_tps, "tps",
                       bench::Direction::kHigherIsBetter);
      report.AddScalar(point + ".update_ms", m.update_ms.Mean(), "ms",
                       bench::Direction::kLowerIsBetter);
    }
  }

  RunReplicatedSeries(loads, middleware::ReplicaMode::kSrcaRep, "srca-rep",
                      report);
  RunReplicatedSeries(loads, middleware::ReplicaMode::kSrcaOpt, "srca-opt",
                      report);
  RunBaselineSeries(loads);
  RunApplyThreadSweep(loads.back(), report);
  report.SetKnob("replicas", uint64_t{5});
  report.SetKnob("clients", uint64_t{40});
  bench::FinishReport(report);
  return 0;
}
