// Partial replication scale-out: aggregate *write* throughput vs
// replica count at replication factor 1, 2, and full.
//
// Under full replication every replica applies every writeset, so write
// capacity is pinned at a single machine's apply bandwidth no matter
// how many replicas join — the classic update-everywhere wall. With the
// partition map at rf < n, a writeset is applied only by its partition
// group's rf holders while everyone else certifies against the digest
// header (no apply work), so aggregate write throughput grows ~n/rf.
//
// Clients honor the routing contract: each is pinned to one replica and
// writes only keys whose partition group that replica holds (disjoint
// per-client key pools, so certification aborts don't pollute the
// scaling signal). Cost emulation is on — 2 ms per update statement and
// an equally priced remote apply against 1 worker per replica — so the
// numbers reflect the modeled machine capacity, not the test machine.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace sirep;
using bench::Fmt;

namespace {

constexpr size_t kPartitions = 16;
constexpr size_t kClientsPerReplica = 2;
constexpr size_t kKeysPerClient = 4;

struct PointResult {
  double tps = -1;
  SampleStats commit_ms;  // per-transaction commit-path latency
};

PointResult RunPoint(size_t n, size_t rf, std::chrono::milliseconds window,
                     bench::BenchReport* scrape_into) {
  PointResult result;
  cluster::ClusterOptions copt;
  copt.num_replicas = n;
  copt.workers_per_replica = 1;
  copt.partitions = kPartitions;
  copt.replication_factor = rf;  // 0 = full replication
  copt.cost.update_service = std::chrono::milliseconds(2);
  copt.cost.select_service = std::chrono::milliseconds(0);
  copt.cost.apply_fraction = 1.0;
  cluster::Cluster cluster(copt);
  if (!cluster.Start().ok()) return result;
  if (!cluster
           .ExecuteEverywhere(
               "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
           .ok()) {
    return result;
  }

  // Disjoint key pools, each key held by its client's replica.
  const auto& map = cluster.partition_map();
  std::vector<std::vector<int64_t>> pools(n * kClientsPerReplica);
  int64_t probe = 0;
  for (size_t slot = 0; slot < n; ++slot) {
    for (size_t c = 0; c < kClientsPerReplica; ++c) {
      auto& pool = pools[slot * kClientsPerReplica + c];
      while (pool.size() < kKeysPerClient) {
        const int64_t k = probe++;
        if (map != nullptr &&
            !map->Holds(slot, map->PartitionOf(
                                  {"kv", sql::Key{{sql::Value::Int(k)}}}))) {
          continue;
        }
        pool.push_back(k);
        if (!cluster
                 .ExecuteEverywhere("INSERT INTO kv VALUES (?, 0)",
                                    {sql::Value::Int(k)})
                 .ok()) {
          return result;
        }
      }
    }
  }
  cluster.SetEmulationEnabled(true);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::vector<SampleStats> commit_ms(n * kClientsPerReplica);
  std::vector<std::thread> clients;
  for (size_t slot = 0; slot < n; ++slot) {
    for (size_t c = 0; c < kClientsPerReplica; ++c) {
      clients.emplace_back([&, slot, c] {
        SampleStats& latency = commit_ms[slot * kClientsPerReplica + c];
        middleware::SrcaRepReplica* mw = cluster.replica(slot);
        const auto& pool = pools[slot * kClientsPerReplica + c];
        size_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const int64_t k = pool[i++ % pool.size()];
          auto txn = mw->BeginTxn();
          if (!txn.ok()) continue;
          auto handle = std::move(txn).value();
          if (!mw->Execute(handle, "UPDATE kv SET v = v + 1 WHERE k = " +
                                       std::to_string(k))
                   .ok()) {
            mw->RollbackTxn(handle);
            continue;
          }
          const auto t0 = std::chrono::steady_clock::now();
          if (mw->CommitTxn(handle).ok()) {
            committed.fetch_add(1, std::memory_order_relaxed);
            latency.Add(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
          }
        }
      });
    }
  }
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(window);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  cluster.Quiesce();
  // The flagship configuration also feeds the artifact's cluster and
  // contention sections, scraped over the same /metrics.json endpoints
  // monitoring would hit.
  if (scrape_into != nullptr) {
    if (cluster.StartMetricsEndpoints().ok()) {
      scrape_into->AttachClusterScrape(cluster);
      cluster.StopMetricsEndpoints();
    } else {
      scrape_into->AttachClusterMetrics(cluster.DumpMetrics());
    }
  }
  for (const SampleStats& s : commit_ms) result.commit_ms.Merge(s);
  result.tps = static_cast<double>(committed.load()) / secs;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("fig_partial", &argc, argv);
  bench::BenchReport report("fig_partial");
  const auto window = bench::FastMode() ? std::chrono::milliseconds(250)
                                        : std::chrono::milliseconds(1500);
  const std::vector<size_t> sweep = bench::FastMode()
                                        ? std::vector<size_t>{2, 4}
                                        : std::vector<size_t>{2, 4, 6, 8};

  bench::PrintTableHeader(
      "Partial replication: aggregate write throughput (tps) vs replicas",
      {"replicas", "rf", "partitions", "write_tps"});

  for (size_t rf : {size_t{1}, size_t{2}, size_t{0}}) {
    for (size_t n : sweep) {
      const std::string rf_label = rf == 0 ? "full" : std::to_string(rf);
      // Scrape the widest rf=1 cluster (the scale-out headline config).
      const bool flagship = rf == 1 && n == sweep.back();
      const PointResult r =
          RunPoint(n, rf, window, flagship ? &report : nullptr);
      if (r.tps < 0) return 1;
      bench::PrintTableRow({std::to_string(n), rf_label,
                            std::to_string(kPartitions), Fmt(r.tps, 0)});
      const std::string point =
          "rf" + rf_label + "@" + std::to_string(n) + "replicas";
      report.AddScalar(point + ".write_tps", r.tps, "tps",
                       bench::Direction::kHigherIsBetter);
      if (flagship) {
        report.AddPercentiles(point + ".commit_ms",
                              bench::SamplePercentiles(r.commit_ms), "ms");
      }
    }
  }
  report.SetKnob("partitions", uint64_t{kPartitions});
  report.SetKnob("clients_per_replica", uint64_t{kClientsPerReplica});
  bench::FinishReport(report);
  return 0;
}
