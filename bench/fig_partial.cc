// Partial replication scale-out: aggregate *write* throughput vs
// replica count at replication factor 1, 2, and full.
//
// Under full replication every replica applies every writeset, so write
// capacity is pinned at a single machine's apply bandwidth no matter
// how many replicas join — the classic update-everywhere wall. With the
// partition map at rf < n, a writeset is applied only by its partition
// group's rf holders while everyone else certifies against the digest
// header (no apply work), so aggregate write throughput grows ~n/rf.
//
// Clients honor the routing contract: each is pinned to one replica and
// writes only keys whose partition group that replica holds (disjoint
// per-client key pools, so certification aborts don't pollute the
// scaling signal). Cost emulation is on — 2 ms per update statement and
// an equally priced remote apply against 1 worker per replica — so the
// numbers reflect the modeled machine capacity, not the test machine.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace sirep;
using bench::Fmt;

namespace {

constexpr size_t kPartitions = 16;
constexpr size_t kClientsPerReplica = 2;
constexpr size_t kKeysPerClient = 4;

double RunPoint(size_t n, size_t rf, std::chrono::milliseconds window) {
  cluster::ClusterOptions copt;
  copt.num_replicas = n;
  copt.workers_per_replica = 1;
  copt.partitions = kPartitions;
  copt.replication_factor = rf;  // 0 = full replication
  copt.cost.update_service = std::chrono::milliseconds(2);
  copt.cost.select_service = std::chrono::milliseconds(0);
  copt.cost.apply_fraction = 1.0;
  cluster::Cluster cluster(copt);
  if (!cluster.Start().ok()) return -1;
  if (!cluster
           .ExecuteEverywhere(
               "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
           .ok()) {
    return -1;
  }

  // Disjoint key pools, each key held by its client's replica.
  const auto& map = cluster.partition_map();
  std::vector<std::vector<int64_t>> pools(n * kClientsPerReplica);
  int64_t probe = 0;
  for (size_t slot = 0; slot < n; ++slot) {
    for (size_t c = 0; c < kClientsPerReplica; ++c) {
      auto& pool = pools[slot * kClientsPerReplica + c];
      while (pool.size() < kKeysPerClient) {
        const int64_t k = probe++;
        if (map != nullptr &&
            !map->Holds(slot, map->PartitionOf(
                                  {"kv", sql::Key{{sql::Value::Int(k)}}}))) {
          continue;
        }
        pool.push_back(k);
        if (!cluster
                 .ExecuteEverywhere("INSERT INTO kv VALUES (?, 0)",
                                    {sql::Value::Int(k)})
                 .ok()) {
          return -1;
        }
      }
    }
  }
  cluster.SetEmulationEnabled(true);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> clients;
  for (size_t slot = 0; slot < n; ++slot) {
    for (size_t c = 0; c < kClientsPerReplica; ++c) {
      clients.emplace_back([&, slot, c] {
        middleware::SrcaRepReplica* mw = cluster.replica(slot);
        const auto& pool = pools[slot * kClientsPerReplica + c];
        size_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const int64_t k = pool[i++ % pool.size()];
          auto txn = mw->BeginTxn();
          if (!txn.ok()) continue;
          auto handle = std::move(txn).value();
          if (!mw->Execute(handle, "UPDATE kv SET v = v + 1 WHERE k = " +
                                       std::to_string(k))
                   .ok()) {
            mw->RollbackTxn(handle);
            continue;
          }
          if (mw->CommitTxn(handle).ok()) {
            committed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(window);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  cluster.Quiesce();
  return static_cast<double>(committed.load()) / secs;
}

}  // namespace

int main() {
  const auto window = bench::FastMode() ? std::chrono::milliseconds(250)
                                        : std::chrono::milliseconds(1500);
  const std::vector<size_t> sweep = bench::FastMode()
                                        ? std::vector<size_t>{2, 4}
                                        : std::vector<size_t>{2, 4, 6, 8};

  bench::PrintTableHeader(
      "Partial replication: aggregate write throughput (tps) vs replicas",
      {"replicas", "rf", "partitions", "write_tps"});

  for (size_t rf : {size_t{1}, size_t{2}, size_t{0}}) {
    for (size_t n : sweep) {
      const double tps = RunPoint(n, rf, window);
      if (tps < 0) return 1;
      bench::PrintTableRow({std::to_string(n),
                            rf == 0 ? "full" : std::to_string(rf),
                            std::to_string(kPartitions), Fmt(tps, 0)});
    }
  }
  return 0;
}
