file(REMOVE_RECURSE
  "libsirep_storage.a"
)
