
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/lock_manager.cc" "src/storage/CMakeFiles/sirep_storage.dir/lock_manager.cc.o" "gcc" "src/storage/CMakeFiles/sirep_storage.dir/lock_manager.cc.o.d"
  "/root/repo/src/storage/mvcc_table.cc" "src/storage/CMakeFiles/sirep_storage.dir/mvcc_table.cc.o" "gcc" "src/storage/CMakeFiles/sirep_storage.dir/mvcc_table.cc.o.d"
  "/root/repo/src/storage/storage_engine.cc" "src/storage/CMakeFiles/sirep_storage.dir/storage_engine.cc.o" "gcc" "src/storage/CMakeFiles/sirep_storage.dir/storage_engine.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/storage/CMakeFiles/sirep_storage.dir/wal.cc.o" "gcc" "src/storage/CMakeFiles/sirep_storage.dir/wal.cc.o.d"
  "/root/repo/src/storage/write_set.cc" "src/storage/CMakeFiles/sirep_storage.dir/write_set.cc.o" "gcc" "src/storage/CMakeFiles/sirep_storage.dir/write_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/sirep_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sirep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
