# Empty compiler generated dependencies file for sirep_storage.
# This may be replaced when dependencies are built.
