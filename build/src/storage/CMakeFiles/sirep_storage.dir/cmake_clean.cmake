file(REMOVE_RECURSE
  "CMakeFiles/sirep_storage.dir/lock_manager.cc.o"
  "CMakeFiles/sirep_storage.dir/lock_manager.cc.o.d"
  "CMakeFiles/sirep_storage.dir/mvcc_table.cc.o"
  "CMakeFiles/sirep_storage.dir/mvcc_table.cc.o.d"
  "CMakeFiles/sirep_storage.dir/storage_engine.cc.o"
  "CMakeFiles/sirep_storage.dir/storage_engine.cc.o.d"
  "CMakeFiles/sirep_storage.dir/wal.cc.o"
  "CMakeFiles/sirep_storage.dir/wal.cc.o.d"
  "CMakeFiles/sirep_storage.dir/write_set.cc.o"
  "CMakeFiles/sirep_storage.dir/write_set.cc.o.d"
  "libsirep_storage.a"
  "libsirep_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirep_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
