file(REMOVE_RECURSE
  "libsirep_sql.a"
)
