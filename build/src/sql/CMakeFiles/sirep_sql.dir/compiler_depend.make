# Empty compiler generated dependencies file for sirep_sql.
# This may be replaced when dependencies are built.
