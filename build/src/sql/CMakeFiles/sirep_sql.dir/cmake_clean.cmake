file(REMOVE_RECURSE
  "CMakeFiles/sirep_sql.dir/ast.cc.o"
  "CMakeFiles/sirep_sql.dir/ast.cc.o.d"
  "CMakeFiles/sirep_sql.dir/lexer.cc.o"
  "CMakeFiles/sirep_sql.dir/lexer.cc.o.d"
  "CMakeFiles/sirep_sql.dir/parser.cc.o"
  "CMakeFiles/sirep_sql.dir/parser.cc.o.d"
  "CMakeFiles/sirep_sql.dir/schema.cc.o"
  "CMakeFiles/sirep_sql.dir/schema.cc.o.d"
  "CMakeFiles/sirep_sql.dir/serde.cc.o"
  "CMakeFiles/sirep_sql.dir/serde.cc.o.d"
  "CMakeFiles/sirep_sql.dir/value.cc.o"
  "CMakeFiles/sirep_sql.dir/value.cc.o.d"
  "libsirep_sql.a"
  "libsirep_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirep_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
