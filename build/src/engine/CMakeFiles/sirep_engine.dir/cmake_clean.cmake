file(REMOVE_RECURSE
  "CMakeFiles/sirep_engine.dir/database.cc.o"
  "CMakeFiles/sirep_engine.dir/database.cc.o.d"
  "CMakeFiles/sirep_engine.dir/exec.cc.o"
  "CMakeFiles/sirep_engine.dir/exec.cc.o.d"
  "CMakeFiles/sirep_engine.dir/query_result.cc.o"
  "CMakeFiles/sirep_engine.dir/query_result.cc.o.d"
  "CMakeFiles/sirep_engine.dir/session.cc.o"
  "CMakeFiles/sirep_engine.dir/session.cc.o.d"
  "libsirep_engine.a"
  "libsirep_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirep_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
