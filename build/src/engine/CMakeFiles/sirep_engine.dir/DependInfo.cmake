
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/sirep_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/sirep_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/exec.cc" "src/engine/CMakeFiles/sirep_engine.dir/exec.cc.o" "gcc" "src/engine/CMakeFiles/sirep_engine.dir/exec.cc.o.d"
  "/root/repo/src/engine/query_result.cc" "src/engine/CMakeFiles/sirep_engine.dir/query_result.cc.o" "gcc" "src/engine/CMakeFiles/sirep_engine.dir/query_result.cc.o.d"
  "/root/repo/src/engine/session.cc" "src/engine/CMakeFiles/sirep_engine.dir/session.cc.o" "gcc" "src/engine/CMakeFiles/sirep_engine.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/sirep_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sirep_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sirep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
