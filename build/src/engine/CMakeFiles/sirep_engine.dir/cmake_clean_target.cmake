file(REMOVE_RECURSE
  "libsirep_engine.a"
)
