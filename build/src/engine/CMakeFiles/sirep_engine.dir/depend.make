# Empty dependencies file for sirep_engine.
# This may be replaced when dependencies are built.
