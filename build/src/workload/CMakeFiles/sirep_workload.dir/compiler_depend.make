# Empty compiler generated dependencies file for sirep_workload.
# This may be replaced when dependencies are built.
