file(REMOVE_RECURSE
  "libsirep_workload.a"
)
