file(REMOVE_RECURSE
  "CMakeFiles/sirep_workload.dir/runner.cc.o"
  "CMakeFiles/sirep_workload.dir/runner.cc.o.d"
  "CMakeFiles/sirep_workload.dir/simple_workloads.cc.o"
  "CMakeFiles/sirep_workload.dir/simple_workloads.cc.o.d"
  "CMakeFiles/sirep_workload.dir/tpcw.cc.o"
  "CMakeFiles/sirep_workload.dir/tpcw.cc.o.d"
  "libsirep_workload.a"
  "libsirep_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirep_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
