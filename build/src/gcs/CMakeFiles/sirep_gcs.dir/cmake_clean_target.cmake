file(REMOVE_RECURSE
  "libsirep_gcs.a"
)
