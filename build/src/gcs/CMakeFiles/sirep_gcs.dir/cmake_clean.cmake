file(REMOVE_RECURSE
  "CMakeFiles/sirep_gcs.dir/group.cc.o"
  "CMakeFiles/sirep_gcs.dir/group.cc.o.d"
  "libsirep_gcs.a"
  "libsirep_gcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirep_gcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
