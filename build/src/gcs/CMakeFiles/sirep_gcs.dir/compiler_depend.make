# Empty compiler generated dependencies file for sirep_gcs.
# This may be replaced when dependencies are built.
