file(REMOVE_RECURSE
  "CMakeFiles/sirep_middleware.dir/replica_mw.cc.o"
  "CMakeFiles/sirep_middleware.dir/replica_mw.cc.o.d"
  "CMakeFiles/sirep_middleware.dir/srca.cc.o"
  "CMakeFiles/sirep_middleware.dir/srca.cc.o.d"
  "CMakeFiles/sirep_middleware.dir/table_lock_baseline.cc.o"
  "CMakeFiles/sirep_middleware.dir/table_lock_baseline.cc.o.d"
  "CMakeFiles/sirep_middleware.dir/table_locks.cc.o"
  "CMakeFiles/sirep_middleware.dir/table_locks.cc.o.d"
  "libsirep_middleware.a"
  "libsirep_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirep_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
