file(REMOVE_RECURSE
  "libsirep_middleware.a"
)
