
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/middleware/replica_mw.cc" "src/middleware/CMakeFiles/sirep_middleware.dir/replica_mw.cc.o" "gcc" "src/middleware/CMakeFiles/sirep_middleware.dir/replica_mw.cc.o.d"
  "/root/repo/src/middleware/srca.cc" "src/middleware/CMakeFiles/sirep_middleware.dir/srca.cc.o" "gcc" "src/middleware/CMakeFiles/sirep_middleware.dir/srca.cc.o.d"
  "/root/repo/src/middleware/table_lock_baseline.cc" "src/middleware/CMakeFiles/sirep_middleware.dir/table_lock_baseline.cc.o" "gcc" "src/middleware/CMakeFiles/sirep_middleware.dir/table_lock_baseline.cc.o.d"
  "/root/repo/src/middleware/table_locks.cc" "src/middleware/CMakeFiles/sirep_middleware.dir/table_locks.cc.o" "gcc" "src/middleware/CMakeFiles/sirep_middleware.dir/table_locks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/sirep_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/sirep_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sirep_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sirep_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sirep_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
