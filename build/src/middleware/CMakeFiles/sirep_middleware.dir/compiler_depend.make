# Empty compiler generated dependencies file for sirep_middleware.
# This may be replaced when dependencies are built.
