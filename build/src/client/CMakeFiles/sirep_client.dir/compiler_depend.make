# Empty compiler generated dependencies file for sirep_client.
# This may be replaced when dependencies are built.
