file(REMOVE_RECURSE
  "libsirep_client.a"
)
