file(REMOVE_RECURSE
  "CMakeFiles/sirep_client.dir/driver.cc.o"
  "CMakeFiles/sirep_client.dir/driver.cc.o.d"
  "libsirep_client.a"
  "libsirep_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirep_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
