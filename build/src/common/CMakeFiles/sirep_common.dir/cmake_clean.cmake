file(REMOVE_RECURSE
  "CMakeFiles/sirep_common.dir/logging.cc.o"
  "CMakeFiles/sirep_common.dir/logging.cc.o.d"
  "CMakeFiles/sirep_common.dir/prng.cc.o"
  "CMakeFiles/sirep_common.dir/prng.cc.o.d"
  "CMakeFiles/sirep_common.dir/stats.cc.o"
  "CMakeFiles/sirep_common.dir/stats.cc.o.d"
  "CMakeFiles/sirep_common.dir/status.cc.o"
  "CMakeFiles/sirep_common.dir/status.cc.o.d"
  "libsirep_common.a"
  "libsirep_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirep_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
