# Empty compiler generated dependencies file for sirep_common.
# This may be replaced when dependencies are built.
