file(REMOVE_RECURSE
  "libsirep_common.a"
)
