file(REMOVE_RECURSE
  "libsirep_cluster.a"
)
