file(REMOVE_RECURSE
  "CMakeFiles/sirep_cluster.dir/cluster.cc.o"
  "CMakeFiles/sirep_cluster.dir/cluster.cc.o.d"
  "libsirep_cluster.a"
  "libsirep_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirep_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
