# Empty dependencies file for sirep_cluster.
# This may be replaced when dependencies are built.
