file(REMOVE_RECURSE
  "CMakeFiles/property_si_test.dir/property_si_test.cc.o"
  "CMakeFiles/property_si_test.dir/property_si_test.cc.o.d"
  "property_si_test"
  "property_si_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_si_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
