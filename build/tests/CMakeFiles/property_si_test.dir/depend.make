# Empty dependencies file for property_si_test.
# This may be replaced when dependencies are built.
