file(REMOVE_RECURSE
  "CMakeFiles/load_balance_test.dir/load_balance_test.cc.o"
  "CMakeFiles/load_balance_test.dir/load_balance_test.cc.o.d"
  "load_balance_test"
  "load_balance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
