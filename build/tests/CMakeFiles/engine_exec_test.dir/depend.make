# Empty dependencies file for engine_exec_test.
# This may be replaced when dependencies are built.
