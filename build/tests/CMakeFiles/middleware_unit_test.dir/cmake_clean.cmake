file(REMOVE_RECURSE
  "CMakeFiles/middleware_unit_test.dir/middleware_unit_test.cc.o"
  "CMakeFiles/middleware_unit_test.dir/middleware_unit_test.cc.o.d"
  "middleware_unit_test"
  "middleware_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
