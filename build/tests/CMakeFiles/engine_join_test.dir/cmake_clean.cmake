file(REMOVE_RECURSE
  "CMakeFiles/engine_join_test.dir/engine_join_test.cc.o"
  "CMakeFiles/engine_join_test.dir/engine_join_test.cc.o.d"
  "engine_join_test"
  "engine_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
