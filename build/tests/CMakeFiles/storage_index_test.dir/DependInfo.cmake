
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage_index_test.cc" "tests/CMakeFiles/storage_index_test.dir/storage_index_test.cc.o" "gcc" "tests/CMakeFiles/storage_index_test.dir/storage_index_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/sirep_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sirep_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/sirep_client.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/sirep_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/sirep_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/sirep_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sirep_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sirep_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sirep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
