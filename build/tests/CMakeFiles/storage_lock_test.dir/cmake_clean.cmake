file(REMOVE_RECURSE
  "CMakeFiles/storage_lock_test.dir/storage_lock_test.cc.o"
  "CMakeFiles/storage_lock_test.dir/storage_lock_test.cc.o.d"
  "storage_lock_test"
  "storage_lock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
