# Empty compiler generated dependencies file for storage_lock_test.
# This may be replaced when dependencies are built.
