file(REMOVE_RECURSE
  "CMakeFiles/ddl_replication_test.dir/ddl_replication_test.cc.o"
  "CMakeFiles/ddl_replication_test.dir/ddl_replication_test.cc.o.d"
  "ddl_replication_test"
  "ddl_replication_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddl_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
