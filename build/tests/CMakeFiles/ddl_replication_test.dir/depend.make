# Empty dependencies file for ddl_replication_test.
# This may be replaced when dependencies are built.
