file(REMOVE_RECURSE
  "CMakeFiles/storage_mvcc_test.dir/storage_mvcc_test.cc.o"
  "CMakeFiles/storage_mvcc_test.dir/storage_mvcc_test.cc.o.d"
  "storage_mvcc_test"
  "storage_mvcc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_mvcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
