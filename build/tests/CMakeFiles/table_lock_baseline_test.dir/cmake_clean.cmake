file(REMOVE_RECURSE
  "CMakeFiles/table_lock_baseline_test.dir/table_lock_baseline_test.cc.o"
  "CMakeFiles/table_lock_baseline_test.dir/table_lock_baseline_test.cc.o.d"
  "table_lock_baseline_test"
  "table_lock_baseline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_lock_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
