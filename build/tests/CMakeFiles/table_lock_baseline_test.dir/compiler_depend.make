# Empty compiler generated dependencies file for table_lock_baseline_test.
# This may be replaced when dependencies are built.
