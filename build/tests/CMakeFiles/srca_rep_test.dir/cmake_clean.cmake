file(REMOVE_RECURSE
  "CMakeFiles/srca_rep_test.dir/srca_rep_test.cc.o"
  "CMakeFiles/srca_rep_test.dir/srca_rep_test.cc.o.d"
  "srca_rep_test"
  "srca_rep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srca_rep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
