# Empty compiler generated dependencies file for srca_rep_test.
# This may be replaced when dependencies are built.
