# Empty compiler generated dependencies file for client_connection_test.
# This may be replaced when dependencies are built.
