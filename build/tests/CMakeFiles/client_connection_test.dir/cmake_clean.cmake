file(REMOVE_RECURSE
  "CMakeFiles/client_connection_test.dir/client_connection_test.cc.o"
  "CMakeFiles/client_connection_test.dir/client_connection_test.cc.o.d"
  "client_connection_test"
  "client_connection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_connection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
