# Empty compiler generated dependencies file for srca_test.
# This may be replaced when dependencies are built.
