file(REMOVE_RECURSE
  "CMakeFiles/srca_test.dir/srca_test.cc.o"
  "CMakeFiles/srca_test.dir/srca_test.cc.o.d"
  "srca_test"
  "srca_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
