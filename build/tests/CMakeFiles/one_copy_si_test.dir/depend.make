# Empty dependencies file for one_copy_si_test.
# This may be replaced when dependencies are built.
