file(REMOVE_RECURSE
  "CMakeFiles/one_copy_si_test.dir/one_copy_si_test.cc.o"
  "CMakeFiles/one_copy_si_test.dir/one_copy_si_test.cc.o.d"
  "one_copy_si_test"
  "one_copy_si_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_copy_si_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
