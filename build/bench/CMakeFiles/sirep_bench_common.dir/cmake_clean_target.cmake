file(REMOVE_RECURSE
  "libsirep_bench_common.a"
)
