file(REMOVE_RECURSE
  "CMakeFiles/sirep_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/sirep_bench_common.dir/bench_common.cc.o.d"
  "libsirep_bench_common.a"
  "libsirep_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirep_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
