file(REMOVE_RECURSE
  "CMakeFiles/writeset_micro.dir/writeset_micro.cc.o"
  "CMakeFiles/writeset_micro.dir/writeset_micro.cc.o.d"
  "writeset_micro"
  "writeset_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/writeset_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
