# Empty dependencies file for writeset_micro.
# This may be replaced when dependencies are built.
