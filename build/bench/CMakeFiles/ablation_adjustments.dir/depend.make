# Empty dependencies file for ablation_adjustments.
# This may be replaced when dependencies are built.
