file(REMOVE_RECURSE
  "CMakeFiles/ablation_adjustments.dir/ablation_adjustments.cc.o"
  "CMakeFiles/ablation_adjustments.dir/ablation_adjustments.cc.o.d"
  "ablation_adjustments"
  "ablation_adjustments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adjustments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
