# Empty compiler generated dependencies file for holes_rate.
# This may be replaced when dependencies are built.
