file(REMOVE_RECURSE
  "CMakeFiles/holes_rate.dir/holes_rate.cc.o"
  "CMakeFiles/holes_rate.dir/holes_rate.cc.o.d"
  "holes_rate"
  "holes_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holes_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
