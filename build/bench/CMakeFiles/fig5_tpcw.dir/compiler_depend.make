# Empty compiler generated dependencies file for fig5_tpcw.
# This may be replaced when dependencies are built.
