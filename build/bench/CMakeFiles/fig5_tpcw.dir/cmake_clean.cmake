file(REMOVE_RECURSE
  "CMakeFiles/fig5_tpcw.dir/fig5_tpcw.cc.o"
  "CMakeFiles/fig5_tpcw.dir/fig5_tpcw.cc.o.d"
  "fig5_tpcw"
  "fig5_tpcw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_tpcw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
