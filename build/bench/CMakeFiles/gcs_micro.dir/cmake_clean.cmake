file(REMOVE_RECURSE
  "CMakeFiles/gcs_micro.dir/gcs_micro.cc.o"
  "CMakeFiles/gcs_micro.dir/gcs_micro.cc.o.d"
  "gcs_micro"
  "gcs_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcs_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
