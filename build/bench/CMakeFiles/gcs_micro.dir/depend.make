# Empty dependencies file for gcs_micro.
# This may be replaced when dependencies are built.
