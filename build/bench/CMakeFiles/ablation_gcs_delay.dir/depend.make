# Empty dependencies file for ablation_gcs_delay.
# This may be replaced when dependencies are built.
