file(REMOVE_RECURSE
  "CMakeFiles/ablation_gcs_delay.dir/ablation_gcs_delay.cc.o"
  "CMakeFiles/ablation_gcs_delay.dir/ablation_gcs_delay.cc.o.d"
  "ablation_gcs_delay"
  "ablation_gcs_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gcs_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
