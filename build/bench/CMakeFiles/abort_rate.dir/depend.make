# Empty dependencies file for abort_rate.
# This may be replaced when dependencies are built.
