file(REMOVE_RECURSE
  "CMakeFiles/abort_rate.dir/abort_rate.cc.o"
  "CMakeFiles/abort_rate.dir/abort_rate.cc.o.d"
  "abort_rate"
  "abort_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abort_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
