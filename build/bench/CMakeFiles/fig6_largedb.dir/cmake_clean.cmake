file(REMOVE_RECURSE
  "CMakeFiles/fig6_largedb.dir/fig6_largedb.cc.o"
  "CMakeFiles/fig6_largedb.dir/fig6_largedb.cc.o.d"
  "fig6_largedb"
  "fig6_largedb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_largedb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
