# Empty dependencies file for fig6_largedb.
# This may be replaced when dependencies are built.
