file(REMOVE_RECURSE
  "CMakeFiles/validation_micro.dir/validation_micro.cc.o"
  "CMakeFiles/validation_micro.dir/validation_micro.cc.o.d"
  "validation_micro"
  "validation_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
