# Empty dependencies file for validation_micro.
# This may be replaced when dependencies are built.
