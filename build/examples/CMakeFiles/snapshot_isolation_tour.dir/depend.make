# Empty dependencies file for snapshot_isolation_tour.
# This may be replaced when dependencies are built.
