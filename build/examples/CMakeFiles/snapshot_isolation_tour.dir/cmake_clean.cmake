file(REMOVE_RECURSE
  "CMakeFiles/snapshot_isolation_tour.dir/snapshot_isolation_tour.cpp.o"
  "CMakeFiles/snapshot_isolation_tour.dir/snapshot_isolation_tour.cpp.o.d"
  "snapshot_isolation_tour"
  "snapshot_isolation_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_isolation_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
