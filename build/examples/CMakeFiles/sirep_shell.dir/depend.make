# Empty dependencies file for sirep_shell.
# This may be replaced when dependencies are built.
