file(REMOVE_RECURSE
  "CMakeFiles/sirep_shell.dir/sirep_shell.cpp.o"
  "CMakeFiles/sirep_shell.dir/sirep_shell.cpp.o.d"
  "sirep_shell"
  "sirep_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirep_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
