// Online recovery tests (the paper's §5.4 extension / stated future
// work): restarting crashed replicas and adding fresh ones while the
// cluster keeps committing, via writeset logging and a marker-based state
// transfer in the total order.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cluster/cluster.h"
#include "common/failpoint.h"

namespace sirep {
namespace {

using cluster::Cluster;
using cluster::ClusterOptions;
using sql::Value;

std::unique_ptr<Cluster> MakeCluster(size_t n) {
  ClusterOptions options;
  options.num_replicas = n;
  auto cluster = std::make_unique<Cluster>(options);
  EXPECT_TRUE(cluster->Start().ok());
  EXPECT_TRUE(cluster
                  ->ExecuteEverywhere(
                      "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  for (int k = 0; k < 10; ++k) {
    EXPECT_TRUE(cluster
                    ->ExecuteEverywhere("INSERT INTO kv VALUES (?, 0)",
                                        {Value::Int(k)})
                    .ok());
  }
  return cluster;
}

int64_t ReadAt(Cluster& cluster, size_t replica, int64_t k) {
  auto r = cluster.db(replica)->ExecuteAutoCommit(
      "SELECT v FROM kv WHERE k = ?", {Value::Int(k)});
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value().rows[0][0].AsInt();
}

Status CommitUpdate(Cluster& cluster, size_t replica, int64_t k, int64_t v) {
  auto* mw = cluster.replica(replica);
  auto txn = mw->BeginTxn();
  if (!txn.ok()) return txn.status();
  auto handle = std::move(txn).value();
  auto r = mw->Execute(handle, "UPDATE kv SET v = ? WHERE k = ?",
                       {Value::Int(v), Value::Int(k)});
  if (!r.ok()) {
    mw->RollbackTxn(handle);
    return r.status();
  }
  return mw->CommitTxn(handle);
}

TEST(RecoveryTest, RestartedReplicaCatchesUp) {
  auto cluster = MakeCluster(3);
  // Some committed history everywhere.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(CommitUpdate(*cluster, 0, i, i + 100).ok());
  }
  cluster->Quiesce();

  // Replica 2 crashes; the cluster keeps committing without it.
  cluster->CrashReplica(2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(CommitUpdate(*cluster, 1, i, i + 200).ok());
  }
  cluster->Quiesce();
  // The crashed replica's DB is stale.
  EXPECT_EQ(ReadAt(*cluster, 2, 0), 100);

  // Online restart: a new incarnation catches up from the writeset log.
  ASSERT_TRUE(cluster->RestartReplica(2).ok());
  ASSERT_TRUE(cluster->replica(2)->IsAcceptingClients());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ReadAt(*cluster, 2, i), i + 200) << "key " << i;
  }
}

TEST(RecoveryTest, RecoveredReplicaParticipatesAgain) {
  auto cluster = MakeCluster(3);
  ASSERT_TRUE(CommitUpdate(*cluster, 0, 1, 7).ok());
  cluster->Quiesce();
  cluster->CrashReplica(1);
  ASSERT_TRUE(CommitUpdate(*cluster, 0, 2, 8).ok());
  cluster->Quiesce();
  ASSERT_TRUE(cluster->RestartReplica(1).ok());

  // The recovered incarnation can run local update transactions that
  // replicate everywhere...
  ASSERT_TRUE(CommitUpdate(*cluster, 1, 3, 9).ok());
  cluster->Quiesce();
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(ReadAt(*cluster, r, 3), 9) << "replica " << r;
  }
  // ...and receives later remote writesets.
  ASSERT_TRUE(CommitUpdate(*cluster, 0, 4, 10).ok());
  cluster->Quiesce();
  EXPECT_EQ(ReadAt(*cluster, 1, 4), 10);
}

TEST(RecoveryTest, RecoveryConcurrentWithTraffic) {
  // The headline property: transaction processing never stops while a
  // replica recovers, and the recovered replica still converges.
  auto cluster = MakeCluster(3);
  cluster->CrashReplica(2);

  std::atomic<bool> stop{false};
  std::atomic<int> committed{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      Prng prng(w + 1);
      while (!stop.load()) {
        const int64_t k = static_cast<int64_t>(prng.Uniform(10));
        if (CommitUpdate(*cluster, static_cast<size_t>(w) % 2, k,
                         static_cast<int64_t>(prng.Uniform(100000)))
                .ok()) {
          committed.fetch_add(1);
        }
      }
    });
  }
  // Let traffic build history, then recover under load.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(cluster->RestartReplica(2).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  for (auto& t : writers) t.join();
  cluster->Quiesce();
  EXPECT_GT(committed.load(), 0);

  for (int k = 0; k < 10; ++k) {
    const int64_t expect = ReadAt(*cluster, 0, k);
    EXPECT_EQ(ReadAt(*cluster, 1, k), expect) << "key " << k;
    EXPECT_EQ(ReadAt(*cluster, 2, k), expect) << "key " << k;
  }
}

TEST(RecoveryTest, FreshReplicaJoinsViaFullReplay) {
  auto cluster = MakeCluster(2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(CommitUpdate(*cluster, 0, i % 10, i + 500).ok());
  }
  cluster->Quiesce();

  // A brand-new node: schema only, no data (inserts arrive via the log
  // replay? no — the seed data was loaded out-of-band, so the new node
  // needs the same out-of-band load; the *writesets* carry everything
  // committed through the middleware).
  auto added = cluster->AddReplica([](engine::Database* db) -> Status {
    auto r = db->ExecuteAutoCommit(
        "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))");
    if (!r.ok()) return r.status();
    for (int k = 0; k < 10; ++k) {
      auto ins = db->ExecuteAutoCommit("INSERT INTO kv VALUES (?, 0)",
                                       {sql::Value::Int(k)});
      if (!ins.ok()) return ins.status();
    }
    return Status::OK();
  });
  ASSERT_TRUE(added.ok()) << added.status();
  const size_t idx = added.value();
  EXPECT_EQ(cluster->size(), 3u);

  // Caught up with all replicated updates.
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(ReadAt(*cluster, idx, k), ReadAt(*cluster, 0, k)) << k;
  }
  // And fully live.
  ASSERT_TRUE(CommitUpdate(*cluster, idx, 0, 777).ok());
  cluster->Quiesce();
  EXPECT_EQ(ReadAt(*cluster, 0, 0), 777);
}

TEST(RecoveryTest, RecoveringReplicaInvisibleToDiscovery) {
  auto cluster = MakeCluster(3);
  cluster->CrashReplica(1);
  EXPECT_EQ(cluster->Discover().size(), 2u);
  ASSERT_TRUE(cluster->RestartReplica(1).ok());
  EXPECT_EQ(cluster->Discover().size(), 3u);
}

TEST(RecoveryTest, RestartOfLiveReplicaRejected) {
  auto cluster = MakeCluster(2);
  EXPECT_EQ(cluster->RestartReplica(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster->RestartReplica(9).code(), StatusCode::kInvalidArgument);
}

TEST(RecoveryTest, RecoverWithoutFlagRejected) {
  auto cluster = MakeCluster(2);
  EXPECT_EQ(cluster->replica(0)->Recover(0).code(),
            StatusCode::kInvalidArgument);
}

TEST(RecoveryTest, NoEligibleDonorReturnsRetryable) {
  // Recover() itself — below the cluster's cold-start logic — must fail
  // fast and clean when no donor exists: a retryable status within its
  // attempt budget, never a hang.
  ClusterOptions options;
  options.num_replicas = 1;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster
                  .ExecuteEverywhere(
                      "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  cluster.CrashReplica(0);
  middleware::ReplicaOptions ropt;
  ropt.start_recovering = true;
  ropt.recovery_max_attempts = 3;
  ropt.recovery_timeout = std::chrono::milliseconds(500);
  middleware::SrcaRepReplica joiner(cluster.db(0), &cluster.group(), ropt);
  ASSERT_TRUE(joiner.Start().ok());
  const auto start = std::chrono::steady_clock::now();
  const Status st = joiner.Recover(0);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st;
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  joiner.Crash();  // detach the joined listener before destruction
}

TEST(RecoveryTest, SoleCrashedReplicaColdStarts) {
  // With every replica down there is no donor, so online recovery is
  // impossible — but the replica holding the longest stable prefix may
  // cold-start over its surviving database and seed the new epoch.
  ClusterOptions options;
  options.num_replicas = 1;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster
                  .ExecuteEverywhere(
                      "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  ASSERT_TRUE(cluster.ExecuteEverywhere("INSERT INTO kv VALUES (1, 0)").ok());
  ASSERT_TRUE(CommitUpdate(cluster, 0, 1, 41).ok());
  cluster.CrashReplica(0);
  ASSERT_TRUE(cluster.RestartReplica(0).ok());
  EXPECT_EQ(ReadAt(cluster, 0, 1), 41);
  // And the cold-started incarnation processes new commits.
  ASSERT_TRUE(CommitUpdate(cluster, 0, 1, 42).ok());
  EXPECT_EQ(ReadAt(cluster, 0, 1), 42);
}

TEST(RecoveryTest, ClusterOutageColdStartsLongestPrefixFirst) {
  auto cluster = MakeCluster(2);
  ASSERT_TRUE(CommitUpdate(*cluster, 0, 1, 10).ok());
  cluster->Quiesce();
  cluster->CrashReplica(1);
  ASSERT_TRUE(CommitUpdate(*cluster, 0, 2, 20).ok());
  cluster->Quiesce();
  cluster->CrashReplica(0);

  // The shorter-prefix replica may not seed the new epoch: it is missing
  // an acknowledged commit that only replica 0 holds.
  EXPECT_EQ(cluster->RestartReplica(1).code(), StatusCode::kUnavailable);
  // The longest-prefix replica cold-starts...
  ASSERT_TRUE(cluster->RestartReplica(0).ok());
  // ...and the rest recover from it normally. Its writeset log is empty,
  // which must force a fresh full copy rather than silently skipping the
  // suffix.
  ASSERT_TRUE(cluster->RestartReplica(1).ok());
  cluster->Quiesce();
  EXPECT_EQ(ReadAt(*cluster, 1, 2), 20);
  ASSERT_TRUE(CommitUpdate(*cluster, 1, 3, 30).ok());
  cluster->Quiesce();
  EXPECT_EQ(ReadAt(*cluster, 0, 3), 30);
}

TEST(RecoveryTest, RestartAfterCrashWithBlockedTransactions) {
  // The crashed incarnation left transactions holding locks; a restart
  // must clear them or recovery replay would block forever.
  auto cluster = MakeCluster(3);
  auto* mw = cluster->replica(2);
  auto handle = std::move(mw->BeginTxn()).value();
  ASSERT_TRUE(mw->Execute(handle, "UPDATE kv SET v = 1 WHERE k = 5").ok());
  // Crash with the lock on k=5 still held.
  cluster->CrashReplica(2);

  // The survivors commit a conflicting update.
  ASSERT_TRUE(CommitUpdate(*cluster, 0, 5, 42).ok());
  cluster->Quiesce();

  ASSERT_TRUE(cluster->RestartReplica(2).ok());
  EXPECT_EQ(ReadAt(*cluster, 2, 5), 42);
}

TEST(RecoveryTest, ChainedCrashAndRecover) {
  auto cluster = MakeCluster(3);
  for (int round = 0; round < 3; ++round) {
    const size_t victim = static_cast<size_t>(round) % 3;
    ASSERT_TRUE(
        CommitUpdate(*cluster, (victim + 1) % 3, round, round * 10).ok());
    cluster->Quiesce();
    cluster->CrashReplica(victim);
    ASSERT_TRUE(
        CommitUpdate(*cluster, (victim + 1) % 3, round, round * 10 + 1).ok());
    cluster->Quiesce();
    ASSERT_TRUE(cluster->RestartReplica(victim).ok()) << "round " << round;
    EXPECT_EQ(ReadAt(*cluster, victim, round), round * 10 + 1);
  }
  // Everyone ends identical.
  for (int k = 0; k < 10; ++k) {
    const int64_t expect = ReadAt(*cluster, 0, k);
    EXPECT_EQ(ReadAt(*cluster, 1, k), expect);
    EXPECT_EQ(ReadAt(*cluster, 2, k), expect);
  }
}

TEST(RecoveryTest, FullCopyFallbackWhenLogTruncated) {
  // Replicas keep only a tiny writeset log; after enough commits while a
  // replica is down, incremental catch-up is impossible and the donor
  // sends a full online state copy instead.
  ClusterOptions options;
  options.num_replicas = 3;
  options.replica.ws_log_capacity = 4;  // tiny window
  Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster
                  .ExecuteEverywhere(
                      "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  for (int k = 0; k < 10; ++k) {
    ASSERT_TRUE(cluster
                    .ExecuteEverywhere("INSERT INTO kv VALUES (?, 0)",
                                       {Value::Int(k)})
                    .ok());
  }
  cluster.CrashReplica(2);
  // Far more commits than the log window, including deletes and inserts
  // (the full copy must remove rows the donor no longer has).
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(CommitUpdate(cluster, 0, i % 10, i + 1).ok());
  }
  {
    auto* mw = cluster.replica(0);
    auto handle = std::move(mw->BeginTxn()).value();
    ASSERT_TRUE(mw->Execute(handle, "DELETE FROM kv WHERE k = 9").ok());
    ASSERT_TRUE(mw->Execute(handle, "INSERT INTO kv VALUES (100, 7)").ok());
    ASSERT_TRUE(mw->CommitTxn(handle).ok());
  }
  cluster.Quiesce();

  ASSERT_TRUE(cluster.RestartReplica(2).ok());
  // Full state equality, including the delete and the insert.
  auto donor = cluster.db(0)->ExecuteAutoCommit("SELECT * FROM kv ORDER BY k");
  auto recovered =
      cluster.db(2)->ExecuteAutoCommit("SELECT * FROM kv ORDER BY k");
  ASSERT_EQ(recovered.value().NumRows(), donor.value().NumRows());
  for (size_t i = 0; i < donor.value().rows.size(); ++i) {
    EXPECT_EQ(recovered.value().rows[i], donor.value().rows[i]) << "row " << i;
  }
  // And it participates again.
  ASSERT_TRUE(CommitUpdate(cluster, 2, 0, 999).ok());
  cluster.Quiesce();
  EXPECT_EQ(ReadAt(cluster, 0, 0), 999);
}

// Shared setup for the chunked-transfer tests: a 3-replica cluster with
// a tiny writeset log, replica 2 crashed, and far more commits than the
// log window — so its restart is forced through a chunked full copy.
std::unique_ptr<Cluster> MakeFullCopyCluster(ClusterOptions options) {
  options.num_replicas = 3;
  options.replica.ws_log_capacity = 4;
  auto cluster = std::make_unique<Cluster>(options);
  EXPECT_TRUE(cluster->Start().ok());
  EXPECT_TRUE(cluster
                  ->ExecuteEverywhere(
                      "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  for (int k = 0; k < 10; ++k) {
    EXPECT_TRUE(cluster
                    ->ExecuteEverywhere("INSERT INTO kv VALUES (?, 0)",
                                        {Value::Int(k)})
                    .ok());
  }
  cluster->CrashReplica(2);
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(CommitUpdate(*cluster, 0, i % 10, i + 1).ok());
  }
  cluster->Quiesce();
  return cluster;
}

void ExpectConverged(Cluster& cluster, size_t a, size_t b) {
  auto ra = cluster.db(a)->ExecuteAutoCommit("SELECT * FROM kv ORDER BY k");
  auto rb = cluster.db(b)->ExecuteAutoCommit("SELECT * FROM kv ORDER BY k");
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra.value().rows, rb.value().rows)
      << "replicas " << a << " and " << b << " diverged";
}

TEST(RecoveryTest, ChunkedFullCopyWithTinyChunks) {
  ClusterOptions options;
  options.replica.recovery_chunk_rows = 3;  // 10-row table -> 4+ chunks
  auto cluster = MakeFullCopyCluster(options);

  ASSERT_TRUE(cluster->RestartReplica(2).ok());
  ExpectConverged(*cluster, 0, 2);
  // The transfer really was chunked: meta + several table slices.
  const auto counters = cluster->DumpMetrics().counters;
  EXPECT_GE(counters.at("mw.recovery.chunks_received"), 5u);
  ASSERT_TRUE(CommitUpdate(*cluster, 2, 0, 999).ok());
  cluster->Quiesce();
  EXPECT_EQ(ReadAt(*cluster, 0, 0), 999);
}

TEST(RecoveryTest, DonorCrashMidTransferFailsOver) {
  ClusterOptions options;
  options.replica.recovery_chunk_rows = 2;
  auto cluster = MakeFullCopyCluster(options);

  // The first donor crashes right after its first chunk is out; the
  // recoverer must fail over to the surviving replica and complete the
  // transfer from its cursor.
  failpoint::ScopedFailpoint fp("mw.recovery.donor_crash_mid_transfer",
                                "1in(1,crash)*1");
  ASSERT_TRUE(cluster->RestartReplica(2).ok());
  ASSERT_TRUE(cluster->replica(2)->IsAcceptingClients());
  const auto counters = cluster->DumpMetrics().counters;
  EXPECT_GE(counters.at("mw.recovery.donor_switches"), 1u);

  // Exactly one donor died mid-donation; the recoverer converged with
  // the survivor.
  const size_t survivor = cluster->replica(0)->IsAlive() ? 0 : 1;
  EXPECT_FALSE(cluster->replica(1 - survivor)->IsAlive());
  ExpectConverged(*cluster, survivor, 2);
}

TEST(RecoveryTest, BoundedBufferSpillsAndReanchors) {
  ClusterOptions options;
  options.replica.recovery_chunk_rows = 1;
  options.replica.recovery_buffer_high_water = 4;
  auto cluster = MakeFullCopyCluster(options);

  // Stretch the chunk stream while live traffic keeps delivering to the
  // buffering recoverer: the bounded buffer must hit its high-water
  // mark, spill, and re-anchor the transfer instead of growing without
  // bound. The stall budget self-disarms so a later attempt finishes.
  failpoint::ScopedFailpoint stall("mw.recovery.stall", "delay(2ms)*80");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      (void)CommitUpdate(*cluster, 0, i % 10, 1000 + i);
      ++i;
    }
  });
  const Status restarted = cluster->RestartReplica(2);
  stop.store(true);
  writer.join();
  ASSERT_TRUE(restarted.ok()) << restarted;
  cluster->Quiesce();

  const auto counters = cluster->DumpMetrics().counters;
  EXPECT_GE(counters.at("mw.recovery.buffer_spills"), 1u);
  ExpectConverged(*cluster, 0, 2);
  ExpectConverged(*cluster, 1, 2);
}

TEST(RecoveryTest, VacuumKeepsReplicasUsable) {
  auto cluster = MakeCluster(2);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(CommitUpdate(*cluster, 0, i % 10, i).ok());
  }
  cluster->Quiesce();
  const size_t freed = cluster->VacuumAll();
  EXPECT_GT(freed, 0u);
  // Replication continues to work post-vacuum.
  ASSERT_TRUE(CommitUpdate(*cluster, 1, 5, 4242).ok());
  cluster->Quiesce();
  EXPECT_EQ(ReadAt(*cluster, 0, 5), 4242);
  EXPECT_EQ(ReadAt(*cluster, 1, 5), 4242);
}

}  // namespace
}  // namespace sirep
