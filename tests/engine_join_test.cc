// Tests for multi-table SELECT: comma joins, JOIN..ON, aliases,
// qualified names, GROUP BY, and ORDER BY position.

#include <gtest/gtest.h>

#include "engine/database.h"

namespace sirep::engine {
namespace {

using sql::Value;

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must("CREATE TABLE dept (d_id INT, d_name VARCHAR(20), "
         "PRIMARY KEY (d_id))");
    Must("CREATE TABLE emp (e_id INT, e_name VARCHAR(20), e_dept INT, "
         "e_sal INT, PRIMARY KEY (e_id))");
    Must("INSERT INTO dept VALUES (1, 'eng')");
    Must("INSERT INTO dept VALUES (2, 'sales')");
    Must("INSERT INTO dept VALUES (3, 'empty')");
    Must("INSERT INTO emp VALUES (10, 'ann', 1, 120)");
    Must("INSERT INTO emp VALUES (11, 'bob', 1, 100)");
    Must("INSERT INTO emp VALUES (12, 'cat', 2, 90)");
    Must("INSERT INTO emp VALUES (13, 'dan', 2, 90)");
  }

  QueryResult Must(const std::string& sql,
                   const std::vector<Value>& params = {}) {
    auto result = db_.ExecuteAutoCommit(sql, params);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  Database db_;
};

TEST_F(JoinTest, CommaJoinWithWhere) {
  auto r = Must(
      "SELECT e_name, d_name FROM emp, dept WHERE e_dept = d_id "
      "ORDER BY e_name");
  ASSERT_EQ(r.NumRows(), 4u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
  EXPECT_EQ(r.rows[0][1].AsString(), "eng");
  EXPECT_EQ(r.rows[2][0].AsString(), "cat");
  EXPECT_EQ(r.rows[2][1].AsString(), "sales");
}

TEST_F(JoinTest, ExplicitJoinOn) {
  auto r = Must(
      "SELECT e_name FROM emp JOIN dept ON e_dept = d_id "
      "WHERE d_name = 'eng' ORDER BY e_name");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
  EXPECT_EQ(r.rows[1][0].AsString(), "bob");
}

TEST_F(JoinTest, AliasesAndQualifiedColumns) {
  auto r = Must(
      "SELECT e.e_name, d.d_name FROM emp e JOIN dept d ON "
      "e.e_dept = d.d_id WHERE d.d_id = 2 ORDER BY e.e_name");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.columns[0], "e.e_name");
  EXPECT_EQ(r.rows[0][0].AsString(), "cat");
}

TEST_F(JoinTest, AsAliasKeyword) {
  auto r = Must(
      "SELECT x.e_name FROM emp AS x WHERE x.e_id = 10");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
}

TEST_F(JoinTest, SelfJoinNeedsAliases) {
  // Pairs of employees in the same department (e1 < e2).
  auto r = Must(
      "SELECT a.e_name, b.e_name FROM emp a JOIN emp b ON "
      "a.e_dept = b.e_dept WHERE a.e_id < b.e_id ORDER BY a.e_id");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
  EXPECT_EQ(r.rows[0][1].AsString(), "bob");
  EXPECT_EQ(r.rows[1][0].AsString(), "cat");
  EXPECT_EQ(r.rows[1][1].AsString(), "dan");
}

TEST_F(JoinTest, AmbiguousPlainColumnRejected) {
  auto r = db_.ExecuteAutoCommit(
      "SELECT e_name FROM emp a, emp b WHERE a.e_id = b.e_id");
  EXPECT_FALSE(r.ok());  // e_name resolves in both a and b
}

TEST_F(JoinTest, InnerJoinDropsUnmatched) {
  // dept 3 has no employees; an employee with no dept never matches.
  Must("INSERT INTO emp VALUES (14, 'eve', 99, 50)");
  auto r = Must("SELECT COUNT(*) FROM emp JOIN dept ON e_dept = d_id");
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
}

TEST_F(JoinTest, CartesianProductWithoutCondition) {
  auto r = Must("SELECT COUNT(*) FROM emp, dept");
  EXPECT_EQ(r.rows[0][0].AsInt(), 4 * 3);
}

TEST_F(JoinTest, ThreeWayJoin) {
  Must("CREATE TABLE loc (l_dept INT, l_city VARCHAR(20), "
       "PRIMARY KEY (l_dept))");
  Must("INSERT INTO loc VALUES (1, 'nyc')");
  Must("INSERT INTO loc VALUES (2, 'sfo')");
  auto r = Must(
      "SELECT e_name, l_city FROM emp JOIN dept ON e_dept = d_id "
      "JOIN loc ON d_id = l_dept WHERE e_id = 12");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][1].AsString(), "sfo");
}

TEST_F(JoinTest, GroupByWithAggregates) {
  auto r = Must(
      "SELECT e_dept, COUNT(*), SUM(e_sal), AVG(e_sal) FROM emp "
      "GROUP BY e_dept ORDER BY e_dept");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_EQ(r.rows[0][2].AsInt(), 220);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 110.0);
  EXPECT_EQ(r.rows[1][2].AsInt(), 180);
}

TEST_F(JoinTest, GroupByOverJoin) {
  auto r = Must(
      "SELECT d_name, COUNT(*) FROM emp JOIN dept ON e_dept = d_id "
      "GROUP BY d_name ORDER BY d_name");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "eng");
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_EQ(r.rows[1][0].AsString(), "sales");
}

TEST_F(JoinTest, OrderByPositionOnAggregate) {
  auto r = Must(
      "SELECT e_dept, SUM(e_sal) FROM emp GROUP BY e_dept "
      "ORDER BY 2 DESC LIMIT 1");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);  // eng has the bigger payroll
}

TEST_F(JoinTest, OrderByOutputColumnName) {
  auto r = Must(
      "SELECT e_dept, SUM(e_sal) FROM emp GROUP BY e_dept "
      "ORDER BY sum(e_sal) DESC");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST_F(JoinTest, NonGroupedColumnRejected) {
  auto r = db_.ExecuteAutoCommit(
      "SELECT e_name, COUNT(*) FROM emp GROUP BY e_dept");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(JoinTest, GroupByUnknownColumnRejected) {
  EXPECT_FALSE(
      db_.ExecuteAutoCommit("SELECT COUNT(*) FROM emp GROUP BY zz").ok());
}

TEST_F(JoinTest, GroupByEmptyInputYieldsNoRows) {
  auto r = Must(
      "SELECT e_dept, COUNT(*) FROM emp WHERE e_sal > 9999 "
      "GROUP BY e_dept");
  EXPECT_EQ(r.NumRows(), 0u);
}

TEST_F(JoinTest, UngroupedAggregateStillOneRow) {
  auto r = Must("SELECT COUNT(*) FROM emp WHERE e_sal > 9999");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
}

TEST_F(JoinTest, JoinSeesOwnWritesInTransaction) {
  auto txn = db_.Begin();
  ASSERT_TRUE(
      db_.Execute(txn, "INSERT INTO emp VALUES (20, 'zed', 1, 70)").ok());
  auto r = db_.Execute(
      txn, "SELECT COUNT(*) FROM emp JOIN dept ON e_dept = d_id "
           "WHERE d_id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 3);
  db_.Abort(txn);
}

TEST_F(JoinTest, JoinRespectsSnapshot) {
  auto reader = db_.Begin();
  // Concurrent commit adds an eng employee.
  Must("INSERT INTO emp VALUES (21, 'new', 1, 80)");
  auto r = db_.Execute(
      reader, "SELECT COUNT(*) FROM emp JOIN dept ON e_dept = d_id "
              "WHERE d_id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 2);  // snapshot predates insert
  db_.Abort(reader);
}

TEST_F(JoinTest, SelectStarOnJoinUsesQualifiedNames) {
  auto r = Must("SELECT * FROM emp JOIN dept ON e_dept = d_id LIMIT 1");
  ASSERT_EQ(r.columns.size(), 4u + 2u);
  EXPECT_EQ(r.columns[0], "emp.e_id");
  EXPECT_EQ(r.columns[4], "dept.d_id");
}

}  // namespace
}  // namespace sirep::engine
